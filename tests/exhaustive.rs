//! Wider exhaustive sweeps: every algorithm that claims correctness in
//! a model is verified over the full bounded run space, and the run
//! counts quoted in EXPERIMENTS.md are pinned.

use ssp::algos::{COptFloodSet, EarlyDeciding, FOptFloodSet, FloodSet, FloodSetWs};
use ssp::lab::{crash_schedules, verify_rs, verify_rs_parallel, verify_rws, verify_rws_parallel, ValidityMode};

/// Pin the run-space sizes EXPERIMENTS.md quotes.
#[test]
fn run_space_sizes_are_as_documented() {
    // FloodSet horizon t+1, crashes allowed through horizon+1.
    assert_eq!(crash_schedules(3, 1, 3).len(), 73); // ×8 configs = 584
    assert_eq!(crash_schedules(4, 1, 3).len(), 193); // ×16 = 3088
    assert_eq!(crash_schedules(3, 2, 4).len(), 3169);
}

#[test]
fn floodset_rs_exhaustive_n3_t2_run_count() {
    let v = verify_rs(&FloodSet, 3, 2, &[0u64, 1], ValidityMode::Strong);
    assert_eq!(v.runs, 8 * 3169, "configs × schedules");
    v.expect_ok();
}

#[test]
fn early_deciding_rs_exhaustive_n3_t2() {
    verify_rs(&EarlyDeciding, 3, 2, &[0u64, 1], ValidityMode::Strong).expect_ok();
}

#[test]
fn early_deciding_rs_exhaustive_n4_t2() {
    verify_rs_parallel(&EarlyDeciding, 4, 2, &[0u64, 1], ValidityMode::Strong, 8).expect_ok();
}

#[test]
fn f_opt_rs_exhaustive_n3_t2() {
    verify_rs(&FOptFloodSet, 3, 2, &[0u64, 1], ValidityMode::Strong).expect_ok();
}

#[test]
fn c_opt_rs_exhaustive_n3_t2() {
    verify_rs(&COptFloodSet, 3, 2, &[0u64, 1], ValidityMode::Strong).expect_ok();
}

#[test]
fn f_opt_rs_exhaustive_n4_t1() {
    verify_rs(&FOptFloodSet, 4, 1, &[0u64, 1], ValidityMode::Strong).expect_ok();
}

#[test]
fn floodset_ws_rws_exhaustive_n3_t2_run_count() {
    let v = verify_rws_parallel(&FloodSetWs, 3, 2, &[0u64, 1], ValidityMode::Strong, 8);
    assert!(v.runs > 100_000, "pending dimension multiplies the space: {}", v.runs);
    v.expect_ok();
}

/// Ternary inputs: strong validity and agreement are not artifacts of
/// the binary domain.
#[test]
fn floodset_rs_exhaustive_ternary_inputs() {
    verify_rs(&FloodSet, 3, 1, &[0u64, 1, 2], ValidityMode::Strong).expect_ok();
}

#[test]
fn floodset_ws_rws_exhaustive_ternary_inputs() {
    verify_rws(&FloodSetWs, 3, 1, &[0u64, 1, 2], ValidityMode::Strong).expect_ok();
}

/// The RWS-safe early-deciding variant (`min(f+3, t+1)`), exhaustively:
/// ~900k runs at (3,2) including every pending choice.
#[test]
fn early_deciding_ws_rws_exhaustive() {
    use ssp::algos::EarlyDecidingWs;
    verify_rws(&EarlyDecidingWs, 3, 1, &[0u64, 1], ValidityMode::Strong).expect_ok();
    verify_rws_parallel(&EarlyDecidingWs, 3, 2, &[0u64, 1], ValidityMode::Strong, 8).expect_ok();
}

/// `Value` is genuinely generic: string-valued consensus, exhaustively.
#[test]
fn string_valued_consensus_works() {
    let domain = vec!["apple".to_string(), "pear".to_string()];
    verify_rs(&FloodSet, 3, 1, &domain, ValidityMode::Strong).expect_ok();
    verify_rws(&FloodSetWs, 3, 1, &domain, ValidityMode::Strong).expect_ok();
}
