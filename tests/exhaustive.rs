//! Wider exhaustive sweeps: every algorithm that claims correctness in
//! a model is verified over the full bounded run space, and the run
//! counts quoted in EXPERIMENTS.md are pinned.

use ssp::algos::{COptFloodSet, EarlyDeciding, FOptFloodSet, FloodSet, FloodSetWs};
use ssp::lab::{crash_schedules, RoundModel, Symmetry, ValidityMode, Verifier};

/// Pin the run-space sizes EXPERIMENTS.md quotes.
#[test]
fn run_space_sizes_are_as_documented() {
    // FloodSet horizon t+1, crashes allowed through horizon+1.
    assert_eq!(crash_schedules(3, 1, 3).len(), 73); // ×8 configs = 584
    assert_eq!(crash_schedules(4, 1, 3).len(), 193); // ×16 = 3088
    assert_eq!(crash_schedules(3, 2, 4).len(), 3169);
}

#[test]
fn floodset_rs_exhaustive_n3_t2_run_count() {
    let v = Verifier::new(&FloodSet)
        .n(3)
        .t(2)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Strong)
        .run();
    assert_eq!(v.runs, 8 * 3169, "configs × schedules");
    v.expect_ok();
}

/// The symmetry-reduced sweep covers (counts) the identical space while
/// executing strictly fewer runs.
#[test]
fn floodset_rs_symmetric_sweep_represents_the_full_space() {
    let v = Verifier::new(&FloodSet)
        .n(3)
        .t(2)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Strong)
        .symmetry(Symmetry::Full)
        .run();
    assert_eq!(v.represented, 8 * 3169, "orbit weights cover the space");
    assert!(v.runs < 8 * 3169 / 2, "canonical runs: {}", v.runs);
    v.expect_ok();
}

#[test]
fn early_deciding_rs_exhaustive_n3_t2() {
    Verifier::new(&EarlyDeciding)
        .n(3)
        .t(2)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Strong)
        .run()
        .expect_ok();
}

#[test]
fn early_deciding_rs_exhaustive_n4_t2() {
    Verifier::new(&EarlyDeciding)
        .n(4)
        .t(2)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Strong)
        .threads(8)
        .symmetry(Symmetry::Full)
        .run()
        .expect_ok();
}

#[test]
fn f_opt_rs_exhaustive_n3_t2() {
    Verifier::new(&FOptFloodSet)
        .n(3)
        .t(2)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Strong)
        .run()
        .expect_ok();
}

#[test]
fn c_opt_rs_exhaustive_n3_t2() {
    Verifier::new(&COptFloodSet)
        .n(3)
        .t(2)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Strong)
        .run()
        .expect_ok();
}

#[test]
fn f_opt_rs_exhaustive_n4_t1() {
    Verifier::new(&FOptFloodSet)
        .n(4)
        .t(1)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Strong)
        .run()
        .expect_ok();
}

#[test]
fn floodset_ws_rws_exhaustive_n3_t2_run_count() {
    let v = Verifier::new(&FloodSetWs)
        .n(3)
        .t(2)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Strong)
        .model(RoundModel::Rws)
        .threads(8)
        .run();
    assert!(
        v.runs > 100_000,
        "pending dimension multiplies the space: {}",
        v.runs
    );
    v.expect_ok();
}

/// Ternary inputs: strong validity and agreement are not artifacts of
/// the binary domain.
#[test]
fn floodset_rs_exhaustive_ternary_inputs() {
    Verifier::new(&FloodSet)
        .n(3)
        .t(1)
        .domain(&[0u64, 1, 2])
        .mode(ValidityMode::Strong)
        .run()
        .expect_ok();
}

#[test]
fn floodset_ws_rws_exhaustive_ternary_inputs() {
    Verifier::new(&FloodSetWs)
        .n(3)
        .t(1)
        .domain(&[0u64, 1, 2])
        .mode(ValidityMode::Strong)
        .model(RoundModel::Rws)
        .run()
        .expect_ok();
}

/// The RWS-safe early-deciding variant (`min(f+3, t+1)`), exhaustively:
/// ~900k runs at (3,2) including every pending choice — symmetry
/// reduction keeps the bigger sweep fast while representing all of it.
#[test]
fn early_deciding_ws_rws_exhaustive() {
    use ssp::algos::EarlyDecidingWs;
    Verifier::new(&EarlyDecidingWs)
        .n(3)
        .t(1)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Strong)
        .model(RoundModel::Rws)
        .run()
        .expect_ok();
    Verifier::new(&EarlyDecidingWs)
        .n(3)
        .t(2)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Strong)
        .model(RoundModel::Rws)
        .threads(8)
        .symmetry(Symmetry::Full)
        .run()
        .expect_ok();
}

/// `Value` is genuinely generic: string-valued consensus, exhaustively.
#[test]
fn string_valued_consensus_works() {
    let domain = vec!["apple".to_string(), "pear".to_string()];
    Verifier::new(&FloodSet)
        .n(3)
        .t(1)
        .domain(&domain)
        .mode(ValidityMode::Strong)
        .run()
        .expect_ok();
    Verifier::new(&FloodSetWs)
        .n(3)
        .t(1)
        .domain(&domain)
        .mode(ValidityMode::Strong)
        .model(RoundModel::Rws)
        .run()
        .expect_ok();
}
