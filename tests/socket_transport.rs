//! Transport-level guarantees of the socket layer, exercised through
//! the public API: deterministic capped-exponential backoff, the frame
//! codec's corruption taxonomy, and — the §3 discipline — suspicion
//! gated exclusively on the PFD staleness timeout, never on TCP
//! connection state.

use std::time::Duration;

use ssp::model::ProcessId;
use ssp::runtime::{
    backoff_delay, ChaosProxy, ChaosProxyConfig, FdModule, Frame, LinkSpec, SocketConfig,
    SocketMsg, SocketNet, StalenessFd, TransportError, BACKOFF_BASE, BACKOFF_CAP,
    BACKOFF_JITTER_MAX,
};

fn free_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind :0");
    l.local_addr().expect("local addr").to_string()
}

#[test]
fn backoff_schedule_is_capped_exponential_with_bounded_jitter() {
    let (src, dst) = (ProcessId::new(0), ProcessId::new(1));
    let mut prev_base = Duration::ZERO;
    for attempt in 0..12 {
        let d = backoff_delay(7, src, dst, attempt);
        let base = (BACKOFF_BASE * 2u32.saturating_pow(attempt.min(5))).min(BACKOFF_CAP);
        assert!(
            d >= base && d < base + BACKOFF_JITTER_MAX,
            "attempt {attempt}: {d:?} outside [{base:?}, {base:?} + jitter)"
        );
        assert!(
            base >= prev_base,
            "schedule must be monotone before the cap"
        );
        prev_base = base;
    }
    // Past the cap the base stops growing.
    let capped = backoff_delay(7, src, dst, 30);
    assert!(capped < BACKOFF_CAP + BACKOFF_JITTER_MAX);
}

#[test]
fn backoff_jitter_is_deterministic_per_seed_and_varies_across_links() {
    let (p0, p1, p2) = (ProcessId::new(0), ProcessId::new(1), ProcessId::new(2));
    for attempt in 0..6 {
        assert_eq!(
            backoff_delay(42, p0, p1, attempt),
            backoff_delay(42, p0, p1, attempt),
            "same seed, same link, same attempt → same delay"
        );
    }
    // Different seeds or links must decorrelate somewhere in the
    // schedule (jitter is only 25 ms wide, so check several attempts).
    assert!(
        (0..8).any(|a| backoff_delay(42, p0, p1, a) != backoff_delay(43, p0, p1, a)),
        "seed must reach the jitter"
    );
    assert!(
        (0..8).any(|a| backoff_delay(42, p0, p1, a) != backoff_delay(42, p0, p2, a)),
        "link identity must reach the jitter"
    );
}

#[test]
fn frame_codec_roundtrips_and_classifies_corruption() {
    let frames = [
        Frame::Hello {
            src: ProcessId::new(2),
            epoch: 9,
        },
        Frame::Data {
            instance: 3,
            round: 1,
            seq: 77,
            attempt: 2,
            sent_micros: 123_456,
            payload: vec![1, 2, 3],
        },
        Frame::Ack { seq: 77 },
        Frame::Heartbeat { sent_micros: 5 },
        Frame::Abort { instance: 4 },
    ];
    for frame in &frames {
        let mut wire = Vec::new();
        frame.write_to(&mut wire).expect("encode");
        let back = Frame::read_from(&mut wire.as_slice()).expect("decode");
        assert_eq!(&back, frame);
    }
    // Truncated and garbage bodies surface as FrameCorrupt, not as a
    // panic or a silent misparse.
    let mut wire = Vec::new();
    frames[1].write_to(&mut wire).expect("encode");
    wire.truncate(wire.len() - 1);
    // Length prefix now promises more bytes than exist: an IO error.
    assert!(Frame::read_from(&mut wire.as_slice()).is_err());
    let bogus = [1u8, 0, 0, 0, 0xEE];
    match Frame::read_from(&mut bogus.as_slice()) {
        Err(TransportError::FrameCorrupt(_)) => {}
        other => panic!("unknown tag must be FrameCorrupt, got {other:?}"),
    }
}

fn spawn_pair(
    delta: Option<Duration>,
    via_proxy: Option<&ChaosProxy>,
) -> (SocketNet, SocketNet, String, String) {
    let addr0 = free_addr();
    let addr1 = free_addr();
    // Node 0 dials node 1 through the proxy when one is interposed;
    // node 1 dials node 0 directly either way.
    let addr1_seen_by_0 =
        via_proxy.map_or_else(|| addr1.clone(), |p| p.link_addrs()[0].to_string());
    let mk = |me: usize, listen: &str, peers: Vec<String>| SocketConfig {
        me: ProcessId::new(me),
        n: 2,
        listen: listen.to_string(),
        peers,
        epoch: 1,
        seed: 7,
        heartbeat: Duration::from_millis(20),
        delta,
        degrade: ssp::runtime::DegradeMode::Off,
    };
    let net0 = SocketNet::spawn(mk(0, &addr0, vec![addr0.clone(), addr1_seen_by_0]))
        .expect("spawn node 0");
    let net1 =
        SocketNet::spawn(mk(1, &addr1, vec![addr0.clone(), addr1.clone()])).expect("spawn node 1");
    (net0, net1, addr0, addr1)
}

/// The crux of the robustness story: a TCP reset followed by a
/// reconnect that stays inside Δ produces **zero** suspicions and
/// exactly-once delivery — connection loss is invisible to the
/// detector; only frame staleness counts.
#[test]
fn reset_and_reconnect_inside_delta_never_suspects() {
    let upstream = free_addr();
    let proxy = ChaosProxy::spawn(ChaosProxyConfig {
        seed: 3,
        delay_pm: 0,
        delay: Duration::ZERO,
        drop_pm: 0,
        reset_after: Some(2),
        partitioned: Vec::new(),
        links: vec![LinkSpec {
            src: ProcessId::new(0),
            dst: ProcessId::new(1),
            listen: "127.0.0.1:0".to_string(),
            upstream: upstream.clone(),
        }],
    })
    .expect("spawn proxy");
    // Rebind the upstream address for node 1's listener.
    let addr0 = free_addr();
    let mk = |me: usize, listen: &str, peers: Vec<String>| SocketConfig {
        me: ProcessId::new(me),
        n: 2,
        listen: listen.to_string(),
        peers,
        epoch: 1,
        seed: 7,
        heartbeat: Duration::from_millis(20),
        delta: Some(Duration::from_secs(5)),
        degrade: ssp::runtime::DegradeMode::Off,
    };
    let net1 = SocketNet::spawn(mk(1, &upstream, vec![addr0.clone(), upstream.clone()]))
        .expect("spawn node 1");
    let net0 = SocketNet::spawn(mk(
        0,
        &addr0,
        vec![addr0.clone(), proxy.link_addrs()[0].to_string()],
    ))
    .expect("spawn node 0");
    let fd = StalenessFd::new(net1.board(), Duration::from_secs(4), ProcessId::new(1));
    let monitor = net1.begin_instance(0);

    // Frame 3 trips the scripted reset; retransmission re-delivers it
    // over the reconnected link.
    for (i, r) in [(0u64, 1u32), (0, 2), (1, 1), (1, 2)] {
        net0.send(
            ProcessId::new(1),
            i,
            ssp::model::Round::new(r),
            vec![u8::try_from(i).unwrap(), u8::try_from(r).unwrap()],
        );
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut got: Vec<SocketMsg> = Vec::new();
    while got.len() < 4 && std::time::Instant::now() < deadline {
        if let Ok(msg) = net1.recv_timeout(Duration::from_millis(50)) {
            got.push(msg);
        }
    }
    assert_eq!(got.len(), 4, "exactly-once delivery across the reset");
    assert!(
        fd.suspects().is_empty(),
        "a reset + reconnect inside Δ must not suspect anyone"
    );
    let report = monitor.report();
    assert!(
        !report.violated && report.degraded_at.is_none() && !report.aborted,
        "no synchrony trace may be left behind: {report:?}"
    );
    let (_, _, resets) = proxy.injected();
    assert_eq!(resets, 1, "the scripted reset must actually have fired");
    let stats0 = net0.shutdown();
    assert!(stats0.reconnects >= 1, "node 0 must have reconnected");
    net1.shutdown();
    proxy.shutdown();
}

/// Dual of the above: silence past the PFD timeout *does* suspect —
/// and it is the timeout that decides, not the dead connection.
#[test]
fn suspicion_requires_the_pfd_timeout_not_connection_loss() {
    let (net0, net1, _, _) = spawn_pair(None, None);
    let fd = StalenessFd::new(net1.board(), Duration::from_millis(600), ProcessId::new(1));
    // Let heartbeats flow both ways first.
    std::thread::sleep(Duration::from_millis(200));
    assert!(fd.suspects().is_empty(), "live peer must not be suspected");
    // Kill node 0 without any goodbye: its connections die instantly,
    // but suspicion must wait for the staleness timeout.
    drop(net0);
    std::thread::sleep(Duration::from_millis(250));
    assert!(
        fd.suspects().is_empty(),
        "connection loss alone must not trigger suspicion"
    );
    std::thread::sleep(Duration::from_millis(700));
    assert!(
        fd.suspects().contains(ProcessId::new(0)),
        "after the timeout the dead peer must be suspected"
    );
    net1.shutdown();
}
