//! The paper's claims, one integration test per experiment id of
//! DESIGN.md (E1–E9). Each test exercises several crates end-to-end.

use ssp::algos::{
    COptFloodSet, COptFloodSetWs, FOptFloodSet, FOptFloodSetWs, FloodSet, FloodSetWs, SddSender,
    SsSddReceiver, A1,
};
use ssp::lab::impossibility::candidates::{PatientWait, WaitOrSuspect};
use ssp::lab::{
    all_round1_candidates, decides_round1_when_failure_free, explore_rs, explore_rws, refute,
    refute_round1_candidate, LatencyAggregator, RoundModel, SddRefutation, ValidityMode,
    Verification, Verifier,
};
use ssp::model::{check_sdd, InitialConfig, ProcessId, SddOutcome};
use ssp::rounds::RoundAlgorithm;
use ssp::sim::{run, BoxedAutomaton, FairAdversary, ModelKind, RandomAdversary};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Exhaustive `RS` sweep through the unified builder.
fn verify_rs<A: RoundAlgorithm<u64> + Sync>(
    algo: &A,
    n: usize,
    t: usize,
    domain: &[u64],
    mode: ValidityMode,
) -> Verification<u64> {
    Verifier::new(algo)
        .n(n)
        .t(t)
        .domain(domain)
        .mode(mode)
        .run()
}

/// Exhaustive `RWS` sweep through the unified builder.
fn verify_rws<A: RoundAlgorithm<u64> + Sync>(
    algo: &A,
    n: usize,
    t: usize,
    domain: &[u64],
    mode: ValidityMode,
) -> Verification<u64> {
    Verifier::new(algo)
        .n(n)
        .t(t)
        .domain(domain)
        .mode(mode)
        .model(RoundModel::Rws)
        .run()
}

/// E1 — SDD is solvable in SS: the Φ+1+Δ receiver is correct for every
/// (Φ, Δ) and every crash point of the sender, under fair and random
/// legal schedules.
#[test]
fn e1_sdd_solvable_in_ss() {
    for (phi, delta) in [(1u64, 1u64), (1, 3), (3, 1), (2, 2)] {
        for input in [false, true] {
            for crash_after in [None, Some(0), Some(1), Some(2)] {
                for seed in 0..8u64 {
                    let automata: Vec<BoxedAutomaton<bool, bool>> = vec![
                        Box::new(SddSender::new(p(1), input)),
                        Box::new(SsSddReceiver::new(p(0), phi, delta)),
                    ];
                    let result = match crash_after {
                        None => {
                            let mut adv = RandomAdversary::new(2, 300, seed);
                            run(ModelKind::ss(phi, delta), automata, &mut adv, 10_000)
                        }
                        Some(k) => {
                            let mut adv = RandomAdversary::new(2, 300, seed).with_crash(p(0), k);
                            run(ModelKind::ss(phi, delta), automata, &mut adv, 10_000)
                        }
                    }
                    .expect("legal SS run");
                    let outcome = SddOutcome {
                        sender_input: input,
                        sender_initially_dead: result.trace.step_count(p(0)) == 0,
                        receiver_correct: result.pattern.is_correct(p(1)),
                        decision: result.outputs[1],
                    };
                    check_sdd(&outcome).unwrap_or_else(|e| {
                        panic!("Φ={phi} Δ={delta} input={input} crash={crash_after:?} seed={seed}: {e}")
                    });
                }
            }
        }
    }
}

/// E2 — SDD is unsolvable in SP: Theorem 3.1's run surgery defeats the
/// natural candidates, whatever their patience.
#[test]
fn e2_sdd_impossible_in_sp() {
    let report = refute(&WaitOrSuspect, 2_000);
    assert!(matches!(report.refutation, SddRefutation::Validity { .. }));
    for patience in [0, 3, 17, 200] {
        let report = refute(&PatientWait(patience), 10_000);
        assert!(matches!(report.refutation, SddRefutation::Validity { .. }));
    }
}

/// E3 — FloodSet solves uniform consensus in RS: exhaustive over all
/// binary configs and crash schedules, n=3 with t ∈ {1, 2} and n=4
/// with t=1.
#[test]
fn e3_floodset_uniform_consensus_in_rs() {
    verify_rs(&FloodSet, 3, 1, &[0u64, 1], ValidityMode::Strong).expect_ok();
    verify_rs(&FloodSet, 3, 2, &[0u64, 1], ValidityMode::Strong).expect_ok();
    verify_rs(&FloodSet, 4, 1, &[0u64, 1], ValidityMode::Strong).expect_ok();
}

/// E4 — FloodSet admits disagreement in RWS: the checker finds
/// pending-message counterexamples already at t=1 (a crasher whose
/// round-1 flood was pending can leak fresh information in a final-
/// round partial send, too late for any relay), and of course at t=2.
#[test]
fn e4_floodset_disagrees_in_rws() {
    for t in [1usize, 2] {
        let v = verify_rws(&FloodSet, 3, t, &[0u64, 1], ValidityMode::Uniform);
        let cex = v.expect_violation();
        assert!(
            !cex.pending.is_empty(),
            "the t={t} violation needs pending messages"
        );
    }
}

/// E5 — FloodSetWS solves uniform consensus in RWS (companion paper
/// [7]), exhaustively.
#[test]
fn e5_floodset_ws_uniform_consensus_in_rws() {
    verify_rws(&FloodSetWs, 3, 1, &[0u64, 1], ValidityMode::Strong).expect_ok();
    verify_rws(&FloodSetWs, 3, 2, &[0u64, 1], ValidityMode::Strong).expect_ok();
}

/// E6 — lat(C_OptFloodSet) = lat(C_OptFloodSetWS) = 1, and the gain is
/// exactly the unanimity fast path: Lat stays t+1.
#[test]
fn e6_c_opt_latency_degrees() {
    let mut rs = LatencyAggregator::new();
    explore_rs(&COptFloodSet, 3, 1, &[0u64, 1], |run| rs.add(run));
    assert_eq!(rs.lat(), Some(1));
    assert_eq!(rs.lat_for(&InitialConfig::uniform(3, 0u64)), Some(1));
    assert_eq!(rs.lat_for(&InitialConfig::new(vec![0, 1, 1])), Some(2));
    assert_eq!(rs.lat_max_over_configs(), Some(2));

    let mut rws = LatencyAggregator::new();
    explore_rws(&COptFloodSetWs, 3, 1, &[0u64, 1], |run| rws.add(run));
    assert_eq!(rws.lat(), Some(1));
    assert_eq!(rws.lat_max_over_configs(), Some(2));

    // And both variants are actually correct.
    verify_rs(&COptFloodSet, 3, 1, &[0u64, 1], ValidityMode::Strong).expect_ok();
    verify_rws(&COptFloodSetWs, 3, 1, &[0u64, 1], ValidityMode::Strong).expect_ok();
}

/// E7 — Lat(F_OptFloodSet) = Lat(F_OptFloodSetWS) = 1: every config
/// has a round-1 run (t initial crashes), contradicting the folklore
/// that minimal latency needs failure-free runs.
#[test]
fn e7_f_opt_latency_degrees() {
    let mut rs = LatencyAggregator::new();
    explore_rs(&FOptFloodSet, 3, 1, &[0u64, 1], |run| rs.add(run));
    assert_eq!(rs.lat_max_over_configs(), Some(1), "Lat(F_OptFloodSet) = 1");
    assert_eq!(
        rs.capital_lambda(),
        Some(2),
        "failure-free runs still take t+1"
    );

    let mut rws = LatencyAggregator::new();
    explore_rws(&FOptFloodSetWs, 3, 1, &[0u64, 1], |run| rws.add(run));
    assert_eq!(
        rws.lat_max_over_configs(),
        Some(1),
        "Lat(F_OptFloodSetWS) = 1"
    );

    verify_rs(&FOptFloodSet, 3, 1, &[0u64, 1], ValidityMode::Strong).expect_ok();
    verify_rws(&FOptFloodSetWs, 3, 1, &[0u64, 1], ValidityMode::Strong).expect_ok();
}

/// E8 — Theorem 5.2: A1 solves uniform consensus in RS with t = 1 and
/// Λ(A1) = 1, for n ∈ {2, 3, 4}.
#[test]
fn e8_a1_correct_with_lambda_1() {
    for n in [2usize, 3, 4] {
        verify_rs(&A1, n, 1, &[0u64, 1], ValidityMode::Strong).expect_ok();
        let mut agg = LatencyAggregator::new();
        explore_rs(&A1, n, 1, &[0u64, 1], |run| agg.add(run));
        assert_eq!(agg.capital_lambda(), Some(1), "Λ(A1) = 1 at n={n}");
    }
}

/// E9 — the RWS lower bound: every member of the round-1-deciding
/// family (which includes A1-alikes) is refuted in RWS, while the
/// RWS-correct algorithms all have Λ ≥ 2.
#[test]
fn e9_rws_lower_bound() {
    for candidate in all_round1_candidates(3) {
        assert!(decides_round1_when_failure_free(&candidate, 3));
        assert!(
            refute_round1_candidate(&candidate, 3).is_some(),
            "{candidate} must admit an RWS violation"
        );
    }
    // Contrapositive: correct-in-RWS algorithms pay the extra round.
    let mut ws = LatencyAggregator::new();
    explore_rws(&FloodSetWs, 3, 1, &[0u64, 1], |run| ws.add(run));
    assert!(ws.capital_lambda().unwrap() >= 2);
    let mut c = LatencyAggregator::new();
    explore_rws(&COptFloodSetWs, 3, 1, &[0u64, 1], |run| c.add(run));
    assert!(c.capital_lambda().unwrap() >= 2);
    let mut f = LatencyAggregator::new();
    explore_rws(&FOptFloodSetWs, 3, 1, &[0u64, 1], |run| f.add(run));
    assert!(f.capital_lambda().unwrap() >= 2);
}

/// A1 in RWS: every failure-free run still decides at round 1 (that is
/// the efficiency premise the lower bound kills), every violation
/// requires `p1` to be faulty, and — a sharper finding from the model
/// checker — `p1`'s partial round-2 relay can even split the *correct*
/// processes, so A1-in-RWS fails plain consensus too, not merely its
/// uniform variant.
#[test]
fn a1_in_rws_anatomy() {
    let mut failure_free_latencies_ok = true;
    let mut correct_split_witnessed = false;
    let mut violation_without_p1_crash = false;
    explore_rws(&A1, 3, 1, &[0u64, 1], |run| {
        if run.schedule.fault_count() == 0 {
            failure_free_latencies_ok &= run.outcome.latency_degree() == Some(1);
        }
        let correct: Vec<u64> = run
            .outcome
            .iter()
            .filter(|(_, o)| o.is_correct())
            .filter_map(|(_, o)| o.decision.as_ref().map(|d| d.0))
            .collect();
        let split = correct.windows(2).any(|w| w[0] != w[1]);
        if split {
            correct_split_witnessed = true;
            if run.schedule.crash_of(p(0)).is_none() {
                violation_without_p1_crash = true;
            }
        }
    });
    assert!(failure_free_latencies_ok, "Λ(A1) = 1 also over RWS runs");
    assert!(
        correct_split_witnessed,
        "the partial-relay scenario must appear in the enumeration"
    );
    assert!(
        !violation_without_p1_crash,
        "all A1 anomalies stem from p1 failing"
    );
}

/// Sanity: FairAdversary SS runs of the SDD pair validate against the
/// independent SS trace validator.
#[test]
fn ss_runs_pass_independent_validation() {
    let (phi, delta) = (2, 2);
    let automata: Vec<BoxedAutomaton<bool, bool>> = vec![
        Box::new(SddSender::new(p(1), true)),
        Box::new(SsSddReceiver::new(p(0), phi, delta)),
    ];
    let mut adv = FairAdversary::new(2, 100);
    let result = run(ModelKind::ss(phi, delta), automata, &mut adv, 1_000).unwrap();
    ssp::sim::validate_ss(&result.trace, phi, delta).unwrap();
    ssp::sim::validate_basic(&result.trace).unwrap();
}
