//! End-to-end tests of the `ssp-engine` replicated state-machine
//! service: determinism, fault recovery, audit cleanliness, and the
//! Theorem 5.2 latency split (`A1`/`RS` decides in 1 round; `RWS`
//! pays `t + 1`).

use ssp::algos::{CtRounds, A1};
use ssp::engine::{serve, EngineConfig, FaultMode, Workload, WorkloadConfig};
use ssp::runtime::{Backend, ChaosConfig, ConfigError, PlanModel};

fn chaos_cfg(model: PlanModel, seed: u64, instances: u64) -> EngineConfig {
    let mut cfg = EngineConfig::new(3, 1, model);
    cfg.instances = instances;
    cfg.seed = seed;
    cfg.chaos = Some(ChaosConfig {
        loss_pm: 200,
        dup_pm: 50,
        reorder_pm: 50,
    });
    cfg
}

fn workload_for(cfg: &EngineConfig, clients: usize) -> Workload {
    Workload::new(cfg.seed, WorkloadConfig::new(clients))
}

#[test]
fn seeded_chaos_run_is_bit_deterministic() {
    let run = || {
        let cfg = chaos_cfg(PlanModel::Rs, 42, 6);
        let mut workload = workload_for(&cfg, 8);
        serve(&A1, &cfg, &mut workload).expect("valid config")
    };
    let a = run();
    let b = run();
    assert_eq!(a.stats.to_json(), b.stats.to_json());
    assert_eq!(a.kv.digest(), b.kv.digest());
    assert_eq!(a.kv, b.kv, "replicated stores converge byte for byte");
    // The canonical run logs agree instance by instance.
    assert_eq!(a.logs.len(), b.logs.len());
    for (la, lb) in a.logs.iter().zip(&b.logs) {
        assert_eq!(la.instance, lb.instance);
        assert_eq!(la.to_jsonl(), lb.to_jsonl());
    }
}

#[test]
fn engine_deterministic_core_is_backend_invariant() {
    // The stats JSON serializes only the deterministic core (no wall
    // clock), so the virtual and real backends must produce the same
    // bytes — and the same store, and the same per-instance run logs.
    let run = |backend| {
        let mut cfg = chaos_cfg(PlanModel::Rs, 42, 4);
        cfg.backend = backend;
        let mut workload = workload_for(&cfg, 8);
        serve(&A1, &cfg, &mut workload).expect("valid config")
    };
    let virt = run(Backend::Virtual);
    let real = run(Backend::Real);
    assert_eq!(virt.stats.to_json(), real.stats.to_json());
    assert_eq!(virt.kv, real.kv);
    assert_eq!(virt.logs.len(), real.logs.len());
    for (lv, lr) in virt.logs.iter().zip(&real.logs) {
        assert_eq!(lv.to_jsonl(), lr.to_jsonl());
    }
}

#[test]
fn a1_rs_under_seeded_crashes_and_chaos_audits_clean() {
    let cfg = chaos_cfg(PlanModel::Rs, 7, 8);
    let mut workload = workload_for(&cfg, 8);
    let report = serve(&A1, &cfg, &mut workload).unwrap();
    assert_eq!(report.stats.audit_checked, 8);
    assert_eq!(report.stats.audit_violations, 0);
    assert_eq!(report.stats.audit_divergences, 0);
    assert!(
        report.stats.crashed_instances > 0,
        "the seeded plans should crash someone across 8 instances"
    );
    assert!(
        report.stats.decided_instances >= report.stats.instances - 1,
        "crashes delay decisions, they do not prevent them"
    );
}

#[test]
fn ct_rws_decides_at_the_horizon_and_audits_clean() {
    let cfg = chaos_cfg(PlanModel::Rws, 13, 6);
    let mut workload = workload_for(&cfg, 8);
    let report = serve(&CtRounds, &cfg, &mut workload).unwrap();
    assert_eq!(report.stats.audit_violations, 0);
    assert_eq!(report.stats.audit_divergences, 0);
    // Λ(CtRounds) = t + 1 = 2: the RWS service never beats two rounds,
    // even failure-free — the efficiency half of Theorem 5.2.
    assert_eq!(report.stats.decide_rounds_p50(), 2);
    assert!(report.stats.decide_rounds.iter().all(|&r| r >= 2));
    assert_eq!(report.stats.retired_instances, 0);
}

#[test]
fn a1_rs_retires_and_beats_the_rws_round_bill() {
    let mut cfg = EngineConfig::new(3, 1, PlanModel::Rs);
    cfg.instances = 5;
    cfg.seed = 3;
    cfg.faults = FaultMode::FailureFree;
    let mut workload = workload_for(&cfg, 6);
    let report = serve(&A1, &cfg, &mut workload).unwrap();
    assert_eq!(
        report.stats.retired_instances, 5,
        "every instance fast-paths"
    );
    assert_eq!(report.stats.decide_rounds_p50(), 1, "Λ(A1) = 1 in RS");
    assert!(report.audits.iter().all(|a| a.retired));
}

#[test]
fn invalid_drain_is_rejected_with_a_typed_error() {
    let mut cfg = EngineConfig::new(3, 1, PlanModel::Rs);
    cfg.instances = 4;
    cfg.drain = Some(std::time::Duration::from_micros(10));
    let mut workload = workload_for(&cfg, 4);
    let err = serve(&A1, &cfg, &mut workload).unwrap_err();
    match err {
        ConfigError::DrainTooShort { drain, .. } => {
            assert_eq!(drain, std::time::Duration::from_micros(10));
        }
        other => panic!("expected DrainTooShort, got {other:?}"),
    }
}
