//! E18 — runtime ↔ model conformance: every seeded wall-clock run of
//! the threaded runtime is an admissible run of the round models,
//! replays tick-for-tick, passes the `ssp-sim` step validators, and
//! its safety verdict agrees with the `Verifier`'s sweep.

use ssp::algos::{FloodSet, FloodSetWs, A1};
use ssp::lab::{check_threaded_run, fuzz_runtime, shrink_plan, ValidityMode};
use ssp::model::InitialConfig;
use ssp::runtime::{FaultPlan, PlanModel, RuntimeBuilder, SECTION_5_3_SEED};
use ssp::sim::{validate_basic, validate_perfect_fd, Trace};

#[test]
fn a1_rws_seed_sweep_conforms_and_finds_the_paper_violation() {
    let config = InitialConfig::new(vec![10u64, 11, 12]);
    // A window around the documented seed: mostly benign plans plus
    // the §5.3 anomaly itself.
    let report = fuzz_runtime(
        &RuntimeBuilder::new(&A1, &config).model(PlanModel::Rws),
        SECTION_5_3_SEED - 8..SECTION_5_3_SEED + 8,
        ValidityMode::Uniform,
    );
    assert_eq!(report.runs, 16);
    assert!(
        report.is_conformant(),
        "no divergence and the checker agrees: {:?}",
        report.divergences
    );
    assert!(
        report
            .spec_violations
            .iter()
            .any(|(seed, _)| *seed == SECTION_5_3_SEED),
        "seed {SECTION_5_3_SEED} reproduces §5.3: {:?}",
        report.spec_violations
    );
}

#[test]
fn floodset_rs_seed_sweep_is_conformant_and_safe() {
    let config = InitialConfig::new(vec![7u64, 3, 5]);
    let report = fuzz_runtime(
        &RuntimeBuilder::new(&FloodSet, &config).model(PlanModel::Rs),
        0..12,
        ValidityMode::Strong,
    );
    assert_eq!(report.runs, 12);
    assert!(report.is_conformant(), "{:?}", report.divergences);
    assert!(
        report.spec_violations.is_empty(),
        "FloodSet is safe in RS: {:?}",
        report.spec_violations
    );
}

#[test]
fn floodset_ws_rws_seed_sweep_is_conformant_and_safe() {
    let config = InitialConfig::new(vec![7u64, 3, 5]);
    let report = fuzz_runtime(
        &RuntimeBuilder::new(&FloodSetWs, &config).model(PlanModel::Rws),
        0..12,
        ValidityMode::Uniform,
    );
    assert!(report.is_conformant(), "{:?}", report.divergences);
    assert!(
        report.spec_violations.is_empty(),
        "FloodSetWs tolerates pending messages: {:?}",
        report.spec_violations
    );
}

#[test]
fn section_5_3_trace_passes_every_validator_individually() {
    let config = InitialConfig::new(vec![10u64, 11, 12]);
    let plan = FaultPlan::section_5_3();
    let result = RuntimeBuilder::new(&A1, &config).plan(plan).run().unwrap();

    // The canonical record is admissible in RWS...
    result.trace.validate().expect("admissible RWS trace");
    // ...its step-level run log satisfies the §2 validators...
    let steps = Trace::from_run_log(&result.trace.step_log().expect("schedulable"));
    validate_basic(&steps).expect("well-formed step trace");
    validate_perfect_fd(&steps).expect("strong accuracy holds");
    // ...and the full certification (replay + outcome comparison)
    // confirms the uniform-agreement violation is real.
    let run = check_threaded_run(&A1, &config, 1, &result, ValidityMode::Uniform)
        .expect("the anomaly is a conforming run, not a runtime bug");
    let violation = run.violation.expect("§5.3: uniform agreement breaks");
    assert!(violation.contains("agree"), "{violation}");
    assert_eq!(run.pending, 2, "both round-1 broadcasts stay pending");
}

#[test]
fn replayed_traces_are_deterministic_across_repeated_runs() {
    let config = InitialConfig::new(vec![10u64, 11, 12]);
    let plan = FaultPlan::section_5_3();
    let run = || {
        RuntimeBuilder::new(&A1, &config)
            .plan(plan.clone())
            .run()
            .unwrap()
    };
    let first = run();
    let second = run();
    // The canonical run logs — and hence every view derived from them —
    // are byte-identical run after run.
    assert_eq!(
        first.trace.run_log().to_jsonl(),
        second.trace.run_log().to_jsonl(),
        "a fixed plan yields one run log, run after run"
    );
    assert_eq!(
        first.trace.round_trace(),
        second.trace.round_trace(),
        "the round-matrix view inherits that determinism"
    );
    assert_eq!(first.trace.crashes, second.trace.crashes);
}

#[test]
fn shrinking_the_section_5_3_plan_keeps_it_minimal() {
    let config = InitialConfig::new(vec![10u64, 11, 12]);
    let plan = FaultPlan::section_5_3();
    let violates = |cand: &FaultPlan| {
        let result = RuntimeBuilder::new(&A1, &config)
            .plan(cand.clone())
            .run()
            .unwrap();
        check_threaded_run(&A1, &config, 1, &result, ValidityMode::Uniform)
            .map(|run| run.violation.is_some())
            .unwrap_or(false)
    };
    assert!(violates(&plan), "the full plan violates");
    let minimal = shrink_plan(&plan, violates);
    // Every fault is load-bearing: the crash plus both slow links. A
    // single delivered broadcast would let the relay save agreement.
    assert_eq!(minimal.slow.len(), 2, "both slow links required");
    assert!(minimal.crashes[0].is_some(), "the crash is required");
    assert!(violates(&minimal));
}
