//! E10 — atomic commit, exhaustively and statistically.
//!
//! Exhaustive sweeps verify that the vote-flooding protocols satisfy
//! the non-blocking atomic commit specification in their respective
//! models; the randomized experiment confirms the §3 efficiency claim:
//! the synchronous side reaches Commit in a strict superset of the
//! scenarios.

use ssp::commit::{
    check_nbac, commit_rate_experiment, votes_all_survive, CommitWorkload, NonTriviality,
    VoteFlood, VoteFloodWs,
};
use ssp::lab::{explore_rs, explore_rws};
use ssp::model::InitialConfig;
use ssp::rounds::{run_rs, PendingChoice, RoundAlgorithm};

/// VoteFlood in RS satisfies NBAC with the SDD-boosted non-triviality,
/// over every binary vote vector and crash schedule (n=3, t ∈ {1,2}).
#[test]
fn vote_flood_rs_exhaustive() {
    for t in [1usize, 2] {
        let horizon = RoundAlgorithm::<bool>::round_horizon(&VoteFlood, 3, t);
        let mut runs = 0u64;
        explore_rs(&VoteFlood, 3, t, &[false, true], |run| {
            runs += 1;
            let survived = votes_all_survive(3, horizon, run.schedule, &PendingChoice::none());
            check_nbac(&run.outcome, NonTriviality::SddBoosted, survived).unwrap_or_else(|e| {
                panic!("t={t}: {e}\nschedule {}\n{}", run.schedule, run.outcome)
            });
        });
        assert!(runs >= 584);
    }
}

/// VoteFloodWS in RWS satisfies NBAC with classic non-triviality over
/// every pending choice.
#[test]
fn vote_flood_ws_rws_exhaustive() {
    for t in [1usize, 2] {
        let mut runs = 0u64;
        explore_rws(&VoteFloodWs, 3, t, &[false, true], |run| {
            runs += 1;
            check_nbac(&run.outcome, NonTriviality::Classic, false).unwrap_or_else(|e| {
                panic!("t={t}: {e}\nschedule {}\n{}", run.schedule, run.outcome)
            });
        });
        assert!(runs >= 2_936);
    }
}

/// The plain RWS protocol (no halt) would violate uniform commit
/// agreement — the halt set is load-bearing here exactly as in
/// FloodSetWS.
#[test]
fn vote_flood_without_halt_breaks_in_rws() {
    let mut violation = None;
    explore_rws(&VoteFlood, 3, 2, &[false, true], |run| {
        if violation.is_none() {
            if let Err(e) = check_nbac(&run.outcome, NonTriviality::Classic, false) {
                violation = Some(e);
            }
        }
    });
    assert!(
        matches!(
            violation,
            Some(ssp::commit::NbacViolation::Agreement { .. })
        ),
        "expected an agreement violation, got {violation:?}"
    );
}

/// RS commits strictly more often than RWS on identical adversarial
/// scenarios, and the gap is exactly the pending-vote runs.
#[test]
fn commit_rate_gap_exists_and_is_consistent() {
    let workload = CommitWorkload::all_yes(4, 2, 0.6);
    let report = commit_rate_experiment(&workload, 1_500, 99);
    assert_eq!(report.trials, 1_500);
    assert!(report.rs_commits >= report.rws_commits);
    assert!(report.gap_runs > 0, "{report:?}");
    assert_eq!(report.gap_runs, report.rs_commits - report.rws_commits);
    assert!(report.rs_rate() > 0.8, "{report:?}");
}

/// §3's boosted guarantee, pointwise: all-Yes votes plus a mid-round-1
/// crash that reaches at least one process still commits in RS.
#[test]
fn sdd_boost_commits_despite_crash() {
    use ssp::model::{ProcessId, ProcessSet, Round};
    use ssp::rounds::{CrashSchedule, RoundCrash};
    let config = InitialConfig::new(vec![true; 5]);
    let mut schedule = CrashSchedule::none(5);
    schedule.crash(
        ProcessId::new(2),
        RoundCrash {
            round: Round::FIRST,
            sends_to: ProcessSet::singleton(ProcessId::new(4)),
        },
    );
    let out = run_rs(&VoteFlood, &config, 2, &schedule);
    for (_, o) in out.iter() {
        if o.is_correct() {
            assert!(o.decision.as_ref().unwrap().0, "must commit");
        }
    }
}
