//! E11 — the emulations of §4.1/§4.2.
//!
//! * `RS` on `SS`: running a round algorithm through the step-level
//!   `SS` executor (with the `K_r` budget schedule) must produce
//!   exactly the outcome of the direct `RS` executor under the derived
//!   crash schedule — for fair *and* random legal schedules, which
//!   stress-tests the budget recurrence.
//! * `RWS` on `SP`: the receive-until-heard-or-suspected emulation
//!   satisfies the weak round synchrony property (Lemma 4.1), checked
//!   on traces.

use ssp::algos::{FloodSet, FloodSetWs, A1};
use ssp::model::{ConsensusOutcome, InitialConfig, ProcessId, ProcessOutcome, ProcessSet, Round};
use ssp::model::{RunEvent, RunLogObserver};
use ssp::rounds::{
    cumulative_round_budget, round_of_step, run_rs, CrashSchedule, EmuMsg, RoundAlgorithm,
    RoundCrash, RsOnSs, RwsOnSp,
};
use ssp::sim::{
    run, run_observed, BoxedAutomaton, DetectionDelays, FairAdversary, ModelKind, RandomAdversary,
};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Derives the RS crash schedule equivalent to "crash after `k`
/// own-steps" in the RS-on-SS emulation.
fn derived_schedule(
    phi: u64,
    delta: u64,
    n: usize,
    horizon: u32,
    crash_after: &[Option<u64>],
) -> CrashSchedule {
    let mut schedule = CrashSchedule::none(n);
    for (i, quota) in crash_after.iter().enumerate() {
        let Some(k) = quota else { continue };
        let r = round_of_step(phi, delta, n, horizon, *k);
        if r > horizon {
            // Finished every round before crashing: the "decide then
            // crash" shape, round horizon+1.
            schedule.crash(
                p(i),
                RoundCrash {
                    round: Round::new(horizon + 1),
                    sends_to: ProcessSet::empty(),
                },
            );
            continue;
        }
        let base = cumulative_round_budget(phi, delta, n, r - 1);
        let sends_done = (k - base).min(n as u64) as usize;
        let sends_to: ProcessSet = (0..sends_done).map(p).collect();
        schedule.crash(
            p(i),
            RoundCrash {
                round: Round::new(r),
                sends_to,
            },
        );
    }
    schedule
}

fn run_emulation<A>(
    algo: &A,
    config: &InitialConfig<u64>,
    t: usize,
    phi: u64,
    delta: u64,
    crash_after: &[Option<u64>],
    seed: Option<u64>,
) -> ConsensusOutcome<u64>
where
    A: RoundAlgorithm<u64>,
    A::Process: 'static,
    <A::Process as ssp::rounds::RoundProcess>::Msg: 'static,
{
    let n = config.n();
    let horizon = algo.round_horizon(n, t);
    let budget = cumulative_round_budget(phi, delta, n, horizon);
    let automata: Vec<BoxedAutomaton<EmuMsg<_>, (u64, Round)>> = (0..n)
        .map(|i| {
            Box::new(RsOnSs::new(
                algo.spawn(p(i), n, t, *config.input(p(i))),
                p(i),
                n,
                horizon,
                phi,
                delta,
            )) as _
        })
        .collect();
    let events = budget * (n as u64) * 4 + 100;
    let result = match seed {
        None => {
            let mut adv = FairAdversary::new(n, events);
            for (i, q) in crash_after.iter().enumerate() {
                if let Some(q) = q {
                    adv = adv.with_crash(p(i), *q);
                }
            }
            run(ModelKind::ss(phi, delta), automata, &mut adv, events + 10)
        }
        Some(seed) => {
            let mut adv = RandomAdversary::new(n, events, seed);
            for (i, q) in crash_after.iter().enumerate() {
                if let Some(q) = q {
                    adv = adv.with_crash(p(i), *q);
                }
            }
            run(ModelKind::ss(phi, delta), automata, &mut adv, events + 10)
        }
    }
    .expect("legal SS run");

    let schedule = derived_schedule(phi, delta, n, horizon, crash_after);
    let outcomes = (0..n)
        .map(|i| ProcessOutcome {
            input: *config.input(p(i)),
            decision: result.outputs[i],
            crashed_in: schedule.crash_of(p(i)).map(|c| c.round),
        })
        .collect();
    ConsensusOutcome::new(outcomes)
}

/// The equivalence sweep: emulated outcome == direct RS outcome, for
/// every single-crash plan at every own-step cut point.
#[test]
fn rs_on_ss_matches_direct_rs_under_fair_schedules() {
    let (phi, delta) = (1u64, 1u64);
    let n = 3;
    let t = 1;
    let config = InitialConfig::new(vec![4u64, 1, 7]);
    let horizon = RoundAlgorithm::<u64>::round_horizon(&FloodSet, n, t);
    let budget = cumulative_round_budget(phi, delta, n, horizon);
    // Failure-free first.
    let emulated = run_emulation(&FloodSet, &config, t, phi, delta, &[None, None, None], None);
    let direct = run_rs(&FloodSet, &config, t, &CrashSchedule::none(n));
    assert_eq!(emulated, direct);
    // Every crash point of every process.
    for victim in 0..n {
        for k in 0..=budget + 1 {
            let mut crash_after = vec![None, None, None];
            crash_after[victim] = Some(k);
            let emulated = run_emulation(&FloodSet, &config, t, phi, delta, &crash_after, None);
            let schedule = derived_schedule(phi, delta, n, horizon, &crash_after);
            let direct = run_rs(&FloodSet, &config, t, &schedule);
            assert_eq!(emulated, direct, "victim p{} at own-step {k}", victim + 1);
        }
    }
}

/// The same equivalence must hold under *random* legal SS schedules —
/// the budget `K_r` is schedule-independent.
#[test]
fn rs_on_ss_matches_direct_rs_under_random_schedules() {
    let (phi, delta) = (2u64, 2u64);
    let n = 3;
    let t = 1;
    let config = InitialConfig::new(vec![9u64, 3, 5]);
    let horizon = RoundAlgorithm::<u64>::round_horizon(&A1, n, t);
    let budget = cumulative_round_budget(phi, delta, n, horizon);
    for seed in 0..12u64 {
        let k = (seed * 7 + 1) % (budget + 2);
        let crash_after = [Some(k), None, None];
        let emulated = run_emulation(&A1, &config, t, phi, delta, &crash_after, Some(seed));
        let schedule = derived_schedule(phi, delta, n, horizon, &crash_after);
        let direct = run_rs(&A1, &config, t, &schedule);
        assert_eq!(emulated, direct, "seed {seed}, crash at step {k}");
    }
}

/// Lemma 4.1 on actual RWS-on-SP traces: whenever a sender's round-`r`
/// message to some process is never delivered before that process
/// moves past round `r`, the sender crashes by the end of round `r+1`
/// (observable as: it is faulty and emits no round-(r+2) traffic).
#[test]
fn rws_on_sp_satisfies_weak_round_synchrony() {
    let n = 3;
    let t = 1;
    let config = InitialConfig::new(vec![4u64, 1, 7]);
    let horizon = RoundAlgorithm::<u64>::round_horizon(&FloodSetWs, n, t);
    for seed in 0..20u64 {
        let victim = (seed % n as u64) as usize;
        let crash_step = seed % 9;
        let automata: Vec<BoxedAutomaton<EmuMsg<_>, (u64, Round)>> = (0..n)
            .map(|i| {
                Box::new(RwsOnSp::new(
                    RoundAlgorithm::<u64>::spawn(&FloodSetWs, p(i), n, t, *config.input(p(i))),
                    p(i),
                    n,
                    horizon,
                )) as _
            })
            .collect();
        let mut adv = FairAdversary::new(n, 5_000).with_crash(p(victim), crash_step);
        let delays = DetectionDelays::uniform(n, 1 + seed % 5);
        // The canonical observer pipeline replaces the old step-trace
        // scan: the run log carries every send and delivery directly.
        let mut obs = RunLogObserver::new(n);
        let result = run_observed(ModelKind::sp(delays), automata, &mut adv, 10_000, &mut obs)
            .expect("legal run");
        let log = obs.into_log();

        // Flatten the log: sends as (src, dst, round, sent_at), and
        // deliveries as (src, dst, sent_at, received_at) — a step's
        // deliveries inherit the global-step stamp of its closing event.
        let mut sends: Vec<(ssp::model::ProcessId, ssp::model::ProcessId, u32, u64)> = Vec::new();
        let mut deliveries: Vec<(ssp::model::ProcessId, ssp::model::ProcessId, u64, u64)> =
            Vec::new();
        let mut batch: Vec<(ssp::model::ProcessId, ssp::model::ProcessId, u64)> = Vec::new();
        for ev in log.events() {
            match ev {
                RunEvent::Send {
                    src,
                    dst,
                    at: Some(at),
                    payload: Some(m),
                    ..
                } => sends.push((*src, *dst, m.round, at.position())),
                RunEvent::Deliver {
                    src,
                    dst,
                    sent_at: Some(at),
                    ..
                } => batch.push((*src, *dst, at.position())),
                RunEvent::Close {
                    stamp: Some(st), ..
                } => {
                    for (s, d, a) in batch.drain(..) {
                        deliveries.push((s, d, a, st.global_step.position()));
                    }
                }
                _ => {}
            }
        }
        // Reconstruct per-process round starts (first send of each round).
        let mut first_send_step: Vec<Vec<Option<u64>>> =
            vec![vec![None; (horizon + 3) as usize]; n];
        for &(src, _, r, at) in &sends {
            let slot = &mut first_send_step[src.index()][r as usize];
            if slot.is_none() {
                *slot = Some(at);
            }
        }
        // For each sent round-r message, find whether its receiver got
        // it before moving past round r (approximated by the receiver's
        // first round-(r+1) send).
        for &(src, dst, r, sent_at) in &sends {
            if r + 2 > horizon {
                continue; // rounds r+2 beyond horizon are unobservable
            }
            let delivered_at = deliveries
                .iter()
                .find(|&&(s, d, a, _)| s == src && d == dst && a == sent_at)
                .map(|&(_, _, _, at)| at);
            let closed_at = first_send_step[dst.index()][(r + 1) as usize];
            let missed = match (delivered_at, closed_at) {
                (None, Some(_)) => true,
                (Some(d), Some(c)) => d >= c,
                _ => false, // receiver never reached round r+1
            };
            if missed {
                // Lemma 4.1: the sender crashes by end of round r+1 —
                // it must be faulty and silent from round r+2 on.
                assert!(
                    !result.pattern.is_correct(src),
                    "seed {seed}: correct {src} had a pending round-{r} message",
                );
                assert!(
                    first_send_step[src.index()][(r + 2) as usize].is_none(),
                    "seed {seed}: {src} sent round-{} traffic after a pending round-{r} message",
                    r + 2
                );
            }
        }
    }
}

/// The emulation cost table of §4.1: `K_r` grows geometrically in `r`
/// (factor `Φ+1`), linearly in `n` and `Δ`.
#[test]
fn emulation_budget_shape() {
    // Geometric in r.
    let k: Vec<u64> = (0..=5)
        .map(|r| cumulative_round_budget(1, 1, 3, r))
        .collect();
    for w in k.windows(3).skip(1) {
        let g1 = w[1] as f64 / w[0] as f64;
        let g2 = w[2] as f64 / w[1] as f64;
        assert!(g2 > 1.5 && g1 > 1.5, "geometric growth expected: {k:?}");
    }
    // Monotone in every parameter.
    assert!(cumulative_round_budget(2, 1, 3, 3) > cumulative_round_budget(1, 1, 3, 3));
    assert!(cumulative_round_budget(1, 4, 3, 3) > cumulative_round_budget(1, 1, 3, 3));
    assert!(cumulative_round_budget(1, 1, 5, 3) > cumulative_round_budget(1, 1, 3, 3));
}
