//! Property-based tests (proptest) over the core data structures and
//! the executable models: algebraic laws, spec preservation under
//! random adversaries, and determinism of replays.

use proptest::prelude::*;

use ssp::algos::{FloodSet, FloodSetWs};
use ssp::fd::{classify, PerfectOracle};
use ssp::model::{
    check_uniform_consensus_strong, FailurePattern, InitialConfig, ProcessId, ProcessSet, Round,
    Time,
};
use ssp::rounds::{run_rs, run_rws, validate_pending, CrashSchedule, PendingChoice, RoundCrash};

fn pid() -> impl Strategy<Value = ProcessId> {
    (0usize..8).prop_map(ProcessId::new)
}

fn pset() -> impl Strategy<Value = ProcessSet> {
    (0u64..256).prop_map(ProcessSet::from_bits)
}

proptest! {
    #[test]
    fn process_set_union_is_commutative_and_idempotent(a in pset(), b in pset()) {
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.union(a), a);
        prop_assert!(a.is_subset(a.union(b)));
        prop_assert_eq!(a.union(b).len() + a.intersection(b).len(), a.len() + b.len());
    }

    #[test]
    fn process_set_difference_laws(a in pset(), b in pset()) {
        let d = a.difference(b);
        prop_assert!(d.is_subset(a));
        prop_assert!(d.intersection(b).is_empty());
        prop_assert_eq!(d.union(a.intersection(b)), a);
    }

    #[test]
    fn process_set_iteration_roundtrip(a in pset()) {
        let rebuilt: ProcessSet = a.iter().collect();
        prop_assert_eq!(rebuilt, a);
        let idx: Vec<usize> = a.iter().map(ProcessId::index).collect();
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(idx, sorted);
    }

    #[test]
    fn failure_pattern_is_monotone(
        crashes in proptest::collection::vec((pid(), 0u64..50), 0..6),
        t1 in 0u64..60,
        dt in 0u64..60,
    ) {
        let mut f = FailurePattern::no_failures(8);
        for (p, at) in crashes {
            f.crash(p, Time::new(at));
        }
        let early = f.crashed_at(Time::new(t1));
        let late = f.crashed_at(Time::new(t1 + dt));
        prop_assert!(early.is_subset(late), "F(t) ⊆ F(t+dt)");
        prop_assert_eq!(f.faulty().union(f.correct()), ProcessSet::full(8));
        prop_assert!(f.faulty().intersection(f.correct()).is_empty());
    }

    #[test]
    fn perfect_oracle_histories_always_classify_as_p(
        crashes in proptest::collection::vec((0usize..4, 0u64..20), 0..4),
        delay_seed in 0u64..1_000,
    ) {
        let mut pattern = FailurePattern::no_failures(4);
        for (i, at) in crashes {
            pattern.crash(ProcessId::new(i), Time::new(at));
        }
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(delay_seed);
        let history = PerfectOracle::new(&pattern).random_delays(&mut rng, 40).build();
        let props = classify(&pattern, &history, Time::new(200));
        prop_assert!(props.is_perfect(), "{}", props);
    }
}

/// Strategy: a crash schedule for `n` processes with at most `t`
/// crashes inside `1..=max_round`.
fn crash_schedule(n: usize, t: usize, max_round: u32) -> impl Strategy<Value = CrashSchedule> {
    proptest::collection::vec(
        proptest::option::weighted(0.4, (1u32..=max_round, 0u64..(1 << n))),
        n,
    )
    .prop_map(move |slots| {
        let mut schedule = CrashSchedule::none(n);
        let mut budget = t;
        for (i, slot) in slots.into_iter().enumerate() {
            if budget == 0 {
                break;
            }
            if let Some((round, bits)) = slot {
                schedule.crash(
                    ProcessId::new(i),
                    RoundCrash {
                        round: Round::new(round),
                        sends_to: ProcessSet::from_bits(bits),
                    },
                );
                budget -= 1;
            }
        }
        schedule
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn floodset_rs_uniform_under_random_scenarios(
        inputs in proptest::collection::vec(0u64..5, 4),
        schedule in crash_schedule(4, 2, 4),
    ) {
        let config = InitialConfig::new(inputs);
        let out = run_rs(&FloodSet, &config, 2, &schedule);
        prop_assert!(check_uniform_consensus_strong(&out).is_ok(), "{}", out);
        if let Some(l) = out.latency_degree() {
            prop_assert!(l <= 3, "decides within t+1 rounds");
        }
    }

    #[test]
    fn floodset_ws_rws_uniform_under_random_pending(
        inputs in proptest::collection::vec(0u64..4, 3),
        schedule in crash_schedule(3, 2, 4),
        withhold_bits in 0u64..(1 << 12),
    ) {
        let config = InitialConfig::new(inputs);
        // Build a pending choice from the schedule's pendable triples.
        let mut pending = PendingChoice::none();
        let mut bit = 0;
        for sender in (0..3).map(ProcessId::new) {
            if let Some(crash) = schedule.crash_of(sender) {
                for r in 1..=3u32 {
                    let r = Round::new(r);
                    if crash.round > r.next() {
                        continue;
                    }
                    for receiver in (0..3).map(ProcessId::new) {
                        if receiver != sender && schedule.emits(sender, r, receiver) {
                            if withhold_bits & (1 << bit) != 0 {
                                pending.withhold(r, sender, receiver);
                            }
                            bit += 1;
                        }
                    }
                }
            }
        }
        prop_assert!(validate_pending(&schedule, &pending).is_ok());
        let out = run_rws(&FloodSetWs, &config, 2, &schedule, &pending).unwrap();
        prop_assert!(check_uniform_consensus_strong(&out).is_ok(), "{}", out);
    }

    #[test]
    fn rws_with_empty_pending_equals_rs(
        inputs in proptest::collection::vec(0u64..4, 3),
        schedule in crash_schedule(3, 1, 3),
    ) {
        let config = InitialConfig::new(inputs);
        let rs = run_rs(&FloodSetWs, &config, 1, &schedule);
        let rws = run_rws(&FloodSetWs, &config, 1, &schedule, &PendingChoice::none()).unwrap();
        prop_assert_eq!(rs, rws);
    }
}

mod sim_props {
    use super::*;
    use ssp::sim::{
        run, BoxedAutomaton, IdleAutomaton, ModelKind, RandomAdversary, ScriptedAdversary,
    };

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random legal runs replay to identical traces (determinism of
        /// the executor + adversary scripting).
        #[test]
        fn random_runs_replay_identically(seed in 0u64..5_000) {
            let automata = || -> Vec<BoxedAutomaton<u32, u32>> {
                (0..3).map(|_| Box::new(IdleAutomaton::new()) as _).collect()
            };
            let mut adv = RandomAdversary::new(3, 60, seed);
            let original = run(ModelKind::Async, automata(), &mut adv, 1_000).unwrap();
            let mut replay = ScriptedAdversary::replay(
                original.trace.schedule(),
                original.trace.delivery_script(),
            );
            let replayed = run(ModelKind::Async, automata(), &mut replay, 1_000).unwrap();
            prop_assert_eq!(replayed.trace.events(), original.trace.events());
        }

        /// The SS executor never emits a trace the independent SS
        /// validator rejects.
        #[test]
        fn ss_executor_agrees_with_validator(seed in 0u64..2_000, phi in 1u64..4, delta in 1u64..4) {
            let automata: Vec<BoxedAutomaton<u32, u32>> =
                (0..3).map(|_| Box::new(IdleAutomaton::new()) as _).collect();
            let mut adv = RandomAdversary::new(3, 80, seed);
            let result = run(ModelKind::ss(phi, delta), automata, &mut adv, 1_000).unwrap();
            prop_assert!(ssp::sim::validate_ss(&result.trace, phi, delta).is_ok());
        }
    }
}
