//! E22 — exhaustive schedule exploration (`ssp explore`):
//!
//! * the explorer rediscovers the §5.3 uniform-agreement violation on
//!   `A1` from first principles — no seed hint — and its shrunk
//!   witness replays to the exact golden log the seed-519 fuzz run
//!   pinned;
//! * DPOR-style pruning is *complete*: on small instances the pruned
//!   walk produces exactly the distinct run logs of the unpruned
//!   brute-force schedule space, one execution per class;
//! * the symmetry quotient preserves weighted class counts while
//!   executing fewer representatives;
//! * out-of-range instances and the real-clock backend are typed
//!   errors.

use std::collections::BTreeSet;

use proptest::prelude::*;

use ssp::algos::{FloodSet, FloodSetWs, A1};
use ssp::explore::{ExploreError, Explorer};
use ssp::lab::{crash_schedules, pending_choices};
use ssp::model::{InitialConfig, Round};
use ssp::rounds::{PendingChoice, RoundAlgorithm, RoundProcess};
use ssp::runtime::{Backend, FaultPlan, PlanModel, RuntimeBuilder};

mod common;
use common::{golden_check, p, section_5_3_config};

/// Runs every `(crash schedule, pending choice)` of the instance on
/// the threaded runtime — no pruning, no equivalence reasoning — and
/// collects the distinct canonical logs, plus the total run count.
fn brute_force_logs<A>(
    algo: &A,
    config: &InitialConfig<u64>,
    t: usize,
    model: PlanModel,
) -> (BTreeSet<String>, u64)
where
    A: RoundAlgorithm<u64>,
    A::Process: Send + 'static,
    <A::Process as RoundProcess>::Msg: Send + 'static,
{
    let n = config.n();
    let horizon = algo.round_horizon(n, t);
    let mut logs = BTreeSet::new();
    let mut runs = 0;
    for schedule in crash_schedules(n, t, horizon + 1) {
        let pendings = match model {
            PlanModel::Rs => vec![PendingChoice::none()],
            PlanModel::Rws => pending_choices(&schedule, horizon),
        };
        for pending in pendings {
            let plan = FaultPlan::from_adversary(&schedule, &pending, t, horizon, model);
            let result = RuntimeBuilder::new(algo, config)
                .t(t)
                .model(model)
                .plan(plan)
                .run()
                .unwrap();
            logs.insert(result.trace.run_log().to_jsonl());
            runs += 1;
        }
    }
    (logs, runs)
}

#[test]
fn explorer_rediscovers_the_section_5_3_violation_without_the_seed() {
    let config = section_5_3_config();
    let explore = || {
        Explorer::new(&A1, &config)
            .t(1)
            .model(PlanModel::Rws)
            .run()
            .unwrap()
    };
    let report = explore();
    assert!(report.violations > 0, "{report}");
    assert!(report.divergences.is_empty(), "{:?}", report.divergences);
    assert_eq!(report.duplicates, 0, "{report}");

    let witness = report.witness.as_ref().expect("a violating class exists");
    // The shrunk witness is the §5.3 adversary: p1 crashes during
    // round 2 and both of its round-1 broadcasts stay pending. (Its
    // round-2 wires are null under A1 — only the relay speaks in
    // round 2 — so the delivered and omitted variants are one class.)
    assert_eq!(witness.record.crashes.len(), 1, "{}", witness.record);
    let crash = &witness.record.crashes[0];
    assert_eq!(crash.process, p(0));
    assert_eq!(crash.round, Round::new(2));
    assert_eq!(
        witness.record.withheld,
        vec![(Round::FIRST, p(0), p(1)), (Round::FIRST, p(0), p(2))],
        "{}",
        witness.record
    );
    assert!(witness.violation.contains("agree"), "{}", witness.violation);
    // The §5.3 shape was already minimal: shrinking removed nothing.
    assert_eq!(witness.record, witness.original);

    // The witness replays to the exact bytes the seed-519 fuzz run
    // pinned: the explorer found the same execution the 4096-seed
    // sweep stumbled on, without the seed.
    golden_check("seed519_a1_rws.jsonl", &witness.log_jsonl);

    // Deterministic: a second exploration reproduces counts, witness,
    // and logs byte for byte.
    let again = explore();
    assert_eq!(report.classes, again.classes);
    assert_eq!(report.violations, again.violations);
    assert_eq!(report.logs, again.logs);
    let w2 = again.witness.expect("same witness");
    assert_eq!(witness.record.to_json(), w2.record.to_json());
    assert_eq!(witness.violation, w2.violation);
    assert_eq!(witness.log_jsonl, w2.log_jsonl);
}

#[test]
fn exploration_counts_match_brute_force_on_the_reference_instance() {
    // The acceptance instance: FloodSet over three distinct inputs,
    // t = 1. The explorer's class count must equal the number of
    // distinct logs of the full brute-force space, in both models.
    let config = InitialConfig::new(vec![0u64, 1, 2]);
    for model in [PlanModel::Rs, PlanModel::Rws] {
        let report = Explorer::new(&FloodSet, &config)
            .t(1)
            .model(model)
            .run()
            .unwrap();
        let (brute, runs) = brute_force_logs(&FloodSet, &config, 1, model);
        assert_eq!(
            report.classes,
            brute.len() as u64,
            "{model}: {report}; brute force took {runs} runs"
        );
        assert_eq!(report.logs, brute, "{model}: same class representatives");
        assert_eq!(
            report.executed, report.classes,
            "{model}: one run per class"
        );
        assert_eq!(report.duplicates, 0, "{model}: {report}");
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
        assert!(
            report.classes < runs,
            "{model}: pruning must beat brute force ({report} vs {runs} runs)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Completeness on n=3, t=1 across input assignments: the pruned
    /// exploration visits exactly one representative per equivalence
    /// class — the distinct-log sets of the pruned and unpruned walks
    /// coincide, with zero duplicate executions.
    #[test]
    fn dpor_exploration_is_complete(inputs in proptest::collection::vec(0u64..3, 3)) {
        let config = InitialConfig::new(inputs);
        for (model, algo) in [(PlanModel::Rs, &FloodSet as &FloodSet), (PlanModel::Rws, &FloodSet)] {
            let report = Explorer::new(algo, &config).t(1).model(model).run().unwrap();
            let (brute, _) = brute_force_logs(algo, &config, 1, model);
            prop_assert_eq!(&report.logs, &brute);
            prop_assert_eq!(report.classes, brute.len() as u64);
            prop_assert_eq!(report.duplicates, 0);
        }
    }
}

#[test]
fn symmetry_quotient_preserves_weighted_counts() {
    // Two equal inputs: the stabilizer swaps p1 and p2, halving (most
    // of) the orbit representatives while the weighted class count —
    // and the violation count — must not move.
    let config = InitialConfig::new(vec![5u64, 5, 7]);
    let full = Explorer::new(&FloodSetWs, &config)
        .t(1)
        .model(PlanModel::Rws)
        .run()
        .unwrap();
    let quotient = Explorer::new(&FloodSetWs, &config)
        .t(1)
        .model(PlanModel::Rws)
        .run_quotient()
        .unwrap();
    assert_eq!(quotient.classes, full.classes, "{quotient} vs {full}");
    assert_eq!(quotient.violations, full.violations);
    assert!(
        quotient.executed < full.executed,
        "the quotient must actually skip orbits: {quotient} vs {full}"
    );
    assert_eq!(quotient.duplicates, 0);
    assert!(
        quotient.logs.is_subset(&full.logs),
        "representatives are a subset of the full class set"
    );
    // Distinct inputs leave only the identity: the quotient degrades
    // to the full exploration.
    let distinct = InitialConfig::new(vec![5u64, 6, 7]);
    let a = Explorer::new(&FloodSetWs, &distinct)
        .t(1)
        .model(PlanModel::Rws)
        .run()
        .unwrap();
    let b = Explorer::new(&FloodSetWs, &distinct)
        .t(1)
        .model(PlanModel::Rws)
        .run_quotient()
        .unwrap();
    assert_eq!(a.executed, b.executed);
    assert_eq!(a.logs, b.logs);
}

#[test]
fn out_of_range_instances_and_real_clock_are_typed_errors() {
    let big = InitialConfig::new(vec![0u64; 6]);
    let err = Explorer::new(&FloodSet, &big).t(1).run().unwrap_err();
    assert!(matches!(err, ExploreError::Bounds { n: 6, t: 1 }), "{err}");

    let config = InitialConfig::new(vec![0u64, 1, 2]);
    let err = Explorer::new(&FloodSet, &config).t(3).run().unwrap_err();
    assert!(matches!(err, ExploreError::Bounds { n: 3, t: 3 }), "{err}");
    assert!(err.to_string().contains("t < n"), "{err}");

    let err = Explorer::new(&FloodSet, &config)
        .t(1)
        .backend(Backend::Real)
        .run()
        .unwrap_err();
    assert!(matches!(err, ExploreError::RealClock), "{err}");
    assert!(err.to_string().contains("virtual"), "{err}");
}

#[test]
fn class_limit_truncates_deterministically() {
    let config = InitialConfig::new(vec![0u64, 1, 2]);
    let full = Explorer::new(&FloodSet, &config)
        .t(1)
        .model(PlanModel::Rs)
        .run()
        .unwrap();
    let capped = Explorer::new(&FloodSet, &config)
        .t(1)
        .model(PlanModel::Rs)
        .limit(Some(5))
        .run()
        .unwrap();
    assert!(capped.truncated);
    assert_eq!(capped.executed, 5);
    assert!(!full.truncated);
    assert!(
        capped.logs.iter().all(|l| full.logs.contains(l)),
        "a truncated walk is a prefix of the full one"
    );
}
