//! The `Lat(A, f)` refinement (§5.2): maximal latency over runs with at
//! most `f` crashes, as a function of `f` — the measure whose minimum
//! over `f` is `Λ(A)`.
//!
//! Shapes pinned here:
//! * FloodSet is flat: `Lat(A, f) = t+1` for every `f`;
//! * EarlyDeciding matches the companion paper's bound:
//!   `Lat(A, f) = min(f+2, t+1)`;
//! * A1 (t = 1): `Lat(A, 0) = 1`, `Lat(A, 1) = 2`;
//! * F_OptFloodSet is *not monotone in luck*: its minimum-latency runs
//!   have the most crashes, yet `Lat(A, f)` (an at-most-f max) still
//!   grows with `f`.

use ssp::algos::{EarlyDeciding, FOptFloodSet, FloodSet, A1};
use ssp::lab::{explore_rs, LatencyAggregator};
use ssp::rounds::RoundAlgorithm;

fn aggregate<A: RoundAlgorithm<u64>>(algo: &A, n: usize, t: usize) -> LatencyAggregator<u64> {
    let mut agg = LatencyAggregator::new();
    explore_rs(algo, n, t, &[0u64, 1], |run| agg.add(run));
    agg
}

#[test]
fn floodset_lat_f_is_flat_at_t_plus_1() {
    let agg = aggregate(&FloodSet, 3, 2);
    for f in 0..=2 {
        assert_eq!(agg.lat_at_most_faults(f), Some(3), "Lat(FloodSet, {f})");
    }
}

#[test]
fn early_deciding_lat_f_matches_min_f_plus_2_t_plus_1() {
    let agg = aggregate(&EarlyDeciding, 3, 2);
    assert_eq!(agg.lat_at_most_faults(0), Some(2), "min(0+2, 3)");
    assert_eq!(agg.lat_at_most_faults(1), Some(3), "min(1+2, 3)");
    assert_eq!(agg.lat_at_most_faults(2), Some(3), "min(2+2, 3) = t+1");
    assert_eq!(agg.capital_lambda(), Some(2));
}

#[test]
fn a1_lat_f_shape() {
    let agg = aggregate(&A1, 3, 1);
    assert_eq!(agg.lat_at_most_faults(0), Some(1), "Λ(A1) = 1");
    assert_eq!(agg.lat_at_most_faults(1), Some(2));
}

#[test]
fn lat_f_is_monotone_in_f_for_every_algorithm() {
    // Lat(A, f) ≤ Lat(A, f+1) by definition (at-most-f quantification);
    // the aggregator must honor it even for F_Opt, whose *fastest* runs
    // are the most faulty ones.
    let agg = aggregate(&FOptFloodSet, 3, 1);
    assert!(agg.lat_at_most_faults(0) <= agg.lat_at_most_faults(1));
    assert_eq!(agg.lat_at_most_faults(0), Some(2));
    assert_eq!(agg.lat_at_most_faults(1), Some(2));
    // Λ(A) = min_f Lat(A, f) = Lat(A, 0), as derived in §5.2.
    assert_eq!(agg.capital_lambda(), agg.lat_at_most_faults(0));
}

#[test]
fn max_faults_seen_matches_the_bound() {
    let agg = aggregate(&FloodSet, 3, 2);
    assert_eq!(agg.max_faults_seen(), Some(2));
}
