//! E19 — chaos network layer, synchrony watchdog, and RS→RWS
//! degradation:
//!
//! * seed-deterministic loss/duplication/reordering is fully masked by
//!   the reliable-delivery layer: chaos sweeps produce zero
//!   conformance divergences, bit-identical across repeated runs;
//! * the §5.3 seed (519) still reproduces its uniform-agreement
//!   violation with the chaos layer active;
//! * a scripted Δ-violation inside "RS" is flagged as a
//!   `SynchronyViolation` with degradation off, certified as an
//!   admissible RWS run with `--degrade=rws`, and stopped with
//!   `--degrade=abort` — same seed, same bits, three verdicts;
//! * a stalled-but-live process is recorded as a *detector mistake*,
//!   not a crash.

use std::time::Duration;

use ssp::algos::{FloodSet, FloodSetWs, A1};
use ssp::lab::{check_threaded_run, fuzz_runtime, RunVerdict, ValidityMode};
use ssp::model::{InitialConfig, ProcessId, Round};
use ssp::runtime::{DegradeMode, FaultPlan, PlanModel, RuntimeBuilder, Stall, SynchronyEvent};

mod common;
use common::{section_5_3_config, CHAOS};

#[test]
fn chaos_sweeps_conform_in_both_models() {
    let config = InitialConfig::new(vec![4u64, 6, 2]);
    let rs = fuzz_runtime(
        &RuntimeBuilder::new(&FloodSet, &config)
            .model(PlanModel::Rs)
            .chaos(Some(CHAOS))
            .degrade(DegradeMode::Off),
        0..16,
        ValidityMode::Strong,
    );
    assert_eq!(rs.runs, 16);
    assert!(rs.is_conformant(), "RS divergences: {:?}", rs.divergences);
    assert!(
        rs.synchrony_flags.is_empty(),
        "reliable delivery keeps chaos inside Δ: {:?}",
        rs.synchrony_flags
    );
    assert!(rs.spec_violations.is_empty(), "{:?}", rs.spec_violations);

    let rws = fuzz_runtime(
        &RuntimeBuilder::new(&FloodSetWs, &config)
            .model(PlanModel::Rws)
            .chaos(Some(CHAOS)),
        0..16,
        ValidityMode::Uniform,
    );
    assert_eq!(rws.runs, 16);
    assert!(
        rws.is_conformant(),
        "RWS divergences: {:?}",
        rws.divergences
    );
    assert!(rws.spec_violations.is_empty(), "{:?}", rws.spec_violations);
}

#[test]
fn section_5_3_seed_reproduces_bit_identically_under_chaos() {
    let config = section_5_3_config();
    let run = || {
        let plan = FaultPlan::section_5_3().with_chaos(CHAOS);
        let result = RuntimeBuilder::new(&A1, &config).plan(plan).run().unwrap();
        let report = check_threaded_run(&A1, &config, 1, &result, ValidityMode::Uniform)
            .expect("the chaos-wrapped anomaly still conforms to RWS");
        (result, report)
    };
    let (a, ra) = run();
    let (b, rb) = run();
    assert_eq!(a.trace, b.trace, "same seed, same bits");
    assert_eq!(
        a.net, b.net,
        "same chaos decisions, same transport counters"
    );
    let va = ra.violation.expect("uniform agreement must still break");
    assert_eq!(Some(va.as_str()), rb.violation.as_deref());
    assert!(va.contains("agree"), "{va}");
    assert!(ra.pending >= 2, "both withheld broadcasts stay pending");
    assert_eq!(ra.verdict, RunVerdict::Rws);
    // The chaos plane actually fired and the reliable layer masked it.
    assert!(
        a.net.chaos_dropped > 0 || a.net.chaos_duplicated > 0,
        "chaos at 300‰ loss / 100‰ dup should touch at least one wire: {:?}",
        a.net
    );
}

#[test]
fn delta_violation_without_degradation_is_flagged_deterministically() {
    let config = section_5_3_config();
    let run = || {
        let plan = FaultPlan::delta_violation();
        let result = RuntimeBuilder::new(&A1, &config).plan(plan).run().unwrap();
        let report = check_threaded_run(&A1, &config, 1, &result, ValidityMode::Uniform)
            .expect("flagged runs are reported, not divergences");
        (result, report)
    };
    let (a, ra) = run();
    let (b, rb) = run();
    assert_eq!(a.trace, b.trace, "same seed, same bits");
    assert_eq!(ra.verdict, RunVerdict::SynchronyViolation);
    assert_eq!(rb.verdict, RunVerdict::SynchronyViolation);
    // The watchdog saw the over-Δ wires the moment they were scheduled,
    // and the stranded wires again at shutdown.
    assert!(a.synchrony.violated);
    assert_eq!(a.net.slow_scheduled, 2);
    assert_eq!(
        a.net.undelivered, 2,
        "slow wires drained cleanly at shutdown"
    );
    // The §5.3 shape, smuggled into "RS": p1 decided its own value and
    // died; the survivors decided another.
    let violation = ra.violation.expect("uniform agreement breaks");
    assert!(violation.contains("agree"), "{violation}");
    assert_eq!(
        a.outcome
            .outcome(ProcessId::new(0))
            .decision
            .as_ref()
            .map(|d| d.0),
        Some(10)
    );
    for q in [1, 2] {
        assert_eq!(
            a.outcome
                .outcome(ProcessId::new(q))
                .decision
                .as_ref()
                .map(|d| d.0),
            Some(11)
        );
    }
}

#[test]
fn delta_violation_with_rws_degradation_is_admissible_same_seed() {
    let config = section_5_3_config();
    let run = || {
        let plan = FaultPlan::delta_violation().with_degrade(DegradeMode::Rws);
        let result = RuntimeBuilder::new(&A1, &config).plan(plan).run().unwrap();
        let report = check_threaded_run(&A1, &config, 1, &result, ValidityMode::Uniform)
            .expect("degraded runs certify as RWS");
        (result, report)
    };
    let (a, ra) = run();
    let (b, _rb) = run();
    assert_eq!(a.trace, b.trace, "same seed, same bits");
    assert_eq!(
        ra.verdict,
        RunVerdict::DegradedRws { at: Round::new(1) },
        "downgraded at the first over-Δ wire"
    );
    assert_eq!(a.trace.degraded_at, Some(Round::new(1)));
    assert!(a.trace.validate().is_ok(), "admissible under RWS");
    // Degradation does not repair A1 — it re-classifies the run as the
    // RWS execution it really was, where the violation is the known
    // §5.3 behavior rather than a broken RS guarantee.
    assert!(ra.violation.is_some());
}

#[test]
fn delta_violation_with_abort_leaves_survivors_undecided() {
    let config = section_5_3_config();
    let plan = FaultPlan::delta_violation().with_degrade(DegradeMode::Abort);
    let result = RuntimeBuilder::new(&A1, &config).plan(plan).run().unwrap();
    assert!(result.synchrony.aborted);
    assert!(result.trace.aborted);
    let report = check_threaded_run(&A1, &config, 1, &result, ValidityMode::Uniform)
        .expect("aborted runs are reported, not divergences");
    assert_eq!(report.verdict, RunVerdict::Aborted);
    // The survivors bail before any suspicion could close a round;
    // nothing they produced is trusted, so no disagreement can escape.
    for q in [1, 2] {
        assert!(
            result.outcome.outcome(ProcessId::new(q)).decision.is_none(),
            "survivor p{} must stop undecided",
            q + 1
        );
    }
}

#[test]
fn stalled_process_is_a_detector_mistake_not_a_crash() {
    // p2 sleeps through its FD timeout at the start of round 1: live
    // but silent. The drain discipline still collects its late wires,
    // so the run completes correctly — but the watchdog must record
    // that the "perfect" detector suspected a live process.
    let config = InitialConfig::new(vec![4u64, 6, 2]);
    let plan = FaultPlan::from_seed(0, 3, 1, 2, PlanModel::Rs).with_stall(
        ProcessId::new(1),
        Stall {
            round: 1,
            duration: Duration::from_millis(150),
        },
    );
    let result = RuntimeBuilder::new(&FloodSet, &config)
        .plan(plan)
        .run()
        .unwrap();
    assert!(result.synchrony.violated, "the mistake trips the watchdog");
    let mistakes: Vec<_> = result
        .synchrony
        .events
        .iter()
        .filter(|e| matches!(e, SynchronyEvent::DetectorMistake { suspect, .. } if *suspect == ProcessId::new(1)))
        .collect();
    assert!(!mistakes.is_empty(), "{:?}", result.synchrony.events);
    // Not a crash: the stalled process finished every round and decided.
    assert!(result
        .outcome
        .outcome(ProcessId::new(1))
        .crashed_in
        .is_none());
    assert!(result.outcome.outcome(ProcessId::new(1)).decision.is_some());
    // The run itself is admissible (the drain saved round synchrony),
    // but it is flagged, never silently certified as RS.
    let report = check_threaded_run(&FloodSet, &config, 1, &result, ValidityMode::Strong)
        .expect("flagged, not divergent");
    assert_eq!(report.verdict, RunVerdict::SynchronyViolation);
    assert!(report.violation.is_none(), "decisions were still correct");
}
