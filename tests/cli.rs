//! End-to-end tests of the `ssp` CLI binary.

use std::process::Command;

fn ssp(args: &[&str]) -> (bool, String, String) {
    let exe = env!("CARGO_BIN_EXE_ssp");
    let out = Command::new(exe).args(args).output().expect("spawn ssp");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = ssp(&["help"]);
    assert!(ok);
    assert!(stdout.contains("usage: ssp"));
    assert!(stdout.contains("refute-sdd"));
}

#[test]
fn no_args_prints_usage() {
    let (ok, stdout, _) = ssp(&[]);
    assert!(ok);
    assert!(stdout.contains("usage: ssp"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (ok, _, stderr) = ssp(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn verify_reports_ok_for_a1_in_rs() {
    let (ok, stdout, _) = ssp(&["verify", "a1", "rs", "-n", "3", "-t", "1"]);
    assert!(ok);
    assert!(stdout.contains("OK over"), "{stdout}");
}

#[test]
fn verify_reports_violation_for_a1_in_rws() {
    let (ok, stdout, _) = ssp(&["verify", "a1", "rws", "-n", "3", "-t", "1"]);
    assert!(ok, "a violation is a finding, not a CLI failure");
    assert!(stdout.contains("VIOLATION"), "{stdout}");
    assert!(stdout.contains("uniform agreement"), "{stdout}");
}

#[test]
fn latency_emits_the_table() {
    let (ok, stdout, _) = ssp(&["latency", "-n", "3", "-t", "1"]);
    assert!(ok);
    for name in ["FloodSet", "C_OptFloodSet", "F_OptFloodSet", "A1"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn refute_sdd_tells_the_story() {
    let (ok, stdout, _) = ssp(&["refute-sdd"]);
    assert!(ok);
    assert!(stdout.contains("Validity violated"), "{stdout}");
}

#[test]
fn emulation_budget_table() {
    let (ok, stdout, _) = ssp(&[
        "emulation",
        "-n",
        "3",
        "--phi",
        "1",
        "--delta",
        "1",
        "-r",
        "3",
    ]);
    assert!(ok);
    assert!(stdout.contains("56"), "K_3 = 56 expected in:\n{stdout}");
}

#[test]
fn heartbeat_classifies_as_perfect() {
    let (ok, stdout, _) = ssp(&["heartbeat", "-n", "3"]);
    assert!(ok);
    assert!(stdout.contains("P=true"), "{stdout}");
}

#[test]
fn commit_reports_rates() {
    let (ok, stdout, _) = ssp(&["commit", "--trials", "200"]);
    assert!(ok);
    assert!(stdout.contains("RS  (SS side):"), "{stdout}");
    assert!(stdout.contains("gap runs"), "{stdout}");
}

#[test]
fn runtime_fuzz_sweeps_and_reports_conformance() {
    let (ok, stdout, _) = ssp(&["runtime-fuzz", "floodset", "rs", "--seed-range", "0..4"]);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("4 seeded runs on the virtual clock"),
        "{stdout}"
    );
    assert!(stdout.contains("spec violations: none"), "{stdout}");
    assert!(
        stdout.contains("replayed tick-for-tick"),
        "conformance line expected in:\n{stdout}"
    );
}

#[test]
fn runtime_fuzz_reproduces_the_section_5_3_violation_from_its_seed() {
    let (ok, stdout, _) = ssp(&["runtime-fuzz", "a1", "rws", "--seed-range", "519..520"]);
    assert!(ok, "a spec violation is a finding, not a CLI failure");
    assert!(stdout.contains("spec violations: 1"), "{stdout}");
    assert!(stdout.contains("seed 519"), "{stdout}");
    assert!(stdout.contains("uniform agreement violated"), "{stdout}");
    assert!(
        stdout.contains("checker sweeping the same space agrees: true"),
        "{stdout}"
    );
}

#[test]
fn runtime_fuzz_backend_flag_selects_the_clock() {
    let (ok, stdout, stderr) = ssp(&[
        "runtime-fuzz",
        "floodset",
        "rs",
        "--seed-range",
        "0..2",
        "--backend",
        "real",
    ]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.contains("2 seeded runs on the real clock"),
        "{stdout}"
    );
}

#[test]
fn unknown_backend_is_rejected_with_the_expected_names() {
    let (ok, _, stderr) = ssp(&[
        "runtime-fuzz",
        "floodset",
        "rs",
        "--seed-range",
        "0..1",
        "--backend",
        "wall",
    ]);
    assert!(!ok);
    assert!(stderr.contains("expected virtual|real"), "{stderr}");
}

#[test]
fn trace_dump_is_backend_invariant() {
    let dir = std::env::temp_dir();
    let v = dir.join("ssp-cli-backend-v.jsonl");
    let r = dir.join("ssp-cli-backend-r.jsonl");
    let (v_s, r_s) = (v.to_str().unwrap(), r.to_str().unwrap());
    let (ok, _, stderr) = ssp(&[
        "trace-dump",
        "a1",
        "rws",
        "--seed",
        "519",
        "--backend",
        "virtual",
        "--out",
        v_s,
    ]);
    assert!(ok, "{stderr}");
    let (ok, _, stderr) = ssp(&[
        "trace-dump",
        "a1",
        "rws",
        "--seed",
        "519",
        "--backend",
        "real",
        "--out",
        r_s,
    ]);
    assert!(ok, "{stderr}");
    assert_eq!(
        std::fs::read_to_string(&v).unwrap(),
        std::fs::read_to_string(&r).unwrap(),
        "the §5.3 run log is byte-identical across clock backends"
    );
    for p in [v, r] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn runtime_fuzz_rejects_a_malformed_seed_range() {
    let (ok, _, stderr) = ssp(&["runtime-fuzz", "--seed-range", "9..3"]);
    assert!(!ok);
    assert!(stderr.contains("seed-range"), "{stderr}");
}

#[test]
fn bad_flag_value_fails() {
    let (ok, _, stderr) = ssp(&["latency", "-n", "lots"]);
    assert!(!ok);
    assert!(stderr.contains("bad number"));
}

#[test]
fn runtime_fuzz_chaos_sweep_stays_conformant() {
    let (ok, stdout, stderr) = ssp(&[
        "runtime-fuzz",
        "floodset",
        "rs",
        "--chaos",
        "--loss",
        "0.3",
        "--dup",
        "0.1",
        "--seed-range",
        "0..8",
        "--validity",
        "strong",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("chaos: loss 300‰, dup 100‰"), "{stdout}");
    assert!(stdout.contains("spec violations: none"), "{stdout}");
    assert!(
        stdout.contains("every trace admissible and replayed tick-for-tick"),
        "{stdout}"
    );
}

#[test]
fn delta_violation_flags_then_degrades_from_the_cli() {
    // Degradation off: the Δ break smuggles §5.3 into "RS" and the
    // watchdog flags it.
    let (ok, stdout, stderr) = ssp(&["runtime-fuzz", "--delta-violation"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("verdict: SynchronyViolation"), "{stdout}");
    assert!(stdout.contains("uniform agreement"), "{stdout}");

    // Same seed with --degrade=rws: certified as an admissible RWS run.
    let (ok, stdout, stderr) = ssp(&["runtime-fuzz", "--delta-violation", "--degrade=rws"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("degraded at"), "{stdout}");
    assert!(stdout.contains("admissible RWS run"), "{stdout}");
}

#[test]
fn chaos_rate_out_of_range_fails() {
    let (ok, _, stderr) = ssp(&["runtime-fuzz", "--chaos", "--loss", "1.5"]);
    assert!(!ok);
    assert!(stderr.contains("loss"), "{stderr}");
}

#[test]
fn shard_count_zero_is_rejected() {
    let (ok, _, stderr) = ssp(&["serve", "a1", "rs", "--shards", "0"]);
    assert!(!ok);
    assert!(
        stderr.contains("shard count must be at least 1"),
        "{stderr}"
    );
}

#[test]
fn cross_shard_rate_without_shards_is_rejected() {
    // An explicit rate on the default single-group service is a typed
    // configuration error, even when the rate itself is in range.
    let (ok, _, stderr) = ssp(&["serve", "a1", "rs", "--cross-shard-rate", "0.2"]);
    assert!(!ok);
    assert!(stderr.contains("--shards ≥ 2"), "{stderr}");

    let (ok, _, stderr) = ssp(&[
        "serve",
        "a1",
        "rs",
        "--shards",
        "1",
        "--cross-shard-rate",
        "0.3",
    ]);
    assert!(!ok);
    assert!(stderr.contains("single-group service"), "{stderr}");
}

#[test]
fn cross_shard_rate_out_of_range_is_rejected() {
    let (ok, _, stderr) = ssp(&[
        "serve",
        "a1",
        "rs",
        "--shards",
        "4",
        "--cross-shard-rate",
        "1.5",
    ]);
    assert!(!ok);
    assert!(stderr.contains("not a probability"), "{stderr}");
}

#[test]
fn sharded_serve_reports_groups_and_cross_shard_commits() {
    let (ok, stdout, stderr) = ssp(&[
        "serve",
        "a1",
        "rs",
        "--shards",
        "2",
        "--cross-shard-rate",
        "0.5",
        "--clients",
        "4",
        "--instances",
        "6",
        "--seed",
        "42",
        "--failure-free",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("shard groups"), "{stdout}");
    assert!(stdout.contains("cross-shard:"), "{stdout}");
    assert!(stdout.contains("0 NBAC violations"), "{stdout}");
}

#[test]
fn load_rejects_open_and_closed_loop_together() {
    let (ok, _, stderr) = ssp(&[
        "load",
        "--targets",
        "127.0.0.1:1",
        "--rate",
        "50",
        "--concurrency",
        "2",
    ]);
    assert!(!ok);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");
}

#[test]
fn load_rejects_a_non_numeric_rate() {
    let (ok, _, stderr) = ssp(&["load", "--targets", "127.0.0.1:1", "--rate", "abc"]);
    assert!(!ok);
    assert!(stderr.contains("rate"), "{stderr}");
}

#[test]
fn load_rejects_a_non_positive_rate() {
    for bad in ["0", "-3"] {
        let (ok, _, stderr) = ssp(&["load", "--targets", "127.0.0.1:1", "--rate", bad]);
        assert!(!ok, "--rate {bad} must be rejected");
        assert!(
            stderr.contains("--rate must be a positive number"),
            "--rate {bad}: {stderr}"
        );
    }
}

#[test]
fn load_rejects_zero_concurrency() {
    let (ok, _, stderr) = ssp(&["load", "--targets", "127.0.0.1:1", "--concurrency", "0"]);
    assert!(!ok);
    assert!(
        stderr.contains("--concurrency must be at least 1"),
        "{stderr}"
    );
}

#[test]
fn load_without_targets_prints_usage() {
    let (ok, _, stderr) = ssp(&["load"]);
    assert!(!ok);
    assert!(stderr.contains("usage: ssp load"), "{stderr}");
}

#[test]
fn load_inproc_rejects_cross_rate_without_enough_shards() {
    let (ok, _, stderr) = ssp(&["load", "--inproc", "a1", "rs", "--cross-rate", "0.5"]);
    assert!(!ok);
    assert!(stderr.contains("--cross-rate needs --shards"), "{stderr}");
}

#[test]
fn load_inproc_reports_the_client_observed_round_gap() {
    let (ok, rs_out, stderr) = ssp(&[
        "load",
        "--inproc",
        "a1",
        "rs",
        "--clients",
        "2",
        "--requests-per-client",
        "4",
    ]);
    assert!(ok, "{stderr}");
    assert!(rs_out.contains("\"p50_rounds\":1"), "{rs_out}");
    let (ok, rws_out, stderr) = ssp(&[
        "load",
        "--inproc",
        "ct",
        "rws",
        "--clients",
        "2",
        "--requests-per-client",
        "4",
    ]);
    assert!(ok, "{stderr}");
    assert!(rws_out.contains("\"p50_rounds\":2"), "{rws_out}");
}
