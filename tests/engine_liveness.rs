//! Property: every client command submitted before shutdown is decided
//! **exactly once**, under both round models, regardless of where a
//! scripted crash lands.
//!
//! The exactly-once half is structural — `Proposer::commit` returns a
//! typed error (which `serve` escalates to a panic) on any duplicate or
//! unknown decision — so the property reduces to liveness: a budgeted
//! closed-loop workload must fully drain, with nothing left pending,
//! even when the scripted crash orphans a proposer's batch mid-instance.

use proptest::prelude::*;

use ssp::algos::{CtRounds, A1};
use ssp::engine::{
    serve, Batch, EngineConfig, EngineCrash, EngineReport, FaultMode, Workload, WorkloadConfig,
};
use ssp::rounds::{RoundAlgorithm, RoundProcess};
use ssp::runtime::{PlanModel, ThreadCrash};

/// Clients × commands-per-client of the budgeted workload.
const CLIENTS: usize = 3;
const BUDGET: u32 = 2;

fn run_engine<A>(
    algo: &A,
    model: PlanModel,
    seed: u64,
    crash: EngineCrash,
) -> EngineReport<<A::Process as RoundProcess>::Msg>
where
    A: RoundAlgorithm<Batch> + Sync,
    A::Process: Send + 'static,
    <A::Process as RoundProcess>::Msg: Clone + Send + 'static,
{
    let mut cfg = EngineConfig::new(3, 1, model);
    cfg.instances = 20; // ample: 6 commands at ≥1 decided per instance
    cfg.seed = seed;
    cfg.faults = FaultMode::FailureFree;
    cfg.run_to_drain = true;
    cfg.batch_max = 4;
    cfg.crashes.push(crash);
    let mut wcfg = WorkloadConfig::new(CLIENTS);
    wcfg.commands_per_client = Some(BUDGET);
    let mut workload = Workload::new(seed, wcfg);
    serve(algo, &cfg, &mut workload).expect("valid config")
}

fn assert_drained<M>(report: &EngineReport<M>) {
    let expected = (CLIENTS as u64) * u64::from(BUDGET);
    assert_eq!(report.stats.commands_submitted, expected);
    assert_eq!(
        report.stats.commands_decided, expected,
        "every submitted command decided exactly once"
    );
    assert_eq!(report.stats.pending_at_shutdown, 0);
    assert_eq!(report.kv.applied(), expected);
    assert!(
        report.stats.instances < 20,
        "the workload drains well inside the instance budget"
    );
    assert_eq!(report.stats.audit_violations, 0);
    assert_eq!(report.stats.audit_divergences, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn submitted_commands_decide_exactly_once_despite_crashes(
        seed in 0u64..1_000,
        instance in 0u64..4,
        round in 1u32..=2,
        after_sends in 0usize..=3,
    ) {
        let crash = EngineCrash {
            instance,
            process: 0,
            crash: ThreadCrash { round, after_sends, sends_to: None },
        };
        // RS service on A1 (the paper's 1-round algorithm)…
        let rs = run_engine(&A1, PlanModel::Rs, seed, crash);
        assert_drained(&rs);
        // …and the RWS service on the rotating-coordinator baseline.
        let rws = run_engine(&CtRounds, PlanModel::Rws, seed, crash);
        assert_drained(&rws);
        // Same workload either way: the models disagree on rounds paid,
        // never on what was decided.
        prop_assert_eq!(rs.stats.commands_decided, rws.stats.commands_decided);
    }
}
