//! Property tests for the fault-injection plane: seed determinism of
//! [`FaultPlan`] and of the [`RunTrace`]s it induces, and confinement
//! of every scripted delay to its [`NetConfig`] bound.
//!
//! [`RunTrace`]: ssp::runtime::RunTrace
//! [`NetConfig`]: ssp::runtime::NetConfig

use proptest::prelude::*;

use ssp::algos::{FloodSetWs, A1};
use ssp::model::InitialConfig;
use ssp::runtime::plan::{FAST_MAX, NOTIFY_BASE, NOTIFY_JITTER, SLOW};
use ssp::runtime::{FaultPlan, PlanModel, RuntimeBuilder};

fn model() -> impl Strategy<Value = PlanModel> {
    (0u8..2).prop_map(|b| {
        if b == 0 {
            PlanModel::Rs
        } else {
            PlanModel::Rws
        }
    })
}

proptest! {
    #[test]
    fn same_seed_same_plan(seed in 0u64..1_000_000, m in model()) {
        let a = FaultPlan::from_seed(seed, 4, 2, 3, m);
        let b = FaultPlan::from_seed(seed, 4, 2, 3, m);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn plans_stay_within_their_declared_bounds(
        seed in 0u64..1_000_000,
        n in 2usize..6,
        t_off in 0usize..3,
        m in model(),
    ) {
        let t = t_off.min(n - 1);
        let horizon = t as u32 + 1;
        let plan = FaultPlan::from_seed(seed, n, t, horizon, m);
        prop_assert!(plan.fault_count() <= t, "at most t crashes");
        for (src, dst, round) in &plan.slow {
            // Slow links only script wires a crashing sender emits in
            // its Lemma 4.1 window — round crash_round−1 or later.
            let crash = plan.crashes[src.index()]
                .expect("slow links belong to crashing senders");
            prop_assert!(*round >= 1 && *round <= horizon);
            prop_assert!(*round + 1 >= crash.round, "Lemma 4.1 window");
            prop_assert!(src != dst, "self-delivery is never scripted");
        }
        // RWS plans script an n×n oracle-notification matrix, every
        // entry within the oracle's declared window; RS plans use the
        // timeout detector and script none.
        match m {
            PlanModel::Rs => prop_assert!(plan.notify.is_empty()),
            PlanModel::Rws => {
                prop_assert_eq!(plan.notify.len(), n);
                for row in &plan.notify {
                    prop_assert_eq!(row.len(), n);
                    for d in row {
                        prop_assert!(*d >= NOTIFY_BASE && *d <= NOTIFY_BASE + NOTIFY_JITTER);
                    }
                }
            }
        }
        let script = plan.link_script();
        for (src, dst, round) in &plan.slow {
            prop_assert_eq!(
                script.delay(*src, *dst, (*round - 1) as usize),
                Some(SLOW),
                "round r maps to per-link message index r−1"
            );
        }
        prop_assert!(SLOW > FAST_MAX, "slow means slower than every fast bound");
    }
}

proptest! {
    // Wall-clock runs are costly: a handful of cases is plenty, and
    // each asserts bit-identical re-execution — the whole point of
    // the determinism-by-margins design.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn same_seed_same_run_trace_rws(seed in 0u64..500) {
        let config = InitialConfig::new(vec![10u64, 11, 12]);
        let plan = FaultPlan::from_seed(seed, 3, 1, 2, PlanModel::Rws);
        let run = || {
            RuntimeBuilder::new(&FloodSetWs, &config)
                .plan(plan.clone())
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.trace.round_trace(), b.trace.round_trace());
        prop_assert_eq!(&a.trace.crashes, &b.trace.crashes);
        prop_assert_eq!(a.trace.pending().triples(), b.trace.pending().triples());
    }

    #[test]
    fn same_seed_same_run_trace_rs(seed in 0u64..500) {
        let config = InitialConfig::new(vec![10u64, 11, 12]);
        let plan = FaultPlan::from_seed(seed, 3, 1, 2, PlanModel::Rs);
        let run = || {
            RuntimeBuilder::new(&A1, &config)
                .plan(plan.clone())
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.trace.round_trace(), b.trace.round_trace());
        prop_assert!(a.trace.pending().is_empty(), "RS drains everything");
    }
}
