//! End-to-end certification of the external-client subsystem: the
//! `ssp-gateway` crate driving gateway-fronted clusters and the
//! in-process sharded engine.
//!
//! The contract under test is *exactly-once across failures*: a client
//! that retries every command through a `kill -9` of its gateway node
//! and a forced reconnect must end with each `(client_id, req_id)`
//! applied exactly once — checked at store level by counting decided
//! commands against a load-free baseline of the same seeded cluster.
//! The in-process scripted load checks the same invariant structurally
//! (a double acknowledgement panics) under both round models, and its
//! ack-round histograms are the client-observed face of Theorem 5.2:
//! `A1`/`RS` acks at round 1 failure-free, any `RWS` algorithm at
//! `t + 1`.

use std::io::Read;
use std::net::TcpListener;
use std::process::{Command, Stdio};
use std::time::Duration;

use ssp::algos::{CtRounds, A1};
use ssp::engine::{EngineConfig, ShardedConfig};
use ssp::gateway::{run_inproc_load, run_load, InprocLoadConfig, LoadConfig, LoadMode};
use ssp::runtime::PlanModel;

/// Finds a span of `n` consecutive free loopback ports starting the
/// scan at `from` (tests scan disjoint ranges so concurrent tests
/// don't race each other for the same span).
fn free_port_span(from: u16, n: u16) -> u16 {
    let mut base = from;
    while base < 60_000 {
        if (0..n).all(|i| TcpListener::bind(("127.0.0.1", base + i)).is_ok()) {
            return base;
        }
        base += 7;
    }
    panic!("no free port span of {n} above {from}");
}

fn gateway_targets(base: u16, n: u16) -> Vec<String> {
    (0..n).map(|i| format!("127.0.0.1:{}", base + i)).collect()
}

/// Spawns `ssp serve-cluster` with a gateway on `base_port` and
/// returns the child; stdout is piped for the gateway-counter line.
fn spawn_cluster(args: &[&str]) -> std::process::Child {
    Command::new(env!("CARGO_BIN_EXE_ssp"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve-cluster")
}

/// Waits for the cluster child, asserting clean exit, and returns its
/// stdout.
fn finish_cluster(mut child: std::process::Child) -> String {
    let status = child.wait().expect("serve-cluster wait");
    let mut stdout = String::new();
    child
        .stdout
        .take()
        .expect("piped stdout")
        .read_to_string(&mut stdout)
        .expect("read cluster stdout");
    let mut stderr = String::new();
    if let Some(mut e) = child.stderr.take() {
        let _ = e.read_to_string(&mut stderr);
    }
    assert!(
        status.success(),
        "serve-cluster failed (audits?)\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    stdout
}

/// Extracts `(admitted, deduped)` from the merged human-side gateway
/// counter line: `gateway: A admitted, D deduped, ...`.
fn gateway_counters(stdout: &str) -> (u64, u64) {
    let line = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("gateway:"))
        .unwrap_or_else(|| panic!("no gateway counter line in:\n{stdout}"));
    let words: Vec<&str> = line.split_whitespace().collect();
    let admitted = words[1].parse().expect("admitted count");
    let deduped = words[3].parse().expect("deduped count");
    (admitted, deduped)
}

/// Pulls one `"field":value` integer out of a stats JSON blob.
fn json_u64(json: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    let at = json
        .find(&needle)
        .unwrap_or_else(|| panic!("no {field} in {json}"));
    json[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer field")
}

/// The in-process scripted load acks every request exactly once under
/// both round models (a double ack panics inside the source), and the
/// single-key ack-round histograms show the paper's Theorem 5.2 gap as
/// a client-observed number: p50 of 1 round under `A1`/`RS` vs `t + 1
/// = 2` under `CtRounds`/`RWS` — a deterministic 2.0× ratio.
#[test]
fn inproc_load_is_exactly_once_and_shows_the_theorem_5_2_gap() {
    let mut load = InprocLoadConfig::new(7);
    load.clients = 3;
    load.requests_per_client = 6;
    load.cross_rate = 0.25;

    let mut rs = EngineConfig::new(3, 1, PlanModel::Rs);
    rs.instances = 64;
    rs.seed = 7;
    let rs_report = run_inproc_load(&A1, &ShardedConfig::new(rs, 2), &load).expect("rs run");
    assert_eq!(rs_report.acked, rs_report.requested);
    assert_eq!(
        rs_report.single.rounds.quantile(0.5),
        1,
        "A1/RS acks at round 1"
    );

    let mut rws = EngineConfig::new(3, 1, PlanModel::Rws);
    rws.instances = 64;
    rws.seed = 7;
    let rws_report =
        run_inproc_load(&CtRounds, &ShardedConfig::new(rws, 2), &load).expect("rws run");
    assert_eq!(rws_report.acked, rws_report.requested);
    assert_eq!(
        rws_report.single.rounds.quantile(0.5),
        2,
        "CtRounds/RWS acks at round t + 1 = 2"
    );
}

/// Two runs of the same seeded in-process load are byte-identical:
/// the client-observed report *and* the engine's deterministic stats
/// core, under both models.
#[test]
fn inproc_load_double_run_is_byte_identical() {
    for (model, name) in [(PlanModel::Rs, "rs"), (PlanModel::Rws, "rws")] {
        let mut load = InprocLoadConfig::new(13);
        load.clients = 2;
        load.requests_per_client = 5;
        load.cross_rate = 0.3;
        let run = || {
            let mut engine = EngineConfig::new(3, 1, model);
            engine.instances = 48;
            engine.seed = 13;
            let cfg = ShardedConfig::new(engine, 2);
            match model {
                PlanModel::Rs => run_inproc_load(&A1, &cfg, &load).expect("run"),
                PlanModel::Rws => run_inproc_load(&CtRounds, &cfg, &load).expect("run"),
            }
        };
        let (a, b) = (run(), run());
        assert_eq!(a.to_json(), b.to_json(), "{name}: client report diverged");
        assert_eq!(
            a.stats.to_json(),
            b.stats.to_json(),
            "{name}: deterministic stats core diverged"
        );
    }
}

/// Failure-free network end-to-end: a closed-loop client population
/// against a live gateway-fronted loopback cluster acks every request,
/// the cluster audits clean, and — because load keys/values are pure
/// functions of `(seed, client, req)` and command totals are
/// arrival-order independent — two runs of the same seeds produce
/// byte-identical deterministic stats cores even though admission
/// timing differs.
#[test]
fn network_load_double_run_has_byte_identical_cores() {
    let dir = std::env::temp_dir().join(format!("ssp-gw-dr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let mut cores = Vec::new();
    for run in 0..2u16 {
        let base = free_port_span(21_000 + run * 400, 3);
        let base_s = base.to_string();
        let stats = dir.join(format!("stats-{run}.json"));
        let child = spawn_cluster(&[
            "serve-cluster",
            "-n",
            "3",
            "--instances",
            "50",
            "--gap-ms",
            "20",
            "--fd-timeout-ms",
            "2500",
            "--drain",
            "120",
            "--seed",
            "11",
            "--gateway-base-port",
            &base_s,
            "--stats-out",
            stats.to_str().unwrap(),
        ]);
        let mut cfg = LoadConfig::new(gateway_targets(base, 3), 9);
        cfg.requests = 8;
        cfg.mode = LoadMode::Closed { concurrency: 2 };
        cfg.deadline = Duration::from_secs(20);
        let report = run_load(&cfg).expect("load run");
        assert_eq!(report.acked, 8, "all requests acked: {}", report.to_json());
        assert_eq!(report.gave_up, 0);
        let stdout = finish_cluster(child);
        let (admitted, _) = gateway_counters(&stdout);
        assert_eq!(admitted, 8, "each request admitted exactly once\n{stdout}");
        cores.push(std::fs::read_to_string(&stats).expect("stats file"));
    }
    assert_eq!(
        cores[0], cores[1],
        "deterministic cores diverged across runs"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance scenario: `kill -9` of the accepting gateway node
/// mid-load. Every client rides through a forced reconnect with
/// idempotent resubmission, and each `(client_id, req_id)` is applied
/// exactly once — checked at store level by comparing decided-command
/// counts against a load-free baseline of the identical seeded
/// cluster: the loaded run decides exactly `requests` more commands.
#[test]
fn kill9_of_the_gateway_node_applies_each_request_exactly_once() {
    let dir = std::env::temp_dir().join(format!("ssp-gw-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let cluster_args = |base_s: &str, stats: &str| {
        vec![
            "serve-cluster".to_string(),
            "-n".into(),
            "3".into(),
            "--instances".into(),
            "80".into(),
            "--gap-ms".into(),
            "25".into(),
            "--fd-timeout-ms".into(),
            "1500".into(),
            "--drain".into(),
            "120".into(),
            "--seed".into(),
            "5".into(),
            "--kill9".into(),
            "0".into(),
            "--kill-at".into(),
            "6".into(),
            "--gateway-base-port".into(),
            base_s.into(),
            "--stats-out".into(),
            stats.into(),
        ]
    };

    // Baseline: same cluster, same kill, no external load.
    let base0 = free_port_span(22_000, 3);
    let stats0 = dir.join("baseline.json");
    let args0 = cluster_args(&base0.to_string(), stats0.to_str().unwrap());
    let child = spawn_cluster(&args0.iter().map(String::as_str).collect::<Vec<_>>());
    finish_cluster(child);
    let baseline = json_u64(
        &std::fs::read_to_string(&stats0).expect("baseline stats"),
        "commands_decided",
    );

    // Loaded run: clients start on node 0 (the accepting node), which
    // is kill -9'd mid-load, forcing reconnect + resubmission.
    let base1 = free_port_span(22_400, 3);
    let stats1 = dir.join("loaded.json");
    let args1 = cluster_args(&base1.to_string(), stats1.to_str().unwrap());
    let child = spawn_cluster(&args1.iter().map(String::as_str).collect::<Vec<_>>());
    let mut cfg = LoadConfig::new(gateway_targets(base1, 3), 9);
    cfg.requests = 12;
    cfg.mode = LoadMode::Closed { concurrency: 2 };
    cfg.deadline = Duration::from_secs(30);
    let report = run_load(&cfg).expect("load run");
    assert_eq!(
        report.acked,
        12,
        "every request acked: {}",
        report.to_json()
    );
    assert_eq!(report.gave_up, 0);
    let stdout = finish_cluster(child);

    // Store-level exactly-once: precisely `requests` external commands
    // were decided, no matter how many resubmissions the kill caused.
    let loaded = json_u64(
        &std::fs::read_to_string(&stats1).expect("loaded stats"),
        "commands_decided",
    );
    assert_eq!(
        loaded,
        baseline + 12,
        "loaded cluster must decide exactly one command per request\n{stdout}"
    );
    let (admitted, _deduped) = gateway_counters(&stdout);
    assert!(
        admitted >= 12,
        "every request admitted at least once (a dying node may admit one twice, \
         the ledger dedups the rest): {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
