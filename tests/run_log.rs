//! E19 — the canonical run log: golden JSONL snapshots, serialization
//! round-trips, and observer transparency.
//!
//! The golden files under `tests/golden/` pin the exact byte-level
//! serialization of two reference runs (a crashed FloodSet `RS` run and
//! the §5.3 seed-519 runtime run). Regenerate them after an intentional
//! format change with `SSP_REGEN_GOLDEN=1 cargo test --test run_log`.

use core::fmt;

use proptest::prelude::*;

use ssp::algos::{FloodSet, A1};
use ssp::model::{
    CountingObserver, InitialConfig, ProcessId, ProcessSet, Round, RunLog, RunLogObserver,
};
use ssp::rounds::{run_rs, run_rs_observed, CrashSchedule, PendingChoice, RoundCrash};
use ssp::runtime::{PlanModel, RuntimeBuilder, SECTION_5_3_SEED};

mod common;
use common::{golden_check, p, section_5_3_config};

#[test]
fn floodset_rs_run_log_snapshot_is_byte_stable() {
    let config = InitialConfig::new(vec![4u64, 1, 7]);
    let mut schedule = CrashSchedule::none(3);
    schedule.crash(
        p(1),
        RoundCrash {
            round: Round::FIRST,
            sends_to: ProcessSet::singleton(p(0)),
        },
    );
    let run_once = || {
        let mut obs = RunLogObserver::new(3);
        run_rs_observed(&FloodSet, &config, 1, &schedule, &mut obs).unwrap();
        obs.into_log().to_jsonl()
    };
    let first = run_once();
    assert_eq!(first, run_once(), "identical runs serialize identically");
    golden_check("floodset_rs_n3.jsonl", &first);
}

#[test]
fn section_5_3_seed_runtime_log_snapshot_is_byte_stable() {
    let config = section_5_3_config();
    let run_once = || {
        RuntimeBuilder::new(&A1, &config)
            .model(PlanModel::Rws)
            .seed(SECTION_5_3_SEED)
            .run()
            .unwrap()
            .trace
            .run_log()
            .to_jsonl()
    };
    let first = run_once();
    assert_eq!(
        first,
        run_once(),
        "the seeded wall-clock run serializes identically run after run"
    );
    golden_check("seed519_a1_rws.jsonl", &first);
}

/// A payload wrapper whose `Debug` is the verbatim parsed text, so a
/// parsed log re-serializes to the exact input bytes.
struct Raw(String);

impl fmt::Debug for Raw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Strategy: a crash schedule for `n` processes with at most `t`
/// crashes inside `1..=max_round`.
fn crash_schedule(n: usize, t: usize, max_round: u32) -> impl Strategy<Value = CrashSchedule> {
    proptest::collection::vec(
        proptest::option::weighted(0.4, (1u32..=max_round, 0u64..(1 << n))),
        n,
    )
    .prop_map(move |slots| {
        let mut schedule = CrashSchedule::none(n);
        let mut budget = t;
        for (i, slot) in slots.into_iter().enumerate() {
            if budget == 0 {
                break;
            }
            if let Some((round, bits)) = slot {
                schedule.crash(
                    ProcessId::new(i),
                    RoundCrash {
                        round: Round::new(round),
                        sends_to: ProcessSet::from_bits(bits),
                    },
                );
                budget -= 1;
            }
        }
        schedule
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `to_jsonl ∘ from_jsonl = id` on executor-produced logs.
    #[test]
    fn run_log_round_trips_through_jsonl(
        inputs in proptest::collection::vec(0u64..4, 3),
        schedule in crash_schedule(3, 2, 3),
    ) {
        let config = InitialConfig::new(inputs);
        let mut obs = RunLogObserver::new(3);
        run_rs_observed(&FloodSet, &config, 2, &schedule, &mut obs).unwrap();
        let jsonl = obs.into_log().to_jsonl();
        let parsed: RunLog<Raw> =
            RunLog::from_jsonl(&jsonl, |raw| Some(Raw(raw.to_string()))).unwrap();
        prop_assert_eq!(parsed.to_jsonl(), jsonl);
    }

    /// Attaching an observer never changes the run: observer-off and
    /// observer-on executions produce identical outcomes, and the
    /// counting observer agrees with the full log's totals.
    #[test]
    fn observation_is_transparent(
        inputs in proptest::collection::vec(0u64..4, 3),
        schedule in crash_schedule(3, 2, 3),
    ) {
        let config = InitialConfig::new(inputs);
        let plain = run_rs(&FloodSet, &config, 2, &schedule);
        let mut log_obs = RunLogObserver::new(3);
        let logged = run_rs_observed(&FloodSet, &config, 2, &schedule, &mut log_obs).unwrap();
        prop_assert_eq!(&plain, &logged, "RunLogObserver is transparent");
        let mut counter = CountingObserver::new();
        let counted = run_rs_observed(&FloodSet, &config, 2, &schedule, &mut counter).unwrap();
        prop_assert_eq!(&plain, &counted, "CountingObserver is transparent");
        let log = log_obs.into_log();
        prop_assert_eq!(counter.counts().delivers, log.total_delivered() as u64);
        prop_assert_eq!(
            counter.counts().closes as usize,
            log.events()
                .iter()
                .filter(|e| matches!(e, ssp::model::RunEvent::Close { .. }))
                .count()
        );
    }

    /// An `RS` run is an `RWS` run with nothing pending: their logs are
    /// identical event-for-event, not merely outcome-equal.
    #[test]
    fn rs_and_empty_pending_rws_logs_agree(
        inputs in proptest::collection::vec(0u64..4, 3),
        schedule in crash_schedule(3, 1, 3),
    ) {
        let config = InitialConfig::new(inputs);
        let mut rs_obs = RunLogObserver::new(3);
        run_rs_observed(&ssp::algos::FloodSetWs, &config, 1, &schedule, &mut rs_obs).unwrap();
        let mut rws_obs = RunLogObserver::new(3);
        ssp::rounds::run_rws_observed(
            &ssp::algos::FloodSetWs,
            &config,
            1,
            &schedule,
            &PendingChoice::none(),
            &mut rws_obs,
        )
        .unwrap();
        let (rs_log, rws_log) = (rs_obs.into_log(), rws_obs.into_log());
        prop_assert!(
            rs_log.first_divergence(&rws_log).is_none(),
            "{}",
            rs_log.first_divergence(&rws_log).unwrap()
        );
    }
}
