//! Message complexity via the round-level traces: the delivered-message
//! counts of each algorithm, failure-free and under crashes. The
//! [`CountingObserver`] path (`ssp_lab::message_complexity_rs`) must
//! agree with the `RoundTrace` view — both are projections of the same
//! canonical run log.

use ssp::algos::{FOptFloodSet, FloodSet, A1};
use ssp::lab::message_complexity_rs;
use ssp::model::{InitialConfig, ProcessId, ProcessSet, Round};
use ssp::rounds::{run_rs_traced, CrashSchedule, RoundCrash};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn floodset_delivers_n_squared_per_round() {
    for n in [3usize, 4, 5] {
        let t = 1;
        let config = InitialConfig::new((0..n as u64).collect());
        let (outcome, trace) = run_rs_traced(&FloodSet, &config, t, &CrashSchedule::none(n));
        assert!(outcome.all_correct_decided());
        assert_eq!(trace.len(), t + 1, "t+1 recorded rounds");
        for rec in trace.rounds() {
            assert_eq!(rec.delivered(), n * n, "full flood each round");
        }
        assert_eq!(trace.total_delivered(), n * n * (t + 1));
        // The counting observer tallies the same canonical events.
        let counts = message_complexity_rs(&FloodSet, &config, t, &CrashSchedule::none(n));
        assert_eq!(counts.delivers as usize, trace.total_delivered());
        assert_eq!(counts.closes as usize, trace.len());
        assert_eq!(counts.crashes, 0);
    }
}

#[test]
fn a1_failure_free_delivers_n_plus_n_squared() {
    // Round 1: only p1 broadcasts (n deliveries, self included).
    // Round 2: everyone has decided and relays (n² deliveries).
    for n in [3usize, 5] {
        let config = InitialConfig::new((0..n as u64).collect());
        let (_, trace) = run_rs_traced(&A1, &config, 1, &CrashSchedule::none(n));
        assert_eq!(trace.rounds()[0].delivered(), n);
        assert_eq!(trace.rounds()[1].delivered(), n * n);
    }
}

#[test]
fn crash_reduces_delivered_messages() {
    let n = 4;
    let config = InitialConfig::new(vec![0u64, 1, 2, 3]);
    let mut schedule = CrashSchedule::none(n);
    schedule.crash(
        p(1),
        RoundCrash {
            round: Round::FIRST,
            sends_to: ProcessSet::singleton(p(0)),
        },
    );
    let (outcome, trace) = run_rs_traced(&FloodSet, &config, 1, &schedule);
    assert!(outcome.all_correct_decided());
    // Round 1: 3 full senders × 3 surviving receivers (9) + p2's
    // partial send to p1 (1) = 10. (p2 itself receives nothing: it
    // crashed before its receive phase.)
    assert_eq!(trace.rounds()[0].delivered(), 10);
    assert!(trace.rounds()[0].heard(p(0), p(1)));
    assert!(!trace.rounds()[0].heard(p(2), p(1)));
    // Round 2: 3 alive senders × 3 alive receivers.
    assert_eq!(trace.rounds()[1].delivered(), 9);
    // The observer path sees the crash and the same traffic.
    let counts = message_complexity_rs(&FloodSet, &config, 1, &schedule);
    assert_eq!(counts.delivers as usize, trace.total_delivered());
    assert_eq!(counts.crashes, 1);
}

#[test]
fn f_opt_fast_path_saves_a_round_of_traffic() {
    let n = 4;
    let t = 2;
    let config = InitialConfig::new(vec![5u64, 3, 0, 1]);
    let mut schedule = CrashSchedule::none(n);
    for i in [2usize, 3] {
        schedule.crash(
            p(i),
            RoundCrash {
                round: Round::FIRST,
                sends_to: ProcessSet::empty(),
            },
        );
    }
    let (outcome, trace) = run_rs_traced(&FOptFloodSet, &config, t, &schedule);
    assert_eq!(outcome.latency_degree(), Some(1));
    // After the round-1 decision the survivors keep sending only (D, v)
    // notifications — same count, but the *rounds executed* stay t+1;
    // the saving is in decision latency, not raw message count.
    assert_eq!(trace.len(), t + 1);
    assert_eq!(trace.rounds()[0].delivered(), 4, "2 alive × 2 receivers");
}
