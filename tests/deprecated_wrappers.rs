//! API-continuity regression for E17: the pre-`Verifier` entry points stay alive: the deprecated
//! `verify_*` / `sample_verify_*` wrappers from the old API must keep
//! compiling and must return verdicts identical to the [`Verifier`]
//! builder they now delegate to.

#![allow(deprecated)]

use ssp::algos::{FloodSet, FloodSetWs, A1};
use ssp::lab::{
    sample_verify_rs, sample_verify_rws, verify_rs, verify_rs_parallel, verify_rws,
    verify_rws_parallel, RoundModel, SampleSpace, ValidityMode, Verifier,
};

const BINARY: &[u64] = &[0, 1];

#[test]
fn verify_rs_agrees_with_the_builder() {
    let wrapper = verify_rs(&FloodSet, 3, 1, BINARY, ValidityMode::Strong);
    let builder = Verifier::new(&FloodSet)
        .n(3)
        .t(1)
        .domain(BINARY)
        .mode(ValidityMode::Strong)
        .model(RoundModel::Rs)
        .run();
    assert!(wrapper.is_ok());
    assert_eq!(wrapper.is_ok(), builder.is_ok());
    assert_eq!(wrapper.runs, builder.runs, "identical enumeration order");
}

#[test]
fn verify_rws_agrees_with_the_builder_on_a_violation() {
    let wrapper = verify_rws(&A1, 3, 1, BINARY, ValidityMode::Uniform);
    let builder = Verifier::new(&A1)
        .n(3)
        .t(1)
        .domain(BINARY)
        .mode(ValidityMode::Uniform)
        .model(RoundModel::Rws)
        .run();
    assert!(!wrapper.is_ok(), "A1 is unsafe in RWS (§5.3)");
    assert_eq!(wrapper.is_ok(), builder.is_ok());
    assert_eq!(
        wrapper.runs, builder.runs,
        "both sweeps stop at the same least counterexample"
    );
    let (a, b) = (
        wrapper.counterexample.expect("violation"),
        builder.counterexample.expect("violation"),
    );
    assert_eq!(a.to_string(), b.to_string(), "identical forensics");
}

#[test]
fn parallel_wrappers_agree_with_the_builder() {
    let rs = verify_rs_parallel(&FloodSet, 3, 1, BINARY, ValidityMode::Strong, 2);
    assert!(rs.is_ok());
    assert_eq!(
        rs.represented,
        Verifier::new(&FloodSet)
            .n(3)
            .t(1)
            .domain(BINARY)
            .mode(ValidityMode::Strong)
            .model(RoundModel::Rs)
            .threads(2)
            .run()
            .represented
    );

    let rws = verify_rws_parallel(&FloodSetWs, 3, 1, BINARY, ValidityMode::Uniform, 2);
    assert!(rws.is_ok(), "FloodSetWs survives RWS");
    assert_eq!(
        rws.represented,
        Verifier::new(&FloodSetWs)
            .n(3)
            .t(1)
            .domain(BINARY)
            .mode(ValidityMode::Uniform)
            .model(RoundModel::Rws)
            .threads(2)
            .run()
            .represented
    );
}

#[test]
fn sample_wrappers_still_sample() {
    let space = SampleSpace::adversarial(4, 2);
    let rs = sample_verify_rs(&FloodSet, &space, BINARY, 200, 7, ValidityMode::Strong);
    assert_eq!(rs.trials, 200);
    assert!(rs.counterexample.is_none(), "FloodSet is safe in RS");

    let rws = sample_verify_rws(&FloodSetWs, &space, BINARY, 200, 7, ValidityMode::Uniform);
    assert_eq!(rws.trials, 200);
    assert!(rws.counterexample.is_none(), "FloodSetWs is safe in RWS");
}
