//! End-to-end certification of multi-process serving: `ssp
//! serve-cluster` spawns one OS process per consensus process over
//! real loopback sockets, and every claim the in-process engine makes
//! must survive the move to a real network — clean audits across
//! seeds, byte-level agreement with the in-process oracle on the
//! deterministic core, `kill -9` surfacing only through the PFD
//! timeout, and the Δ-violation trichotomy on live sockets.

use std::path::PathBuf;
use std::process::Command;

fn ssp(args: &[&str]) -> (bool, String, String) {
    let exe = env!("CARGO_BIN_EXE_ssp");
    let out = Command::new(exe).args(args).output().expect("spawn ssp");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssp-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Strips the one legitimately different field from the deterministic
/// stats core: the in-process engine takes the early-retire fast path,
/// the socket cluster always plays both rounds.
fn without_retired(json: &str) -> String {
    let mut out = String::new();
    for part in json
        .trim_end()
        .trim_start_matches('{')
        .trim_end_matches('}')
        .split(',')
    {
        if part.starts_with("\"retired_instances\"") {
            continue;
        }
        if !out.is_empty() {
            out.push(',');
        }
        out.push_str(part);
    }
    out
}

/// 20 seeds of failure-free serving over real sockets: every instance
/// audited clean, every verdict `RS`, and the deterministic core
/// byte-identical to the in-process engine run with the same seed.
#[test]
fn loopback_conformance_across_twenty_seeds() {
    let dir = scratch("conf");
    for seed in 1..=20u64 {
        let seed_s = seed.to_string();
        let sock_json = dir.join(format!("sock-{seed}.json"));
        let run_dir = dir.join(format!("run-{seed}"));
        let (ok, stdout, stderr) = ssp(&[
            "serve-cluster",
            "-n",
            "3",
            "--instances",
            "3",
            "--seed",
            &seed_s,
            "--fd-timeout-ms",
            "8000",
            "--stats-out",
            sock_json.to_str().unwrap(),
            "--dir",
            run_dir.to_str().unwrap(),
        ]);
        assert!(ok, "seed {seed}: cluster failed\n{stdout}\n{stderr}");
        assert!(
            stdout.contains("verdicts: RS, RS, RS"),
            "seed {seed}: non-RS verdict\n{stdout}"
        );
        assert!(
            stdout.contains("suspected: none"),
            "seed {seed}: phantom suspicion\n{stdout}"
        );

        let oracle_json = dir.join(format!("oracle-{seed}.json"));
        let (ok, stdout, stderr) = ssp(&[
            "serve",
            "a1",
            "rs",
            "-n",
            "3",
            "--instances",
            "3",
            "--seed",
            &seed_s,
            "--batch",
            "4",
            "--clients",
            "8",
            "--failure-free",
            "--stats-out",
            oracle_json.to_str().unwrap(),
        ]);
        assert!(
            ok,
            "seed {seed}: in-process oracle failed\n{stdout}\n{stderr}"
        );
        let sock = std::fs::read_to_string(&sock_json).unwrap();
        let oracle = std::fs::read_to_string(&oracle_json).unwrap();
        assert_eq!(
            without_retired(&sock),
            without_retired(&oracle),
            "seed {seed}: socket run diverged from the in-process oracle"
        );
    }
}

/// Delivery-projected log diff for a failure-free seed: projected to
/// each instance's decision round, the socket transport must deliver
/// exactly the wires the in-process transport delivers — same
/// payloads, same order.
#[test]
fn socket_run_log_matches_in_process_delivery_projection() {
    let dir = scratch("logdiff");
    let sock_log = dir.join("sock.jsonl");
    let oracle_log = dir.join("oracle.jsonl");
    let (ok, stdout, stderr) = ssp(&[
        "serve-cluster",
        "-n",
        "3",
        "--instances",
        "4",
        "--seed",
        "11",
        "--fd-timeout-ms",
        "8000",
        "--logs-out",
        sock_log.to_str().unwrap(),
        "--dir",
        dir.join("run").to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}\n{stderr}");
    let (ok, stdout, stderr) = ssp(&[
        "serve",
        "a1",
        "rs",
        "-n",
        "3",
        "--instances",
        "4",
        "--seed",
        "11",
        "--batch",
        "4",
        "--clients",
        "8",
        "--failure-free",
        "--logs-out",
        oracle_log.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}\n{stderr}");

    // Project both logs to decision-relevant delivery: instance
    // headers plus round-1 deliver events (failure-free A1 decides in
    // round 1; round 2 is the relay round the early-retire fast path
    // skips in-process).
    let project = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| {
                l.contains("\"instance\"")
                    || (l.contains("\"ev\":\"deliver\"") && l.contains("\"round\":1"))
            })
            .map(str::to_string)
            .collect()
    };
    let sock = project(&std::fs::read_to_string(&sock_log).unwrap());
    let oracle = project(&std::fs::read_to_string(&oracle_log).unwrap());
    assert!(!sock.is_empty(), "socket log projection must not be empty");
    assert_eq!(
        sock, oracle,
        "delivery-projected run logs diverge between socket and in-process transports"
    );
}

/// `kill -9` tolerance: a SIGKILL'd node surfaces as suspicion of
/// exactly that node, every decided instance still audits clean, and
/// the surviving replicas agree on the store.
#[test]
fn kill_nine_surfaces_as_suspicion_of_exactly_the_victim() {
    let dir = scratch("kill");
    let (ok, stdout, stderr) = ssp(&[
        "serve-cluster",
        "-n",
        "4",
        "--instances",
        "6",
        "--seed",
        "7",
        "--kill9",
        "3",
        "--kill-at",
        "1",
        "--gap-ms",
        "60",
        "--fd-timeout-ms",
        "1500",
        "--dir",
        dir.to_str().unwrap(),
    ]);
    assert!(ok, "cluster with kill -9 failed\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("suspected: p3 "),
        "exactly the killed node must be suspected\n{stdout}"
    );
    assert!(
        !stdout.contains("p0") && !stdout.contains("p1") && !stdout.contains("p2"),
        "no survivor may be suspected\n{stdout}"
    );
    assert!(
        stdout.contains("0 violations, 0 divergences"),
        "every decided instance must audit clean\n{stdout}"
    );
    assert!(
        stdout.contains("6 decided"),
        "survivors must keep deciding after the kill\n{stdout}"
    );
}

/// The §3-caveat trichotomy on live sockets: the same scripted proxy
/// delay (Δ < delay < PFD timeout) flagged, degraded, or aborted
/// purely by the configured mode.
#[test]
fn proxy_delta_violation_reproduces_the_trichotomy() {
    let dir = scratch("tri");
    let run = |mode: &str, tag: &str| -> String {
        let (ok, stdout, stderr) = ssp(&[
            "serve-cluster",
            "-n",
            "3",
            "--instances",
            "2",
            "--seed",
            "5",
            "--delta-ms",
            "50",
            "--degrade",
            mode,
            "--proxy-delay-ms",
            "200",
            "--proxy-delay-rate",
            "1",
            "--proxy-seed",
            "9",
            "--fd-timeout-ms",
            "8000",
            "--round-timeout-ms",
            "15000",
            "--dir",
            dir.join(tag).to_str().unwrap(),
        ]);
        assert!(ok, "mode {mode}: cluster errored\n{stdout}\n{stderr}");
        stdout
    };
    let off = run("off", "off");
    assert!(
        off.contains("verdicts: SynchronyViolation"),
        "off mode must flag, not certify\n{off}"
    );
    let rws = run("rws", "rws");
    assert!(
        rws.contains("RWS (degraded at"),
        "rws mode must downgrade mid-run and stay certified\n{rws}"
    );
    assert!(
        rws.contains("2 decided"),
        "degraded runs still decide\n{rws}"
    );
    let abort = run("abort", "abort");
    assert!(
        abort.contains("verdicts: aborted"),
        "abort mode must halt the run\n{abort}"
    );
    assert!(
        abort.contains("0 decided"),
        "aborted instances must decide nothing\n{abort}"
    );
}

/// Bit-determinism of the certified outcome: two runs of the same
/// seeded cluster produce byte-identical deterministic stats JSON and
/// identical verdict lines.
#[test]
fn double_run_is_bit_deterministic() {
    let dir = scratch("det");
    let mut outputs = Vec::new();
    for tag in ["a", "b"] {
        let json = dir.join(format!("{tag}.json"));
        let (ok, stdout, stderr) = ssp(&[
            "serve-cluster",
            "-n",
            "3",
            "--instances",
            "4",
            "--seed",
            "11",
            "--fd-timeout-ms",
            "8000",
            "--stats-out",
            json.to_str().unwrap(),
            "--dir",
            dir.join(tag).to_str().unwrap(),
        ]);
        assert!(ok, "{stdout}\n{stderr}");
        let verdicts = stdout
            .lines()
            .filter(|l| l.starts_with("verdicts:") || l.starts_with("digest:"))
            .collect::<Vec<_>>()
            .join("\n");
        outputs.push((std::fs::read_to_string(&json).unwrap(), verdicts));
    }
    assert_eq!(
        outputs[0].0, outputs[1].0,
        "stats JSON must be byte-identical"
    );
    assert_eq!(
        outputs[0].1, outputs[1].1,
        "verdicts and digest must repeat"
    );
}
