//! E12 — end-to-end runs on the threaded runtime: the same round
//! algorithms, real threads, real channels, real clocks.

use ssp::algos::{EarlyDeciding, FOptFloodSet, FloodSet, FloodSetWs, A1};
use ssp::model::{check_uniform_consensus, check_uniform_consensus_strong, InitialConfig, Round};
use ssp::runtime::{FaultPlan, PlanModel, RuntimeBuilder, RuntimeConfig, ThreadCrash};

mod common;
use common::p;

#[test]
fn floodset_n5_with_two_crashes() {
    let config = InitialConfig::new(vec![9u64, 0, 4, 7, 2]);
    let runtime = RuntimeConfig::ss_flavor(5, 1)
        .with_crash(
            p(1),
            ThreadCrash {
                round: 1,
                after_sends: 3,
                sends_to: None,
            },
        )
        .with_crash(
            p(3),
            ThreadCrash {
                round: 2,
                after_sends: 1,
                sends_to: None,
            },
        );
    let result = RuntimeBuilder::new(&FloodSet, &config)
        .t(2)
        .runtime(runtime)
        .run()
        .unwrap();
    check_uniform_consensus_strong(&result.outcome).unwrap();
    assert_eq!(result.pending_messages, 0, "RS policy drains everything");
}

#[test]
fn early_deciding_failure_free_on_threads() {
    let config = InitialConfig::new(vec![5u64, 2, 8, 6]);
    let result = RuntimeBuilder::new(&EarlyDeciding, &config)
        .t(3)
        .runtime(RuntimeConfig::ss_flavor(4, 3))
        .run()
        .unwrap();
    check_uniform_consensus_strong(&result.outcome).unwrap();
    assert_eq!(result.outcome.latency_degree(), Some(2), "f=0 ⇒ f+2 rounds");
}

#[test]
fn f_opt_with_initial_crashes_decides_round_1_on_threads() {
    let config = InitialConfig::new(vec![5u64, 2, 8]);
    let runtime = RuntimeConfig::ss_flavor(3, 4).with_crash(
        p(2),
        ThreadCrash {
            round: 1,
            after_sends: 0,
            sends_to: None,
        },
    );
    let result = RuntimeBuilder::new(&FOptFloodSet, &config)
        .t(1)
        .runtime(runtime)
        .run()
        .unwrap();
    check_uniform_consensus_strong(&result.outcome).unwrap();
    assert_eq!(
        result.outcome.latency_degree(),
        Some(1),
        "Lat(F_Opt, t) = 1"
    );
}

#[test]
fn a1_decides_after_p1_partial_crash_on_threads() {
    let config = InitialConfig::new(vec![3u64, 8, 9, 5]);
    // p1 reaches itself and p2 before dying; relay completes the run.
    let runtime = RuntimeConfig::ss_flavor(4, 6).with_crash(
        p(0),
        ThreadCrash {
            round: 1,
            after_sends: 2,
            sends_to: None,
        },
    );
    let result = RuntimeBuilder::new(&A1, &config)
        .t(1)
        .runtime(runtime)
        .run()
        .unwrap();
    check_uniform_consensus_strong(&result.outcome).unwrap();
    for (_, o) in result.outcome.iter() {
        if o.is_correct() {
            assert_eq!(o.decision.as_ref().unwrap().0, 3, "v1 wins via relay");
        }
    }
}

#[test]
fn sp_flavor_produces_real_pending_messages() {
    // The §5.3 anomaly from its fixed, documented seed: p1 broadcasts
    // round 1 with both outgoing links scripted slow, decides its own
    // value via self-delivery, then crashes in round 2 before relaying.
    let config = InitialConfig::new(vec![10u64, 11, 12]);
    let plan = FaultPlan::section_5_3();
    let result = RuntimeBuilder::new(&A1, &config).plan(plan).run().unwrap();
    assert!(
        check_uniform_consensus(&result.outcome).is_err(),
        "the §5.3 anomaly must appear: {}",
        result.outcome
    );
    assert_eq!(
        result.outcome.outcome(p(0)).decision,
        Some((10, Round::FIRST))
    );
    assert_eq!(
        result.trace.pending().len(),
        2,
        "both withheld broadcasts are pending messages"
    );
}

#[test]
fn floodset_ws_immune_on_threads() {
    // The exact adversary that defeats A1 leaves FloodSetWs intact.
    let config = InitialConfig::new(vec![10u64, 11, 12]);
    let plan = FaultPlan::section_5_3();
    let result = RuntimeBuilder::new(&FloodSetWs, &config)
        .plan(plan)
        .run()
        .unwrap();
    check_uniform_consensus(&result.outcome).unwrap();
}

#[test]
fn decide_then_crash_is_visible_to_the_checker() {
    // A crash scripted beyond the horizon lets the process finish (and
    // decide) yet marks it faulty — the uniform-agreement quantifier
    // over faulty deciders stays meaningful on the runtime too.
    let config = InitialConfig::new(vec![4u64, 6, 2]);
    let runtime = RuntimeConfig::ss_flavor(3, 21).with_crash(
        p(1),
        ThreadCrash {
            round: 3,
            after_sends: 0,
            sends_to: None,
        },
    );
    let result = RuntimeBuilder::new(&FloodSet, &config)
        .t(1)
        .runtime(runtime)
        .run()
        .unwrap();
    let o = result.outcome.outcome(p(1));
    assert!(o.decision.is_some(), "decided before the scripted crash");
    assert_eq!(o.crashed_in, Some(Round::new(3)));
    check_uniform_consensus_strong(&result.outcome).unwrap();
}

#[test]
fn atomic_commit_runs_on_threads_too() {
    use ssp::commit::{check_nbac, NonTriviality, VoteFlood};
    // All-Yes votes; p2 crashes mid-round-1 after reaching two peers:
    // the SDD-boosted synchronous protocol still commits.
    let config = InitialConfig::new(vec![true, true, true, true]);
    let runtime = RuntimeConfig::ss_flavor(4, 31).with_crash(
        p(1),
        ThreadCrash {
            round: 1,
            after_sends: 3,
            sends_to: None,
        },
    );
    let result = RuntimeBuilder::new(&VoteFlood, &config)
        .t(2)
        .runtime(runtime)
        .run()
        .unwrap();
    check_nbac(&result.outcome, NonTriviality::SddBoosted, true).unwrap();
    for (_, o) in result.outcome.iter() {
        if o.is_correct() {
            assert!(o.decision.as_ref().unwrap().0, "commit");
        }
    }
}

#[test]
fn pending_votes_abort_on_threads() {
    use ssp::commit::{check_nbac, NonTriviality, VoteFloodWs};
    // The SP flavour: p1's vote to p2 is slowed into pending-ness and
    // p1 crashes mid-broadcast — the survivors must abort despite
    // all-Yes votes. Seed 98 derives exactly that plan:
    // crash(p1@r1+2) slow(p1→p2@r1).
    let config = InitialConfig::new(vec![true, true, true]);
    let plan = FaultPlan::from_seed(98, 3, 1, 2, PlanModel::Rws);
    assert_eq!(
        plan.to_string(),
        "plan[seed=98 n=3 t=1 horizon=2 model=RWS crash(p1@r1+2) slow(p1→p2@r1)]"
    );
    let result = RuntimeBuilder::new(&VoteFloodWs, &config)
        .plan(plan)
        .run()
        .unwrap();
    check_nbac(&result.outcome, NonTriviality::Classic, false).unwrap();
    for (_, o) in result.outcome.iter() {
        if o.is_correct() {
            assert!(!o.decision.as_ref().unwrap().0, "abort");
        }
    }
}
