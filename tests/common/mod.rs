//! Helpers shared by the integration suites. Each test binary pulls
//! in what it needs; the rest is dead code by design.
#![allow(dead_code)]

use ssp::model::{InitialConfig, ProcessId};
use ssp::runtime::ChaosConfig;

/// Shorthand for [`ProcessId::new`].
pub fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// The chaos profile the resilience suites run under: 300‰ loss,
/// 100‰ duplication, 50‰ reordering — heavy enough to touch most
/// runs, fully masked by the reliable-delivery layer.
pub const CHAOS: ChaosConfig = ChaosConfig {
    loss_pm: 300,
    dup_pm: 100,
    reorder_pm: 50,
};

/// The three-process configuration every §5.3 scenario runs over:
/// distinct inputs so any agreement violation is observable.
pub fn section_5_3_config() -> InitialConfig<u64> {
    InitialConfig::new(vec![10u64, 11, 12])
}

/// Asserts `actual` matches the golden file under `tests/golden/`, or
/// rewrites the file when `SSP_REGEN_GOLDEN` is set.
pub fn golden_check(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("SSP_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with SSP_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "run log drifted from tests/golden/{name}; if the change is \
         intentional, regenerate with SSP_REGEN_GOLDEN=1"
    );
}
