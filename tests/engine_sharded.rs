//! Integration suite for the sharded multi-group engine.
//!
//! The load-bearing guarantee: **one group is not a new engine.** The
//! pre-refactor `serve()` loop was captured as golden files (stats
//! JSON and per-instance run-log JSONL) before the sharded refactor
//! landed; these tests pin both today's `serve()` and a one-group
//! `serve_sharded()` to those bytes, across a 20-seed × 2-model sweep.
//! On top of that: cross-shard NBAC commit under chaos is seed-
//! deterministic and audit-clean, the per-group aggregate is order-
//! invariant, and a property test checks every submission is applied
//! exactly once or cleanly aborted.

mod common;

use proptest::prelude::*;

use common::golden_check;
use ssp::algos::{CtRounds, A1};
use ssp::engine::{
    serve, serve_sharded, EngineConfig, EngineStats, FaultMode, ShardedConfig, Workload,
    WorkloadConfig,
};
use ssp::runtime::{ChaosConfig, PlanModel};

/// The chaos profile the pre-refactor goldens were captured under.
const GOLDEN_CHAOS: ChaosConfig = ChaosConfig {
    loss_pm: 200,
    dup_pm: 50,
    reorder_pm: 50,
};

/// The pinned single-group configuration of the golden captures:
/// seeded faults plus chaos, 10 instances, 8 clients, batch 8.
fn pinned(model: PlanModel, seed: u64) -> (EngineConfig, Workload) {
    let mut cfg = EngineConfig::new(3, 1, model);
    cfg.instances = 10;
    cfg.seed = seed;
    cfg.batch_max = 8;
    cfg.chaos = Some(GOLDEN_CHAOS);
    let workload = Workload::new(seed, WorkloadConfig::new(8));
    (cfg, workload)
}

/// The sweep configuration: 6 instances over 6 clients, same chaos.
fn sweep(model: PlanModel, seed: u64) -> (EngineConfig, Workload) {
    let mut cfg = EngineConfig::new(3, 1, model);
    cfg.instances = 6;
    cfg.seed = seed;
    cfg.batch_max = 8;
    cfg.chaos = Some(GOLDEN_CHAOS);
    let workload = Workload::new(seed, WorkloadConfig::new(6));
    (cfg, workload)
}

fn logs_jsonl<M: std::fmt::Debug>(logs: &[ssp::model::TaggedRunLog<M>]) -> String {
    let mut out = String::new();
    for log in logs {
        out.push_str(&log.to_jsonl());
    }
    out
}

#[test]
fn refactored_serve_matches_the_pre_refactor_goldens() {
    let (cfg, mut workload) = pinned(PlanModel::Rs, 1106);
    let report = serve(&A1, &cfg, &mut workload).unwrap();
    golden_check("engine_pre_refactor_a1_rs.json", &report.stats.to_json());
    golden_check("engine_pre_refactor_a1_rs.jsonl", &logs_jsonl(&report.logs));

    let (cfg, mut workload) = pinned(PlanModel::Rws, 1307);
    let report = serve(&CtRounds, &cfg, &mut workload).unwrap();
    golden_check("engine_pre_refactor_ct_rws.json", &report.stats.to_json());
    golden_check(
        "engine_pre_refactor_ct_rws.jsonl",
        &logs_jsonl(&report.logs),
    );
}

#[test]
fn one_group_sharded_run_matches_the_same_goldens() {
    let (cfg, mut workload) = pinned(PlanModel::Rs, 1106);
    let report = serve_sharded(&A1, &ShardedConfig::new(cfg, 1), &mut workload).unwrap();
    golden_check(
        "engine_pre_refactor_a1_rs.json",
        &report.groups[0].stats.to_json(),
    );
    golden_check(
        "engine_pre_refactor_a1_rs.jsonl",
        &logs_jsonl(&report.groups[0].logs),
    );
    // The order-invariant aggregate of one group serializes to the
    // very same bytes.
    golden_check(
        "engine_pre_refactor_a1_rs.json",
        &report.stats.aggregate().to_json(),
    );
    assert_eq!(report.stats.cross.submitted, 0);
    assert!(report.cross_violation.is_none());

    let (cfg, mut workload) = pinned(PlanModel::Rws, 1307);
    let report = serve_sharded(&CtRounds, &ShardedConfig::new(cfg, 1), &mut workload).unwrap();
    golden_check(
        "engine_pre_refactor_ct_rws.json",
        &report.groups[0].stats.to_json(),
    );
    golden_check(
        "engine_pre_refactor_ct_rws.jsonl",
        &logs_jsonl(&report.groups[0].logs),
    );
}

#[test]
fn twenty_seed_sweep_matches_the_pre_refactor_engine_for_both_models() {
    let mut lines = String::new();
    for seed in 100..120 {
        let (cfg, mut workload) = sweep(PlanModel::Rs, seed);
        lines.push_str(&serve(&A1, &cfg, &mut workload).unwrap().stats.to_json());
    }
    for seed in 100..120 {
        let (cfg, mut workload) = sweep(PlanModel::Rws, seed);
        lines.push_str(
            &serve(&CtRounds, &cfg, &mut workload)
                .unwrap()
                .stats
                .to_json(),
        );
    }
    golden_check("engine_pre_refactor_sweep.json", &lines);
}

#[test]
fn one_group_sharded_sweep_is_byte_identical_to_serve() {
    let mut lines = String::new();
    for seed in 100..120 {
        let (cfg, mut workload) = sweep(PlanModel::Rs, seed);
        let sharded = serve_sharded(&A1, &ShardedConfig::new(cfg, 1), &mut workload).unwrap();
        lines.push_str(&sharded.groups[0].stats.to_json());
    }
    for seed in 100..120 {
        let (cfg, mut workload) = sweep(PlanModel::Rws, seed);
        let sharded = serve_sharded(&CtRounds, &ShardedConfig::new(cfg, 1), &mut workload).unwrap();
        lines.push_str(&sharded.groups[0].stats.to_json());
    }
    golden_check("engine_pre_refactor_sweep.json", &lines);
}

#[test]
fn one_group_sharded_logs_equal_serve_logs_under_chaos() {
    for seed in [9001u64, 9002] {
        let (cfg, mut workload) = sweep(PlanModel::Rs, seed);
        let direct = serve(&A1, &cfg, &mut workload).unwrap();
        let (cfg, mut workload) = sweep(PlanModel::Rs, seed);
        let sharded = serve_sharded(&A1, &ShardedConfig::new(cfg, 1), &mut workload).unwrap();
        assert_eq!(
            logs_jsonl(&direct.logs),
            logs_jsonl(&sharded.groups[0].logs),
            "seed {seed}: per-instance run logs must match byte for byte"
        );
        assert_eq!(direct.stats.to_json(), sharded.groups[0].stats.to_json());
    }
}

/// A cross-shard configuration: G groups, the given transaction rate,
/// seeded faults plus chaos — the adversarial regime the CI smoke runs.
fn cross(model: PlanModel, seed: u64, shards: usize, rate: f64) -> (ShardedConfig, Workload) {
    let mut engine = EngineConfig::new(3, 1, model);
    engine.instances = 12;
    engine.seed = seed;
    engine.chaos = Some(GOLDEN_CHAOS);
    let mut cfg = ShardedConfig::new(engine, shards);
    cfg.cross_shard_rate = rate;
    let mut wcfg = WorkloadConfig::new(8);
    wcfg.shards = shards;
    wcfg.cross_shard_rate = rate;
    let workload = Workload::new(seed, wcfg);
    (cfg, workload)
}

#[test]
fn cross_shard_chaos_runs_are_deterministic_and_audit_clean() {
    for (model, seed) in [(PlanModel::Rs, 501u64), (PlanModel::Rws, 502)] {
        // The report's message type depends on the algorithm, so map
        // to the shared (stats, violation-free, submitted) shape
        // inside each arm.
        let run = |(cfg, mut workload): (ShardedConfig, Workload)| match model {
            PlanModel::Rs => {
                let r = serve_sharded(&A1, &cfg, &mut workload).unwrap();
                (r.stats, r.cross_violation.is_none(), workload.submitted())
            }
            PlanModel::Rws => {
                let r = serve_sharded(&CtRounds, &cfg, &mut workload).unwrap();
                (r.stats, r.cross_violation.is_none(), workload.submitted())
            }
        };
        let (a, clean, submitted) = run(cross(model, seed, 4, 0.3));
        let (b, _, _) = run(cross(model, seed, 4, 0.3));
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{model:?}: sharded chaos runs replay byte-identically"
        );
        assert!(a.cross.submitted > 0, "{model:?}: no transaction drawn");
        assert_eq!(
            a.cross.committed + a.cross.aborted,
            a.cross.submitted,
            "{model:?}: every transaction resolves"
        );
        assert_eq!(a.cross.nbac_violations, 0, "{model:?}");
        assert!(clean, "{model:?}: NBAC audit must be clean");
        let agg = a.aggregate();
        assert_eq!(agg.audit_violations, 0, "{model:?}");
        assert_eq!(agg.audit_divergences, 0, "{model:?}");
        // Exactly-once over the whole submission stream: singles
        // decided by their group, transactions committed or aborted,
        // the rest still pending in some group's queue.
        let unresolved: u64 = agg.pending_at_shutdown;
        assert!(
            agg.commands_decided + a.cross.committed + a.cross.aborted + unresolved >= submitted,
            "{model:?}: nothing vanished"
        );
    }
}

#[test]
fn aggregate_of_a_real_run_is_group_order_invariant() {
    let (cfg, mut workload) = cross(PlanModel::Rs, 77, 4, 0.25);
    let report = serve_sharded(&A1, &cfg, &mut workload).unwrap();
    let forward = EngineStats::aggregate(&report.stats.groups);
    let mut reversed_groups = report.stats.groups.clone();
    reversed_groups.reverse();
    let mut reversed = EngineStats::aggregate(&reversed_groups);
    // Shape metadata tracks the first group; restore it before the
    // byte comparison — everything else must agree on its own.
    reversed.seed = forward.seed;
    assert_eq!(forward.to_json(), reversed.to_json());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every submission is applied exactly once or cleanly aborted:
    /// over a drained failure-free run, decided singles + resolved
    /// transactions account for the whole stream, and the replicated
    /// stores hold exactly the operations of the decided singles plus
    /// the committed transactions (two ops each) — aborted
    /// transactions leave no trace.
    #[test]
    fn every_submission_applies_exactly_once_or_aborts_cleanly(
        seed in 0u64..500,
        shards in 2usize..=4,
        rate_pm in 100u32..=600,
        clients in 2usize..=6,
    ) {
        let rate = f64::from(rate_pm) / 1000.0;
        let mut engine = EngineConfig::new(3, 1, PlanModel::Rs);
        engine.instances = 60;
        engine.seed = seed;
        engine.faults = FaultMode::FailureFree;
        engine.run_to_drain = true;
        let mut cfg = ShardedConfig::new(engine, shards);
        cfg.cross_shard_rate = rate;
        let mut wcfg = WorkloadConfig::new(clients);
        wcfg.shards = shards;
        wcfg.cross_shard_rate = rate;
        wcfg.commands_per_client = Some(3);
        let mut workload = Workload::new(seed, wcfg);
        let report = serve_sharded(&A1, &cfg, &mut workload).unwrap();

        let agg = report.stats.aggregate();
        let cross = report.stats.cross;
        prop_assert_eq!(
            agg.commands_decided + cross.committed + cross.aborted,
            workload.submitted(),
            "every submission resolved exactly once"
        );
        prop_assert_eq!(cross.submitted, cross.committed + cross.aborted);
        prop_assert_eq!(agg.pending_at_shutdown, 0, "drained run leaves nothing behind");
        prop_assert_eq!(agg.audit_violations, 0);
        prop_assert_eq!(cross.nbac_violations, 0);
        // Store-level exactly-once: each decided single applies one
        // op, each committed transaction exactly two, aborted ones
        // zero — all prepare markers intercepted.
        let applied: u64 = report.groups.iter().map(|g| g.kv.applied()).sum();
        prop_assert_eq!(applied, agg.commands_decided + 2 * cross.committed);
    }
}
