//! E20 — backend conformance: the virtual (discrete-event) clock and
//! the real (OS) clock execute the *same* threaded code, and for every
//! seeded fault plan they must emit byte-identical canonical
//! [`RunLog`](ssp::model::RunLog)s — deliveries, withholds, crashes,
//! closes, in the same order, serialized to the same JSONL bytes.
//!
//! That is the load-bearing claim behind defaulting the runtime to
//! [`Backend::Virtual`]: simulated time is not an approximation of the
//! wall-clock runtime but an exact reproduction of its round-level
//! behaviour, thousands of times faster. The suite pins:
//!
//! * seed sweeps in both models (chaos on for a slice of them),
//! * the §5.3 anomaly seed (519) with its uniform-agreement violation,
//! * the scripted Δ-violation under all three degrade modes,
//! * bit-determinism of virtual-time reruns (proptest).

use proptest::prelude::*;

use ssp::algos::{FloodSet, FloodSetWs, A1};
use ssp::model::{check_uniform_consensus, InitialConfig};
use ssp::runtime::{Backend, DegradeMode, FaultPlan, PlanModel, RuntimeBuilder, SECTION_5_3_SEED};

mod common;
use common::{section_5_3_config, CHAOS};

/// Runs the §5.3 configuration for `algo` under `builder` tweaks on
/// one backend and returns the canonical run log as JSONL.
macro_rules! log_on {
    ($builder:expr, $backend:expr) => {
        $builder
            .clone()
            .backend($backend)
            .run()
            .unwrap()
            .trace
            .run_log()
            .to_jsonl()
    };
}

#[test]
fn rs_seed_sweep_logs_agree_across_backends() {
    let config = InitialConfig::new(vec![7u64, 3, 5]);
    for seed in 0..6 {
        let b = RuntimeBuilder::new(&FloodSet, &config)
            .model(PlanModel::Rs)
            .seed(seed);
        assert_eq!(
            log_on!(b, Backend::Virtual),
            log_on!(b, Backend::Real),
            "RS seed {seed}: virtual and real logs must match byte for byte"
        );
    }
}

#[test]
fn rws_seed_sweep_logs_agree_across_backends() {
    let config = InitialConfig::new(vec![7u64, 3, 5]);
    for seed in 0..6 {
        let b = RuntimeBuilder::new(&FloodSetWs, &config)
            .model(PlanModel::Rws)
            .seed(seed);
        assert_eq!(
            log_on!(b, Backend::Virtual),
            log_on!(b, Backend::Real),
            "RWS seed {seed}: virtual and real logs must match byte for byte"
        );
    }
}

#[test]
fn chaos_sweep_logs_agree_across_backends() {
    let config = InitialConfig::new(vec![4u64, 6, 2]);
    for seed in 0..3 {
        let b = RuntimeBuilder::new(&FloodSet, &config)
            .model(PlanModel::Rs)
            .chaos(Some(CHAOS))
            .seed(seed);
        assert_eq!(
            log_on!(b, Backend::Virtual),
            log_on!(b, Backend::Real),
            "chaos seed {seed}: the reliable layer masks chaos identically on both clocks"
        );
    }
}

#[test]
fn section_5_3_seed_agrees_across_backends_and_keeps_the_anomaly() {
    let config = section_5_3_config();
    let b = RuntimeBuilder::new(&A1, &config)
        .model(PlanModel::Rws)
        .seed(SECTION_5_3_SEED);
    let virt = b.clone().backend(Backend::Virtual).run().unwrap();
    let real = b.clone().backend(Backend::Real).run().unwrap();
    assert_eq!(
        virt.trace.run_log().to_jsonl(),
        real.trace.run_log().to_jsonl(),
        "seed {SECTION_5_3_SEED}: the §5.3 run log is backend-invariant"
    );
    for result in [&virt, &real] {
        assert!(
            check_uniform_consensus(&result.outcome).is_err(),
            "the uniform-agreement violation appears on both clocks"
        );
        assert_eq!(result.trace.pending().len(), 2, "both broadcasts pending");
    }
}

#[test]
fn delta_violation_agrees_across_backends_in_all_degrade_modes() {
    let config = section_5_3_config();
    for mode in [DegradeMode::Off, DegradeMode::Rws, DegradeMode::Abort] {
        let plan = FaultPlan::delta_violation().with_degrade(mode);
        let b = RuntimeBuilder::new(&A1, &config).plan(plan);
        let virt = b.clone().backend(Backend::Virtual).run().unwrap();
        let real = b.clone().backend(Backend::Real).run().unwrap();
        assert_eq!(
            virt.trace.run_log().to_jsonl(),
            real.trace.run_log().to_jsonl(),
            "degrade={mode}: the Δ-violation log is backend-invariant"
        );
        assert_eq!(
            virt.synchrony.violated, real.synchrony.violated,
            "degrade={mode}: both clocks trip the watchdog"
        );
        assert_eq!(virt.trace.aborted, real.trace.aborted, "degrade={mode}");
        assert_eq!(
            virt.trace.degraded_at, real.trace.degraded_at,
            "degrade={mode}"
        );
    }
}

proptest! {
    // Virtual runs are cheap (no real sleeps), so a proptest sweep is
    // affordable where a real-clock one would not be.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn virtual_runs_are_bit_deterministic_across_reruns(
        seed in 0u64..5_000,
        rws in (0u8..2).prop_map(|b| b == 1),
    ) {
        let config = section_5_3_config();
        let model = if rws { PlanModel::Rws } else { PlanModel::Rs };
        let jsonl = || {
            if rws {
                let b = RuntimeBuilder::new(&FloodSetWs, &config).model(model).seed(seed);
                log_on!(b, Backend::Virtual)
            } else {
                let b = RuntimeBuilder::new(&FloodSet, &config).model(model).seed(seed);
                log_on!(b, Backend::Virtual)
            }
        };
        prop_assert_eq!(jsonl(), jsonl(), "virtual time is bit-deterministic");
    }
}
