//! Equivalence suite for the symmetry reduction: for every gated
//! algorithm and every small space, the reduced sweep must reach the
//! *same verdict* as the full sweep, represent the *same number* of
//! runs, and report the *same latency functionals* — the reduction is
//! an optimization, never an approximation.
//!
//! A property-based layer checks the algebra underneath: configuration
//! canonicalization is idempotent and constant on orbits, and orbit
//! weights partition the full space.

use proptest::prelude::*;

use ssp::algos::{FloodSet, FloodSetWs, A1};
use ssp::lab::symmetry::{all_permutations, pending_orbit, schedule_orbit, stabilizer};
use ssp::lab::{crash_schedules, RoundModel, Symmetry, ValidityMode, Verifier};
use ssp::model::{canonical_full_classes, canonical_value_classes, InitialConfig};

/// Reduced and unreduced sweeps agree on verdict, coverage and latency
/// for the process-symmetric algorithms, across models and (n, t).
#[test]
fn reduced_and_full_sweeps_agree_for_symmetric_algorithms() {
    for (n, t) in [(2usize, 1usize), (3, 1), (3, 2)] {
        for model in [RoundModel::Rs, RoundModel::Rws] {
            let full = Verifier::new(&FloodSetWs)
                .n(n)
                .t(t)
                .domain(&[0u64, 1])
                .mode(ValidityMode::Strong)
                .model(model)
                .collect_latency()
                .run();
            let reduced = Verifier::new(&FloodSetWs)
                .n(n)
                .t(t)
                .domain(&[0u64, 1])
                .mode(ValidityMode::Strong)
                .model(model)
                .symmetry(Symmetry::Full)
                .collect_latency()
                .run();
            assert_eq!(full.is_ok(), reduced.is_ok(), "verdict at n={n} t={t}");
            assert_eq!(
                reduced.represented, full.runs,
                "orbit weights cover the space at n={n} t={t}"
            );
            assert!(
                reduced.runs < full.runs,
                "reduction must save work at n={n} t={t}: {} vs {}",
                reduced.runs,
                full.runs
            );
            let (fl, rl) = (full.latency.unwrap(), reduced.latency.unwrap());
            assert_eq!(fl.runs, rl.runs, "weighted run totals at n={n} t={t}");
            assert_eq!(fl.lat(), rl.lat());
            assert_eq!(fl.lat_max_over_configs(), rl.lat_max_over_configs());
            assert_eq!(fl.capital_lambda(), rl.capital_lambda());
            assert_eq!(fl.lat_at_most_faults(t), rl.lat_at_most_faults(t));
            assert_eq!(fl.max_faults_seen(), rl.max_faults_seen());
        }
    }
}

/// FloodSet's RWS violation (E4) survives the reduction: symmetry must
/// never canonicalize a bug away.
#[test]
fn reduced_sweep_still_finds_the_floodset_rws_violation() {
    for t in [1usize, 2] {
        let full = Verifier::new(&FloodSet)
            .n(3)
            .t(t)
            .domain(&[0u64, 1])
            .model(RoundModel::Rws)
            .run();
        let reduced = Verifier::new(&FloodSet)
            .n(3)
            .t(t)
            .domain(&[0u64, 1])
            .model(RoundModel::Rws)
            .symmetry(Symmetry::Full)
            .run();
        let (f, r) = (full.expect_violation(), reduced.expect_violation());
        assert!(
            !r.pending.is_empty(),
            "the reduced counterexample still needs pending messages"
        );
        // Both counterexamples replay to genuine violations of the same
        // clause (the reduced one is the canonical representative, not
        // necessarily the identical run).
        assert_eq!(
            std::mem::discriminant(&f.violation),
            std::mem::discriminant(&r.violation)
        );
    }
}

/// A1 (value-symmetric only): the values-level reduction preserves both
/// the RS pass and the RWS failure.
#[test]
fn value_reduction_is_sound_for_a1() {
    let rs = Verifier::new(&A1)
        .n(3)
        .t(1)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Strong)
        .symmetry_values()
        .run();
    rs.expect_ok();
    let full_rs = Verifier::new(&A1)
        .n(3)
        .t(1)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Strong)
        .run();
    assert_eq!(rs.represented, full_rs.runs, "value orbits cover the space");

    let rws = Verifier::new(&A1)
        .n(3)
        .t(1)
        .domain(&[0u64, 1])
        .model(RoundModel::Rws)
        .symmetry_values()
        .run();
    rws.expect_violation();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Canonicalization is idempotent: canon(canon(C)) = canon(C).
    #[test]
    fn canonicalization_is_idempotent(inputs in proptest::collection::vec(0u64..4, 2..=4)) {
        let domain: Vec<u64> = (0..4).collect();
        let config = InitialConfig::new(inputs);
        let canon = config.canonical_full(&domain);
        prop_assert_eq!(canon.canonical_full(&domain), canon);
    }

    /// Canonicalization is orbit-invariant: permuting processes and/or
    /// monotonically relabeling values never changes the canonical form.
    #[test]
    fn canonicalization_is_orbit_invariant(
        inputs in proptest::collection::vec(0u64..3, 3),
        perm_index in 0usize..6,
        shift in 0u64..5,
    ) {
        let domain: Vec<u64> = (0..8).collect();
        let config = InitialConfig::new(inputs);
        let perms = all_permutations(3);
        let permuted = config.permuted(&perms[perm_index]);
        prop_assert_eq!(
            config.canonical_full(&domain),
            permuted.canonical_full(&domain)
        );
        // A monotone relabeling (here: shift all values up) is also
        // quotiented out.
        let shifted = InitialConfig::new(
            config.inputs().iter().map(|v| v + shift).collect::<Vec<_>>()
        );
        prop_assert_eq!(
            config.canonical_full(&domain),
            shifted.canonical_full(&domain)
        );
    }

    /// Orbit weights from the class enumerations partition the full
    /// configuration space: Σ |orbit| = |domain|^n.
    #[test]
    fn class_weights_partition_the_config_space(
        n in 2usize..=4,
        d in 2usize..=3,
    ) {
        let domain: Vec<u64> = (0..d as u64).collect();
        let space = (d as u64).pow(n as u32);
        let value_sum: u64 = canonical_value_classes(n, &domain).iter().map(|&(_, w)| w).sum();
        prop_assert_eq!(value_sum, space);
        let full_sum: u64 = canonical_full_classes(n, &domain).iter().map(|&(_, w)| w).sum();
        prop_assert_eq!(full_sum, space);
    }

    /// Schedule orbit weights under a stabilizer partition the schedule
    /// set: Σ over canonical schedules of |orbit| = |schedules|.
    #[test]
    fn schedule_orbits_partition_under_any_stabilizer(
        inputs in proptest::collection::vec(0u64..2, 3),
        t in 1usize..=2,
    ) {
        let group = stabilizer(&inputs);
        let schedules = crash_schedules(3, t, 3);
        let mut covered = 0u64;
        for s in &schedules {
            if let Some((weight, stab)) = schedule_orbit(s, &group) {
                covered += weight;
                prop_assert_eq!(weight as usize * stab.len(), group.len(), "orbit–stabilizer");
            }
        }
        prop_assert_eq!(covered as usize, schedules.len());
    }

    /// Pending orbit weights under a schedule stabilizer partition each
    /// schedule's pending-choice set.
    #[test]
    fn pending_orbits_partition_under_schedule_stabilizers(
        inputs in proptest::collection::vec(0u64..2, 3),
        schedule_index in 0usize..50,
    ) {
        let group = stabilizer(&inputs);
        let schedules = crash_schedules(3, 2, 3);
        let schedule = &schedules[schedule_index % schedules.len()];
        if let Some((_, stab)) = schedule_orbit(schedule, &group) {
            let pendings = ssp::lab::pending_choices(schedule, 2);
            let mut covered = 0u64;
            for p in &pendings {
                if let Some(w) = pending_orbit(p, &stab) {
                    covered += w;
                }
            }
            prop_assert_eq!(covered as usize, pendings.len());
        }
    }
}
