//! `ssp` — **S**ynchronous **S**ystem vs. asynchronous system with a
//! **P**erfect failure detector.
//!
//! An executable reproduction of *“Synchronous System and Perfect
//! Failure Detector: solvability and efficiency issues”*
//! (B. Charron-Bost, R. Guerraoui, A. Schiper — DSN 2000).
//!
//! The paper compares the synchronous model `SS` with the asynchronous
//! model augmented with a perfect failure detector `SP`, and shows the
//! synchronous model is *strictly stronger* twice over:
//!
//! 1. **Solvability** — the Strongly Dependent Decision problem is
//!    solvable in `SS` ([`algos::SsSddReceiver`]) but in `SP` every
//!    candidate falls to the Theorem 3.1 run-surgery adversary
//!    ([`lab::refute`]);
//! 2. **Efficiency** — in round form (`RS` vs `RWS`), uniform
//!    consensus decides at round 1 of failure-free runs in `RS`
//!    ([`algos::A1`], `Λ(A1) = 1`) while every `RWS` algorithm needs
//!    `Λ ≥ 2` ([`lab::lower_bound`]).
//!
//! # Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`model`] | processes, time, failure patterns, problem specs |
//! | [`fd`] | failure-detector histories, classes, oracles, timeouts |
//! | [`sim`] | step-level executors for async / `SS` / `SP` |
//! | [`rounds`] | the `RS` and `RWS` round models + emulations |
//! | [`algos`] | FloodSet family, `A1`, SDD, early deciding |
//! | [`lab`] | exhaustive checking, latency metrics, impossibility |
//! | [`runtime`] | threads + channels: the models in wall-clock form |
//! | [`commit`] | atomic commit and the commit-rate experiment |
//! | [`engine`] | replicated state machine: repeated consensus as a service |
//!
//! # Quickstart
//!
//! ```
//! use ssp::algos::A1;
//! use ssp::model::{check_uniform_consensus_strong, InitialConfig};
//! use ssp::rounds::{run_rs, CrashSchedule};
//!
//! // Three processes, one tolerated crash, distinct proposals.
//! let config = InitialConfig::new(vec![30u64, 10, 20]);
//! let outcome = run_rs(&A1, &config, 1, &CrashSchedule::none(3));
//! check_uniform_consensus_strong(&outcome)?;
//! assert_eq!(outcome.latency_degree(), Some(1)); // Λ(A1) = 1 in RS
//! # Ok::<(), ssp::model::ConsensusViolation<u64>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ssp_algos as algos;
pub use ssp_commit as commit;
pub use ssp_engine as engine;
pub use ssp_explore as explore;
pub use ssp_fd as fd;
pub use ssp_gateway as gateway;
pub use ssp_lab as lab;
pub use ssp_model as model;
pub use ssp_rounds as rounds;
pub use ssp_runtime as runtime;
pub use ssp_sim as sim;
