//! `ssp` — command-line front end to the reproduction.
//!
//! ```text
//! ssp latency   [-n N] [-t T]                      lat/Lat/Λ table (§5.2)
//! ssp verify    <algo> <rs|rws> [-n N] [-t T] [--threads K] [--sym off|values|full]
//! ssp sample    <algo> <rs|rws> [-n N] [-t T] [--trials K] [--seed S]
//! ssp refute-sdd [--patience K]                    Theorem 3.1, mechanized
//! ssp commit    [--trials K] [--crash-prob P]      §3 commit-rate gap
//! ssp heartbeat [-n N] [--phi F] [--delta D]       timeouts implement P
//! ssp emulation [-n N] [--phi F] [--delta D] [-r R] §4.1 step budgets
//! ssp runtime-fuzz [<algo> <rs|rws>] [--seed-range A..B] [-n N] [-t T] [--backend virtual|real]
//! ssp trace-dump [<algo> <rs|rws>] [--seed S] [--backend virtual|real] [--out F] | --diff F1 F2
//! ssp serve     <algo> [rs|rws] [--clients K] [--instances I] [--seed S] [--backend virtual|real] [--chaos ...]
//! ssp serve     a1 rs --node I --listen ADDR --peers A0,A1,.. [--report F] [--fd-timeout-ms MS] [--delta-ms MS]
//! ssp serve-cluster [-n N] [--instances I] [--seed S] [--kill9 NODE] [--kill-at K] [--proxy-delay-ms MS] [--degrade M]
//! ssp explore   [<algo> <rs|rws>] [--n N] [--t T] [--inputs v1,v2,..] [--sym off|full] [--limit K]
//! ```
//!
//! Algorithms: `floodset`, `floodset-ws`, `c-opt`, `c-opt-ws`, `f-opt`,
//! `f-opt-ws`, `a1`, `ct`, `early`, `early-ws`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use ssp::algos::{
    COptFloodSet, COptFloodSetWs, CtRounds, EarlyDeciding, EarlyDecidingWs, FOptFloodSet,
    FOptFloodSetWs, FloodSet, FloodSetWs, A1,
};
use ssp::commit::{commit_rate_experiment, CommitWorkload};
use ssp::engine::{
    rate_pm, run_cluster, serve, serve_node_to_file, serve_node_with, serve_sharded, ClusterConfig,
    EngineConfig, EngineCrash, FaultMode, GatewayNodeConfig, GatewaySpec, KillSpec, NodeConfig,
    ProxySpec, ShardedConfig, Workload, WorkloadConfig,
};
use ssp::explore::Explorer;
use ssp::fd::classify;
use ssp::gateway::{run_inproc_load, run_load, InprocLoadConfig, LoadConfig, LoadMode};
use ssp::lab::impossibility::candidates::{PatientWait, WaitOrSuspect};
use ssp::lab::report::Table;
use ssp::lab::{
    check_threaded_run, fuzz_runtime, refute, run_heartbeat_experiment, LatencyAggregator,
    RoundModel, RunVerdict, SampleSpace, Symmetry, ValidityMode, Verification, Verifier,
};
use ssp::model::{InitialConfig, RunLog};
use ssp::rounds::{cumulative_round_budget, RoundAlgorithm};
use ssp::runtime::{
    Backend, ChaosConfig, ConfigError, DegradeMode, FaultPlan, PlanModel, RuntimeBuilder,
    ThreadCrash, SECTION_5_3_SEED,
};

/// Flags that take no value: their presence means `true`.
const BOOLEAN_FLAGS: &[&str] = &["chaos", "delta-violation", "failure-free", "inproc"];

/// Minimal flag parser: `--key value` / `--key=value` / `-k value`
/// pairs after the positional arguments, plus valueless boolean flags
/// ([`BOOLEAN_FLAGS`]).
#[derive(Debug, Default)]
struct Flags {
    positional: Vec<String>,
    pairs: Vec<(String, String)>,
}

fn parse_args(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::default();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(key) = arg.strip_prefix('-') {
            let key = key.strip_prefix('-').unwrap_or(key);
            if let Some((key, value)) = key.split_once('=') {
                flags.pairs.push((key.to_string(), value.to_string()));
            } else if BOOLEAN_FLAGS.contains(&key) {
                flags.pairs.push((key.to_string(), "true".to_string()));
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                flags.pairs.push((key.to_string(), value.clone()));
            }
        } else {
            flags.positional.push(arg.clone());
        }
    }
    Ok(flags)
}

impl Flags {
    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number {v:?}")),
        }
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number {v:?}")),
        }
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number {v:?}")),
        }
    }

    fn is_set(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// A probability flag, converted to the chaos plane's per-mille
    /// integer rate.
    fn rate_pm_or(&self, key: &str, default_pm: u16) -> Result<u16, String> {
        match self.get(key) {
            None => Ok(default_pm),
            Some(v) => {
                let p: f64 = v.parse().map_err(|_| format!("--{key}: bad rate {v:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("--{key}: rate must be in 0..=1, got {v}"));
                }
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Ok((p * 1000.0).round() as u16)
            }
        }
    }
}

/// Dispatches an algorithm name to a monomorphized callback.
macro_rules! with_algo {
    ($name:expr, $algo:ident => $body:expr) => {
        match $name {
            "floodset" => {
                let $algo = FloodSet;
                Ok($body)
            }
            "floodset-ws" => {
                let $algo = FloodSetWs;
                Ok($body)
            }
            "c-opt" => {
                let $algo = COptFloodSet;
                Ok($body)
            }
            "c-opt-ws" => {
                let $algo = COptFloodSetWs;
                Ok($body)
            }
            "f-opt" => {
                let $algo = FOptFloodSet;
                Ok($body)
            }
            "f-opt-ws" => {
                let $algo = FOptFloodSetWs;
                Ok($body)
            }
            "a1" => {
                let $algo = A1;
                Ok($body)
            }
            "ct" => {
                let $algo = CtRounds;
                Ok($body)
            }
            "early" => {
                let $algo = EarlyDeciding;
                Ok($body)
            }
            "early-ws" => {
                let $algo = EarlyDecidingWs;
                Ok($body)
            }
            other => Err(format!(
                "unknown algorithm {other:?} (try: floodset, floodset-ws, c-opt, c-opt-ws, f-opt, f-opt-ws, a1, ct, early, early-ws)"
            )),
        }
    };
}

/// Like [`with_algo!`] but only over the process-symmetric algorithms
/// (everything except `a1`, whose round-1/round-2 roles are hard-coded
/// to `p1`/`p2`), so the body may call `Verifier::symmetry`.
macro_rules! with_symmetric_algo {
    ($name:expr, $algo:ident => $body:expr) => {
        match $name {
            "floodset" => {
                let $algo = FloodSet;
                Ok($body)
            }
            "floodset-ws" => {
                let $algo = FloodSetWs;
                Ok($body)
            }
            "c-opt" => {
                let $algo = COptFloodSet;
                Ok($body)
            }
            "c-opt-ws" => {
                let $algo = COptFloodSetWs;
                Ok($body)
            }
            "f-opt" => {
                let $algo = FOptFloodSet;
                Ok($body)
            }
            "f-opt-ws" => {
                let $algo = FOptFloodSetWs;
                Ok($body)
            }
            "early" => {
                let $algo = EarlyDeciding;
                Ok($body)
            }
            "early-ws" => {
                let $algo = EarlyDecidingWs;
                Ok($body)
            }
            "a1" => Err(
                "a1 is not process-symmetric (p1/p2 play fixed roles); use --sym values or --sym off"
                    .to_string(),
            ),
            "ct" => Err(
                "ct is not process-symmetric (coordinators rotate by rank); use --sym values or --sym off"
                    .to_string(),
            ),
            other => Err(format!(
                "unknown algorithm {other:?} (try: floodset, floodset-ws, c-opt, c-opt-ws, f-opt, f-opt-ws, a1, ct, early, early-ws)"
            )),
        }
    };
}

fn cmd_latency(flags: &Flags) -> Result<(), String> {
    let n = flags.usize_or("n", 3)?;
    let t = flags.usize_or("t", 1)?;
    let mut table = Table::new(vec!["algorithm", "model", "runs", "lat", "Lat", "Λ"]);
    let fmt = |v: Option<u32>| v.map_or("-".into(), |x| x.to_string());
    // Symmetric algorithms sweep only canonical orbit representatives;
    // the orbit-weighted aggregator makes the table exact regardless.
    macro_rules! row {
        ($algo:expr, $model:expr, $verifier:expr) => {{
            let v: Verification<u64> = $verifier.collect_latency().run();
            let agg = v.latency.expect("collect_latency was requested");
            table.row(vec![
                RoundAlgorithm::<u64>::name(&$algo).to_string(),
                $model.to_string(),
                agg.runs.to_string(),
                fmt(agg.lat()),
                fmt(agg.lat_max_over_configs()),
                fmt(agg.capital_lambda()),
            ]);
        }};
    }
    macro_rules! rs_row {
        ($algo:expr) => {
            row!(
                $algo,
                "RS",
                base_verifier(&$algo, RoundModel::Rs, n, t, 1).symmetry(Symmetry::Full)
            )
        };
    }
    macro_rules! rws_row {
        ($algo:expr) => {
            row!(
                $algo,
                "RWS",
                base_verifier(&$algo, RoundModel::Rws, n, t, 1).symmetry(Symmetry::Full)
            )
        };
    }
    rs_row!(FloodSet);
    rws_row!(FloodSetWs);
    rs_row!(COptFloodSet);
    rws_row!(COptFloodSetWs);
    rs_row!(FOptFloodSet);
    rws_row!(FOptFloodSetWs);
    if t == 1 {
        // A1 is value- but not process-symmetric: values-only reduction.
        row!(
            A1,
            "RS",
            base_verifier(&A1, RoundModel::Rs, n, t, 1).symmetry_values()
        );
    }
    rs_row!(EarlyDeciding);
    rws_row!(EarlyDecidingWs);
    println!("{table}");
    Ok(())
}

/// The shared front half of an exhaustive CLI sweep.
fn base_verifier<A>(
    algo: &A,
    model: RoundModel,
    n: usize,
    t: usize,
    threads: usize,
) -> Verifier<'_, u64, A>
where
    A: RoundAlgorithm<u64> + Sync,
{
    Verifier::new(algo)
        .n(n)
        .t(t)
        .domain(BINARY)
        .mode(ValidityMode::Strong)
        .model(model)
        .threads(threads)
}

const BINARY: &[u64] = &[0, 1];

fn cmd_verify(flags: &Flags) -> Result<(), String> {
    const USAGE: &str =
        "usage: ssp verify <algo> <rs|rws> [-n N] [-t T] [--threads K] [--sym off|values|full]";
    let algo_name = flags.positional.get(1).ok_or(USAGE)?.as_str();
    let model_name = flags.positional.get(2).ok_or(USAGE)?.as_str();
    let model = match model_name {
        "rs" => RoundModel::Rs,
        "rws" => RoundModel::Rws,
        other => return Err(format!("unknown model {other:?} (rs or rws)")),
    };
    let n = flags.usize_or("n", 3)?;
    let t = flags.usize_or("t", 1)?;
    let threads = flags.usize_or("threads", 1)?;
    if threads == 0 {
        return Err("--threads: at least one worker required".to_string());
    }
    let verification: Verification<u64> = match flags.get("sym").unwrap_or("off") {
        "off" => with_algo!(algo_name, algo => {
            base_verifier(&algo, model, n, t, threads).run()
        })?,
        "values" => with_algo!(algo_name, algo => {
            base_verifier(&algo, model, n, t, threads).symmetry_values().run()
        })?,
        "full" => with_symmetric_algo!(algo_name, algo => {
            base_verifier(&algo, model, n, t, threads).symmetry(Symmetry::Full).run()
        })?,
        other => {
            return Err(format!(
                "--sym: unknown setting {other:?} (off, values or full)"
            ))
        }
    };
    match &verification.counterexample {
        None => {
            if verification.represented > verification.runs {
                println!(
                    "{algo_name} in {model_name}: OK over {} canonical runs representing {} \
                     (n={n}, t={t})",
                    verification.runs, verification.represented
                );
            } else {
                println!(
                    "{algo_name} in {model_name}: OK over {} exhaustively enumerated runs \
                     (n={n}, t={t})",
                    verification.runs
                );
            }
        }
        Some(cex) => {
            println!(
                "{algo_name} in {model_name}: VIOLATION after {} runs (n={n}, t={t})\n\n{cex}",
                verification.runs
            );
        }
    }
    Ok(())
}

fn cmd_sample(flags: &Flags) -> Result<(), String> {
    let algo_name = flags
        .positional
        .get(1)
        .ok_or("usage: ssp sample <algo> <rs|rws> [-n N] [-t T] [--trials K] [--seed S]")?
        .as_str();
    let model = flags
        .positional
        .get(2)
        .ok_or("usage: ssp sample <algo> <rs|rws> [-n N] [-t T] [--trials K] [--seed S]")?
        .as_str();
    let n = flags.usize_or("n", 5)?;
    let t = flags.usize_or("t", 2)?;
    let trials = flags.u64_or("trials", 5_000)?;
    let seed = flags.u64_or("seed", 42)?;
    let model_enum = match model {
        "rs" => RoundModel::Rs,
        "rws" => RoundModel::Rws,
        other => return Err(format!("unknown model {other:?} (rs or rws)")),
    };
    let space = SampleSpace::adversarial(n, t);
    let v: Verification<u64> = with_algo!(algo_name, algo => {
        Verifier::new(&algo)
            .n(n)
            .t(t)
            .domain(&[0u64, 1, 2])
            .mode(ValidityMode::Strong)
            .model(model_enum)
            .sample(trials, seed)
            .sample_space(space)
            .run()
    })?;
    match &v.counterexample {
        None => println!(
            "{algo_name} in {model}: OK over {} sampled runs (n={n}, t={t}, seed {seed}); Λ over samples = {}",
            v.runs,
            v.latency
                .as_ref()
                .and_then(LatencyAggregator::capital_lambda)
                .map_or_else(|| "-".to_string(), |x| x.to_string())
        ),
        Some(cex) => println!(
            "{algo_name} in {model}: VIOLATION at sampled run #{}\n\n{cex}",
            v.runs
        ),
    }
    Ok(())
}

fn cmd_refute_sdd(flags: &Flags) -> Result<(), String> {
    let patience = flags.u64_or("patience", 0)?;
    if patience == 0 {
        println!("{}", refute(&WaitOrSuspect, 10_000));
    } else {
        println!("{}", refute(&PatientWait(patience), 100_000));
    }
    Ok(())
}

fn cmd_commit(flags: &Flags) -> Result<(), String> {
    let n = flags.usize_or("n", 4)?;
    let t = flags.usize_or("t", 2)?;
    let trials = flags.u64_or("trials", 2_000)?;
    let crash_prob = flags.f64_or("crash-prob", 0.5)?;
    let workload = CommitWorkload::all_yes(n, t, crash_prob);
    let report = commit_rate_experiment(&workload, trials, 0xC0FFEE);
    println!(
        "all-Yes commit rates over {trials} adversarial scenarios (n={n}, t={t}, crash-prob {crash_prob}):"
    );
    println!("  RS  (SS side):  {:.3}", report.rs_rate());
    println!("  RWS (SP side):  {:.3}", report.rws_rate());
    println!(
        "  gap runs (RS committed, RWS aborted): {}",
        report.gap_runs
    );
    Ok(())
}

fn cmd_heartbeat(flags: &Flags) -> Result<(), String> {
    let n = flags.usize_or("n", 3)?;
    let phi = flags.u64_or("phi", 1)?;
    let delta = flags.u64_or("delta", 1)?;
    let mut crash = vec![None; n];
    if n > 1 {
        crash[1] = Some(5);
    }
    let exp = run_heartbeat_experiment(n, phi, delta, &crash, 2_000);
    let props = classify(&exp.pattern, &exp.history, exp.horizon);
    println!("heartbeats + (Φ+1)(n−1)+Δ timeout in SS(Φ={phi}, Δ={delta}), n={n}:");
    println!("  scenario: {}", exp.pattern);
    println!("  classification: {props}");
    println!(
        "  ⇒ perfect failure detection, as §3 promises: {}",
        props.is_perfect()
    );
    Ok(())
}

fn cmd_emulation(flags: &Flags) -> Result<(), String> {
    let n = flags.usize_or("n", 3)?;
    let phi = flags.u64_or("phi", 1)?;
    let delta = flags.u64_or("delta", 1)?;
    let rounds = flags.u64_or("r", 5)? as u32;
    let mut table = Table::new(vec![
        "round r",
        "K_r (cumulative steps)",
        "k_r (null steps)",
    ]);
    for r in 1..=rounds {
        let k_r = cumulative_round_budget(phi, delta, n, r);
        let k_prev = cumulative_round_budget(phi, delta, n, r - 1);
        table.row(vec![
            r.to_string(),
            k_r.to_string(),
            (k_r - k_prev - n as u64).to_string(),
        ]);
    }
    println!("RS-on-SS emulation budget, n={n}, Φ={phi}, Δ={delta} (§4.1's k(n,Φ,Δ,r)):\n");
    println!("{table}");
    Ok(())
}

/// Parses a half-open `A..B` seed range.
fn parse_seed_range(s: &str) -> Result<std::ops::Range<u64>, String> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| format!("--seed-range: expected A..B, got {s:?}"))?;
    let start: u64 = a
        .parse()
        .map_err(|_| format!("--seed-range: bad start {a:?}"))?;
    let end: u64 = b
        .parse()
        .map_err(|_| format!("--seed-range: bad end {b:?}"))?;
    if start >= end {
        return Err(format!("--seed-range: empty range {s:?}"));
    }
    Ok(start..end)
}

/// Parses `--backend virtual|real` (default virtual: discrete-event
/// time, thousands of seeds per second, byte-identical run logs).
fn parse_backend(flags: &Flags) -> Result<Backend, String> {
    match flags.get("backend") {
        None => Ok(Backend::Virtual),
        Some(v) => v.parse::<Backend>().map_err(|e| format!("--backend: {e}")),
    }
}

/// Parses `--degrade=rws|abort|off` (default off).
fn parse_degrade(flags: &Flags) -> Result<DegradeMode, String> {
    match flags.get("degrade").unwrap_or("off") {
        "off" => Ok(DegradeMode::Off),
        "rws" => Ok(DegradeMode::Rws),
        "abort" => Ok(DegradeMode::Abort),
        other => Err(format!(
            "--degrade: unknown mode {other:?} (off, rws or abort)"
        )),
    }
}

/// Parses the chaos knobs: `--chaos` enables default rates; any of
/// `--loss`, `--dup`, `--reorder` (fractions in `0..=1`) implies it.
fn parse_chaos(flags: &Flags) -> Result<Option<ChaosConfig>, String> {
    let any_rate = flags.is_set("loss") || flags.is_set("dup") || flags.is_set("reorder");
    if !flags.is_set("chaos") && !any_rate {
        return Ok(None);
    }
    Ok(Some(ChaosConfig {
        loss_pm: flags.rate_pm_or("loss", 100)?,
        dup_pm: flags.rate_pm_or("dup", 50)?,
        reorder_pm: flags.rate_pm_or("reorder", 50)?,
    }))
}

/// The seeded Δ-violation scenario (`runtime-fuzz --delta-violation`):
/// an `RS` run whose network breaks its own bound, under the chosen
/// degradation mode. Deterministic: same flags, same verdict.
fn cmd_delta_violation(degrade: DegradeMode, backend: Backend) -> Result<(), String> {
    let plan = FaultPlan::delta_violation().with_degrade(degrade);
    let config = InitialConfig::new(vec![10u64, 11, 12]);
    let result = RuntimeBuilder::new(&A1, &config)
        .plan(plan.clone())
        .backend(backend)
        .run()
        .map_err(|e| format!("invalid runtime configuration: {e}"))?;
    let run = check_threaded_run(&A1, &config, 1, &result, ValidityMode::Uniform)
        .map_err(|d| format!("delta-violation run diverged from the models: {d}"))?;
    println!("delta-violation a1 in RS, degrade={degrade}: {plan}");
    println!(
        "  watchdog: violated={} events={} degraded_at={:?} aborted={}",
        result.synchrony.violated,
        result.synchrony.events.len(),
        result.synchrony.degraded_at,
        result.synchrony.aborted,
    );
    println!("  verdict: {}", run.verdict);
    match run.verdict {
        RunVerdict::SynchronyViolation => {
            let violation = run
                .violation
                .ok_or("expected the flagged run to violate uniform agreement")?;
            println!("  spec: {violation}");
            println!("  ⇒ Δ broke and nothing degraded: §5.3 smuggled into \"RS\", flagged");
        }
        RunVerdict::DegradedRws { at } => {
            println!("  ⇒ downgraded at {at}; certified as an admissible RWS run");
        }
        RunVerdict::Aborted => {
            println!("  ⇒ run stopped undecided at the first over-Δ wire");
        }
        RunVerdict::Rs | RunVerdict::Rws => {
            return Err(format!(
                "scenario failed to trip the watchdog (verdict {})",
                run.verdict
            ))
        }
    }
    Ok(())
}

fn cmd_runtime_fuzz(flags: &Flags) -> Result<(), String> {
    let degrade = parse_degrade(flags)?;
    let backend = parse_backend(flags)?;
    if flags.is_set("delta-violation") {
        return cmd_delta_violation(degrade, backend);
    }
    let algo_name = flags.positional.get(1).map_or("a1", String::as_str);
    let model_name = flags.positional.get(2).map_or("rws", String::as_str);
    let model = match model_name {
        "rs" => PlanModel::Rs,
        "rws" => PlanModel::Rws,
        other => return Err(format!("unknown model {other:?} (rs or rws)")),
    };
    let n = flags.usize_or("n", 3)?;
    let t = flags.usize_or("t", 1)?;
    if n == 0 || t >= n {
        return Err(format!("need 0 ≤ t < n, got n={n}, t={t}"));
    }
    let seeds = parse_seed_range(flags.get("seed-range").unwrap_or("0..16"))?;
    let mode = match flags.get("validity").unwrap_or("uniform") {
        "uniform" => ValidityMode::Uniform,
        "strong" => ValidityMode::Strong,
        other => {
            return Err(format!(
                "--validity: unknown mode {other:?} (uniform or strong)"
            ))
        }
    };
    let chaos = parse_chaos(flags)?;
    // Distinct inputs make every agreement violation visible.
    let config = InitialConfig::new((0..n as u64).map(|i| 10 + i).collect::<Vec<_>>());
    let report = with_algo!(algo_name, algo => {
        fuzz_runtime(
            &RuntimeBuilder::new(&algo, &config)
                .t(t)
                .model(model)
                .chaos(chaos)
                .degrade(degrade)
                .backend(backend),
            seeds.clone(),
            mode,
        )
    })?;
    println!(
        "runtime-fuzz {algo_name} in {model}: {} seeded runs on the {backend} clock (n={n}, t={t}, seeds {}..{})",
        report.runs, seeds.start, seeds.end
    );
    if let Some(chaos) = chaos {
        println!(
            "  chaos: loss {}‰, dup {}‰, reorder {}‰ over the reliable layer; degrade={degrade}",
            chaos.loss_pm, chaos.dup_pm, chaos.reorder_pm
        );
    }
    if !report.synchrony_flags.is_empty() || report.degraded > 0 || report.aborted > 0 {
        println!(
            "  watchdog: {} flagged, {} degraded, {} aborted",
            report.synchrony_flags.len(),
            report.degraded,
            report.aborted
        );
    }
    if report.spec_violations.is_empty() {
        println!("  spec violations: none");
    } else {
        println!(
            "  spec violations: {} (a finding about {algo_name}, not a runtime bug)",
            report.spec_violations.len()
        );
        for (seed, violation) in report.spec_violations.iter().take(3) {
            println!("    seed {seed}: {violation}");
        }
        println!(
            "  model checker sweeping the same space agrees: {}",
            report.checker_agrees
        );
    }
    if model == PlanModel::Rws && algo_name == "a1" && !seeds.contains(&SECTION_5_3_SEED) {
        println!("  hint: seed {SECTION_5_3_SEED} scripts the §5.3 two-pending-broadcast anomaly");
    }
    if report.divergences.is_empty() {
        println!(
            "  runtime ↔ model conformance: every trace admissible and replayed tick-for-tick"
        );
        Ok(())
    } else {
        let mut msg = format!(
            "runtime diverged from the round models on {} seed(s):",
            report.divergences.len()
        );
        for (seed, detail) in &report.divergences {
            msg.push_str(&format!("\n  seed {seed}: {detail}"));
        }
        Err(msg)
    }
}

/// `ssp trace-dump`: run one seeded fault plan through the threaded
/// runtime and print the canonical run log as line-delimited JSON, or
/// diff two previously dumped logs (`--diff`).
fn cmd_trace_dump(flags: &Flags) -> Result<(), String> {
    const USAGE: &str =
        "usage: ssp trace-dump <algo> <rs|rws> [--seed S] [-n N] [-t T] [--backend virtual|real] [--out FILE]\n\
                         \u{20}      ssp trace-dump --diff FILE1 FILE2";
    if let Some(left_path) = flags.get("diff") {
        let right_path = flags.positional.get(1).ok_or(USAGE)?.as_str();
        return diff_dumped_logs(left_path, right_path);
    }
    let algo_name = flags.positional.get(1).ok_or(USAGE)?.as_str();
    let model_name = flags.positional.get(2).ok_or(USAGE)?.as_str();
    let model = match model_name {
        "rs" => PlanModel::Rs,
        "rws" => PlanModel::Rws,
        other => return Err(format!("unknown model {other:?} (rs or rws)")),
    };
    let n = flags.usize_or("n", 3)?;
    let t = flags.usize_or("t", 1)?;
    if n == 0 || t >= n {
        return Err(format!("need 0 ≤ t < n, got n={n}, t={t}"));
    }
    let seed = flags.u64_or("seed", SECTION_5_3_SEED)?;
    let backend = parse_backend(flags)?;
    let config = InitialConfig::new((0..n as u64).map(|i| 10 + i).collect::<Vec<_>>());
    let jsonl = with_algo!(algo_name, algo => {
        let result = RuntimeBuilder::new(&algo, &config)
            .t(t)
            .model(model)
            .seed(seed)
            .degrade(parse_degrade(flags)?)
            .backend(backend)
            .run()
            .map_err(|e| format!("invalid runtime configuration: {e}"))?;
        result.trace.run_log().to_jsonl()
    })?;
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &jsonl).map_err(|e| format!("--out {path}: {e}"))?;
            println!(
                "wrote {} events ({algo_name} {model_name}, n={n}, t={t}, seed {seed}) to {path}",
                jsonl.lines().count() - 1
            );
        }
        None => print!("{jsonl}"),
    }
    Ok(())
}

/// Diffs two JSONL run logs; a divergence is an error (nonzero exit),
/// like `diff(1)`.
fn diff_dumped_logs(left_path: &str, right_path: &str) -> Result<(), String> {
    let load = |path: &str| -> Result<RunLog<String>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        RunLog::from_jsonl(&text, |raw| Some(raw.to_string())).map_err(|e| format!("{path}: {e}"))
    };
    let left = load(left_path)?;
    let right = load(right_path)?;
    match left.first_divergence(&right) {
        None => {
            println!("logs agree: {} events", left.len());
            Ok(())
        }
        Some(d) => Err(format!("logs diverge at {d}")),
    }
}

/// `ssp serve`: the replicated state-machine service — an unbounded
/// sequence of consensus instances over the threaded runtime, driven
/// by a seeded closed-loop workload, audited in the background.
/// Exits nonzero if any instance fails its audit.
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    const USAGE: &str = "usage: ssp serve <algo> [rs|rws] [-n N] [-t T] [--clients K] \
                         [--instances I] [--seed S] [--batch B] [--keys K] [--skew Z] \
                         [--failure-free] [--chaos] [--loss P] [--dup P] [--reorder P] \
                         [--degrade=rws|abort|off] [--backend virtual|real] [--drain MS] \
                         [--shards G] [--cross-shard-rate P] [--prepare-patience T] \
                         [--crash-group G --crash-instance I --crash-process P \
                         --crash-round R] [--stats-out FILE] [--logs-out FILE]";
    if flags.is_set("node") {
        return cmd_serve_node(flags);
    }
    let algo_name = flags.positional.get(1).ok_or(USAGE)?.as_str();
    let model = match flags.positional.get(2).map_or("rs", String::as_str) {
        "rs" => PlanModel::Rs,
        "rws" => PlanModel::Rws,
        other => return Err(format!("unknown model {other:?} (rs or rws)")),
    };
    let n = flags.usize_or("n", 3)?;
    let t = flags.usize_or("t", 1)?;
    if n == 0 || t >= n {
        return Err(format!("need 0 ≤ t < n, got n={n}, t={t}"));
    }
    let mut cfg = EngineConfig::new(n, t, model);
    cfg.instances = flags.u64_or("instances", 50)?;
    cfg.seed = flags.u64_or("seed", 1)?;
    cfg.batch_max = flags.usize_or("batch", 8)?;
    if flags.is_set("failure-free") {
        cfg.faults = FaultMode::FailureFree;
    }
    cfg.chaos = parse_chaos(flags)?;
    cfg.degrade = parse_degrade(flags)?;
    cfg.backend = parse_backend(flags)?;
    if flags.is_set("drain") {
        // Routed into the runtime's typed validation: a drain below the
        // network's worst transport delay is a ConfigError, not a hang.
        cfg.drain = Some(std::time::Duration::from_millis(flags.u64_or("drain", 0)?));
    }
    let mut wcfg = WorkloadConfig::new(flags.usize_or("clients", 16)?);
    wcfg.keys =
        u32::try_from(flags.u64_or("keys", 64)?).map_err(|_| "--keys: too large".to_string())?;
    wcfg.skew = flags.f64_or("skew", 1.0)?;
    // An explicit cross-shard rate is meaningless without `--shards`:
    // a single group leaves no second group for a transaction to span.
    // The default (flag absent) is not an error — `--shards` alone is
    // a plain sharded run with no cross-shard traffic.
    if flags.is_set("cross-shard-rate") && !flags.is_set("shards") {
        let rate = flags.f64_or("cross-shard-rate", 0.0)?;
        return Err(format!(
            "invalid runtime configuration: {}",
            ConfigError::CrossShardRateWithoutShards {
                rate_pm: rate_pm(rate)
            }
        ));
    }
    if flags.is_set("shards") {
        return cmd_serve_sharded(flags, algo_name, &cfg, wcfg);
    }
    let mut workload = Workload::new(cfg.seed, wcfg);
    // The report's log type depends on the algorithm's message type, so
    // render everything inside the monomorphized body.
    let (stats, logs_jsonl) = with_algo!(algo_name, algo => {
        let report = serve(&algo, &cfg, &mut workload)
            .map_err(|e| format!("invalid runtime configuration: {e}"))?;
        let mut logs = String::new();
        for log in &report.logs {
            logs.push_str(&log.to_jsonl());
        }
        (report.stats, logs)
    })?;
    println!("{stats}");
    if let Some(path) = flags.get("stats-out") {
        std::fs::write(path, stats.to_json()).map_err(|e| format!("--stats-out {path}: {e}"))?;
    }
    if let Some(path) = flags.get("logs-out") {
        std::fs::write(path, logs_jsonl).map_err(|e| format!("--logs-out {path}: {e}"))?;
    }
    if stats.audit_violations > 0 || stats.audit_divergences > 0 {
        return Err(format!(
            "audit failed: {} spec violations, {} divergences over {} audited instances",
            stats.audit_violations, stats.audit_divergences, stats.audit_checked
        ));
    }
    Ok(())
}

/// `ssp serve --shards G`: the sharded multi-group service — `G`
/// independent consensus groups over a key-hash partition, cross-shard
/// transactions resolved by audited non-blocking atomic commit. Exits
/// nonzero if any group's consensus audit or any cross-shard NBAC
/// audit fails.
fn cmd_serve_sharded(
    flags: &Flags,
    algo_name: &str,
    engine: &EngineConfig,
    mut wcfg: WorkloadConfig,
) -> Result<(), String> {
    let mut cfg = ShardedConfig::new(engine.clone(), flags.usize_or("shards", 1)?);
    cfg.cross_shard_rate = flags.f64_or("cross-shard-rate", 0.0)?;
    cfg.prepare_patience = flags.u64_or("prepare-patience", 8)?;
    if flags.is_set("crash-group") {
        // One scripted group-local crash: the named process dies in
        // the named instance of the named group (prefix mode, dying
        // after its first send of the round).
        let round = u32::try_from(flags.u64_or("crash-round", 1)?)
            .map_err(|_| "--crash-round: too large".to_string())?;
        cfg.group_crashes.push((
            flags.usize_or("crash-group", 0)?,
            EngineCrash {
                instance: flags.u64_or("crash-instance", 0)?,
                process: flags.usize_or("crash-process", 0)?,
                crash: ThreadCrash::prefix(round, flags.usize_or("crash-after-sends", 1)?),
            },
        ));
    }
    cfg.validate()
        .map_err(|e| format!("invalid runtime configuration: {e}"))?;
    wcfg.shards = cfg.shards;
    wcfg.cross_shard_rate = cfg.cross_shard_rate;
    let mut workload = Workload::new(cfg.engine.seed, wcfg);
    let (stats, logs_jsonl, cross_violation) = with_algo!(algo_name, algo => {
        let report = serve_sharded(&algo, &cfg, &mut workload)
            .map_err(|e| format!("invalid runtime configuration: {e}"))?;
        let mut logs = String::new();
        for group in &report.groups {
            for log in &group.logs {
                logs.push_str(&log.to_jsonl());
            }
        }
        (report.stats, logs, report.cross_violation)
    })?;
    println!("{stats}");
    if let Some(path) = flags.get("stats-out") {
        std::fs::write(path, stats.to_json()).map_err(|e| format!("--stats-out {path}: {e}"))?;
    }
    if let Some(path) = flags.get("logs-out") {
        std::fs::write(path, logs_jsonl).map_err(|e| format!("--logs-out {path}: {e}"))?;
    }
    let agg = stats.aggregate();
    if agg.audit_violations > 0 || agg.audit_divergences > 0 {
        return Err(format!(
            "audit failed: {} spec violations, {} divergences over {} audited instances",
            agg.audit_violations, agg.audit_divergences, agg.audit_checked
        ));
    }
    if let Some(violation) = cross_violation {
        return Err(format!(
            "cross-shard NBAC audit failed: {violation} ({} violations over {} exchanges)",
            stats.cross.nbac_violations,
            stats.cross.committed + stats.cross.aborted,
        ));
    }
    Ok(())
}

/// Reads a `--<key>-ms` millisecond flag with a default.
fn ms_or(flags: &Flags, key: &str, default_ms: u64) -> Result<Duration, String> {
    Ok(Duration::from_millis(flags.u64_or(key, default_ms)?))
}

/// Fills a [`NodeConfig`]'s shared knobs (sizes, timing, guard) from
/// the flags — used identically by `serve --node` and `serve-cluster`
/// so a node launched by hand matches one launched by the parent.
fn node_config_from_flags(
    flags: &Flags,
    me: usize,
    n: usize,
    listen: String,
    peers: Vec<String>,
) -> Result<NodeConfig, String> {
    let mut cfg = NodeConfig::new(me, n, listen, peers, flags.u64_or("seed", 1)?);
    cfg.instances = flags.u64_or("instances", 8)?;
    cfg.batch_max = flags.usize_or("batch", 4)?;
    cfg.clients = flags.usize_or("clients", 8)?;
    cfg.epoch = flags.u64_or("epoch", 1)?;
    cfg.heartbeat = ms_or(flags, "hb-ms", 25)?;
    cfg.fd_timeout = ms_or(flags, "fd-timeout-ms", 2000)?;
    cfg.drain = ms_or(flags, "drain", 150)?;
    cfg.round_timeout = ms_or(flags, "round-timeout-ms", 10_000)?;
    cfg.instance_gap = ms_or(flags, "gap-ms", 0)?;
    if flags.is_set("delta-ms") {
        cfg.delta = Some(ms_or(flags, "delta-ms", 0)?);
        cfg.degrade = parse_degrade(flags)?;
    }
    Ok(cfg)
}

/// `ssp serve --node I`: one cluster node as one OS process, speaking
/// the socket transport to its peers and appending its observation
/// report to `--report` (or stdout). Suspicion comes exclusively from
/// the PFD staleness timeout — losing a TCP connection alone never
/// suspects anyone.
fn cmd_serve_node(flags: &Flags) -> Result<(), String> {
    const USAGE: &str = "usage: ssp serve a1 rs --node I --listen ADDR --peers A0,A1,.. \
                         [--report FILE] [-n N] [--instances I] [--seed S] [--batch B] \
                         [--clients K] [--epoch E] [--hb-ms MS] [--fd-timeout-ms MS] \
                         [--delta-ms MS] [--degrade=rws|abort|off] [--drain MS] \
                         [--round-timeout-ms MS] [--gateway-listen ADDR] \
                         [--gateway-queue N]";
    let algo = flags.positional.get(1).map_or("a1", String::as_str);
    let model = flags.positional.get(2).map_or("rs", String::as_str);
    if algo != "a1" || model != "rs" {
        return Err(format!(
            "multi-process serving is wired for `a1 rs` only, got {algo:?} {model:?}\n{USAGE}"
        ));
    }
    let me = flags.usize_or("node", 0)?;
    let listen = flags.get("listen").ok_or(USAGE)?.to_string();
    let peers: Vec<String> = flags
        .get("peers")
        .ok_or(USAGE)?
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let n = flags.usize_or("n", peers.len())?;
    if n != peers.len() || me >= n {
        return Err(format!(
            "need --node < n and one peer address per process, got node {me}, n {n}, {} peers",
            peers.len()
        ));
    }
    let cfg = node_config_from_flags(flags, me, n, listen, peers)?;
    let gateway = match flags.get("gateway-listen") {
        Some(addr) => {
            let mut gw = GatewayNodeConfig::new(addr.to_string());
            gw.queue_cap = flags.usize_or("gateway-queue", gw.queue_cap)?;
            Some(gw)
        }
        None => None,
    };
    match flags.get("report") {
        Some(path) => serve_node_to_file(&cfg, gateway.as_ref(), Path::new(path))
            .map_err(|e| format!("node {me}: {e}")),
        None => {
            let stdout = std::io::stdout();
            serve_node_with(&cfg, gateway.as_ref(), &mut stdout.lock())
                .map_err(|e| format!("node {me}: {e}"))
        }
    }
}

/// `ssp serve-cluster`: spawn one `ssp serve --node` OS process per
/// consensus process on loopback, optionally route every link through
/// the deterministic [`ChaosProxy`](ssp::runtime::ChaosProxy) and/or
/// `kill -9` one node mid-run, then merge the node reports, replay the
/// deterministic workload and certify every instance with the same
/// audit pipeline as in-process runs. Exits nonzero only on a spec
/// violation or model divergence — a `SynchronyViolation` or `aborted`
/// verdict under a scripted Δ violation is a demonstrated outcome, not
/// an error.
fn cmd_serve_cluster(flags: &Flags) -> Result<(), String> {
    const USAGE: &str = "usage: ssp serve-cluster [-n N] [--instances I] [--seed S] [--batch B] \
                         [--clients K] [--kill9 NODE] [--kill-at K] [--delta-ms MS] \
                         [--degrade=rws|abort|off] [--proxy-delay-ms MS] [--proxy-delay-rate P] \
                         [--proxy-drop-rate P] [--proxy-reset-after K] [--proxy-seed S] \
                         [--hb-ms MS] [--fd-timeout-ms MS] [--drain MS] [--round-timeout-ms MS] \
                         [--gateway-base-port P] [--gateway-queue N] \
                         [--dir DIR] [--stats-out FILE] [--logs-out FILE]";
    let _ = USAGE;
    let n = flags.usize_or("n", 4)?;
    if n < 2 {
        return Err(format!("need n ≥ 2, got {n}"));
    }
    let node = node_config_from_flags(flags, 0, n, String::new(), Vec::new())?;
    let kill = if flags.is_set("kill9") {
        let victim = flags.usize_or("kill9", 0)?;
        if victim >= n {
            return Err(format!("--kill9: node {victim} out of range (n={n})"));
        }
        Some(KillSpec {
            node: victim,
            after_instance: flags.u64_or("kill-at", 1)?,
        })
    } else {
        None
    };
    let proxy = if flags.is_set("proxy-delay-ms")
        || flags.is_set("proxy-drop-rate")
        || flags.is_set("proxy-reset-after")
    {
        let reset_after = match flags.get("proxy-reset-after") {
            None => None,
            Some(_) => Some(flags.u64_or("proxy-reset-after", 0)?),
        };
        Some(ProxySpec {
            seed: flags.u64_or("proxy-seed", flags.u64_or("seed", 1)?)?,
            delay_pm: u32::from(flags.rate_pm_or("proxy-delay-rate", 1000)?),
            delay: ms_or(flags, "proxy-delay-ms", 0)?,
            drop_pm: u32::from(flags.rate_pm_or("proxy-drop-rate", 0)?),
            reset_after,
        })
    } else {
        None
    };
    let gateway = if flags.is_set("gateway-base-port") {
        let base_port = u16::try_from(flags.u64_or("gateway-base-port", 0)?)
            .map_err(|_| "--gateway-base-port: not a port".to_string())?;
        Some(GatewaySpec {
            base_port,
            queue_cap: flags.usize_or("gateway-queue", 64)?,
        })
    } else {
        None
    };
    let bin = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = flags.get("dir").map_or_else(
        || std::env::temp_dir().join(format!("ssp-cluster-{}-{}", std::process::id(), node.seed)),
        PathBuf::from,
    );
    let cluster = ClusterConfig {
        node,
        kill,
        proxy,
        gateway,
    };
    let report = run_cluster(&bin, &cluster, &dir).map_err(|e| e.to_string())?;
    println!("{}", report.stats);
    let verdicts: Vec<String> = report
        .audits
        .iter()
        .map(|a| a.verdict.to_string())
        .collect();
    println!("verdicts: {}", verdicts.join(", "));
    if report.crashed_nodes.is_empty() {
        println!("suspected: none");
    } else {
        let list: Vec<String> = report
            .crashed_nodes
            .iter()
            .map(|(p, k)| format!("p{p} (crashed in instance {k})"))
            .collect();
        println!("suspected: {}", list.join(", "));
    }
    println!("digest: {:#018x}", report.stats.kv_digest);
    if let Some(path) = flags.get("stats-out") {
        std::fs::write(path, report.stats.to_json())
            .map_err(|e| format!("--stats-out {path}: {e}"))?;
    }
    if let Some(path) = flags.get("logs-out") {
        let mut logs = String::new();
        for log in &report.logs {
            logs.push_str(&log.to_jsonl());
        }
        std::fs::write(path, logs).map_err(|e| format!("--logs-out {path}: {e}"))?;
    }
    if report.stats.audit_violations > 0 || report.stats.audit_divergences > 0 {
        let mut msg = format!(
            "audit failed: {} spec violations, {} divergences over {} audited instances",
            report.stats.audit_violations,
            report.stats.audit_divergences,
            report.stats.audit_checked
        );
        for audit in report.audits.iter().filter(|a| !a.is_clean()) {
            msg.push_str(&format!("\n  instance {}:", audit.instance));
            if let Some(v) = &audit.violation {
                msg.push_str(&format!(" violation: {v}"));
            }
            if let Some(d) = &audit.divergence {
                msg.push_str(&format!(" divergence: {d}"));
            }
        }
        return Err(msg);
    }
    Ok(())
}

/// `ssp load`: drive a gateway-fronted cluster with the
/// seed-deterministic external client population — closed loop
/// (`--concurrency` clients, one request in flight each) or open loop
/// (`--rate` scheduled arrivals/second) — and print the
/// client-observed report (acks, retries, p50/p99/max latency) as one
/// JSON object. With `--inproc`, the same client population drives
/// the sharded engine directly as a scripted external source, so the
/// per-class ack-*round* histograms are deterministic per seed: the
/// client-observed face of Theorem 5.2.
fn cmd_load(flags: &Flags) -> Result<(), String> {
    const USAGE: &str = "usage: ssp load --targets A0,A1,.. [--requests R] [--seed S] \
                         [--concurrency C | --rate R] [--deadline-ms MS] [--json FILE]\n\
                         usage: ssp load --inproc [<algo> <rs|rws>] [--shards G] [--clients C] \
                         [--requests-per-client R] [--cross-rate P] [-n N] [-t T] \
                         [--instances I] [--seed S] [--json FILE]";
    if flags.is_set("rate") && flags.is_set("concurrency") {
        return Err(
            "--rate (open loop) and --concurrency (closed loop) are mutually exclusive".to_string(),
        );
    }
    if flags.is_set("inproc") {
        return cmd_load_inproc(flags);
    }
    let targets: Vec<String> = flags
        .get("targets")
        .ok_or(USAGE)?
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let mut cfg = LoadConfig::new(targets, flags.u64_or("seed", 1)?);
    cfg.requests = flags.u64_or("requests", 32)?;
    cfg.deadline = ms_or(flags, "deadline-ms", 10_000)?;
    if flags.is_set("rate") {
        cfg.mode = LoadMode::Open {
            rate: flags.f64_or("rate", 0.0)?,
        };
    } else {
        cfg.mode = LoadMode::Closed {
            concurrency: flags.usize_or("concurrency", 4)?,
        };
    }
    let report = run_load(&cfg)?;
    println!("{}", report.to_json());
    if let Some(path) = flags.get("json") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("--json {path}: {e}"))?;
    }
    if report.gave_up > 0 {
        return Err(format!(
            "{} of {} requests gave up at the {} ms deadline",
            report.gave_up,
            report.requests,
            cfg.deadline.as_millis()
        ));
    }
    Ok(())
}

/// `ssp load --inproc`: scripted external clients against the sharded
/// engine, no sockets — every ack carries its decision round, and the
/// round histograms are byte-identical per seed.
fn cmd_load_inproc(flags: &Flags) -> Result<(), String> {
    let algo_name = flags.positional.get(1).map_or("a1", String::as_str);
    let model = match flags.positional.get(2).map_or("rs", String::as_str) {
        "rs" => PlanModel::Rs,
        "rws" => PlanModel::Rws,
        other => return Err(format!("unknown model {other:?} (rs or rws)")),
    };
    let n = flags.usize_or("n", 3)?;
    let t = flags.usize_or("t", 1)?;
    if n == 0 || t >= n {
        return Err(format!("need 0 ≤ t < n, got n={n}, t={t}"));
    }
    let mut engine = EngineConfig::new(n, t, model);
    engine.instances = flags.u64_or("instances", 64)?;
    engine.seed = flags.u64_or("seed", 1)?;
    engine.batch_max = flags.usize_or("batch", 8)?;
    let mut cfg = ShardedConfig::new(engine, flags.usize_or("shards", 1)?);
    cfg.cross_shard_rate = 0.0;
    cfg.validate()
        .map_err(|e| format!("invalid runtime configuration: {e}"))?;
    let mut load = InprocLoadConfig::new(flags.u64_or("seed", 1)?);
    load.clients = flags.usize_or("clients", 4)?;
    load.requests_per_client = u32::try_from(flags.u64_or("requests-per-client", 8)?)
        .map_err(|_| "--requests-per-client: too large".to_string())?;
    load.cross_rate = flags.f64_or("cross-rate", 0.0)?;
    if load.cross_rate > 0.0 && cfg.shards < 2 {
        return Err("--cross-rate needs --shards ≥ 2 (a single group leaves no \
                    second group for a transaction to span)"
            .to_string());
    }
    let report = with_algo!(algo_name, algo => {
        run_inproc_load(&algo, &cfg, &load)?
    })?;
    println!("{}", report.to_json());
    if let Some(path) = flags.get("json") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("--json {path}: {e}"))?;
    }
    Ok(())
}

/// `ssp explore`: systematic exploration of the whole adversary space
/// of one small instance — every crash schedule crossed with every
/// pending-message choice, quotiented to inequivalent run-log classes
/// with persistent/sleep-set pruning — each executed class cross-
/// checked against the round models, every violation shrunk to a
/// least witness. Deterministic: same flags, byte-identical output.
fn cmd_explore(flags: &Flags) -> Result<(), String> {
    const USAGE: &str = "usage: ssp explore [<algo> <rs|rws>] [--n N] [--t T] \
                         [--inputs v1,v2,..] [--sym off|full] [--limit K] [--backend virtual]";
    let algo_flag = flags
        .get("algo")
        .map(str::to_string)
        .or_else(|| flags.positional.get(1).cloned())
        .unwrap_or_else(|| "a1".to_string());
    // `flood` reads better at the prompt; canonicalize to the full name.
    let algo_name = match algo_flag.as_str() {
        "flood" => "floodset",
        "flood-ws" => "floodset-ws",
        other => other,
    };
    let model = match flags
        .get("model")
        .or_else(|| flags.positional.get(2).map(String::as_str))
        .unwrap_or("rws")
    {
        "rs" => PlanModel::Rs,
        "rws" => PlanModel::Rws,
        other => return Err(format!("unknown model {other:?} (rs or rws)\n{USAGE}")),
    };
    let t = flags.usize_or("t", 1)?;
    let backend = parse_backend(flags)?;
    let limit = match flags.get("limit") {
        None => None,
        Some(_) => Some(flags.u64_or("limit", 0)?),
    };
    // Distinct inputs by default, so any agreement violation is
    // visible; --inputs overrides (and then fixes n).
    let config = match flags.get("inputs") {
        Some(list) => {
            let values = list
                .split(',')
                .map(|v| {
                    v.trim()
                        .parse::<u64>()
                        .map_err(|_| format!("--inputs: bad value {v:?}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            if flags.is_set("n") && flags.usize_or("n", 0)? != values.len() {
                return Err(format!(
                    "--n contradicts --inputs ({} values given)",
                    values.len()
                ));
            }
            InitialConfig::new(values)
        }
        None => {
            let n = flags.usize_or("n", 3)?;
            InitialConfig::new((0..n as u64).map(|i| 10 + i).collect::<Vec<_>>())
        }
    };
    // Bounds (2 ≤ n ≤ 5, t ≤ 2, t < n) and the real-clock refusal are
    // the explorer's own typed errors — surfaced, not re-derived here.
    let report = match flags.get("sym").unwrap_or("off") {
        "off" => with_algo!(algo_name, algo => {
            Explorer::new(&algo, &config)
                .t(t)
                .model(model)
                .backend(backend)
                .limit(limit)
                .run()
        })?,
        "full" => with_symmetric_algo!(algo_name, algo => {
            Explorer::new(&algo, &config)
                .t(t)
                .model(model)
                .backend(backend)
                .limit(limit)
                .run_quotient()
        })?,
        other => return Err(format!("--sym: unknown setting {other:?} (off or full)")),
    }
    .map_err(|e| e.to_string())?;
    println!("{report}");
    if !report.divergences.is_empty() {
        let mut msg = format!(
            "runtime diverged from the round models in {} class(es):",
            report.divergences.len()
        );
        for detail in &report.divergences {
            msg.push_str(&format!("\n  {detail}"));
        }
        return Err(msg);
    }
    match &report.witness {
        None => println!("no violating class: every execution satisfies uniform consensus"),
        Some(w) => {
            println!("violation: {}", w.violation);
            println!("witness (shrunk): {}", w.record);
            if w.record != w.original {
                println!("  shrunk from: {}", w.original);
            }
            println!("  realized as: {}", w.plan);
            println!("  json: {}", w.record.to_json());
        }
    }
    Ok(())
}

const USAGE: &str = "usage: ssp <command> [options]

commands:
  latency    [-n N] [-t T]                         lat/Lat/Λ table (§5.2)
  verify     <algo> <rs|rws> [-n N] [-t T] [--threads K] [--sym off|values|full]
  sample     <algo> <rs|rws> [-n N] [-t T] [--trials K] [--seed S]
  refute-sdd [--patience K]                        Theorem 3.1, mechanized
  commit     [-n N] [-t T] [--trials K] [--crash-prob P]
  heartbeat  [-n N] [--phi F] [--delta D]          timeouts implement P (§3)
  emulation  [-n N] [--phi F] [--delta D] [-r R]   §4.1 step budgets
  runtime-fuzz [<algo> <rs|rws>] [--seed-range A..B] [-n N] [-t T] [--validity uniform|strong]
             [--chaos] [--loss P] [--dup P] [--reorder P] [--degrade=rws|abort|off]
             [--backend virtual|real] [--delta-violation]
             sweep seeded fault plans through the threaded runtime and
             certify every trace against the round models (default: a1 rws);
             --chaos adds seed-deterministic loss/dup/reorder masked by the
             reliable layer, --delta-violation runs the scripted Δ-violation
             scenario under the chosen degradation mode; --backend selects
             the clock (virtual: discrete-event time, thousands of seeds/s,
             byte-identical run logs; real: OS clock)
  trace-dump <algo> <rs|rws> [--seed S] [-n N] [-t T] [--degrade=rws|abort|off]
             [--backend virtual|real] [--out FILE]
  trace-dump --diff FILE1 FILE2
             run one seeded fault plan through the threaded runtime and
             print the canonical run log as line-delimited JSON (default
             seed: the §5.3 anomaly), or report the first divergent
             event between two dumped logs (exit 1 if they differ)
  serve      <algo> [rs|rws] [-n N] [-t T] [--clients K] [--instances I] [--seed S]
             [--batch B] [--keys K] [--skew Z] [--failure-free]
             [--chaos] [--loss P] [--dup P] [--reorder P] [--degrade=rws|abort|off]
             [--backend virtual|real] [--drain MS] [--stats-out FILE] [--logs-out FILE]
             replicated state-machine service: repeated consensus instances
             over the threaded runtime under a seeded closed-loop workload,
             every instance audited against the round models in the
             background (exit 1 on any violation); deterministic stats JSON
             via --stats-out, per-instance run logs via --logs-out
  serve      a1 rs --node I --listen ADDR --peers A0,A1,.. [--report FILE]
             [--instances I] [--seed S] [--hb-ms MS] [--fd-timeout-ms MS]
             [--delta-ms MS] [--degrade=rws|abort|off] [--drain MS]
             one cluster node as one OS process over real TCP sockets:
             length-prefixed frames, reconnect with capped backoff,
             retransmit + dedup, PFD suspicion only via staleness
             timeout (never from connection loss), online Δ guard
  serve-cluster [-n N] [--instances I] [--seed S] [--kill9 NODE] [--kill-at K]
             [--delta-ms MS] [--degrade=rws|abort|off] [--proxy-delay-ms MS]
             [--proxy-delay-rate P] [--proxy-drop-rate P] [--proxy-reset-after K]
             [--proxy-seed S] [--dir DIR] [--stats-out FILE] [--logs-out FILE]
             spawn a loopback cluster of `serve --node` processes
             (optionally through the deterministic socket-level chaos
             proxy, optionally kill -9'ing one node mid-run), merge the
             node reports and certify every instance with the same
             audit pipeline as in-process serving (exit 1 only on a
             spec violation or divergence)
  load       --targets A0,A1,.. [--requests R] [--seed S] [--concurrency C | --rate R]
             [--deadline-ms MS] [--json FILE]
             seed-deterministic external-client load against a
             gateway-fronted cluster (start one with `serve-cluster
             --gateway-base-port P`): closed loop (--concurrency) or
             open loop (--rate, coordinated-omission-corrected), with
             idempotent capped-backoff resubmission and client-observed
             p50/p99/max latency; exit 1 if any request gave up
  load       --inproc [<algo> <rs|rws>] [--shards G] [--clients C]
             [--requests-per-client R] [--cross-rate P] [--seed S] [--json FILE]
             the same client population as a scripted external source
             driving the sharded engine in-process: ack-round
             histograms (single vs cross-shard) deterministic per seed
             — the client-observed face of Theorem 5.2
  explore    [<algo> <rs|rws>] [--n N] [--t T] [--inputs v1,v2,..] [--sym off|full]
             [--limit K] [--backend virtual]
             systematically enumerate EVERY adversary of one small
             instance (crash schedules × pending-message choices, n ≤ 5,
             t ≤ 2), pruned to inequivalent run-log classes, each class
             executed once on the threaded runtime and certified against
             the round models; violations are shrunk to a least witness
             (default: a1 rws, the §5.3 instance); `flood` is accepted
             for `floodset`, --sym full quotients process permutations

algorithms: floodset floodset-ws c-opt c-opt-ws f-opt f-opt-ws a1 ct early early-ws";

fn dispatch(args: &[String]) -> Result<(), String> {
    let flags = parse_args(args)?;
    match flags.positional.first().map(String::as_str) {
        Some("latency") => cmd_latency(&flags),
        Some("verify") => cmd_verify(&flags),
        Some("sample") => cmd_sample(&flags),
        Some("refute-sdd") => cmd_refute_sdd(&flags),
        Some("commit") => cmd_commit(&flags),
        Some("heartbeat") => cmd_heartbeat(&flags),
        Some("emulation") => cmd_emulation(&flags),
        Some("runtime-fuzz") => cmd_runtime_fuzz(&flags),
        Some("trace-dump") => cmd_trace_dump(&flags),
        Some("serve") => cmd_serve(&flags),
        Some("serve-cluster") => cmd_serve_cluster(&flags),
        Some("load") => cmd_load(&flags),
        Some("explore") => cmd_explore(&flags),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_flags_and_positionals() {
        let f = parse_args(&argv("verify a1 rs -n 4 --t 1")).unwrap();
        assert_eq!(f.positional, ["verify", "a1", "rs"]);
        assert_eq!(f.get("n"), Some("4"));
        assert_eq!(f.get("t"), Some("1"));
        assert_eq!(f.usize_or("n", 3).unwrap(), 4);
        assert_eq!(f.usize_or("missing", 9).unwrap(), 9);
    }

    #[test]
    fn missing_flag_value_is_an_error() {
        assert!(parse_args(&argv("verify --n")).is_err());
    }

    #[test]
    fn bad_number_is_an_error() {
        let f = parse_args(&argv("latency -n lots")).unwrap();
        assert!(f.usize_or("n", 3).is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(dispatch(&argv("frobnicate")).is_err());
    }

    #[test]
    fn unknown_algorithm_is_an_error() {
        assert!(dispatch(&argv("verify nonsense rs")).is_err());
    }

    #[test]
    fn help_succeeds() {
        dispatch(&argv("help")).unwrap();
        dispatch(&[]).unwrap();
    }

    #[test]
    fn verify_a1_rs_succeeds() {
        dispatch(&argv("verify a1 rs -n 3 -t 1")).unwrap();
    }

    #[test]
    fn verify_a1_rws_reports_violation_without_failing() {
        // A violation is a *finding*, not a CLI error.
        dispatch(&argv("verify a1 rws -n 3 -t 1")).unwrap();
    }

    #[test]
    fn verify_with_symmetry_and_threads_succeeds() {
        dispatch(&argv(
            "verify floodset-ws rws -n 3 -t 1 --threads 2 --sym full",
        ))
        .unwrap();
    }

    #[test]
    fn verify_a1_with_full_symmetry_is_rejected() {
        // a1 is value- but not process-symmetric; the CLI mirrors the
        // compile-time gate.
        assert!(dispatch(&argv("verify a1 rs --sym full")).is_err());
        dispatch(&argv("verify a1 rs --sym values")).unwrap();
    }

    #[test]
    fn parse_seed_range_accepts_half_open() {
        assert_eq!(parse_seed_range("3..7").unwrap(), 3..7);
        assert!(parse_seed_range("7..3").is_err());
        assert!(parse_seed_range("5..5").is_err());
        assert!(parse_seed_range("nope").is_err());
    }

    #[test]
    fn runtime_fuzz_smoke() {
        dispatch(&argv("runtime-fuzz floodset rs --seed-range 0..2")).unwrap();
    }

    #[test]
    fn backend_flag_parses_and_rejects_unknown_names() {
        let f = parse_args(&argv("runtime-fuzz --backend real")).unwrap();
        assert_eq!(parse_backend(&f).unwrap(), Backend::Real);
        let f = parse_args(&argv("runtime-fuzz")).unwrap();
        assert_eq!(
            parse_backend(&f).unwrap(),
            Backend::Virtual,
            "virtual is the default"
        );
        let err = dispatch(&argv(
            "runtime-fuzz floodset rs --seed-range 0..1 --backend hourglass",
        ))
        .unwrap_err();
        assert!(err.contains("expected virtual|real"), "{err}");
        assert!(dispatch(&argv("trace-dump floodset rs --backend 3 --seed 1")).is_err());
        assert!(dispatch(&argv("serve a1 rs --instances 1 --backend sundial")).is_err());
    }

    #[test]
    fn runtime_fuzz_real_backend_smoke() {
        dispatch(&argv(
            "runtime-fuzz floodset rs --seed-range 0..1 --backend real",
        ))
        .unwrap();
    }

    #[test]
    fn runtime_fuzz_rejects_bad_bounds() {
        assert!(dispatch(&argv("runtime-fuzz a1 rws -n 3 -t 3")).is_err());
        assert!(dispatch(&argv("runtime-fuzz a1 ws")).is_err());
        assert!(dispatch(&argv("runtime-fuzz a1 rws --validity weird")).is_err());
    }

    #[test]
    fn boolean_and_equals_flags_parse() {
        let f = parse_args(&argv("runtime-fuzz --chaos --degrade=rws --loss 0.3")).unwrap();
        assert!(f.is_set("chaos"));
        assert_eq!(f.get("degrade"), Some("rws"));
        assert_eq!(f.rate_pm_or("loss", 0).unwrap(), 300);
        assert_eq!(f.rate_pm_or("dup", 50).unwrap(), 50);
        // Non-boolean flags still demand a value.
        assert!(parse_args(&argv("verify --n")).is_err());
    }

    #[test]
    fn chaos_rates_are_validated() {
        let f = parse_args(&argv("runtime-fuzz --loss 1.5")).unwrap();
        assert!(f.rate_pm_or("loss", 0).is_err());
        assert!(dispatch(&argv(
            "runtime-fuzz floodset rs --seed-range 0..1 --loss 2.0"
        ))
        .is_err());
        assert!(dispatch(&argv("runtime-fuzz a1 rws --degrade=weird")).is_err());
    }

    #[test]
    fn runtime_fuzz_chaos_smoke() {
        dispatch(&argv(
            "runtime-fuzz floodset rs --seed-range 0..2 --chaos --loss 0.3 --dup 0.1",
        ))
        .unwrap();
    }

    #[test]
    fn delta_violation_demo_all_modes() {
        dispatch(&argv("runtime-fuzz --delta-violation")).unwrap();
        dispatch(&argv("runtime-fuzz --delta-violation --degrade=rws")).unwrap();
        dispatch(&argv("runtime-fuzz --delta-violation --degrade=abort")).unwrap();
    }

    #[test]
    fn trace_dump_writes_deterministic_logs_and_diffs_them() {
        let dir = std::env::temp_dir();
        let a = dir.join("ssp-trace-dump-a.jsonl");
        let b = dir.join("ssp-trace-dump-b.jsonl");
        let c = dir.join("ssp-trace-dump-c.jsonl");
        let (a_s, b_s, c_s) = (
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            c.to_str().unwrap(),
        );
        dispatch(&argv(&format!(
            "trace-dump floodset rs --seed 3 --out {a_s}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "trace-dump floodset rs --seed 3 --out {b_s}"
        )))
        .unwrap();
        // t=2 runs one more round, so its log must diverge from t=1's.
        dispatch(&argv(&format!(
            "trace-dump floodset rs --seed 3 -t 2 --out {c_s}"
        )))
        .unwrap();
        // Same plan ⇒ byte-identical; the diff agrees.
        assert_eq!(
            std::fs::read_to_string(&a).unwrap(),
            std::fs::read_to_string(&b).unwrap()
        );
        dispatch(&argv(&format!("trace-dump --diff {a_s} {b_s}"))).unwrap();
        // Different plan ⇒ the diff pinpoints a divergence (exit 1).
        let err = dispatch(&argv(&format!("trace-dump --diff {a_s} {c_s}"))).unwrap_err();
        assert!(err.contains("diverge"), "{err}");
        for p in [a, b, c] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn trace_dump_rejects_bad_input() {
        assert!(dispatch(&argv("trace-dump")).is_err());
        assert!(dispatch(&argv("trace-dump floodset ws")).is_err());
        assert!(dispatch(&argv("trace-dump floodset rs -n 3 -t 3")).is_err());
        assert!(dispatch(&argv("trace-dump --diff /nonexistent-ssp-log")).is_err());
    }

    #[test]
    fn serve_smoke_failure_free() {
        dispatch(&argv(
            "serve a1 rs --clients 4 --instances 3 --seed 7 --failure-free",
        ))
        .unwrap();
        dispatch(&argv(
            "serve ct rws --clients 4 --instances 3 --seed 7 --failure-free",
        ))
        .unwrap();
    }

    #[test]
    fn serve_rejects_bad_input() {
        assert!(dispatch(&argv("serve")).is_err());
        assert!(dispatch(&argv("serve a1 ws")).is_err());
        assert!(dispatch(&argv("serve a1 rs -n 3 -t 3")).is_err());
        // An undersized drain is a typed ConfigError, reported before
        // any instance runs — never a hang.
        let err =
            dispatch(&argv("serve a1 rs --instances 2 --failure-free --drain 1")).unwrap_err();
        assert!(err.contains("invalid runtime configuration"), "{err}");
        assert!(err.contains("drain"), "{err}");
    }

    #[test]
    fn serve_stats_out_is_deterministic() {
        let dir = std::env::temp_dir();
        let a = dir.join("ssp-serve-stats-a.json");
        let b = dir.join("ssp-serve-stats-b.json");
        let (a_s, b_s) = (a.to_str().unwrap(), b.to_str().unwrap());
        for path in [a_s, b_s] {
            dispatch(&argv(&format!(
                "serve a1 rs --clients 6 --instances 4 --seed 11 --loss 0.2 --stats-out {path}"
            )))
            .unwrap();
        }
        let left = std::fs::read_to_string(&a).unwrap();
        assert_eq!(left, std::fs::read_to_string(&b).unwrap());
        assert!(left.contains("\"audit_violations\":0"), "{left}");
        for p in [a, b] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn explore_smoke_with_flood_alias_and_flag_style() {
        // The acceptance invocation: flag-style arguments and the
        // `flood` shorthand both parse; the exploration terminates.
        dispatch(&argv("explore --algo flood --model rs --n 3 --t 1")).unwrap();
        // Positional style and the symmetry quotient.
        dispatch(&argv("explore floodset-ws rws --inputs 4,4,9 --sym full")).unwrap();
        // A capped walk still succeeds (and reports the truncation).
        dispatch(&argv("explore floodset rs --limit 3")).unwrap();
    }

    #[test]
    fn explore_rejects_bad_input() {
        // Unknown backend names fail at flag parsing…
        let err = dispatch(&argv("explore floodset rs --backend hourglass")).unwrap_err();
        assert!(err.contains("expected virtual|real"), "{err}");
        // …while the real clock parses fine and is refused by the
        // explorer itself, with the reason.
        let err = dispatch(&argv("explore floodset rs --backend real")).unwrap_err();
        assert!(err.contains("deterministic clock"), "{err}");
        // Out-of-range instances are the explorer's typed bounds error.
        let err = dispatch(&argv("explore floodset rs --n 9")).unwrap_err();
        assert!(err.contains("out of exhaustive range"), "{err}");
        assert!(err.contains("n=9"), "{err}");
        let err = dispatch(&argv("explore floodset rs --n 3 --t 3")).unwrap_err();
        assert!(err.contains("out of exhaustive range"), "{err}");
        // Unknown model, algorithm, or --sym setting.
        assert!(dispatch(&argv("explore floodset ws")).is_err());
        assert!(dispatch(&argv("explore nonsense rs")).is_err());
        assert!(dispatch(&argv("explore floodset rs --sym diagonal")).is_err());
        // a1's roles are position-bound: no process quotient.
        assert!(dispatch(&argv("explore a1 rws --sym full")).is_err());
        // Contradictory instance size.
        let err = dispatch(&argv("explore floodset rs --inputs 1,2,3 --n 4")).unwrap_err();
        assert!(err.contains("contradicts"), "{err}");
        assert!(dispatch(&argv("explore floodset rs --inputs 1,zebra")).is_err());
    }

    #[test]
    fn emulation_table_succeeds() {
        dispatch(&argv("emulation -n 3 --phi 2 --delta 2 -r 4")).unwrap();
    }

    #[test]
    fn heartbeat_succeeds() {
        dispatch(&argv("heartbeat -n 3 --phi 1 --delta 2")).unwrap();
    }
}
