#!/usr/bin/env bash
# Observer-overhead benchmark snapshot: runs the observer_overhead
# criterion bench, extracts its machine-readable SNAPSHOT line, and
# writes BENCH_PR4.json comparing the NullObserver verifier throughput
# against the pre-refactor baseline (acceptance: within 5%).
#
# The baselines were measured on the pre-IR tree (commit 5dd0a8c) with
# the release CLI on the same spaces this bench sweeps:
#   serial  : ssp verify floodset-ws rws --n 3 --t 2 --threads 1
#             907,928 runs in 1597 ms  -> 568,520 runs/s
#   parallel: ssp verify floodset-ws rws --n 4 --t 2 --sym full --threads 4
#             4,174,749 canonical runs in 13835 ms -> 301,753 runs/s
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE_SERIAL_RPS=568520
OUT=BENCH_PR4.json

echo "== observer_overhead bench (release) =="
LOG=$(cargo bench -p ssp-bench --bench observer_overhead 2>&1 | tee /dev/stderr)

SNAPSHOT=$(printf '%s\n' "$LOG" | grep -o 'SNAPSHOT {.*}' | head -n1 | cut -d' ' -f2-)
if [ -z "$SNAPSHOT" ]; then
    echo "error: no SNAPSHOT line in bench output" >&2
    exit 1
fi

NULL_RPS=$(printf '%s' "$SNAPSHOT" | grep -o '"null_runs_per_sec":[0-9]*' | grep -o '[0-9]*$')
RATIO=$(awk "BEGIN { printf \"%.4f\", $NULL_RPS / $BASELINE_SERIAL_RPS }")
WITHIN=$(awk "BEGIN { print ($NULL_RPS >= 0.95 * $BASELINE_SERIAL_RPS) ? \"true\" : \"false\" }")

cat > "$OUT" <<EOF
{
  "pr": 4,
  "claim": "NullObserver verifier throughput within 5% of the pre-refactor baseline",
  "baseline": {
    "commit": "5dd0a8c",
    "serial_floodset_ws_rws_n3_t2_runs_per_sec": $BASELINE_SERIAL_RPS,
    "parallel_sym_full_n4_t2_threads4_runs_per_sec": 301753
  },
  "measured": $SNAPSHOT,
  "null_vs_baseline_ratio": $RATIO,
  "within_5_percent": $WITHIN
}
EOF

echo "== wrote $OUT (null $NULL_RPS runs/s vs baseline $BASELINE_SERIAL_RPS, ratio $RATIO, within 5%: $WITHIN) =="
if [ "$WITHIN" != "true" ]; then
    echo "error: NullObserver throughput regressed more than 5%" >&2
    exit 1
fi

# ---------------------------------------------------------------------------
# Engine service throughput: the same failure-free closed-loop workload
# served by A1 in RS (Λ = 1, early retire) and CtRounds in RWS
# (Λ = t + 1). Theorem 5.2 compounds across instances, so RS must come
# out strictly faster; BENCH_PR5.json records the measured ordering.

ENGINE_OUT=BENCH_PR5.json

echo "== engine_throughput bench (release) =="
ENGINE_LOG=$(cargo bench -p ssp-bench --bench engine_throughput 2>&1 | tee /dev/stderr)

ENGINE_SNAPSHOT=$(printf '%s\n' "$ENGINE_LOG" | grep -o 'SNAPSHOT {.*}' | head -n1 | cut -d' ' -f2-)
if [ -z "$ENGINE_SNAPSHOT" ]; then
    echo "error: no SNAPSHOT line in engine_throughput output" >&2
    exit 1
fi

RS_IPS=$(printf '%s' "$ENGINE_SNAPSHOT" | grep -o '"rs_instances_per_sec":[0-9]*' | grep -o '[0-9]*$')
RWS_IPS=$(printf '%s' "$ENGINE_SNAPSHOT" | grep -o '"rws_instances_per_sec":[0-9]*' | grep -o '[0-9]*$')
SPEEDUP=$(awk "BEGIN { printf \"%.4f\", $RS_IPS / $RWS_IPS }")
RS_FASTER=$(awk "BEGIN { print ($RS_IPS > $RWS_IPS) ? \"true\" : \"false\" }")

cat > "$ENGINE_OUT" <<EOF
{
  "pr": 5,
  "claim": "failure-free service throughput: A1 in RS strictly above the RWS baseline (Theorem 5.2 compounded)",
  "measured": $ENGINE_SNAPSHOT,
  "rs_over_rws_speedup": $SPEEDUP,
  "rs_strictly_faster": $RS_FASTER
}
EOF

echo "== wrote $ENGINE_OUT (RS $RS_IPS vs RWS $RWS_IPS instances/s, speedup $SPEEDUP) =="
if [ "$RS_FASTER" != "true" ]; then
    echo "error: RS service throughput did not beat the RWS baseline" >&2
    exit 1
fi

# ---------------------------------------------------------------------------
# Clock-backend throughput: the same seed sweep through the release CLI
# on the virtual (discrete-event) and real (OS) clocks. The virtual
# backend must be dramatically faster at identical run logs (held by
# tests/backend_conformance.rs); BENCH_PR6.json records the measured
# seeds/s on each backend plus the engine's instances/s under virtual
# time.

BACKEND_OUT=BENCH_PR6.json
VIRT_SEEDS=4096
REAL_SEEDS=64

echo "== backend sweep throughput (release CLI) =="
cargo build --release --quiet

now_ms() { date +%s%3N; }

T0=$(now_ms)
./target/release/ssp runtime-fuzz floodset rs --seed-range "0..$VIRT_SEEDS" > /dev/null
T1=$(now_ms)
VIRT_MS=$((T1 - T0))
VIRT_SPS=$(awk "BEGIN { printf \"%d\", $VIRT_SEEDS * 1000 / $VIRT_MS }")

T0=$(now_ms)
./target/release/ssp runtime-fuzz floodset rs --seed-range "0..$REAL_SEEDS" --backend real > /dev/null
T1=$(now_ms)
REAL_MS=$((T1 - T0))
REAL_SPS=$(awk "BEGIN { printf \"%d\", $REAL_SEEDS * 1000 / $REAL_MS }")

T0=$(now_ms)
./target/release/ssp serve a1 rs --clients 16 --instances 100 --seed 7 > /dev/null
T1=$(now_ms)
ENGINE_MS=$((T1 - T0))
ENGINE_IPS=$(awk "BEGIN { printf \"%d\", 100 * 1000 / $ENGINE_MS }")

BACKEND_RATIO=$(awk "BEGIN { printf \"%.1f\", $VIRT_SPS / ($REAL_SPS > 0 ? $REAL_SPS : 1) }")
VIRT_FASTER=$(awk "BEGIN { print ($VIRT_SPS > $REAL_SPS) ? \"true\" : \"false\" }")

cat > "$BACKEND_OUT" <<JSON
{
  "pr": 6,
  "claim": "the virtual (discrete-event) clock sweeps seeds orders of magnitude faster than the real clock at byte-identical run logs",
  "measured": {
    "virtual_floodset_rs_seeds": $VIRT_SEEDS,
    "virtual_sweep_ms": $VIRT_MS,
    "virtual_seeds_per_sec": $VIRT_SPS,
    "real_floodset_rs_seeds": $REAL_SEEDS,
    "real_sweep_ms": $REAL_MS,
    "real_seeds_per_sec": $REAL_SPS,
    "engine_a1_rs_virtual_instances": 100,
    "engine_virtual_ms": $ENGINE_MS,
    "engine_virtual_instances_per_sec": $ENGINE_IPS
  },
  "virtual_over_real_ratio": $BACKEND_RATIO,
  "virtual_strictly_faster": $VIRT_FASTER
}
JSON

echo "== wrote $BACKEND_OUT (virtual $VIRT_SPS seeds/s vs real $REAL_SPS seeds/s, ratio $BACKEND_RATIO; engine $ENGINE_IPS instances/s) =="
if [ "$VIRT_FASTER" != "true" ]; then
    echo "error: the virtual backend did not beat the real clock" >&2
    exit 1
fi

# ---------------------------------------------------------------------------
# Sharded service scaling: the same closed-loop workload partitioned
# over G independent consensus groups. Failure-free under the virtual
# clock the per-tick cost is the max over groups, so resolved
# commands per *simulated* second must rise monotonically with G; under
# 20% chaos loss the cross-shard NBAC lane must keep committing with a
# clean audit. BENCH_PR9.json records both, for both models.

SHARD_OUT=BENCH_PR9.json
SHARD_COUNTS="1 2 4 8"

echo "== sharded service scaling (release CLI) =="

# Prints resolved commands per simulated second for one failure-free run.
shard_cps() { # algo model shards
    ./target/release/ssp serve "$1" "$2" --shards "$3" --clients 16 \
        --instances 40 --seed 7 --failure-free \
        | grep -o '[0-9.]* commands/s' | head -n1 | cut -d' ' -f1
}

RS_CPS=""
RWS_CPS=""
for g in $SHARD_COUNTS; do
    RS_CPS="$RS_CPS $(shard_cps a1 rs "$g")"
    RWS_CPS="$RWS_CPS $(shard_cps ct rws "$g")"
done

monotonic() { # space-separated series
    awk "BEGIN { n = split(\"$1\", v, \" \");
        for (i = 2; i <= n; i++) if (v[i] < v[i-1]) { print \"false\"; exit }
        print \"true\" }"
}
RS_MONO=$(monotonic "$RS_CPS")
RWS_MONO=$(monotonic "$RWS_CPS")

# Cross-shard commit rate under chaos: G=4, 15% transaction rate, 20%
# loss. The commit/abort split comes from the deterministic stats JSON.
shard_cross() { # algo model out
    ./target/release/ssp serve "$1" "$2" --shards 4 --cross-shard-rate 0.15 \
        --clients 16 --instances 40 --seed 7 --loss 0.2 \
        --stats-out "$3" > /dev/null
}
shard_cross a1 rs shard-cross-rs.json
shard_cross ct rws shard-cross-rws.json

cross_field() { # file field
    grep -o "\"$2\":[0-9]*" "$1" | head -n1 | grep -o '[0-9]*$'
}
RS_SUB=$(cross_field shard-cross-rs.json submitted)
RS_COM=$(cross_field shard-cross-rs.json committed)
RS_VIOL=$(cross_field shard-cross-rs.json nbac_violations)
RWS_SUB=$(cross_field shard-cross-rws.json submitted)
RWS_COM=$(cross_field shard-cross-rws.json committed)
RWS_VIOL=$(cross_field shard-cross-rws.json nbac_violations)
rm -f shard-cross-rs.json shard-cross-rws.json

json_series() { printf '%s' "$1" | awk '{ for (i = 1; i <= NF; i++) printf "%s%s", (i > 1 ? ", " : ""), $i }'; }

cat > "$SHARD_OUT" <<JSON
{
  "pr": 9,
  "claim": "resolved commands per simulated second scale monotonically with the shard count failure-free, and cross-shard NBAC keeps committing with clean audits under 20% chaos loss",
  "measured": {
    "shard_counts": [$(json_series "$SHARD_COUNTS")],
    "a1_rs_commands_per_sec": [$(json_series "$RS_CPS")],
    "ct_rws_commands_per_sec": [$(json_series "$RWS_CPS")],
    "chaos_cross_shard": {
      "a1_rs": { "submitted": $RS_SUB, "committed": $RS_COM, "nbac_violations": $RS_VIOL },
      "ct_rws": { "submitted": $RWS_SUB, "committed": $RWS_COM, "nbac_violations": $RWS_VIOL }
    }
  },
  "rs_monotonic": $RS_MONO,
  "rws_monotonic": $RWS_MONO
}
JSON

echo "== wrote $SHARD_OUT (rs [$RS_CPS ] rws [$RWS_CPS ] commands/s; chaos commit rs $RS_COM/$RS_SUB rws $RWS_COM/$RWS_SUB) =="
if [ "$RS_MONO" != "true" ] || [ "$RWS_MONO" != "true" ]; then
    echo "error: sharded commands/s did not scale monotonically with G" >&2
    exit 1
fi
if [ "$RS_VIOL" != "0" ] || [ "$RWS_VIOL" != "0" ] || [ "$RS_COM" = "0" ] || [ "$RWS_COM" = "0" ]; then
    echo "error: cross-shard NBAC lane unhealthy under chaos" >&2
    exit 1
fi

# ---------------------------------------------------------------------------
# External clients: the gateway subsystem serving real submissions over
# loopback sockets. BENCH_PR10.json records (a) external-client
# throughput (acked requests per wall-clock second through `ssp load`
# against a gateway-fronted cluster) next to the in-process numbers of
# BENCH_PR5, and (b) the client-observed Theorem 5.2 gap: the p50
# ack-round ratio between A1/RS and CtRounds/RWS under the scripted
# in-process load — deterministic per seed, expected exactly 2.0.

GATEWAY_OUT=BENCH_PR10.json
GW_PORT=7610
GW_REQUESTS=96

echo "== external-client load (release CLI) =="

./target/release/ssp serve-cluster -n 3 --instances 400 --gap-ms 5 \
    --fd-timeout-ms 2500 --drain 120 --seed 11 \
    --gateway-base-port "$GW_PORT" > gateway-cluster.log 2>&1 &
CLUSTER_PID=$!

LOAD_JSON=$(./target/release/ssp load \
    --targets "127.0.0.1:$GW_PORT,127.0.0.1:$((GW_PORT + 1)),127.0.0.1:$((GW_PORT + 2))" \
    --concurrency 8 --requests $GW_REQUESTS --seed 9 --deadline-ms 30000)
wait "$CLUSTER_PID"
rm -f gateway-cluster.log

EXT_ACKED=$(printf '%s' "$LOAD_JSON" | grep -o '"acked":[0-9]*' | head -n1 | grep -o '[0-9]*$')
EXT_TPUT=$(printf '%s' "$LOAD_JSON" | grep -o '"throughput":[0-9.]*' | grep -o '[0-9.]*$')
EXT_P50=$(printf '%s' "$LOAD_JSON" | grep -o '"p50_ms":[0-9.]*' | head -n1 | grep -o '[0-9.]*$')
EXT_P99=$(printf '%s' "$LOAD_JSON" | grep -o '"p99_ms":[0-9.]*' | head -n1 | grep -o '[0-9.]*$')

if [ "$EXT_ACKED" != "$GW_REQUESTS" ]; then
    echo "error: gateway load acked $EXT_ACKED of $GW_REQUESTS requests" >&2
    exit 1
fi

# Client-observed Theorem 5.2: deterministic p50 ack rounds per model.
inproc_p50() { # algo model
    ./target/release/ssp load --inproc "$1" "$2" --shards 2 --cross-rate 0.2 \
        --clients 4 --requests-per-client 8 --seed 7 \
        | grep -o '"p50_rounds":[0-9]*' | head -n1 | grep -o '[0-9]*$'
}
RS_P50_ROUNDS=$(inproc_p50 a1 rs)
RWS_P50_ROUNDS=$(inproc_p50 ct rws)
ROUND_RATIO=$(awk "BEGIN { printf \"%.1f\", $RWS_P50_ROUNDS / $RS_P50_ROUNDS }")

# In-process comparison point: commands/s of the unsharded failure-free
# engine on the same wall clock budget (BENCH_PR5 measures instances/s
# in simulated time; this is the apples-to-apples wall-clock number).
now_ms() { date +%s%3N; }
T0=$(now_ms)
./target/release/ssp serve a1 rs --clients 8 --instances 100 --seed 7 --failure-free > /dev/null
T1=$(now_ms)
INPROC_MS=$((T1 - T0))
INPROC_IPS=$(awk "BEGIN { printf \"%d\", 100 * 1000 / $INPROC_MS }")

cat > "$GATEWAY_OUT" <<JSON
{
  "pr": 10,
  "claim": "external clients drive the socket cluster end-to-end with every request acked, and the client-observed p50 ack-round ratio between A1/RS and CtRounds/RWS is the deterministic Theorem 5.2 gap",
  "measured": {
    "external_load": {
      "requests": $GW_REQUESTS,
      "acked": $EXT_ACKED,
      "throughput_req_per_sec": $EXT_TPUT,
      "client_p50_ms": $EXT_P50,
      "client_p99_ms": $EXT_P99
    },
    "inproc_reference": {
      "bench_pr5": "BENCH_PR5.json (simulated-time instances/s)",
      "serve_a1_rs_wall_instances_per_sec": $INPROC_IPS
    },
    "client_observed_rounds": {
      "a1_rs_p50": $RS_P50_ROUNDS,
      "ct_rws_p50": $RWS_P50_ROUNDS
    }
  },
  "rws_over_rs_p50_round_ratio": $ROUND_RATIO
}
JSON

echo "== wrote $GATEWAY_OUT (external $EXT_TPUT req/s, p50 ${EXT_P50}ms; round ratio $ROUND_RATIO) =="
if [ "$ROUND_RATIO" != "2.0" ]; then
    echo "error: client-observed p50 round ratio was $ROUND_RATIO, expected 2.0" >&2
    exit 1
fi
