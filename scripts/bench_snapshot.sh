#!/usr/bin/env bash
# Observer-overhead benchmark snapshot: runs the observer_overhead
# criterion bench, extracts its machine-readable SNAPSHOT line, and
# writes BENCH_PR4.json comparing the NullObserver verifier throughput
# against the pre-refactor baseline (acceptance: within 5%).
#
# The baselines were measured on the pre-IR tree (commit 5dd0a8c) with
# the release CLI on the same spaces this bench sweeps:
#   serial  : ssp verify floodset-ws rws --n 3 --t 2 --threads 1
#             907,928 runs in 1597 ms  -> 568,520 runs/s
#   parallel: ssp verify floodset-ws rws --n 4 --t 2 --sym full --threads 4
#             4,174,749 canonical runs in 13835 ms -> 301,753 runs/s
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE_SERIAL_RPS=568520
OUT=BENCH_PR4.json

echo "== observer_overhead bench (release) =="
LOG=$(cargo bench -p ssp-bench --bench observer_overhead 2>&1 | tee /dev/stderr)

SNAPSHOT=$(printf '%s\n' "$LOG" | grep -o 'SNAPSHOT {.*}' | head -n1 | cut -d' ' -f2-)
if [ -z "$SNAPSHOT" ]; then
    echo "error: no SNAPSHOT line in bench output" >&2
    exit 1
fi

NULL_RPS=$(printf '%s' "$SNAPSHOT" | grep -o '"null_runs_per_sec":[0-9]*' | grep -o '[0-9]*$')
RATIO=$(awk "BEGIN { printf \"%.4f\", $NULL_RPS / $BASELINE_SERIAL_RPS }")
WITHIN=$(awk "BEGIN { print ($NULL_RPS >= 0.95 * $BASELINE_SERIAL_RPS) ? \"true\" : \"false\" }")

cat > "$OUT" <<EOF
{
  "pr": 4,
  "claim": "NullObserver verifier throughput within 5% of the pre-refactor baseline",
  "baseline": {
    "commit": "5dd0a8c",
    "serial_floodset_ws_rws_n3_t2_runs_per_sec": $BASELINE_SERIAL_RPS,
    "parallel_sym_full_n4_t2_threads4_runs_per_sec": 301753
  },
  "measured": $SNAPSHOT,
  "null_vs_baseline_ratio": $RATIO,
  "within_5_percent": $WITHIN
}
EOF

echo "== wrote $OUT (null $NULL_RPS runs/s vs baseline $BASELINE_SERIAL_RPS, ratio $RATIO, within 5%: $WITHIN) =="
if [ "$WITHIN" != "true" ]; then
    echo "error: NullObserver throughput regressed more than 5%" >&2
    exit 1
fi
