#!/usr/bin/env bash
# Observer-overhead benchmark snapshot: runs the observer_overhead
# criterion bench, extracts its machine-readable SNAPSHOT line, and
# writes BENCH_PR4.json comparing the NullObserver verifier throughput
# against the pre-refactor baseline (acceptance: within 5%).
#
# The baselines were measured on the pre-IR tree (commit 5dd0a8c) with
# the release CLI on the same spaces this bench sweeps:
#   serial  : ssp verify floodset-ws rws --n 3 --t 2 --threads 1
#             907,928 runs in 1597 ms  -> 568,520 runs/s
#   parallel: ssp verify floodset-ws rws --n 4 --t 2 --sym full --threads 4
#             4,174,749 canonical runs in 13835 ms -> 301,753 runs/s
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE_SERIAL_RPS=568520
OUT=BENCH_PR4.json

echo "== observer_overhead bench (release) =="
LOG=$(cargo bench -p ssp-bench --bench observer_overhead 2>&1 | tee /dev/stderr)

SNAPSHOT=$(printf '%s\n' "$LOG" | grep -o 'SNAPSHOT {.*}' | head -n1 | cut -d' ' -f2-)
if [ -z "$SNAPSHOT" ]; then
    echo "error: no SNAPSHOT line in bench output" >&2
    exit 1
fi

NULL_RPS=$(printf '%s' "$SNAPSHOT" | grep -o '"null_runs_per_sec":[0-9]*' | grep -o '[0-9]*$')
RATIO=$(awk "BEGIN { printf \"%.4f\", $NULL_RPS / $BASELINE_SERIAL_RPS }")
WITHIN=$(awk "BEGIN { print ($NULL_RPS >= 0.95 * $BASELINE_SERIAL_RPS) ? \"true\" : \"false\" }")

cat > "$OUT" <<EOF
{
  "pr": 4,
  "claim": "NullObserver verifier throughput within 5% of the pre-refactor baseline",
  "baseline": {
    "commit": "5dd0a8c",
    "serial_floodset_ws_rws_n3_t2_runs_per_sec": $BASELINE_SERIAL_RPS,
    "parallel_sym_full_n4_t2_threads4_runs_per_sec": 301753
  },
  "measured": $SNAPSHOT,
  "null_vs_baseline_ratio": $RATIO,
  "within_5_percent": $WITHIN
}
EOF

echo "== wrote $OUT (null $NULL_RPS runs/s vs baseline $BASELINE_SERIAL_RPS, ratio $RATIO, within 5%: $WITHIN) =="
if [ "$WITHIN" != "true" ]; then
    echo "error: NullObserver throughput regressed more than 5%" >&2
    exit 1
fi

# ---------------------------------------------------------------------------
# Engine service throughput: the same failure-free closed-loop workload
# served by A1 in RS (Λ = 1, early retire) and CtRounds in RWS
# (Λ = t + 1). Theorem 5.2 compounds across instances, so RS must come
# out strictly faster; BENCH_PR5.json records the measured ordering.

ENGINE_OUT=BENCH_PR5.json

echo "== engine_throughput bench (release) =="
ENGINE_LOG=$(cargo bench -p ssp-bench --bench engine_throughput 2>&1 | tee /dev/stderr)

ENGINE_SNAPSHOT=$(printf '%s\n' "$ENGINE_LOG" | grep -o 'SNAPSHOT {.*}' | head -n1 | cut -d' ' -f2-)
if [ -z "$ENGINE_SNAPSHOT" ]; then
    echo "error: no SNAPSHOT line in engine_throughput output" >&2
    exit 1
fi

RS_IPS=$(printf '%s' "$ENGINE_SNAPSHOT" | grep -o '"rs_instances_per_sec":[0-9]*' | grep -o '[0-9]*$')
RWS_IPS=$(printf '%s' "$ENGINE_SNAPSHOT" | grep -o '"rws_instances_per_sec":[0-9]*' | grep -o '[0-9]*$')
SPEEDUP=$(awk "BEGIN { printf \"%.4f\", $RS_IPS / $RWS_IPS }")
RS_FASTER=$(awk "BEGIN { print ($RS_IPS > $RWS_IPS) ? \"true\" : \"false\" }")

cat > "$ENGINE_OUT" <<EOF
{
  "pr": 5,
  "claim": "failure-free service throughput: A1 in RS strictly above the RWS baseline (Theorem 5.2 compounded)",
  "measured": $ENGINE_SNAPSHOT,
  "rs_over_rws_speedup": $SPEEDUP,
  "rs_strictly_faster": $RS_FASTER
}
EOF

echo "== wrote $ENGINE_OUT (RS $RS_IPS vs RWS $RWS_IPS instances/s, speedup $SPEEDUP) =="
if [ "$RS_FASTER" != "true" ]; then
    echo "error: RS service throughput did not beat the RWS baseline" >&2
    exit 1
fi
