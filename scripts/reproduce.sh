#!/usr/bin/env bash
# Full reproduction: tests (all claims asserted), the report examples,
# and the benchmark harness. Expect ~20 minutes on a laptop.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== 1/4: test suite (every claim in EXPERIMENTS.md is asserted here) =="
cargo test --workspace

echo "== 2/4: report examples =="
cargo run --release --example full_report
cargo run --release --example latency_tables
cargo run --release --example atomic_commit
cargo run --release --example fd_hierarchy

echo "== 3/4: CLI smoke =="
cargo run --release -- latency -n 3 -t 1
cargo run --release -- verify floodset-ws rws -n 3 -t 1
cargo run --release -- refute-sdd

echo "== 4/4: benchmarks (one per experiment) =="
cargo bench --workspace

echo "Reproduction complete. See EXPERIMENTS.md for the claim-by-claim map."
