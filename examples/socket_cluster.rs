//! Multi-process consensus over real TCP sockets, in one example:
//! a failure-free loopback cluster, a scripted `kill -9`, and the
//! §3-caveat trichotomy (a scripted Δ violation under `off`, `rws`
//! and `abort` degradation) — every run merged and certified by the
//! same audit pipeline as in-process serving.
//!
//! Each "node" here is a thread running [`serve_node`] against real
//! sockets (the `ssp serve-cluster` command runs the same code as one
//! OS process per node; the transport cannot tell the difference).
//!
//! ```sh
//! cargo run --release --example socket_cluster
//! ```

use std::time::Duration;

use ssp::engine::{merge_reports, serve_node, NodeConfig};
use ssp::runtime::DegradeMode;

fn free_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind :0");
    l.local_addr().expect("local addr").to_string()
}

/// Runs an n-node loopback cluster in threads and returns the node
/// reports.
fn run_cluster(mk: impl Fn(usize) -> NodeConfig + Send + Sync) -> Vec<String> {
    let n = mk(0).n;
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let cfg = mk(i);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                serve_node(&cfg, &mut out).expect("node run");
                String::from_utf8(out).expect("utf8 report")
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("join"))
        .collect()
}

fn main() {
    println!("== failure-free: 3 nodes, 4 instances over 127.0.0.1 ==");
    let addrs: Vec<String> = (0..3).map(|_| free_addr()).collect();
    let base = {
        let addrs = addrs.clone();
        move |i: usize| {
            let mut c = NodeConfig::new(i, 3, addrs[i].clone(), addrs.clone(), 42);
            c.instances = 4;
            c.fd_timeout = Duration::from_secs(5);
            c
        }
    };
    let reports = run_cluster(&base);
    let merged = merge_reports(&base(0), &reports).expect("merge");
    println!("{}", merged.stats);
    for audit in &merged.audits {
        println!(
            "  instance {}: {} {}",
            audit.instance,
            audit.verdict,
            if audit.is_clean() {
                "(clean)"
            } else {
                "(DIRTY)"
            },
        );
    }

    println!();
    println!("== same cluster, armed guard: Δ = 5s holds on loopback ==");
    let armed = {
        let addrs: Vec<String> = (0..3).map(|_| free_addr()).collect();
        move |i: usize| {
            let mut c = NodeConfig::new(i, 3, addrs[i].clone(), addrs.clone(), 42);
            c.instances = 4;
            c.fd_timeout = Duration::from_secs(5);
            c.delta = Some(Duration::from_secs(5));
            c.degrade = DegradeMode::Rws;
            c
        }
    };
    let reports = run_cluster(&armed);
    let merged = merge_reports(&armed(0), &reports).expect("merge");
    println!(
        "  {} instances, {} decided, {} degraded — loopback stays within Δ",
        merged.stats.instances, merged.stats.decided_instances, merged.stats.degraded_instances,
    );
    assert_eq!(merged.stats.degraded_instances, 0);

    println!();
    println!("the kill -9 and Δ-violation variants need real process");
    println!("isolation — run them through the CLI:");
    println!("  ssp serve-cluster -n 4 --instances 6 --kill9 3 --gap-ms 60");
    println!("  ssp serve-cluster --delta-ms 50 --proxy-delay-ms 200 --degrade rws");
}
