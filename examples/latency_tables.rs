//! Regenerates the latency-degree comparisons of §5.2–§5.3 as tables:
//! `lat`, `Lat`, `Λ` for every uniform consensus algorithm in the
//! paper, computed by exhaustive run enumeration.
//!
//! ```sh
//! cargo run --release --example latency_tables
//! ```

use ssp::algos::{
    COptFloodSet, COptFloodSetWs, EarlyDeciding, FOptFloodSet, FOptFloodSetWs, FloodSet,
    FloodSetWs, A1,
};
use ssp::lab::report::Table;
use ssp::lab::{explore_rs, explore_rws, LatencyAggregator};
use ssp::rounds::RoundAlgorithm;

fn fmt(v: Option<u32>) -> String {
    v.map_or("-".into(), |x| x.to_string())
}

fn measure_rs<A: RoundAlgorithm<u64>>(algo: &A, n: usize, t: usize) -> Vec<String> {
    let mut agg = LatencyAggregator::new();
    explore_rs(algo, n, t, &[0u64, 1], |run| agg.add(run));
    row(algo.name(), "RS", n, t, &agg)
}

fn measure_rws<A: RoundAlgorithm<u64>>(algo: &A, n: usize, t: usize) -> Vec<String> {
    let mut agg = LatencyAggregator::new();
    explore_rws(algo, n, t, &[0u64, 1], |run| agg.add(run));
    row(algo.name(), "RWS", n, t, &agg)
}

fn row(name: &str, model: &str, n: usize, t: usize, agg: &LatencyAggregator<u64>) -> Vec<String> {
    vec![
        name.to_string(),
        model.to_string(),
        format!("{n}"),
        format!("{t}"),
        format!("{}", agg.runs),
        fmt(agg.lat()),
        fmt(agg.lat_max_over_configs()),
        fmt(agg.capital_lambda()),
    ]
}

fn main() {
    let (n, t) = (3, 1);
    let mut table = Table::new(vec![
        "algorithm",
        "model",
        "n",
        "t",
        "runs",
        "lat",
        "Lat",
        "Λ",
    ]);
    table.row(measure_rs(&FloodSet, n, t));
    table.row(measure_rws(&FloodSetWs, n, t));
    table.row(measure_rs(&COptFloodSet, n, t));
    table.row(measure_rws(&COptFloodSetWs, n, t));
    table.row(measure_rs(&FOptFloodSet, n, t));
    table.row(measure_rws(&FOptFloodSetWs, n, t));
    table.row(measure_rs(&A1, n, t));
    table.row(measure_rs(&EarlyDeciding, n, t));
    println!("Latency degrees over exhaustively enumerated runs (binary inputs):\n");
    println!("{table}");
    println!("Paper checkpoints (§5.2–§5.3):");
    println!("  lat(C_OptFloodSet)   = lat(C_OptFloodSetWS)   = 1   (unanimity fast path)");
    println!("  Lat(F_OptFloodSet)   = Lat(F_OptFloodSetWS)   = 1   (t initial crashes)");
    println!("  Λ(A1)                = 1 in RS   —   every RWS algorithm has Λ ≥ 2");
}
