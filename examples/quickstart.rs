//! Quickstart: run the paper's algorithms in both round models and
//! watch the headline phenomena.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ssp::algos::{FloodSet, FloodSetWs, A1};
use ssp::model::{check_uniform_consensus, InitialConfig, ProcessId, ProcessSet, Round};
use ssp::rounds::{run_rs, run_rws, CrashSchedule, PendingChoice, RoundCrash};

fn main() {
    let p = ProcessId::new;

    println!("== 1. FloodSet in RS: uniform consensus in t+1 rounds ==");
    let config = InitialConfig::new(vec![4u64, 1, 7]);
    let out = run_rs(&FloodSet, &config, 1, &CrashSchedule::none(3));
    println!("{out}");
    println!("latency degree: {:?} (t+1 = 2)\n", out.latency_degree());

    println!("== 2. A1 in RS: failure-free decision at round 1 (Λ(A1) = 1) ==");
    let config = InitialConfig::new(vec![30u64, 10, 20]);
    let out = run_rs(&A1, &config, 1, &CrashSchedule::none(3));
    println!("{out}");
    println!("latency degree: {:?}\n", out.latency_degree());

    println!("== 3. A1 in RWS: the §5.3 pending-broadcast anomaly ==");
    // p1 broadcasts, decides on its own copy, crashes in round 2; every
    // copy of its broadcast is withheld (pending).
    let config = InitialConfig::new(vec![10u64, 11, 12]);
    let mut schedule = CrashSchedule::none(3);
    schedule.crash(
        p(0),
        RoundCrash {
            round: Round::new(2),
            sends_to: ProcessSet::empty(),
        },
    );
    let mut pending = PendingChoice::none();
    pending.withhold(Round::FIRST, p(0), p(1));
    pending.withhold(Round::FIRST, p(0), p(2));
    let out = run_rws(&A1, &config, 1, &schedule, &pending).expect("valid pending choice");
    println!("{out}");
    match check_uniform_consensus(&out) {
        Err(violation) => println!("as the paper predicts: {violation}\n"),
        Ok(()) => unreachable!("the adversary must defeat A1 in RWS"),
    }

    println!("== 4. FloodSetWS in RWS: the halt mechanism restores uniformity ==");
    let out = run_rws(&FloodSetWs, &config, 1, &schedule, &pending).expect("valid pending choice");
    println!("{out}");
    match check_uniform_consensus(&out) {
        Ok(()) => println!("uniform consensus holds (at the price of Λ = 2)."),
        Err(v) => unreachable!("FloodSetWS must survive this adversary: {v}"),
    }
}
