//! The models in wall-clock form: one OS thread per process, crossbeam
//! channels with injectable delays, timeout vs. oracle failure
//! detection — and the §5.3 disagreement reproduced with real packets
//! from its fixed, documented seed.
//!
//! ```sh
//! cargo run --release --example threaded_consensus
//! ```

use ssp::algos::{FloodSetWs, A1};
use ssp::lab::{check_threaded_run, ValidityMode};
use ssp::model::{check_uniform_consensus, InitialConfig};
use ssp::runtime::{run_threaded, FaultPlan, RuntimeConfig};

fn main() {
    let n = 3;

    println!("== SS flavour: bounded delays + timeout detector ==");
    let config = InitialConfig::new(vec![30u64, 10, 20]);
    let result = run_threaded(&A1, &config, 1, RuntimeConfig::ss_flavor(n, 42));
    println!("{}", result.outcome);
    println!(
        "decided in {:?}; latency degree {:?}; pending messages {}\n",
        result.elapsed,
        result.outcome.latency_degree(),
        result.pending_messages
    );

    println!("== SP flavour: the §5.3 adversary from its seed ==");
    let plan = FaultPlan::section_5_3();
    println!("{plan}");
    let config = InitialConfig::new(vec![10u64, 11, 12]);
    let result = run_threaded(&A1, &config, 1, plan.runtime_config());
    println!("{}", result.outcome);
    match check_uniform_consensus(&result.outcome) {
        Err(violation) => println!("real threads, real pending messages: {violation}"),
        Ok(()) => unreachable!("the scripted plan reproduces the anomaly every run"),
    }
    let report = check_threaded_run(&A1, &config, 1, &result, ValidityMode::Uniform)
        .expect("the anomaly is an admissible RWS run, replayed tick-for-tick");
    println!(
        "certified against the round models: {} pending message(s), replay agrees\n",
        report.pending
    );

    println!("== Same adversary against FloodSetWS ==");
    let result = run_threaded(&FloodSetWs, &config, 1, plan.runtime_config());
    println!("{}", result.outcome);
    match check_uniform_consensus(&result.outcome) {
        Ok(()) => println!("uniform consensus survives — the halt mechanism at work."),
        Err(v) => println!("unexpected violation: {v}"),
    }
}
