//! The models in wall-clock form: one OS thread per process, crossbeam
//! channels with injectable delays, timeout vs. oracle failure
//! detection — and the §5.3 disagreement reproduced with real packets.
//!
//! ```sh
//! cargo run --release --example threaded_consensus
//! ```

use std::time::Duration;

use ssp::algos::{FloodSetWs, A1};
use ssp::model::{check_uniform_consensus, InitialConfig, ProcessId};
use ssp::runtime::{run_threaded, NetConfig, RuntimeConfig, ThreadCrash};

fn main() {
    let p = ProcessId::new;
    let n = 3;

    println!("== SS flavour: bounded delays + timeout detector ==");
    let config = InitialConfig::new(vec![30u64, 10, 20]);
    let result = run_threaded(&A1, &config, 1, RuntimeConfig::ss_flavor(n, 42));
    println!("{}", result.outcome);
    println!(
        "decided in {:?}; latency degree {:?}; pending messages {}\n",
        result.elapsed,
        result.outcome.latency_degree(),
        result.pending_messages
    );

    println!("== SP flavour: p1's links slowed to 2s, oracle detector ==");
    let config = InitialConfig::new(vec![10u64, 11, 12]);
    let net = NetConfig::bounded(Duration::from_millis(2), 9).with_sender_delay(
        p(0),
        n,
        Duration::from_secs(2),
    );
    let runtime = RuntimeConfig::sp_flavor(n, 9).with_net(net).with_crash(
        p(0),
        ThreadCrash {
            round: 2,
            after_sends: 0,
        },
    );
    let result = run_threaded(&A1, &config, 1, runtime.clone());
    println!("{}", result.outcome);
    match check_uniform_consensus(&result.outcome) {
        Err(violation) => println!("real threads, real pending messages: {violation}\n"),
        Ok(()) => println!("(scheduling was kind this time — rerun for the anomaly)\n"),
    }

    println!("== Same adversary against FloodSetWS ==");
    let result = run_threaded(&FloodSetWs, &config, 1, runtime);
    println!("{}", result.outcome);
    match check_uniform_consensus(&result.outcome) {
        Ok(()) => println!("uniform consensus survives — the halt mechanism at work."),
        Err(v) => println!("unexpected violation: {v}"),
    }
}
