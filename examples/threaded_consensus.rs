//! The models in wall-clock form: one OS thread per process, crossbeam
//! channels with injectable delays, timeout vs. oracle failure
//! detection — and the §5.3 disagreement reproduced with real packets
//! from its fixed, documented seed.
//!
//! Every run goes through [`RuntimeBuilder`]; the first one executes
//! on both clock backends to show that the discrete-event timeline
//! reproduces the real clock's outcome in a fraction of the wall time.
//!
//! ```sh
//! cargo run --release --example threaded_consensus
//! ```

use ssp::algos::{FloodSetWs, A1};
use ssp::lab::{check_threaded_run, ValidityMode};
use ssp::model::{check_uniform_consensus, InitialConfig};
use ssp::runtime::{Backend, FaultPlan, RuntimeBuilder, RuntimeConfig};

fn main() {
    let n = 3;

    println!("== SS flavour: bounded delays + timeout detector ==");
    let config = InitialConfig::new(vec![30u64, 10, 20]);
    for backend in [Backend::Real, Backend::Virtual] {
        let wall = std::time::Instant::now();
        let result = RuntimeBuilder::new(&A1, &config)
            .runtime(RuntimeConfig::ss_flavor(n, 42))
            .backend(backend)
            .run()
            .unwrap();
        println!("[{backend} clock] {}", result.outcome);
        println!(
            "[{backend} clock] elapsed {:?} ({:?} wall); latency degree {:?}; pending messages {}",
            result.elapsed,
            wall.elapsed(),
            result.outcome.latency_degree(),
            result.pending_messages
        );
    }
    println!();

    println!("== SP flavour: the §5.3 adversary from its seed ==");
    let plan = FaultPlan::section_5_3();
    println!("{plan}");
    let config = InitialConfig::new(vec![10u64, 11, 12]);
    let result = RuntimeBuilder::new(&A1, &config)
        .plan(plan.clone())
        .run()
        .unwrap();
    println!("{}", result.outcome);
    match check_uniform_consensus(&result.outcome) {
        Err(violation) => println!("real threads, real pending messages: {violation}"),
        Ok(()) => unreachable!("the scripted plan reproduces the anomaly every run"),
    }
    let report = check_threaded_run(&A1, &config, 1, &result, ValidityMode::Uniform)
        .expect("the anomaly is an admissible RWS run, replayed tick-for-tick");
    println!(
        "certified against the round models: {} pending message(s), replay agrees\n",
        report.pending
    );

    println!("== Same adversary against FloodSetWS ==");
    let result = RuntimeBuilder::new(&FloodSetWs, &config)
        .plan(plan)
        .run()
        .unwrap();
    println!("{}", result.outcome);
    match check_uniform_consensus(&result.outcome) {
        Ok(()) => println!("uniform consensus survives — the halt mechanism at work."),
        Err(v) => println!("unexpected violation: {v}"),
    }
}
