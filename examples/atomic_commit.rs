//! The §3 efficiency claim on atomic commit: the synchronous protocol
//! reaches the Commit decision strictly more often than the
//! perfect-failure-detector one, because pending messages can eat
//! votes only in `RWS`.
//!
//! ```sh
//! cargo run --release --example atomic_commit
//! ```

use ssp::commit::{commit_rate_experiment, CommitWorkload};
use ssp::lab::report::Table;

fn main() {
    println!("Commit-rate comparison: VoteFlood (RS / SS side) vs VoteFloodWS (RWS / SP side)");
    println!("All processes vote Yes; crashes and pending choices are adversarial-random.\n");

    let mut table = Table::new(vec![
        "n",
        "t",
        "crash-prob",
        "trials",
        "RS commit-rate",
        "RWS commit-rate",
        "gap runs",
    ]);
    for (n, t) in [(3usize, 1usize), (4, 1), (4, 2), (5, 2)] {
        for crash_prob in [0.2, 0.5, 0.8] {
            let workload = CommitWorkload::all_yes(n, t, crash_prob);
            let trials = 2_000;
            let report = commit_rate_experiment(&workload, trials, 0xC0FFEE + n as u64);
            table.row(vec![
                n.to_string(),
                t.to_string(),
                format!("{crash_prob:.1}"),
                trials.to_string(),
                format!("{:.3}", report.rs_rate()),
                format!("{:.3}", report.rws_rate()),
                report.gap_runs.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!("Every gap run is a scenario where a vote was sent, the sender crashed,");
    println!("and the RWS side had to abort because the vote ended up pending — while");
    println!("the RS side, with bounded failure-detection delay, could still commit.");
}
