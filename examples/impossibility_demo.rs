//! Theorem 3.1, live: the run-surgery adversary defeats SDD candidates
//! in `SP`, while the same problem is trivial in `SS`.
//!
//! ```sh
//! cargo run --example impossibility_demo
//! ```

use ssp::algos::{SddSender, SsSddReceiver};
use ssp::lab::impossibility::candidates::{PatientWait, WaitOrSuspect};
use ssp::lab::refute;
use ssp::model::ProcessId;
use ssp::sim::{run, BoxedAutomaton, FairAdversary, ModelKind};

fn main() {
    println!("== SDD in SS: solvable with the Φ+1+Δ rule (§3) ==");
    for (phi, delta) in [(1u64, 1u64), (2, 3)] {
        for input in [false, true] {
            let automata: Vec<BoxedAutomaton<bool, bool>> = vec![
                Box::new(SddSender::new(ProcessId::new(1), input)),
                Box::new(SsSddReceiver::new(ProcessId::new(0), phi, delta)),
            ];
            let mut adv = FairAdversary::new(2, 200);
            let result =
                run(ModelKind::ss(phi, delta), automata, &mut adv, 1_000).expect("legal run");
            println!(
                "  Φ={phi} Δ={delta} input={} → receiver decides {:?}",
                input as u8,
                result.outputs[1].map(|d| d as u8)
            );
        }
    }

    println!("\n== SDD in SP: Theorem 3.1 defeats every candidate ==");
    let report = refute(&WaitOrSuspect, 1_000);
    println!("{report}");

    let report = refute(&PatientWait(25), 10_000);
    println!("{report}");

    println!("The adversary's trick, mechanically:");
    println!("  r0: sender initially dead, suspected at once → receiver must decide;");
    println!("  r': sender takes one step first, its message delayed arbitrarily —");
    println!("      the receiver's local views are identical, so it decides the same,");
    println!("      but Validity now demands the sender's value. Contradiction.");
}
