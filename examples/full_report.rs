//! Regenerates the complete paper-vs-measured report (EXPERIMENTS.md's
//! numbers) in one run. Release mode recommended:
//!
//! ```sh
//! cargo run --release --example full_report
//! ```

use ssp::algos::{
    COptFloodSet, COptFloodSetWs, EarlyDeciding, EarlyDecidingWs, FOptFloodSet, FOptFloodSetWs,
    FloodSet, FloodSetWs, A1,
};
use ssp::commit::{commit_rate_experiment, CommitWorkload};
use ssp::fd::classify;
use ssp::lab::impossibility::candidates::{PatientWait, WaitOrSuspect};
use ssp::lab::report::Table;
use ssp::lab::{
    all_round1_candidates, explore_rs, explore_rws, refute, refute_round1_candidate,
    run_adaptive_experiment, run_heartbeat_experiment, LatencyAggregator, RoundModel,
    SddRefutation, Symmetry, ValidityMode, Verification, Verifier,
};
use ssp::model::ProcessId;
use ssp::rounds::{cumulative_round_budget, RoundAlgorithm};

/// Exhaustive `RS` sweep through the unified builder.
fn verify_rs<A: RoundAlgorithm<u64> + Sync>(
    algo: &A,
    n: usize,
    t: usize,
    domain: &[u64],
    mode: ValidityMode,
) -> Verification<u64> {
    Verifier::new(algo)
        .n(n)
        .t(t)
        .domain(domain)
        .mode(mode)
        .run()
}

/// Exhaustive `RWS` sweep through the unified builder.
fn verify_rws<A: RoundAlgorithm<u64> + Sync>(
    algo: &A,
    n: usize,
    t: usize,
    domain: &[u64],
    mode: ValidityMode,
) -> Verification<u64> {
    Verifier::new(algo)
        .n(n)
        .t(t)
        .domain(domain)
        .mode(mode)
        .model(RoundModel::Rws)
        .run()
}

fn banner(s: &str) {
    println!("\n{}\n{s}\n{}", "=".repeat(s.len()), "=".repeat(s.len()));
}

fn main() {
    banner("E1/E2 — SDD: solvable in SS, refuted in SP (Theorem 3.1)");
    let report = refute(&WaitOrSuspect, 10_000);
    println!("{report}");
    let report = refute(&PatientWait(100), 100_000);
    assert!(matches!(report.refutation, SddRefutation::Validity { .. }));
    println!("(patience-100 variant: refuted identically)");

    banner("E3/E4/E5 — FloodSet family, exhaustive verification");
    let mut table = Table::new(vec!["algorithm", "model", "(n,t)", "runs", "verdict"]);
    let mut add = |name: &str, model: &str, nt: (usize, usize), v: &ssp::lab::Verification<u64>| {
        table.row(vec![
            name.into(),
            model.into(),
            format!("({},{})", nt.0, nt.1),
            v.runs.to_string(),
            match &v.counterexample {
                None => "OK (all runs)".into(),
                Some(c) => format!("VIOLATION: {}", c.violation),
            },
        ]);
    };
    add(
        "FloodSet",
        "RS",
        (3, 2),
        &verify_rs(&FloodSet, 3, 2, &[0, 1], ValidityMode::Strong),
    );
    add(
        "FloodSet",
        "RWS",
        (3, 1),
        &verify_rws(&FloodSet, 3, 1, &[0, 1], ValidityMode::Uniform),
    );
    add(
        "FloodSetWS",
        "RWS",
        (3, 2),
        &verify_rws(&FloodSetWs, 3, 2, &[0, 1], ValidityMode::Strong),
    );
    add(
        "A1",
        "RS",
        (3, 1),
        &verify_rs(&A1, 3, 1, &[0, 1], ValidityMode::Strong),
    );
    add(
        "A1",
        "RWS",
        (3, 1),
        &verify_rws(&A1, 3, 1, &[0, 1], ValidityMode::Uniform),
    );
    add(
        "EarlyDeciding",
        "RS",
        (3, 2),
        &verify_rs(&EarlyDeciding, 3, 2, &[0, 1], ValidityMode::Strong),
    );
    add(
        "EarlyDecidingWS",
        "RWS",
        (3, 2),
        &verify_rws(&EarlyDecidingWs, 3, 2, &[0, 1], ValidityMode::Strong),
    );
    println!("{table}");

    // The same FloodSetWS space once more, quotiented by symmetry: the
    // verdict and represented coverage are identical, the work is not.
    let sym = Verifier::new(&FloodSetWs)
        .n(3)
        .t(2)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Strong)
        .model(RoundModel::Rws)
        .threads(4)
        .symmetry(Symmetry::Full)
        .run();
    sym.expect_ok();
    println!(
        "symmetry-reduced FloodSetWS RWS (3,2): {} canonical runs stand for {} total",
        sym.runs, sym.represented
    );

    banner("E6–E8 — latency degrees (exhaustive, n=3, t=1, binary inputs)");
    let mut table = Table::new(vec!["algorithm", "model", "lat", "Lat", "Λ"]);
    let fmt = |v: Option<u32>| v.map_or("-".into(), |x| x.to_string());
    macro_rules! lat_row {
        ($algo:expr, rs) => {{
            let mut agg = LatencyAggregator::new();
            explore_rs(&$algo, 3, 1, &[0u64, 1], |run| agg.add(run));
            table.row(vec![
                RoundAlgorithm::<u64>::name(&$algo).into(),
                "RS".into(),
                fmt(agg.lat()),
                fmt(agg.lat_max_over_configs()),
                fmt(agg.capital_lambda()),
            ]);
        }};
        ($algo:expr, rws) => {{
            let mut agg = LatencyAggregator::new();
            explore_rws(&$algo, 3, 1, &[0u64, 1], |run| agg.add(run));
            table.row(vec![
                RoundAlgorithm::<u64>::name(&$algo).into(),
                "RWS".into(),
                fmt(agg.lat()),
                fmt(agg.lat_max_over_configs()),
                fmt(agg.capital_lambda()),
            ]);
        }};
    }
    lat_row!(FloodSet, rs);
    lat_row!(FloodSetWs, rws);
    lat_row!(COptFloodSet, rs);
    lat_row!(COptFloodSetWs, rws);
    lat_row!(FOptFloodSet, rs);
    lat_row!(FOptFloodSetWs, rws);
    lat_row!(A1, rs);
    lat_row!(EarlyDeciding, rs);
    lat_row!(EarlyDecidingWs, rws);
    println!("{table}");
    println!("paper checkpoints: lat(C_Opt*)=1, Lat(F_Opt*)=1, Λ(A1)=1, Λ ≥ 2 for all RWS rows.");

    banner("E9 — the RWS lower bound: the round-1-deciding family");
    let candidates = all_round1_candidates(3);
    let refuted = candidates
        .iter()
        .filter(|c| refute_round1_candidate(c, 3).is_some())
        .count();
    println!(
        "{refuted}/{} candidates refuted in RWS (all of them).",
        candidates.len()
    );

    banner("E10 — commit-rate gap (all-Yes votes, adversarial crashes)");
    let mut table = Table::new(vec!["n", "t", "crash-prob", "RS rate", "RWS rate", "gap"]);
    for (n, t, cp) in [(3, 1, 0.5), (4, 2, 0.5), (5, 2, 0.8)] {
        let r = commit_rate_experiment(&CommitWorkload::all_yes(n, t, cp), 2_000, 0xC0FFEE);
        table.row(vec![
            n.to_string(),
            t.to_string(),
            format!("{cp:.1}"),
            format!("{:.3}", r.rs_rate()),
            format!("{:.3}", r.rws_rate()),
            r.gap_runs.to_string(),
        ]);
    }
    println!("{table}");

    banner("E11 — RS-on-SS emulation budget K_r (n=3, Φ=Δ=1)");
    let ks: Vec<String> = (1..=5)
        .map(|r| cumulative_round_budget(1, 1, 3, r).to_string())
        .collect();
    println!("K_1..K_5 = {}", ks.join(", "));

    banner("E13/E15 — timeouts: P in SS, ◇P in DLS partial synchrony");
    let exp = run_heartbeat_experiment(3, 1, 1, &[None, Some(5), None], 1_000);
    println!(
        "SS heartbeats ({}) classify as: {}",
        exp.pattern,
        classify(&exp.pattern, &exp.history, exp.horizon)
    );
    let exp = run_adaptive_experiment(3, 1, 1, 120, ProcessId::new(0), 4, None, 3_000);
    println!(
        "DLS adaptive timeouts ({} retractions) classify as: {}",
        exp.retractions,
        classify(&exp.pattern, &exp.history, exp.horizon)
    );

    println!("\nDone. Cross-reference EXPERIMENTS.md for the full narrative.");
}
