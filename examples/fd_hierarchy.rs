//! The failure-detector side of the story: the Chandra–Toueg classes
//! (§2.5–2.6), the §3 claim that timeouts implement `P` in `SS`, and
//! the §1 side-claim that in partial synchrony they implement only
//! `◇P`.
//!
//! ```sh
//! cargo run --release --example fd_hierarchy
//! ```

use ssp::fd::{classify, eventually_perfect_history, perfect_history, strong_history};
use ssp::lab::report::Table;
use ssp::lab::{run_adaptive_experiment, run_heartbeat_experiment};
use ssp::model::{FailurePattern, ProcessId, Time};

fn main() {
    let p = ProcessId::new;

    println!("== 1. The classes, on oracle-generated histories ==\n");
    let mut pattern = FailurePattern::no_failures(4);
    pattern.crash(p(3), Time::new(6));

    let mut table = Table::new(vec!["history", "P", "◇P", "S", "◇S"]);
    let mut row = |name: &str, props: ssp::fd::FdProperties| {
        table.row(vec![
            name.into(),
            props.is_perfect().to_string(),
            props.is_eventually_perfect().to_string(),
            props.is_strong().to_string(),
            props.is_eventually_strong().to_string(),
        ]);
    };

    let h = perfect_history(&pattern, 3);
    row("perfect oracle", classify(&pattern, &h, Time::new(100)));

    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let h = eventually_perfect_history(&pattern, 3, Time::new(40), &mut rng);
    row(
        "transient false suspicions",
        classify(&pattern, &h, Time::new(200)),
    );

    let h = strong_history(&pattern, 3, p(0), &[(p(1), p(2))]);
    row(
        "permanent false suspicion (p1 immune)",
        classify(&pattern, &h, Time::new(100)),
    );

    println!("{table}");

    println!("== 2. Timeouts in SS implement P (§3) ==\n");
    let exp = run_heartbeat_experiment(3, 1, 1, &[None, Some(5), None], 1_000);
    let props = classify(&exp.pattern, &exp.history, exp.horizon);
    println!("scenario: {} — classification: {props}\n", exp.pattern);

    println!("== 3. Timeouts in DLS partial synchrony implement ◇P (§1) ==\n");
    let exp = run_adaptive_experiment(3, 1, 1, 120, p(0), 4, None, 3_000);
    let props = classify(&exp.pattern, &exp.history, exp.horizon);
    println!(
        "pre-gst chaos starves p1; adaptive bound doubles on each retraction ({} retractions)",
        exp.retractions
    );
    println!("classification: {props}");
    println!("⇒ eventually perfect but not perfect — exactly the SS/SP boundary the paper probes.");
}
