//! Pluggable time for the threaded runtime.
//!
//! Every wall-clock operation of the runtime — network delays, drain
//! periods, detector timeouts, oracle notification delays, stalls —
//! goes through a [`Clock`], which exists in two backends:
//!
//! * [`Backend::Real`] — thin wrappers over [`Instant`],
//!   [`std::thread::sleep`] and channel timeouts: the original
//!   wall-clock runtime, milliseconds and all.
//! * [`Backend::Virtual`] — a discrete-event scheduler. Threads still
//!   run on real OS threads, but "time" is a shared counter that only
//!   advances when *every* registered thread is parked (asleep or
//!   waiting on an empty channel). At that quiescence point the clock
//!   jumps straight to the earliest pending deadline — a 600 ms slow
//!   wire or a 200 ms drain costs a few microseconds of real time.
//!
//! The virtual backend preserves the runtime's observable behavior
//! because the determinism-by-margins design never lets an outcome
//! depend on sub-margin jitter: fast wires (≤ 1 ms + µs jitter) always
//! beat drains (200 ms) and detector timeouts (100 ms), slow wires
//! (600 ms+) always lose them, under either backend. The conformance
//! suite (`tests/backend_conformance.rs`) pins this down: both
//! backends emit byte-identical `RunLog`s per seed.
//!
//! The coordination protocol is deliberately simple — one mutex, one
//! condvar:
//!
//! * a thread that participates in virtual time is **registered**
//!   (by its spawner, before the spawn, so the count can never dip to
//!   zero spuriously) and deregisters on exit;
//! * blocking operations **park** the thread: its running count slot
//!   is released and an entry `(gate, deadline)` joins the parked set;
//! * message senders **notify** a [`Gate`]; a parked receiver wakes
//!   immediately, a non-parked receiver finds the pending flag under
//!   the same lock it parks with — no lost wakeups;
//! * when the running count hits zero, the last parking thread
//!   advances `now` to the minimum pending deadline and wakes every
//!   entry due at that instant.

use core::fmt;
use std::collections::HashSet;
use std::ops::Add;
use std::str::FromStr;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};

/// Which time backend a run executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Discrete-event simulated time: quiescence-triggered jumps to
    /// the next deadline. Bit-deterministic and orders of magnitude
    /// faster than wall-clock margins.
    #[default]
    Virtual,
    /// Wall-clock time: real sleeps, real channel timeouts.
    Real,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Virtual => write!(f, "virtual"),
            Backend::Real => write!(f, "real"),
        }
    }
}

/// The error returned when parsing an unknown backend name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError(pub String);

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown backend {:?} (expected virtual|real)", self.0)
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for Backend {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "virtual" => Ok(Backend::Virtual),
            "real" => Ok(Backend::Real),
            other => Err(ParseBackendError(other.to_string())),
        }
    }
}

/// An instant on a [`Clock`]: nanoseconds since the clock's epoch.
/// Plays the role [`Instant`] played before time became pluggable —
/// totally ordered, addable with [`Duration`], saturating on
/// subtraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tick(u64);

impl Tick {
    /// The clock's epoch.
    pub const ZERO: Tick = Tick(0);

    /// Nanoseconds since the epoch.
    #[must_use]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch.
    #[must_use]
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Time elapsed from `earlier` to `self`, zero if `earlier` is
    /// later.
    #[must_use]
    pub fn saturating_duration_since(self, earlier: Tick) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for Tick {
    type Output = Tick;

    fn add(self, d: Duration) -> Tick {
        Tick(self.0.saturating_add(duration_nanos(d)))
    }
}

/// Saturating `Duration → u64` nanoseconds (durations beyond ~584
/// years all mean "never").
fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Why a virtual park ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wake {
    /// The gate was notified (a message was sent).
    Notified,
    /// The deadline was reached (virtual time advanced to it).
    Deadline,
}

/// One parked thread.
struct Parked {
    /// The gate key the thread parked on.
    key: u64,
    /// Absolute wake deadline in nanos; `None` waits for a notify.
    deadline: Option<u64>,
    /// Set (with the running count re-incremented) when woken.
    wake: Option<Wake>,
}

/// Shared state of the virtual clock.
struct VirtState {
    /// Current virtual time, nanos since epoch.
    now: u64,
    /// Registered threads not currently parked.
    running: usize,
    /// Parked threads, unordered.
    parked: Vec<Parked>,
    /// Gates notified while nobody was parked on them.
    pending: HashSet<u64>,
    /// Next fresh gate key.
    next_key: u64,
}

/// The virtual-time coordinator.
struct VirtCore {
    state: Mutex<VirtState>,
    cv: Condvar,
}

impl VirtCore {
    /// Locks the state, swallowing poison (a panicked worker must not
    /// deadlock the remaining threads' clock operations).
    fn lock(&self) -> MutexGuard<'_, VirtState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn new() -> Arc<Self> {
        Arc::new(VirtCore {
            state: Mutex::new(VirtState {
                now: 0,
                running: 0,
                parked: Vec::new(),
                pending: HashSet::new(),
                next_key: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// Jumps `now` to the earliest pending deadline and wakes every
    /// entry due at (or before) that instant. Called with the running
    /// count at zero; entries without deadlines stay parked — progress
    /// then depends on an unregistered thread (e.g. the driver's main
    /// thread sending shutdown), which happens in real time.
    fn advance(s: &mut VirtState) {
        debug_assert_eq!(s.running, 0, "advance requires quiescence");
        let Some(min) = s.parked.iter().filter_map(|e| e.deadline).min() else {
            return;
        };
        s.now = s.now.max(min);
        for e in &mut s.parked {
            if e.wake.is_none() && e.deadline.is_some_and(|d| d <= s.now) {
                e.wake = Some(Wake::Deadline);
                s.running += 1;
            }
        }
    }

    /// Parks the calling (registered) thread on `key` until the gate
    /// is notified or `deadline` passes. Consumes a pending notify
    /// under the same lock — no lost wakeups.
    fn park(&self, key: u64, deadline: Option<u64>) -> Wake {
        let mut s = self.lock();
        if s.pending.remove(&key) {
            return Wake::Notified;
        }
        if deadline.is_some_and(|d| d <= s.now) {
            return Wake::Deadline;
        }
        s.running -= 1;
        s.parked.push(Parked {
            key,
            deadline,
            wake: None,
        });
        if s.running == 0 {
            Self::advance(&mut s);
            self.cv.notify_all();
        }
        loop {
            if let Some(pos) = s
                .parked
                .iter()
                .position(|e| e.key == key && e.wake.is_some())
            {
                let e = s.parked.swap_remove(pos);
                return e.wake.expect("woken entries carry a reason");
            }
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Notifies `key`: wakes its parked thread, or flags the notify
    /// pending for the next park. Safe from any thread, registered or
    /// not.
    fn notify(&self, key: u64) {
        let mut s = self.lock();
        if let Some(e) = s.parked.iter_mut().find(|e| e.key == key) {
            if e.wake.is_none() {
                e.wake = Some(Wake::Notified);
                s.running += 1;
            }
        } else {
            s.pending.insert(key);
        }
        self.cv.notify_all();
    }

    fn fresh_key(&self) -> u64 {
        let mut s = self.lock();
        let key = s.next_key;
        s.next_key += 1;
        key
    }
}

impl fmt::Debug for VirtCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.lock();
        f.debug_struct("VirtCore")
            .field("now", &s.now)
            .field("running", &s.running)
            .field("parked", &s.parked.len())
            .finish()
    }
}

#[derive(Debug, Clone)]
enum ClockInner {
    Real { epoch: Instant },
    Virtual { core: Arc<VirtCore> },
}

/// A cloneable time source. Every handle cloned from the same run
/// shares one epoch (and, under [`Backend::Virtual`], one simulated
/// timeline).
#[derive(Debug, Clone)]
pub struct Clock {
    inner: ClockInner,
}

impl Clock {
    /// A wall-clock backend anchored at the current instant.
    #[must_use]
    pub fn real() -> Self {
        Clock {
            inner: ClockInner::Real {
                epoch: Instant::now(),
            },
        }
    }

    /// A fresh virtual timeline starting at [`Tick::ZERO`].
    #[must_use]
    pub fn simulated() -> Self {
        Clock {
            inner: ClockInner::Virtual {
                core: VirtCore::new(),
            },
        }
    }

    /// The clock for a [`Backend`].
    #[must_use]
    pub fn for_backend(backend: Backend) -> Self {
        match backend {
            Backend::Real => Clock::real(),
            Backend::Virtual => Clock::simulated(),
        }
    }

    /// Which backend this clock realizes.
    #[must_use]
    pub fn backend(&self) -> Backend {
        match &self.inner {
            ClockInner::Real { .. } => Backend::Real,
            ClockInner::Virtual { .. } => Backend::Virtual,
        }
    }

    /// Whether this is a virtual (discrete-event) clock.
    #[must_use]
    pub fn is_virtual(&self) -> bool {
        matches!(self.inner, ClockInner::Virtual { .. })
    }

    /// The current time on this clock.
    #[must_use]
    pub fn now(&self) -> Tick {
        match &self.inner {
            ClockInner::Real { epoch } => Tick(duration_nanos(epoch.elapsed())),
            ClockInner::Virtual { core } => Tick(core.lock().now),
        }
    }

    /// Reserves a running slot for a thread about to be spawned. Call
    /// from the spawner *before* the spawn, so quiescence can never be
    /// declared while the new thread is still on its way. No-op on the
    /// real backend.
    pub fn register(&self) {
        if let ClockInner::Virtual { core } = &self.inner {
            core.lock().running += 1;
        }
    }

    /// Releases a registered thread's running slot; call exactly once,
    /// from the registered thread, as its last clock operation. No-op
    /// on the real backend.
    pub fn deregister(&self) {
        if let ClockInner::Virtual { core } = &self.inner {
            let mut s = core.lock();
            s.running -= 1;
            if s.running == 0 {
                VirtCore::advance(&mut s);
                core.cv.notify_all();
            }
        }
    }

    /// Sleeps for `d`. Real backend: [`std::thread::sleep`]. Virtual
    /// backend: parks the (registered) calling thread until the
    /// timeline reaches `now + d`.
    pub fn sleep(&self, d: Duration) {
        match &self.inner {
            ClockInner::Real { .. } => std::thread::sleep(d),
            ClockInner::Virtual { core } => {
                if d.is_zero() {
                    return;
                }
                let deadline = core.lock().now.saturating_add(duration_nanos(d));
                let key = core.fresh_key();
                // A fresh key is never notified: the park can only end
                // at the deadline.
                let woke = core.park(key, Some(deadline));
                debug_assert_eq!(woke, Wake::Deadline);
            }
        }
    }

    /// A new gate on this clock (no-op under the real backend).
    #[must_use]
    pub fn gate(&self) -> Gate {
        match &self.inner {
            ClockInner::Real { .. } => Gate { core: None, key: 0 },
            ClockInner::Virtual { core } => Gate {
                key: core.fresh_key(),
                core: Some(Arc::clone(core)),
            },
        }
    }

    /// Parks the calling (registered) thread on `gate` until the gate
    /// is notified or `timeout` elapses, whichever comes first;
    /// `timeout: None` waits for a notify alone. Unlike [`Clock::recv`]
    /// this returns on *any* wake, letting the caller re-check state
    /// beyond a single channel (e.g. a separate shutdown channel)
    /// before parking again. Real backend: a plain sleep for `timeout`
    /// (zero when `None` — real-clock callers poll).
    pub(crate) fn park_gate(&self, gate: &Gate, timeout: Option<Duration>) {
        match &self.inner {
            ClockInner::Real { .. } => {
                if let Some(d) = timeout {
                    std::thread::sleep(d);
                }
            }
            ClockInner::Virtual { core } => {
                let deadline = timeout.map(|d| core.lock().now.saturating_add(duration_nanos(d)));
                let _ = core.park(gate.key, deadline);
            }
        }
    }

    /// Receives from `rx` with an optional timeout, parking on `gate`
    /// under the virtual backend (senders must [`Gate::notify`] after
    /// sending). `timeout: None` waits indefinitely — only a send or a
    /// disconnect wakes the receiver.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] after `timeout` with no message;
    /// [`RecvTimeoutError::Disconnected`] once every sender is gone
    /// and the channel is drained.
    pub fn recv<T>(
        &self,
        rx: &Receiver<T>,
        gate: &Gate,
        timeout: Option<Duration>,
    ) -> Result<T, RecvTimeoutError> {
        match &self.inner {
            ClockInner::Real { .. } => match timeout {
                Some(d) => rx.recv_timeout(d),
                None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            },
            ClockInner::Virtual { core } => {
                let deadline = timeout.map(|d| core.lock().now.saturating_add(duration_nanos(d)));
                loop {
                    match rx.try_recv() {
                        Ok(v) => return Ok(v),
                        Err(TryRecvError::Disconnected) => {
                            return Err(RecvTimeoutError::Disconnected)
                        }
                        Err(TryRecvError::Empty) => {}
                    }
                    match core.park(gate.key, deadline) {
                        Wake::Notified => {}
                        Wake::Deadline => {
                            // One last look: a send racing the deadline
                            // is a delivery, not a timeout.
                            return match rx.try_recv() {
                                Ok(v) => Ok(v),
                                Err(TryRecvError::Disconnected) => {
                                    Err(RecvTimeoutError::Disconnected)
                                }
                                Err(TryRecvError::Empty) => Err(RecvTimeoutError::Timeout),
                            };
                        }
                    }
                }
            }
        }
    }
}

/// A wakeup channel between a sender and one parked receiver. Under
/// the virtual backend, every send into a channel whose receiver parks
/// through [`Clock::recv`] must be followed by [`Gate::notify`];
/// under the real backend both ends are free no-ops.
#[derive(Debug, Clone)]
pub struct Gate {
    core: Option<Arc<VirtCore>>,
    key: u64,
}

impl Gate {
    /// Wakes the receiver parked on this gate (or flags the wake
    /// pending if it is not parked yet).
    pub fn notify(&self) {
        if let Some(core) = &self.core {
            core.notify(self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("virtual".parse::<Backend>().unwrap(), Backend::Virtual);
        assert_eq!("real".parse::<Backend>().unwrap(), Backend::Real);
        assert_eq!(Backend::Virtual.to_string(), "virtual");
        assert_eq!(Backend::Real.to_string(), "real");
        let err = "fast".parse::<Backend>().unwrap_err();
        assert!(err.to_string().contains("fast"), "{err}");
        assert_eq!(Backend::default(), Backend::Virtual);
    }

    #[test]
    fn tick_arithmetic() {
        let t = Tick::ZERO + Duration::from_micros(3);
        assert_eq!(t.as_nanos(), 3_000);
        assert_eq!(t.as_micros(), 3);
        assert_eq!(
            (t + Duration::from_micros(2)).saturating_duration_since(t),
            Duration::from_micros(2)
        );
        assert_eq!(Tick::ZERO.saturating_duration_since(t), Duration::ZERO);
    }

    #[test]
    fn real_clock_advances_and_sleeps() {
        let clock = Clock::real();
        let a = clock.now();
        clock.sleep(Duration::from_millis(2));
        let b = clock.now();
        assert!(b.saturating_duration_since(a) >= Duration::from_millis(2));
        assert_eq!(clock.backend(), Backend::Real);
    }

    #[test]
    fn virtual_sleep_jumps_instead_of_waiting() {
        let clock = Clock::simulated();
        assert_eq!(clock.now(), Tick::ZERO);
        let wall = Instant::now();
        clock.register();
        // The only registered thread: its sleep is immediately the
        // quiescence point, so an hour passes in microseconds.
        clock.sleep(Duration::from_secs(3600));
        clock.deregister();
        assert_eq!(clock.now(), Tick::ZERO + Duration::from_secs(3600));
        assert!(wall.elapsed() < Duration::from_secs(10), "no real wait");
    }

    #[test]
    fn virtual_recv_times_out_at_the_virtual_deadline() {
        let clock = Clock::simulated();
        let (_tx, rx) = bounded::<u8>(1);
        let gate = clock.gate();
        clock.register();
        let got = clock.recv(&rx, &gate, Some(Duration::from_millis(500)));
        clock.deregister();
        assert_eq!(got, Err(RecvTimeoutError::Timeout));
        assert_eq!(clock.now(), Tick::ZERO + Duration::from_millis(500));
    }

    #[test]
    fn notify_before_park_is_not_lost() {
        let clock = Clock::simulated();
        let (tx, rx) = bounded::<u8>(1);
        let gate = clock.gate();
        tx.send(7).unwrap();
        gate.notify(); // receiver not parked yet: pending flag
        clock.register();
        let got = clock.recv(&rx, &gate, Some(Duration::from_secs(1)));
        clock.deregister();
        assert_eq!(got, Ok(7));
        assert_eq!(clock.now(), Tick::ZERO, "no time passed");
    }

    #[test]
    fn virtual_send_wakes_a_parked_receiver() {
        let clock = Clock::simulated();
        let (tx, rx) = bounded::<u8>(1);
        let gate = clock.gate();
        let sender_gate = gate.clone();
        let sender_clock = clock.clone();
        clock.register(); // receiver
        sender_clock.register(); // sender (registered by main pre-spawn)
        let sender = std::thread::spawn(move || {
            sender_clock.sleep(Duration::from_millis(40));
            tx.send(9).unwrap();
            sender_gate.notify();
            sender_clock.deregister();
        });
        let got = clock.recv(&rx, &gate, Some(Duration::from_secs(30)));
        clock.deregister();
        sender.join().unwrap();
        assert_eq!(got, Ok(9));
        // Delivery happened when the sender woke: 40 ms, not 30 s.
        assert_eq!(clock.now(), Tick::ZERO + Duration::from_millis(40));
    }

    #[test]
    fn two_sleepers_wake_in_deadline_order() {
        let clock = Clock::simulated();
        let c1 = clock.clone();
        let c2 = clock.clone();
        clock.register();
        clock.register();
        let h1 = std::thread::spawn(move || {
            c1.sleep(Duration::from_millis(10));
            let at = c1.now();
            c1.deregister();
            at
        });
        let h2 = std::thread::spawn(move || {
            c2.sleep(Duration::from_millis(25));
            let at = c2.now();
            c2.deregister();
            at
        });
        let (a, b) = (h1.join().unwrap(), h2.join().unwrap());
        assert_eq!(a, Tick::ZERO + Duration::from_millis(10));
        assert_eq!(b, Tick::ZERO + Duration::from_millis(25));
    }

    #[test]
    fn disconnect_wakes_a_deadline_less_receiver() {
        let clock = Clock::simulated();
        let (tx, rx) = bounded::<u8>(1);
        let gate = clock.gate();
        let notifier = gate.clone();
        clock.register();
        // An unregistered (real-time) thread drops the sender, as the
        // driver's main thread does at shutdown.
        let dropper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            drop(tx);
            notifier.notify();
        });
        let got = clock.recv(&rx, &gate, None);
        clock.deregister();
        dropper.join().unwrap();
        assert_eq!(got, Err(RecvTimeoutError::Disconnected));
        assert_eq!(clock.now(), Tick::ZERO, "no deadline ⇒ no advance");
    }
}
