//! Threaded, channel-based runtime: the paper's models in wall-clock
//! form.
//!
//! One OS thread per process, crossbeam channels for links, and two
//! flavours of everything:
//!
//! * the **`SS` flavour** — a bounded-delay network
//!   ([`NetConfig::bounded`]), the timeout-based perfect detector
//!   ([`TimeoutFd`], §3's construction), and a drain period that turns
//!   suspicion into certainty about in-flight messages: rounds satisfy
//!   round synchrony;
//! * the **`SP` flavour** — finite but arbitrary link delays
//!   ([`NetConfig::with_sender_delay`]), an oracle detector
//!   ([`OracleFd`]) that knows *that* a process crashed but nothing
//!   about its in-flight messages, and rounds that close on suspicion:
//!   weak round synchrony, real pending messages.
//!
//! [`run_threaded`] executes any `ssp-rounds` [`RoundAlgorithm`]
//! unchanged in either flavour; the driver tests reproduce the §5.3
//! `A1` disagreement with actual threads and delayed packets.
//!
//! Determinism comes from the fault-injection plane: a seed-derived
//! [`FaultPlan`] scripts crashes (including mid-broadcast cut-offs),
//! per-link delivery delays ([`LinkScript`]) and oracle suspicion
//! timing, and every run records a [`RunTrace`] that can be replayed
//! through the round models and validated by `ssp-sim`'s checkers —
//! see `ssp-lab`'s conformance module for the full bridge.
//!
//! [`RoundAlgorithm`]: ssp_rounds::RoundAlgorithm

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod driver;
pub mod fd;
pub mod net;
pub mod plan;
pub mod trace;

pub use driver::{
    run_threaded, FdFlavor, RoundWire, RuntimeConfig, SyncPolicy, ThreadCrash, ThreadedOutcome,
};
pub use fd::{FdModule, HeartbeatBoard, Oracle, OracleFd, TimeoutFd};
pub use net::{spawn_network, LinkScript, NetConfig, NetEnvelope, NetReceiver, NetSender};
pub use plan::{FaultPlan, PlanModel, SECTION_5_3_SEED};
pub use trace::{RoundObs, RunTrace, RunTraceError};
