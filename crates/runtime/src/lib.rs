//! Threaded, channel-based runtime: the paper's models in wall-clock
//! form.
//!
//! One OS thread per process, crossbeam channels for links, and two
//! flavours of everything:
//!
//! * the **`SS` flavour** — a bounded-delay network
//!   ([`NetConfig::bounded`]), the timeout-based perfect detector
//!   ([`TimeoutFd`], §3's construction), and a drain period that turns
//!   suspicion into certainty about in-flight messages: rounds satisfy
//!   round synchrony;
//! * the **`SP` flavour** — finite but arbitrary link delays
//!   ([`NetConfig::with_sender_delay`]), an oracle detector
//!   ([`OracleFd`]) that knows *that* a process crashed but nothing
//!   about its in-flight messages, and rounds that close on suspicion:
//!   weak round synchrony, real pending messages.
//!
//! [`RuntimeBuilder`] executes any `ssp-rounds` [`RoundAlgorithm`]
//! unchanged in either flavour; the driver tests reproduce the §5.3
//! `A1` disagreement with actual threads and delayed packets.
//!
//! Time itself is pluggable ([`Clock`], [`Backend`]): the **real**
//! backend sleeps on the OS clock, while the **virtual** backend runs
//! the same threaded code over a discrete-event timeline that jumps
//! straight to the next deadline whenever every thread is blocked —
//! seed sweeps run thousands of times faster and, per the backend
//! conformance suite, emit byte-identical `RunLog`s.
//!
//! Determinism comes from the fault-injection plane: a seed-derived
//! [`FaultPlan`] scripts crashes (including mid-broadcast cut-offs),
//! per-link delivery delays ([`LinkScript`]) and oracle suspicion
//! timing, and every run records a [`RunTrace`] that can be replayed
//! through the round models and validated by `ssp-sim`'s checkers —
//! see `ssp-lab`'s conformance module for the full bridge.
//!
//! On top of the scripted faults sits the **chaos plane**
//! ([`ChaosConfig`]): seed-deterministic message loss, duplication,
//! and reordering, masked by a reliable-delivery layer (acks +
//! capped-backoff retransmits + dedup) so round algorithms keep their
//! exactly-once wire contract. A **synchrony watchdog**
//! ([`SynchronyMonitor`]) checks the claimed delay bound Δ at runtime
//! and, on violation, either flags the run, downgrades it to `RWS`
//! semantics, or aborts it ([`DegradeMode`]) — the paper's §3 caveat
//! ("the detector is perfect only while the bounds hold") made
//! executable.
//!
//! [`RoundAlgorithm`]: ssp_rounds::RoundAlgorithm

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod chaos_proxy;
pub mod clock;
pub mod driver;
pub mod fd;
pub mod net;
pub mod plan;
pub mod socket;
pub mod trace;
pub mod transport;

pub use builder::RuntimeBuilder;
pub use chaos_proxy::{ChaosProxy, ChaosProxyConfig, LinkSpec};
pub use clock::{Backend, Clock, Gate, ParseBackendError, Tick};
pub use driver::{
    ConfigError, FdFlavor, RoundWire, RuntimeConfig, Stall, SyncPolicy, ThreadCrash,
    ThreadedOutcome, WatchdogConfig, FD_TIMEOUT_MARGIN, WATCHDOG_MARGIN,
};
pub use fd::{
    CrashLedger, DegradeMode, FdModule, HeartbeatBoard, LastSeenBoard, Oracle, OracleFd,
    StalenessFd, SynchronyEvent, SynchronyMonitor, SynchronyReport, TimeoutFd,
};
pub use net::{
    spawn_network, spawn_network_watched, ChaosConfig, LinkScript, NetConfig, NetEnvelope,
    NetHandle, NetReceiver, NetSender, NetStats, ShutdownTimeout, MAX_SEND_ATTEMPTS, RTO_INITIAL,
};
pub use plan::{FaultPlan, PlanModel, DELTA_VIOLATION_SEED, SECTION_5_3_SEED};
pub use socket::{
    FrameReader, GatewayListener, GatewaySubmission, SocketConfig, SocketMsg, SocketNet,
    FLUSH_STALE_CUT, FLUSH_TIMEOUT,
};
pub use trace::{RoundObs, RunTrace, RunTraceError};
pub use transport::{
    backoff_delay, Frame, GatewayStats, TransportError, TransportStats, BACKOFF_BASE, BACKOFF_CAP,
    BACKOFF_JITTER_MAX, MAX_FRAME_LEN,
};
