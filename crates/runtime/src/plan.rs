//! Seeded fault plans: the deterministic adversary for the threaded
//! runtime.
//!
//! A [`FaultPlan`] is derived from a single `u64` seed and scripts
//! everything the §5.3-style adversary controls:
//!
//! * **who crashes, when, and mid-broadcast where** — per-victim
//!   [`ThreadCrash`] points, including "after k of n sends";
//! * **which links are slow** — per-link, per-round delivery delays
//!   injected through [`crate::net::LinkScript`], chosen so that a
//!   slowed message outlives the whole run (it becomes *pending* in
//!   the §4.1 sense rather than merely late);
//! * **failure-detector timing** — a scripted oracle-notification
//!   matrix (`RWS` plans), so suspicion order is a function of the
//!   seed, not the OS scheduler.
//!
//! Determinism comes from margins, not from a virtual clock: fast
//! links deliver within [`FAST_MAX`], oracle notifications land within
//! [`NOTIFY_BASE`]`..=`[`NOTIFY_BASE`]`+`[`NOTIFY_JITTER`], and slow
//! links take [`SLOW`] — far longer than any run lasts. Under those
//! gaps every wall-clock execution of the same plan produces the same
//! [`crate::RunTrace`].
//!
//! Slowed links are restricted to senders that crash, in rounds
//! `crash_round - 1 ..= crash_round`: exactly the window in which
//! Lemma 4.1 permits a message to end up pending, and narrow enough
//! that receivers can always close their rounds via suspicion (no
//! deadlock).

use core::fmt;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ssp_model::ProcessId;
use ssp_rounds::{CrashSchedule, PendingChoice};

use crate::driver::{FdFlavor, RuntimeConfig, Stall, SyncPolicy, ThreadCrash, WatchdogConfig};
use crate::fd::DegradeMode;
use crate::net::{ChaosConfig, LinkScript, NetConfig};

/// Maximum delivery delay of an unscripted ("fast") link.
pub const FAST_MAX: Duration = Duration::from_millis(1);

/// Delivery delay of a slowed link — longer than any run, so a slowed
/// message is never received: it is *pending* when its sender crashes.
pub const SLOW: Duration = Duration::from_millis(600);

/// Slowed-link delay used by chaos plans and the Δ-violation scenario.
/// Chaos retransmits and scaled suspicions stretch runs, so the margin
/// that keeps a slowed wire pending must stretch with them.
pub const CHAOS_SLOW: Duration = Duration::from_millis(2500);

/// Minimum oracle-notification delay in `RWS` plans.
pub const NOTIFY_BASE: Duration = Duration::from_millis(25);

/// Maximum extra oracle-notification jitter in `RWS` plans.
pub const NOTIFY_JITTER: Duration = Duration::from_millis(25);

/// How much [`FaultPlan::with_chaos`] stretches oracle-notification
/// delays. The reliable layer can hold an in-window wire back for the
/// whole retransmit budget (~50ms), which overlaps the plain
/// 25–50ms notification band; scaling notifications to 100–200ms
/// restores the gap that makes wall-clock runs margin-deterministic
/// (every wire from a not-yet-suspected sender lands before any
/// suspicion does).
pub const CHAOS_NOTIFY_SCALE: u32 = 4;

/// The fixed seed whose [`FaultPlan`] reproduces the §5.3 anomaly:
/// `A1` violates uniform agreement in `RWS` at `n = 3, t = 1`.
///
/// `FaultPlan::from_seed(SECTION_5_3_SEED, 3, 1, 2, PlanModel::Rws)`
/// crashes `p1` in round 2 before any send, with both of its round-1
/// broadcast links slowed into pending-ness — so `p1` decides its own
/// value and dies while the survivors, never seeing it, fall back to
/// `p2`'s value. See `docs/paper-map.md` for the full mapping.
pub const SECTION_5_3_SEED: u64 = 519;

/// Seed of [`FaultPlan::delta_violation`], the canonical Δ-violation
/// scenario: an `RS` run whose network breaks its own delay bound.
pub const DELTA_VIOLATION_SEED: u64 = 0xde17a;

/// Which round model a plan targets (the runtime-local twin of the
/// checker's model switch; `ssp-lab` bridges the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanModel {
    /// Round synchrony: crashes only, no slow links, timeout detector.
    Rs,
    /// Weak round synchrony: crashes + slow links + scripted oracle.
    Rws,
}

impl fmt::Display for PlanModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanModel::Rs => write!(f, "RS"),
            PlanModel::Rws => write!(f, "RWS"),
        }
    }
}

/// A deterministic, seed-derived fault-injection script for one
/// threaded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The generating seed.
    pub seed: u64,
    /// Number of processes.
    pub n: usize,
    /// Resilience bound (at most `t` victims are scripted).
    pub t: usize,
    /// Round horizon of the algorithm under test.
    pub horizon: u32,
    /// Target round model.
    pub model: PlanModel,
    /// Per-process crash script (`crashes[i]` for process `i`).
    pub crashes: Vec<Option<ThreadCrash>>,
    /// Slowed links as `(src, dst, round)` triples: the round-`round`
    /// wire from `src` to `dst` takes [`SLOW`] to deliver.
    pub slow: Vec<(ProcessId, ProcessId, u32)>,
    /// Oracle-notification delays, `notify[crasher][observer]`
    /// (`RWS` plans only; empty for `RS`).
    pub notify: Vec<Vec<Duration>>,
    /// Chaos faults (loss/duplication/reordering); implies the
    /// reliable-delivery layer. `None` for plain seeded plans.
    pub chaos: Option<ChaosConfig>,
    /// What the synchrony watchdog does on a Δ violation (`RS` only).
    pub degrade: DegradeMode,
    /// Delivery delay of the links in [`Self::slow`].
    pub slow_delay: Duration,
    /// Per-process stall script (heartbeat starvation).
    pub stalls: Vec<Option<Stall>>,
}

impl FaultPlan {
    /// Derives the plan for `seed` at the given system parameters.
    ///
    /// The derivation draws from `StdRng::seed_from_u64(seed)` in a
    /// fixed order, so equal arguments always yield equal plans:
    ///
    /// 1. a victim count in `0..=t` and that many distinct victims;
    /// 2. per victim, a crash round in `1..=horizon+1` (the extra
    ///    round is the "decide then crash" case, which forces
    ///    `after_sends = 0`) and a mid-broadcast cut in `0..=n`;
    /// 3. `RWS` only: a fair coin per emitted wire of each victim in
    ///    rounds `crash_round-1..=crash_round` decides whether that
    ///    link is slowed, and an `n × n` notification matrix is drawn
    ///    from [`NOTIFY_BASE`]` + 0..=`[`NOTIFY_JITTER`].
    ///
    /// # Panics
    ///
    /// Panics if `t ≥ n` or `n` is 0.
    #[must_use]
    pub fn from_seed(seed: u64, n: usize, t: usize, horizon: u32, model: PlanModel) -> Self {
        assert!(n > 0 && t < n, "need 0 < n and t < n");
        let mut rng = StdRng::seed_from_u64(seed);
        let victim_count = rng.gen_range(0..=t);
        let mut avail: Vec<usize> = (0..n).collect();
        let mut victims: Vec<usize> = Vec::with_capacity(victim_count);
        for _ in 0..victim_count {
            victims.push(avail.remove(rng.gen_range(0..avail.len())));
        }

        let mut crashes: Vec<Option<ThreadCrash>> = vec![None; n];
        for &v in &victims {
            let round = rng.gen_range(1..=horizon + 1);
            let after_sends = if round > horizon {
                0 // post-horizon crashes happen after all sends anyway
            } else {
                rng.gen_range(0..=n)
            };
            crashes[v] = Some(ThreadCrash {
                round,
                after_sends,
                sends_to: None,
            });
        }

        let mut slow = Vec::new();
        let mut notify = Vec::new();
        if model == PlanModel::Rws {
            for &v in &victims {
                let crash = crashes[v].expect("victim has a crash");
                let lo = crash.round.saturating_sub(1).max(1);
                let hi = crash.round.min(horizon);
                for r in lo..=hi {
                    for dst in 0..n {
                        if dst == v {
                            continue;
                        }
                        let emitted = r < crash.round || dst < crash.after_sends;
                        if emitted && rng.gen_bool(0.5) {
                            slow.push((ProcessId::new(v), ProcessId::new(dst), r));
                        }
                    }
                }
            }
            let jitter = NOTIFY_JITTER.as_millis() as u64;
            notify = (0..n)
                .map(|_| {
                    (0..n)
                        .map(|_| NOTIFY_BASE + Duration::from_millis(rng.gen_range(0..=jitter)))
                        .collect()
                })
                .collect();
        }

        FaultPlan {
            seed,
            n,
            t,
            horizon,
            model,
            crashes,
            slow,
            notify,
            chaos: None,
            degrade: DegradeMode::Off,
            slow_delay: SLOW,
            stalls: vec![None; n],
        }
    }

    /// Realizes a round-model adversary — a [`CrashSchedule`] plus a
    /// [`PendingChoice`] — as a threaded fault plan, the bridge the
    /// exploration layer drives:
    ///
    /// * every scheduled [`ssp_rounds::RoundCrash`] becomes a set-mode
    ///   [`ThreadCrash`] emitting exactly to its `sends_to` members
    ///   (post-horizon crashes stay prefix crashes with no cut — the
    ///   process completes every round and then dies);
    /// * every withheld `(round, src, dst)` triple becomes a slowed
    ///   link, so the wire is emitted but outlives the run — *pending*
    ///   in the §4.1 sense;
    /// * `RWS` plans get a *uniform* [`NOTIFY_BASE`] oracle matrix
    ///   (no jitter): the plan is a function of the adversary alone,
    ///   never of a seed, which is what makes explored executions
    ///   byte-comparable across runs.
    ///
    /// # Panics
    ///
    /// Panics if `t ≥ n`, the schedule crashes more than `t`
    /// processes, or a crash round exceeds `horizon + 1`.
    #[must_use]
    pub fn from_adversary(
        schedule: &CrashSchedule,
        pending: &PendingChoice,
        t: usize,
        horizon: u32,
        model: PlanModel,
    ) -> Self {
        let n = schedule.n();
        assert!(n > 0 && t < n, "need 0 < n and t < n");
        assert!(
            schedule.fault_count() <= t,
            "schedule crashes {} > t = {t}",
            schedule.fault_count()
        );
        let mut crashes: Vec<Option<ThreadCrash>> = vec![None; n];
        for (p, slot) in crashes.iter_mut().enumerate() {
            let Some(crash) = schedule.crash_of(ProcessId::new(p)) else {
                continue;
            };
            let round = crash.round.get();
            assert!(round <= horizon + 1, "crash round {round} beyond horizon");
            *slot = Some(if round > horizon {
                // Decide-then-crash: completes every round first.
                ThreadCrash::prefix(round, 0)
            } else {
                ThreadCrash::sending_to(round, crash.sends_to)
            });
        }
        let slow = pending
            .triples()
            .iter()
            .map(|&(r, src, dst)| (src, dst, r.get()))
            .collect();
        let notify = match model {
            PlanModel::Rs => Vec::new(),
            PlanModel::Rws => vec![vec![NOTIFY_BASE; n]; n],
        };
        FaultPlan {
            seed: 0,
            n,
            t,
            horizon,
            model,
            crashes,
            slow,
            notify,
            chaos: None,
            degrade: DegradeMode::Off,
            slow_delay: SLOW,
            stalls: vec![None; n],
        }
    }

    /// Adds chaos faults on top of the plan: every wire is subject to
    /// seed-deterministic loss/duplication/reordering and travels over
    /// the reliable-delivery layer. Slowed links stretch to
    /// [`CHAOS_SLOW`] and oracle notifications scale by
    /// [`CHAOS_NOTIFY_SCALE`] so the determinism margins survive the
    /// retransmit budget.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self.slow_delay = CHAOS_SLOW;
        for row in &mut self.notify {
            for d in row {
                *d *= CHAOS_NOTIFY_SCALE;
            }
        }
        self
    }

    /// Sets the watchdog's degradation mode (effective in `RS` plans).
    #[must_use]
    pub fn with_degrade(mut self, degrade: DegradeMode) -> Self {
        self.degrade = degrade;
        self
    }

    /// Scripts a heartbeat starvation for one process.
    #[must_use]
    pub fn with_stall(mut self, p: ProcessId, stall: Stall) -> Self {
        self.stalls[p.index()] = Some(stall);
        self
    }

    /// The canonical Δ-violation scenario: an `RS` plan whose network
    /// silently breaks its own delay bound, re-creating the §5.3 shape
    /// *under the model that is supposed to exclude it*. `p1`'s round-1
    /// broadcast links are slowed far past Δ and `p1` crashes in round
    /// 2 before relaying — so `p1` decides its own value on its fast
    /// self-delivery while the survivors, never seeing it, decide
    /// another. With the watchdog off this reproduces a uniform-
    /// agreement violation inside "RS"; [`DegradeMode::Rws`] instead
    /// downgrades the run at the first over-Δ wire, which is admissible
    /// because the crash satisfies Lemma 4.1.
    #[must_use]
    pub fn delta_violation() -> Self {
        let n = 3;
        let mut crashes = vec![None; n];
        crashes[0] = Some(ThreadCrash {
            round: 2,
            after_sends: 0,
            sends_to: None,
        });
        FaultPlan {
            seed: DELTA_VIOLATION_SEED,
            n,
            t: 1,
            horizon: 2,
            model: PlanModel::Rs,
            crashes,
            slow: vec![
                (ProcessId::new(0), ProcessId::new(1), 1),
                (ProcessId::new(0), ProcessId::new(2), 1),
            ],
            notify: Vec::new(),
            chaos: None,
            degrade: DegradeMode::Off,
            slow_delay: CHAOS_SLOW,
            stalls: vec![None; n],
        }
    }

    /// The canonical §5.3 plan: [`SECTION_5_3_SEED`] at `n = 3, t = 1`
    /// with `A1`'s horizon of 2 rounds, in `RWS`.
    #[must_use]
    pub fn section_5_3() -> Self {
        FaultPlan::from_seed(SECTION_5_3_SEED, 3, 1, 2, PlanModel::Rws)
    }

    /// The per-link delivery script realizing [`Self::slow`]: the
    /// `k`-th wire on a link is the round-`k+1` message (round drivers
    /// emit exactly one wire per link per round, in round order).
    #[must_use]
    pub fn link_script(&self) -> LinkScript {
        let mut script = LinkScript::new();
        for &(src, dst, round) in &self.slow {
            script.set(src, dst, (round - 1) as usize, self.slow_delay);
        }
        script
    }

    /// The full [`RuntimeConfig`] realizing this plan: scripted
    /// network (plus chaos faults if enabled), scripted crashes and
    /// stalls, watchdog settings, and (for `RWS`) the scripted oracle.
    #[must_use]
    pub fn runtime_config(&self) -> RuntimeConfig {
        let mut net = NetConfig::bounded(FAST_MAX, self.seed).with_script(self.link_script());
        if let Some(chaos) = self.chaos {
            net = net.with_chaos(chaos);
        }
        let watchdog = WatchdogConfig {
            delta: None,
            degrade: self.degrade,
        };
        let notify_scale = if self.chaos.is_some() {
            CHAOS_NOTIFY_SCALE
        } else {
            1
        };
        match self.model {
            PlanModel::Rs => RuntimeConfig {
                net,
                policy: SyncPolicy::Rs {
                    drain: Duration::from_millis(200),
                },
                fd: FdFlavor::Timeout {
                    timeout: Duration::from_millis(100),
                },
                crashes: self.crashes.clone(),
                stalls: self.stalls.clone(),
                watchdog,
                round_timeout: Duration::from_secs(20),
                notify_script: None,
                early_close: false,
            },
            PlanModel::Rws => RuntimeConfig {
                net,
                policy: SyncPolicy::Rws,
                fd: FdFlavor::Oracle {
                    min_notify: NOTIFY_BASE * notify_scale,
                    max_notify: (NOTIFY_BASE + NOTIFY_JITTER) * notify_scale,
                },
                crashes: self.crashes.clone(),
                stalls: self.stalls.clone(),
                watchdog,
                round_timeout: Duration::from_secs(20),
                notify_script: Some(self.notify.clone()),
                early_close: false,
            },
        }
    }

    /// Number of scripted victims.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.crashes.iter().filter(|c| c.is_some()).count()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "plan[seed={} n={} t={} horizon={} model={}",
            self.seed, self.n, self.t, self.horizon, self.model
        )?;
        for (i, c) in self.crashes.iter().enumerate() {
            if let Some(c) = c {
                match c.sends_to {
                    Some(set) => {
                        write!(f, " crash({}@r{}→{})", ProcessId::new(i), c.round, set)?;
                    }
                    None => write!(
                        f,
                        " crash({}@r{}+{})",
                        ProcessId::new(i),
                        c.round,
                        c.after_sends
                    )?,
                }
            }
        }
        for &(src, dst, r) in &self.slow {
            write!(f, " slow({src}→{dst}@r{r})")?;
        }
        for (i, s) in self.stalls.iter().enumerate() {
            if let Some(s) = s {
                write!(
                    f,
                    " stall({}@r{}+{}ms)",
                    ProcessId::new(i),
                    s.round,
                    s.duration.as_millis()
                )?;
            }
        }
        if let Some(c) = self.chaos {
            write!(
                f,
                " chaos(loss={} dup={} reorder={}‰)",
                c.loss_pm, c.dup_pm, c.reorder_pm
            )?;
        }
        if self.degrade != DegradeMode::Off {
            write!(f, " degrade={}", self.degrade)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        for seed in 0..32 {
            let a = FaultPlan::from_seed(seed, 4, 2, 3, PlanModel::Rws);
            let b = FaultPlan::from_seed(seed, 4, 2, 3, PlanModel::Rws);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn plans_respect_bounds() {
        for seed in 0..64 {
            for model in [PlanModel::Rs, PlanModel::Rws] {
                let plan = FaultPlan::from_seed(seed, 4, 2, 3, model);
                assert!(plan.fault_count() <= 2);
                for c in plan.crashes.iter().flatten() {
                    assert!((1..=4).contains(&c.round));
                    assert!(c.after_sends <= 4);
                }
                for &(src, dst, r) in &plan.slow {
                    assert_ne!(src, dst, "self-links are internal");
                    let c = plan.crashes[src.index()].expect("only victims are slowed");
                    assert!(r + 1 >= c.round && r <= c.round, "Lemma 4.1 window");
                    assert!(r >= 1 && r <= plan.horizon);
                }
                if model == PlanModel::Rs {
                    assert!(plan.slow.is_empty(), "RS forbids pending messages");
                    assert!(plan.notify.is_empty());
                }
            }
        }
    }

    #[test]
    fn section_5_3_plan_has_the_paper_shape() {
        let plan = FaultPlan::section_5_3();
        // p1 finishes round 1 (deciding its own value), crashes in
        // round 2 before relaying, and both of its round-1 broadcast
        // wires are slowed into pending-ness.
        let crash = plan.crashes[0].expect("p1 crashes");
        assert_eq!(crash.round, 2);
        assert!(crash.after_sends <= 1, "no round-2 relay escapes");
        for dst in [1, 2] {
            assert!(
                plan.slow
                    .contains(&(ProcessId::new(0), ProcessId::new(dst), 1)),
                "round-1 wire p1→p{} must be withheld: {plan}",
                dst + 1
            );
        }
        assert_eq!(plan.crashes[1], None);
        assert_eq!(plan.crashes[2], None);
    }

    #[test]
    fn link_script_maps_rounds_to_link_indices() {
        let plan = FaultPlan::section_5_3();
        let script = plan.link_script();
        assert_eq!(
            script.delay(ProcessId::new(0), ProcessId::new(1), 0),
            Some(SLOW),
            "round 1 = link message 0"
        );
    }

    #[test]
    fn display_mentions_crash_and_slow() {
        let plan = FaultPlan::section_5_3();
        let s = plan.to_string();
        assert!(s.contains("seed=519"), "{s}");
        assert!(s.contains("crash(p1@r2"), "{s}");
        assert!(s.contains("slow(p1→p2@r1)"), "{s}");
        assert!(!s.contains("chaos"), "plain plans print no chaos");
        assert!(!s.contains("degrade"), "Off is the silent default");
    }

    #[test]
    fn from_adversary_realizes_schedule_and_pending() {
        use ssp_model::{ProcessSet, Round};
        use ssp_rounds::RoundCrash;

        // The §5.3 adversary, spelled as a round-model schedule: p1
        // crashes in round 2 reaching nobody, both round-1 broadcasts
        // withheld.
        let mut schedule = CrashSchedule::none(3);
        schedule.crash(
            ProcessId::new(0),
            RoundCrash {
                round: Round::new(2),
                sends_to: ProcessSet::empty(),
            },
        );
        let mut pending = PendingChoice::none();
        pending.withhold(Round::FIRST, ProcessId::new(0), ProcessId::new(1));
        pending.withhold(Round::FIRST, ProcessId::new(0), ProcessId::new(2));
        let plan = FaultPlan::from_adversary(&schedule, &pending, 1, 2, PlanModel::Rws);
        assert_eq!(
            plan.crashes[0],
            Some(ThreadCrash::sending_to(2, ProcessSet::empty()))
        );
        assert_eq!(plan.crashes[1], None);
        assert_eq!(
            plan.slow,
            vec![
                (ProcessId::new(0), ProcessId::new(1), 1),
                (ProcessId::new(0), ProcessId::new(2), 1),
            ]
        );
        // Uniform, jitter-free oracle: the plan is a function of the
        // adversary alone, so explored runs are byte-comparable.
        assert_eq!(plan.notify, vec![vec![NOTIFY_BASE; 3]; 3]);
        plan.runtime_config().validate(3).unwrap();
        let s = plan.to_string();
        assert!(s.contains("crash(p1@r2→{})"), "{s}");
        assert!(s.contains("slow(p1→p2@r1)"), "{s}");

        // A post-horizon crash stays a prefix crash — the process
        // completes every round and then dies.
        let mut late = CrashSchedule::none(3);
        late.crash(
            ProcessId::new(2),
            RoundCrash {
                round: Round::new(3),
                sends_to: ProcessSet::full(3),
            },
        );
        let plan = FaultPlan::from_adversary(&late, &PendingChoice::none(), 1, 2, PlanModel::Rs);
        assert_eq!(plan.crashes[2], Some(ThreadCrash::prefix(3, 0)));
        assert!(plan.slow.is_empty(), "RS forbids pending messages");
        assert!(plan.notify.is_empty());
        plan.runtime_config().validate(3).unwrap();
    }

    #[test]
    fn with_chaos_stretches_margins_and_prints() {
        let chaos = ChaosConfig {
            loss_pm: 300,
            dup_pm: 100,
            reorder_pm: 50,
        };
        let plan = FaultPlan::section_5_3().with_chaos(chaos);
        assert_eq!(plan.slow_delay, CHAOS_SLOW);
        for row in &plan.notify {
            for d in row {
                assert!(*d >= NOTIFY_BASE * CHAOS_NOTIFY_SCALE);
                assert!(*d <= (NOTIFY_BASE + NOTIFY_JITTER) * CHAOS_NOTIFY_SCALE);
            }
        }
        let config = plan.runtime_config();
        assert_eq!(config.net.chaos(), Some(chaos));
        assert!(config.net.is_reliable());
        assert!(plan.to_string().contains("chaos(loss=300"), "{plan}");
        // The stretched margins must still satisfy the config invariants.
        config.validate(plan.n).unwrap();
    }

    #[test]
    fn delta_violation_plan_violates_its_own_bound() {
        let plan = FaultPlan::delta_violation();
        assert_eq!(plan.model, PlanModel::Rs);
        let config = plan.runtime_config();
        config.validate(plan.n).unwrap();
        // The scripted slow links exceed the watchdog's auto Δ — that
        // is the whole point of the scenario.
        assert!(plan.slow_delay > config.effective_delta());
        assert_eq!(plan.slow.len(), 2);
        let s = plan.with_degrade(DegradeMode::Rws).to_string();
        assert!(s.contains("degrade=rws"), "{s}");
    }

    #[test]
    fn stalls_ride_through_to_the_config() {
        let stall = Stall {
            round: 1,
            duration: Duration::from_millis(150),
        };
        let plan =
            FaultPlan::from_seed(0, 3, 1, 2, PlanModel::Rs).with_stall(ProcessId::new(1), stall);
        let config = plan.runtime_config();
        assert_eq!(config.stalls[1], Some(stall));
        assert!(plan.to_string().contains("stall(p2@r1+150ms)"), "{plan}");
    }
}
