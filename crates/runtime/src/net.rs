//! An in-process message network with injectable delays.
//!
//! Each process owns a receiving channel; sends are routed through a
//! dedicated network thread that holds messages for a per-link delay
//! before delivery. Two delay regimes realize the paper's models:
//!
//! * **bounded** (the `SS` flavour): every delay ≤ a known bound, so
//!   timeouts can implement a perfect failure detector;
//! * **unbounded** (the `SP` flavour): finite but arbitrary — link
//!   overrides let tests hold a specific sender's messages back long
//!   enough to create real *pending* messages.
//!
//! For deterministic fault injection, a [`LinkScript`] pins the delay
//! of the *k*-th message on each directed link. Round-based drivers
//! send exactly one wire per link per round in round order, so the
//! per-link message index *is* the round index — a script is a full
//! adversarial delivery schedule for a round-model run.

use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ssp_model::ProcessId;

/// A deterministic delivery schedule: the delay of the `k`-th message
/// on each scripted directed link. Messages on unscripted links (or
/// beyond a link's scripted prefix) fall back to the [`NetConfig`]'s
/// random delay window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkScript {
    delays: HashMap<(usize, usize), Vec<Option<Duration>>>,
}

impl LinkScript {
    /// The empty script (everything falls back to the delay window).
    #[must_use]
    pub fn new() -> Self {
        LinkScript::default()
    }

    /// Scripts the delay of the `k`-th message (0-based) from `src` to
    /// `dst`. Unset earlier indices fall back to the delay window.
    pub fn set(&mut self, src: ProcessId, dst: ProcessId, k: usize, delay: Duration) -> &mut Self {
        let slots = self.delays.entry((src.index(), dst.index())).or_default();
        if slots.len() <= k {
            slots.resize(k + 1, None);
        }
        slots[k] = Some(delay);
        self
    }

    /// The scripted delay for the `k`-th message on `src → dst`, if any.
    #[must_use]
    pub fn delay(&self, src: ProcessId, dst: ProcessId, k: usize) -> Option<Duration> {
        self.delays
            .get(&(src.index(), dst.index()))
            .and_then(|slots| slots.get(k).copied().flatten())
    }

    /// Number of scripted entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.delays
            .values()
            .map(|slots| slots.iter().flatten().count())
            .sum()
    }

    /// Whether nothing is scripted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A message in the threaded network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetEnvelope<M> {
    /// Sending process.
    pub src: ProcessId,
    /// Destination process.
    pub dst: ProcessId,
    /// Payload.
    pub payload: M,
}

/// Network configuration: a base delay window plus per-link overrides
/// and an optional deterministic [`LinkScript`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Minimum link delay.
    pub min_delay: Duration,
    /// Maximum link delay (drawn uniformly in `[min, max]`).
    pub max_delay: Duration,
    /// RNG seed for reproducible delay draws.
    pub seed: u64,
    overrides: Vec<(ProcessId, ProcessId, Duration)>,
    script: Option<Arc<LinkScript>>,
}

impl NetConfig {
    /// A fast, bounded network: delays in `[0, max]`.
    #[must_use]
    pub fn bounded(max: Duration, seed: u64) -> Self {
        NetConfig {
            min_delay: Duration::ZERO,
            max_delay: max,
            seed,
            overrides: Vec::new(),
            script: None,
        }
    }

    /// Overrides the delay of one directed link (the `SP` adversary's
    /// unbounded-delay knob).
    #[must_use]
    pub fn with_link_delay(mut self, src: ProcessId, dst: ProcessId, delay: Duration) -> Self {
        self.overrides.push((src, dst, delay));
        self
    }

    /// Overrides every outgoing link of `src`.
    #[must_use]
    pub fn with_sender_delay(mut self, src: ProcessId, n: usize, delay: Duration) -> Self {
        for i in 0..n {
            self.overrides.push((src, ProcessId::new(i), delay));
        }
        self
    }

    /// Installs a deterministic per-link delivery script. Scripted
    /// entries take precedence over both overrides and the random
    /// window.
    #[must_use]
    pub fn with_script(mut self, script: LinkScript) -> Self {
        self.script = Some(Arc::new(script));
        self
    }

    fn delay_for<M, R: Rng>(&self, env: &NetEnvelope<M>, nth: usize, rng: &mut R) -> Duration {
        if let Some(script) = &self.script {
            if let Some(delay) = script.delay(env.src, env.dst, nth) {
                return delay;
            }
        }
        for &(s, d, delay) in &self.overrides {
            if s == env.src && d == env.dst {
                return delay;
            }
        }
        if self.max_delay <= self.min_delay {
            return self.min_delay;
        }
        let span = (self.max_delay - self.min_delay).as_micros() as u64;
        self.min_delay + Duration::from_micros(rng.gen_range(0..=span))
    }
}

struct Scheduled<M> {
    at: Instant,
    seq: u64,
    env: NetEnvelope<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on (at, seq).
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A handle for sending into the network.
#[derive(Debug, Clone)]
pub struct NetSender<M> {
    submit: Sender<NetEnvelope<M>>,
}

impl<M: Send + 'static> NetSender<M> {
    /// Sends `payload` from `src` to `dst`; delivery happens after the
    /// link's delay. Sends to finished processes are dropped silently.
    pub fn send(&self, src: ProcessId, dst: ProcessId, payload: M) {
        let _ = self.submit.send(NetEnvelope { src, dst, payload });
    }
}

/// The per-process receiving end.
pub type NetReceiver<M> = Receiver<NetEnvelope<M>>;

/// Spawns the network thread; returns one sender handle plus the `n`
/// per-process receivers. The thread exits when every sender handle is
/// dropped and all held messages have been delivered.
#[must_use]
pub fn spawn_network<M: Send + 'static>(
    n: usize,
    config: NetConfig,
) -> (NetSender<M>, Vec<NetReceiver<M>>) {
    let (submit_tx, submit_rx) = unbounded::<NetEnvelope<M>>();
    let mut inboxes_tx = Vec::with_capacity(n);
    let mut inboxes_rx = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = bounded::<NetEnvelope<M>>(4096);
        inboxes_tx.push(tx);
        inboxes_rx.push(rx);
    }
    std::thread::Builder::new()
        .name("ssp-net".into())
        .spawn(move || {
            let mut rng = StdRng::seed_from_u64(config.seed);
            let mut heap: BinaryHeap<Scheduled<M>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut closed = false;
            // Per-link message counters, for LinkScript indexing.
            let mut link_count: HashMap<(usize, usize), usize> = HashMap::new();
            loop {
                // Deliver everything due.
                let now = Instant::now();
                while heap.peek().is_some_and(|s| s.at <= now) {
                    let s = heap.pop().expect("peeked");
                    let _ = inboxes_tx[s.env.dst.index()].try_send(s.env);
                }
                if closed && heap.is_empty() {
                    return;
                }
                // Wait for the next submission or the next deadline.
                let timeout = heap
                    .peek()
                    .map(|s| s.at.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_millis(50));
                match submit_rx.recv_timeout(timeout) {
                    Ok(env) => {
                        let nth = link_count
                            .entry((env.src.index(), env.dst.index()))
                            .or_insert(0);
                        let delay = config.delay_for(&env, *nth, &mut rng);
                        *nth += 1;
                        heap.push(Scheduled {
                            at: Instant::now() + delay,
                            seq,
                            env,
                        });
                        seq += 1;
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                        closed = true;
                        if heap.is_empty() {
                            return;
                        }
                        // Sleep until the next deadline, then loop to flush.
                        if let Some(s) = heap.peek() {
                            let wait = s.at.saturating_duration_since(Instant::now());
                            std::thread::sleep(wait.min(Duration::from_millis(50)));
                        }
                    }
                }
            }
        })
        .expect("spawn network thread");
    (NetSender { submit: submit_tx }, inboxes_rx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn messages_arrive_in_link_order_with_zero_delay() {
        let (tx, rx) = spawn_network::<u32>(2, NetConfig::bounded(Duration::ZERO, 1));
        for i in 0..10 {
            tx.send(p(0), p(1), i);
        }
        let mut got = Vec::new();
        for _ in 0..10 {
            got.push(rx[1].recv_timeout(Duration::from_secs(2)).unwrap().payload);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn link_override_holds_messages_back() {
        let config = NetConfig::bounded(Duration::from_millis(1), 7).with_link_delay(
            p(0),
            p(1),
            Duration::from_millis(150),
        );
        let (tx, rx) = spawn_network::<u32>(2, config);
        let t0 = Instant::now();
        tx.send(p(0), p(1), 42);
        let env = rx[1].recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(env.payload, 42);
        assert!(t0.elapsed() >= Duration::from_millis(140));
    }

    #[test]
    fn bounded_delays_respect_the_bound() {
        let bound = Duration::from_millis(20);
        let (tx, rx) = spawn_network::<u32>(2, NetConfig::bounded(bound, 3));
        for i in 0..20 {
            let t0 = Instant::now();
            tx.send(p(1), p(0), i);
            let _ = rx[0].recv_timeout(Duration::from_secs(2)).unwrap();
            // generous scheduling slack on top of the bound
            assert!(t0.elapsed() < bound + Duration::from_millis(200));
        }
    }

    #[test]
    fn link_script_pins_per_message_delays() {
        // Message #0 on p1→p2 is scripted slow, #1 fast: the fast one
        // overtakes (the adversary's reordering knob, deterministic).
        let mut script = LinkScript::new();
        script.set(p(0), p(1), 0, Duration::from_millis(120));
        script.set(p(0), p(1), 1, Duration::ZERO);
        let config = NetConfig::bounded(Duration::from_millis(1), 3).with_script(script);
        let (tx, rx) = spawn_network::<u32>(2, config);
        tx.send(p(0), p(1), 0);
        tx.send(p(0), p(1), 1);
        let first = rx[1].recv_timeout(Duration::from_secs(2)).unwrap();
        let second = rx[1].recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!((first.payload, second.payload), (1, 0));
    }

    #[test]
    fn link_script_lookup_and_len() {
        let mut script = LinkScript::new();
        assert!(script.is_empty());
        script.set(p(0), p(1), 2, Duration::from_millis(5));
        assert_eq!(script.delay(p(0), p(1), 2), Some(Duration::from_millis(5)));
        assert_eq!(script.delay(p(0), p(1), 0), None, "unset prefix index");
        assert_eq!(script.delay(p(1), p(0), 2), None, "unscripted link");
        assert_eq!(script.len(), 1);
    }

    #[test]
    fn network_thread_exits_after_senders_drop() {
        let (tx, _rx) = spawn_network::<u32>(1, NetConfig::bounded(Duration::ZERO, 1));
        drop(tx);
        // No panic / hang: nothing to assert beyond clean teardown.
    }
}
