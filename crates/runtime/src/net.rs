//! An in-process message network with injectable delays and chaos
//! faults, plus a reliable-delivery layer that masks them.
//!
//! Each process owns a receiving channel; sends are routed through a
//! dedicated network thread that holds messages for a per-link delay
//! before delivery. Two delay regimes realize the paper's models:
//!
//! * **bounded** (the `SS` flavour): every delay ≤ a known bound, so
//!   timeouts can implement a perfect failure detector;
//! * **unbounded** (the `SP` flavour): finite but arbitrary — link
//!   overrides let tests hold a specific sender's messages back long
//!   enough to create real *pending* messages.
//!
//! For deterministic fault injection, a [`LinkScript`] pins the delay
//! of the *k*-th message on each directed link. Round-based drivers
//! send exactly one wire per link per round in round order, so the
//! per-link message index *is* the round index — a script is a full
//! adversarial delivery schedule for a round-model run.
//!
//! # Chaos and reliability
//!
//! A [`ChaosConfig`] adds seed-deterministic message **loss**,
//! **duplication**, and **reordering**: every fault decision is a pure
//! hash of `(seed, link, wire sequence number, attempt)`, so the same
//! seed misbehaves identically on every run, independent of thread
//! scheduling. Chaos implies the **reliable-delivery layer**: each
//! wire carries a per-link sequence number; the receiving side acks
//! every copy and suppresses duplicates, and the sending side
//! retransmits unacked wires with capped exponential backoff
//! ([`RTO_INITIAL`], doubling, at most [`MAX_SEND_ATTEMPTS`]
//! attempts — the final attempt is never chaos-dropped, so delivery
//! is guaranteed within [`NetConfig::worst_transport_delay`]). Round
//! algorithms therefore keep their exactly-once-per-round wire
//! contract over lossy links.
//!
//! The network also taps the synchrony watchdog
//! ([`crate::fd::SynchronyMonitor`]): a wire scheduled or delivered
//! beyond the claimed Δ, or still undelivered at shutdown, is reported
//! as a [`SynchronyEvent`]. Scheduling-time detection is deliberate
//! harness omniscience — the fault injector knows it is violating the
//! bound the moment it assigns the delay, which lets degradation react
//! before any round is missed.

use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ssp_model::{ProcessId, Round};

use crate::clock::{Backend, Clock, Gate, Tick};
use crate::fd::{SynchronyEvent, SynchronyMonitor};

/// First retransmit timeout of the reliable layer. Doubles on every
/// further attempt. Far above the ack round-trip of a fast link, so a
/// delivered wire is never retransmitted — retransmit counts are
/// margin-deterministic.
pub const RTO_INITIAL: Duration = Duration::from_millis(16);

/// Maximum transmission attempts per wire. The final attempt is never
/// chaos-dropped, so every wire is delivered within
/// [`NetConfig::worst_transport_delay`] even at loss rate 1.
pub const MAX_SEND_ATTEMPTS: u32 = 3;

/// Maximum extra delay the reorder fault adds to one delivery attempt.
pub const REORDER_JITTER_MAX: Duration = Duration::from_micros(500);

/// How long after the original a duplicated copy is delivered.
const DUP_OFFSET: Duration = Duration::from_micros(300);

/// How often the network thread polls for shutdown while idle.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// A deterministic delivery schedule: the delay of the `k`-th message
/// on each scripted directed link. Messages on unscripted links (or
/// beyond a link's scripted prefix) fall back to the [`NetConfig`]'s
/// random delay window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkScript {
    delays: HashMap<(usize, usize), Vec<Option<Duration>>>,
}

impl LinkScript {
    /// The empty script (everything falls back to the delay window).
    #[must_use]
    pub fn new() -> Self {
        LinkScript::default()
    }

    /// Scripts the delay of the `k`-th message (0-based) from `src` to
    /// `dst`. Unset earlier indices fall back to the delay window.
    pub fn set(&mut self, src: ProcessId, dst: ProcessId, k: usize, delay: Duration) -> &mut Self {
        let slots = self.delays.entry((src.index(), dst.index())).or_default();
        if slots.len() <= k {
            slots.resize(k + 1, None);
        }
        slots[k] = Some(delay);
        self
    }

    /// The scripted delay for the `k`-th message on `src → dst`, if any.
    #[must_use]
    pub fn delay(&self, src: ProcessId, dst: ProcessId, k: usize) -> Option<Duration> {
        self.delays
            .get(&(src.index(), dst.index()))
            .and_then(|slots| slots.get(k).copied().flatten())
    }

    /// Number of scripted entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.delays
            .values()
            .map(|slots| slots.iter().flatten().count())
            .sum()
    }

    /// Whether nothing is scripted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A message in the threaded network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetEnvelope<M> {
    /// Sending process.
    pub src: ProcessId,
    /// Destination process.
    pub dst: ProcessId,
    /// Payload.
    pub payload: M,
}

/// Seed-deterministic chaos faults, as per-mille probabilities.
/// Integer rates keep the config `Eq`/hashable and the decisions
/// exact: a fault fires iff `hash(seed, link, seq, attempt) % 1000`
/// falls below the rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosConfig {
    /// Per-mille probability that one transmission attempt is dropped
    /// (the final attempt of a wire is immune — see
    /// [`MAX_SEND_ATTEMPTS`]). Acks are dropped at the same rate.
    pub loss_pm: u16,
    /// Per-mille probability that a delivered attempt is duplicated.
    pub dup_pm: u16,
    /// Per-mille probability that a delivery gets extra reorder jitter
    /// (up to [`REORDER_JITTER_MAX`]).
    pub reorder_pm: u16,
}

const SALT_LOSS: u64 = 0x10c5;
const SALT_DUP: u64 = 0xd0b1;
const SALT_REORDER: u64 = 0x0c0c;
const SALT_ACK_LOSS: u64 = 0xacc0;
const SALT_ACK_DELAY: u64 = 0xaccd;

pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub(crate) fn roll(
    seed: u64,
    salt: u64,
    src: ProcessId,
    dst: ProcessId,
    link_seq: u64,
    attempt: u32,
) -> u64 {
    let mut h = splitmix(seed ^ salt);
    h = splitmix(h ^ src.index() as u64);
    h = splitmix(h ^ dst.index() as u64);
    h = splitmix(h ^ link_seq);
    splitmix(h ^ u64::from(attempt))
}

impl ChaosConfig {
    fn hits(pm: u16, r: u64) -> bool {
        pm > 0 && r % 1000 < u64::from(pm)
    }

    fn drops_data(self, seed: u64, s: ProcessId, d: ProcessId, k: u64, a: u32) -> bool {
        Self::hits(self.loss_pm, roll(seed, SALT_LOSS, s, d, k, a))
    }

    fn duplicates(self, seed: u64, s: ProcessId, d: ProcessId, k: u64, a: u32) -> bool {
        Self::hits(self.dup_pm, roll(seed, SALT_DUP, s, d, k, a))
    }

    fn reorder_extra(self, seed: u64, s: ProcessId, d: ProcessId, k: u64, a: u32) -> Duration {
        let r = roll(seed, SALT_REORDER, s, d, k, a);
        if Self::hits(self.reorder_pm, r) {
            let span = REORDER_JITTER_MAX.as_micros() as u64;
            Duration::from_micros(splitmix(r) % (span + 1))
        } else {
            Duration::ZERO
        }
    }

    fn drops_ack(self, seed: u64, s: ProcessId, d: ProcessId, k: u64, a: u32) -> bool {
        Self::hits(self.loss_pm, roll(seed, SALT_ACK_LOSS, s, d, k, a))
    }
}

/// Network configuration: a base delay window plus per-link overrides,
/// an optional deterministic [`LinkScript`], and optional chaos faults
/// (which imply the reliable-delivery layer).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Minimum link delay.
    pub min_delay: Duration,
    /// Maximum link delay (drawn uniformly in `[min, max]`).
    pub max_delay: Duration,
    /// RNG seed for reproducible delay draws and chaos decisions.
    pub seed: u64,
    overrides: Vec<(ProcessId, ProcessId, Duration)>,
    script: Option<Arc<LinkScript>>,
    chaos: Option<ChaosConfig>,
    reliable: bool,
}

impl NetConfig {
    /// A fast, bounded network: delays in `[0, max]`.
    #[must_use]
    pub fn bounded(max: Duration, seed: u64) -> Self {
        NetConfig {
            min_delay: Duration::ZERO,
            max_delay: max,
            seed,
            overrides: Vec::new(),
            script: None,
            chaos: None,
            reliable: false,
        }
    }

    /// Overrides the delay of one directed link (the `SP` adversary's
    /// unbounded-delay knob).
    #[must_use]
    pub fn with_link_delay(mut self, src: ProcessId, dst: ProcessId, delay: Duration) -> Self {
        self.overrides.push((src, dst, delay));
        self
    }

    /// Overrides every outgoing link of `src`.
    #[must_use]
    pub fn with_sender_delay(mut self, src: ProcessId, n: usize, delay: Duration) -> Self {
        for i in 0..n {
            self.overrides.push((src, ProcessId::new(i), delay));
        }
        self
    }

    /// Installs a deterministic per-link delivery script. Scripted
    /// entries take precedence over both overrides and the random
    /// window.
    #[must_use]
    pub fn with_script(mut self, script: LinkScript) -> Self {
        self.script = Some(Arc::new(script));
        self
    }

    /// Enables chaos faults (and with them the reliable-delivery
    /// layer, so the exactly-once wire contract still holds).
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self.reliable = true;
        self
    }

    /// Enables the reliable-delivery layer without chaos (acks +
    /// retransmits + dedup over an already-lossless link).
    #[must_use]
    pub fn with_reliable(mut self) -> Self {
        self.reliable = true;
        self
    }

    /// The configured chaos faults, if any.
    #[must_use]
    pub fn chaos(&self) -> Option<ChaosConfig> {
        self.chaos
    }

    /// Whether the reliable-delivery layer is active.
    #[must_use]
    pub fn is_reliable(&self) -> bool {
        self.reliable || self.chaos.is_some()
    }

    /// Worst-case trigger offset of the final transmission attempt:
    /// the sum of all capped-exponential retransmit timeouts.
    #[must_use]
    pub fn retransmit_budget() -> Duration {
        RTO_INITIAL * ((1 << (MAX_SEND_ATTEMPTS - 1)) - 1)
    }

    /// Worst-case submission-to-delivery latency of an in-window wire:
    /// `max_delay`, plus the retransmit budget and reorder jitter when
    /// the reliable layer is active. A sensible Δ claim for the
    /// synchrony watchdog sits just above this.
    #[must_use]
    pub fn worst_transport_delay(&self) -> Duration {
        if self.is_reliable() {
            self.max_delay + Self::retransmit_budget() + REORDER_JITTER_MAX
        } else {
            self.max_delay
        }
    }

    fn delay_for<M, R: Rng>(&self, env: &NetEnvelope<M>, nth: usize, rng: &mut R) -> Duration {
        if let Some(script) = &self.script {
            if let Some(delay) = script.delay(env.src, env.dst, nth) {
                return delay;
            }
        }
        for &(s, d, delay) in &self.overrides {
            if s == env.src && d == env.dst {
                return delay;
            }
        }
        if self.max_delay <= self.min_delay {
            return self.min_delay;
        }
        let span = (self.max_delay - self.min_delay).as_micros() as u64;
        self.min_delay + Duration::from_micros(rng.gen_range(0..=span))
    }
}

/// Deterministic transport counters for one run, reported at network
/// shutdown and recorded in the run trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Wires submitted (one per `send`, retransmissions excluded).
    pub wires: u64,
    /// Wires delivered to an inbox (exactly once each).
    pub delivered: u64,
    /// Transmission attempts dropped by chaos loss.
    pub chaos_dropped: u64,
    /// Extra copies injected by chaos duplication.
    pub chaos_duplicated: u64,
    /// Copies suppressed by receiver-side dedup (chaos duplicates and
    /// redundant retransmissions).
    pub dup_suppressed: u64,
    /// Retransmission attempts made by the reliable layer.
    pub retransmits: u64,
    /// Acks dropped by chaos loss.
    pub acks_lost: u64,
    /// Deliveries later than the watchdog's claimed Δ.
    pub late_deliveries: u64,
    /// Wires whose assigned delay already exceeded Δ at scheduling.
    pub slow_scheduled: u64,
    /// Wires still undelivered when the network shut down.
    pub undelivered: u64,
}

/// Internal per-wire transport state.
struct WireState<M> {
    env: NetEnvelope<M>,
    link_seq: u64,
    submitted: Tick,
    base_delay: Duration,
    acked: bool,
    delivered: bool,
}

enum NetEvent {
    /// A transmission attempt's copy reaches the receiver.
    Deliver { wire: usize, attempt: u32 },
    /// The receiver's ack reaches the sender.
    Ack { wire: usize },
    /// The sender's retransmit timer fires.
    Retransmit { wire: usize, attempt: u32 },
}

struct Scheduled {
    at: Tick,
    seq: u64,
    ev: NetEvent,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on (at, seq).
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A handle for sending into the network.
#[derive(Debug, Clone)]
pub struct NetSender<M> {
    /// `Option` so `Drop` can disconnect the channel *before* waking
    /// the network thread: a woken thread must be able to observe the
    /// disconnection, or the virtual clock could advance through
    /// deadlines that the imminent shutdown should strand.
    submit: Option<Sender<NetEnvelope<M>>>,
    gate: Gate,
}

impl<M: Send + 'static> NetSender<M> {
    /// Sends `payload` from `src` to `dst`; delivery happens after the
    /// link's delay. Sends to finished processes are dropped silently.
    pub fn send(&self, src: ProcessId, dst: ProcessId, payload: M) {
        if let Some(submit) = &self.submit {
            let _ = submit.send(NetEnvelope { src, dst, payload });
        }
        self.gate.notify();
    }
}

impl<M> Drop for NetSender<M> {
    fn drop(&mut self) {
        self.submit = None;
        self.gate.notify();
    }
}

/// The per-process receiving end: a channel plus the wakeup gate the
/// network thread rings after each delivery.
#[derive(Debug, Clone)]
pub struct NetReceiver<M> {
    rx: Receiver<NetEnvelope<M>>,
    gate: Gate,
    clock: Clock,
}

impl<M> NetReceiver<M> {
    /// Waits for the next delivered envelope, up to `timeout` on the
    /// receiver's clock.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when nothing arrived in time,
    /// [`RecvTimeoutError::Disconnected`] once the network thread is
    /// gone and the inbox drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<NetEnvelope<M>, RecvTimeoutError> {
        self.clock.recv(&self.rx, &self.gate, Some(timeout))
    }

    /// Returns an already-delivered envelope without waiting (and
    /// without touching the clock, so it is safe from unregistered
    /// threads under the virtual backend).
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when the inbox is empty,
    /// [`TryRecvError::Disconnected`] once the network thread is gone
    /// and the inbox drained.
    pub fn try_recv(&self) -> Result<NetEnvelope<M>, crossbeam::channel::TryRecvError> {
        self.rx.try_recv()
    }
}

/// How the network thread should wind down.
#[derive(Debug, Clone, Copy)]
enum ShutdownSignal {
    /// Stop immediately; in-flight wires are stranded (and counted).
    Now,
    /// Keep delivering already-scheduled wires for at most this long,
    /// then stop, stranding whatever remains.
    Drain(Duration),
}

/// Typed error of [`NetHandle::shutdown_within`]: the drain deadline
/// elapsed with wires still in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownTimeout {
    /// Wires still undelivered when the drain gave up.
    pub undelivered: u64,
    /// The full transport counters at shutdown (the drained deliveries
    /// are in [`NetStats::delivered`]).
    pub stats: NetStats,
}

impl core::fmt::Display for ShutdownTimeout {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "network shutdown drain timed out with {} wire(s) undelivered",
            self.undelivered
        )
    }
}

impl std::error::Error for ShutdownTimeout {}

/// Owns the network thread: signals shutdown and joins it on drop, so
/// no run leaks the thread or its in-flight envelopes.
#[derive(Debug)]
pub struct NetHandle {
    shutdown: Sender<ShutdownSignal>,
    gate: Gate,
    thread: Option<std::thread::JoinHandle<NetStats>>,
}

impl NetHandle {
    /// Signals shutdown, joins the thread, and returns its transport
    /// counters. Wires still in flight are discarded but accounted as
    /// [`NetStats::undelivered`] (and reported to the watchdog when
    /// they were over-Δ).
    ///
    /// # Panics
    ///
    /// Panics if the network thread itself panicked.
    #[must_use]
    pub fn shutdown(mut self) -> NetStats {
        let _ = self.shutdown.try_send(ShutdownSignal::Now);
        self.gate.notify();
        self.thread
            .take()
            .expect("network thread handle")
            .join()
            .expect("network thread panicked")
    }

    /// Signals shutdown but lets the network keep delivering
    /// already-submitted wires for up to `drain` — a *bounded* drain,
    /// in contrast to the sender-drop path which flushes an unbounded
    /// backlog. Works on both clock backends; under virtual time the
    /// drain window elapses in simulated time.
    ///
    /// # Errors
    ///
    /// [`ShutdownTimeout`] if the deadline passed with wires still in
    /// flight; the stranded wires are counted in the error (and in its
    /// embedded [`NetStats::undelivered`]).
    ///
    /// # Panics
    ///
    /// Panics if the network thread itself panicked.
    pub fn shutdown_within(mut self, drain: Duration) -> Result<NetStats, ShutdownTimeout> {
        let _ = self.shutdown.try_send(ShutdownSignal::Drain(drain));
        self.gate.notify();
        let stats = self
            .thread
            .take()
            .expect("network thread handle")
            .join()
            .expect("network thread panicked");
        if stats.undelivered > 0 {
            Err(ShutdownTimeout {
                undelivered: stats.undelivered,
                stats,
            })
        } else {
            Ok(stats)
        }
    }
}

impl Drop for NetHandle {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            let _ = self.shutdown.try_send(ShutdownSignal::Now);
            self.gate.notify();
            let _ = t.join();
        }
    }
}

/// Spawns the network thread on the real clock; returns one sender
/// handle, the `n` per-process receivers, and the joinable
/// [`NetHandle`]. The thread exits when every sender is dropped and
/// all held messages are delivered, or as soon as the handle signals
/// shutdown.
#[must_use]
pub fn spawn_network<M: Clone + Send + 'static>(
    n: usize,
    config: NetConfig,
) -> (NetSender<M>, Vec<NetReceiver<M>>, NetHandle) {
    spawn_network_watched(n, config, SynchronyMonitor::disarmed(), Clock::real())
}

/// [`spawn_network`] on an explicit [`Clock`] and with a synchrony
/// watchdog attached: over-Δ scheduling, late deliveries, and
/// shutdown-stranded wires are reported to `monitor`.
#[must_use]
pub fn spawn_network_watched<M: Clone + Send + 'static>(
    n: usize,
    config: NetConfig,
    monitor: Arc<SynchronyMonitor>,
    clock: Clock,
) -> (NetSender<M>, Vec<NetReceiver<M>>, NetHandle) {
    let (submit_tx, submit_rx) = unbounded::<NetEnvelope<M>>();
    let (shutdown_tx, shutdown_rx) = bounded::<ShutdownSignal>(1);
    let submit_gate = clock.gate();
    let mut inboxes_tx = Vec::with_capacity(n);
    let mut inboxes_rx = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = bounded::<NetEnvelope<M>>(4096);
        let gate = clock.gate();
        inboxes_tx.push((tx, gate.clone()));
        inboxes_rx.push(NetReceiver {
            rx,
            gate,
            clock: clock.clone(),
        });
    }
    clock.register();
    let net_clock = clock.clone();
    let net_gate = submit_gate.clone();
    let thread = std::thread::Builder::new()
        .name("ssp-net".into())
        .spawn(move || {
            let stats = net_thread(
                &config,
                &monitor,
                &net_clock,
                &net_gate,
                &submit_rx,
                &shutdown_rx,
                &inboxes_tx,
            );
            net_clock.deregister();
            stats
        })
        .expect("spawn network thread");
    (
        NetSender {
            submit: Some(submit_tx),
            gate: submit_gate.clone(),
        },
        inboxes_rx,
        NetHandle {
            shutdown: shutdown_tx,
            gate: submit_gate,
            thread: Some(thread),
        },
    )
}

/// Schedules transmission attempt `attempt` of wire `wi` at `now`:
/// rolls chaos loss/duplication/reorder and arms the next retransmit
/// timer. The final attempt is never dropped.
#[allow(clippy::too_many_arguments)]
fn schedule_attempt<M>(
    heap: &mut BinaryHeap<Scheduled>,
    seq: &mut u64,
    stats: &mut NetStats,
    chaos: Option<ChaosConfig>,
    seed: u64,
    reliable: bool,
    w: &WireState<M>,
    wi: usize,
    attempt: u32,
    now: Tick,
) {
    let mut push = |at: Tick, ev: NetEvent| {
        heap.push(Scheduled { at, seq: *seq, ev });
        *seq += 1;
    };
    let (src, dst, k) = (w.env.src, w.env.dst, w.link_seq);
    let last = attempt + 1 >= MAX_SEND_ATTEMPTS;
    let dropped = !last && chaos.is_some_and(|c| c.drops_data(seed, src, dst, k, attempt));
    if dropped {
        stats.chaos_dropped += 1;
    } else {
        let extra = chaos.map_or(Duration::ZERO, |c| {
            c.reorder_extra(seed, src, dst, k, attempt)
        });
        let at = now + w.base_delay + extra;
        push(at, NetEvent::Deliver { wire: wi, attempt });
        if chaos.is_some_and(|c| c.duplicates(seed, src, dst, k, attempt)) {
            stats.chaos_duplicated += 1;
            push(at + DUP_OFFSET, NetEvent::Deliver { wire: wi, attempt });
        }
    }
    if reliable && !last {
        push(
            now + RTO_INITIAL * (1 << attempt),
            NetEvent::Retransmit {
                wire: wi,
                attempt: attempt + 1,
            },
        );
    }
}

/// Admits one submitted envelope into the scheduler: assigns its link
/// sequence number, rolls its base delay, reports over-Δ scheduling to
/// the watchdog, and schedules transmission attempt 0.
#[allow(clippy::too_many_arguments)]
fn admit_wire<M: Clone + Send + 'static>(
    env: NetEnvelope<M>,
    config: &NetConfig,
    monitor: &Arc<SynchronyMonitor>,
    clock: &Clock,
    rng: &mut StdRng,
    link_count: &mut HashMap<(usize, usize), u64>,
    heap: &mut BinaryHeap<Scheduled>,
    wires: &mut Vec<WireState<M>>,
    seq: &mut u64,
    stats: &mut NetStats,
) {
    let armed = monitor.is_armed();
    let delta = monitor.delta();
    let nth = link_count
        .entry((env.src.index(), env.dst.index()))
        .or_insert(0);
    let link_seq = *nth;
    *nth += 1;
    let base_delay = config.delay_for(&env, link_seq as usize, rng);
    stats.wires += 1;
    if armed && base_delay > delta {
        stats.slow_scheduled += 1;
        monitor.record(SynchronyEvent::SlowWireScheduled {
            src: env.src,
            dst: env.dst,
            round: Round::new(link_seq as u32 + 1),
            delay: base_delay,
        });
    }
    let now = clock.now();
    let w = WireState {
        env,
        link_seq,
        submitted: now,
        base_delay,
        acked: false,
        delivered: false,
    };
    let wi = wires.len();
    schedule_attempt(
        heap,
        seq,
        stats,
        config.chaos(),
        config.seed,
        config.is_reliable(),
        &w,
        wi,
        0,
        now,
    );
    wires.push(w);
}

#[allow(clippy::too_many_lines)]
fn net_thread<M: Clone + Send + 'static>(
    config: &NetConfig,
    monitor: &Arc<SynchronyMonitor>,
    clock: &Clock,
    gate: &Gate,
    submit_rx: &Receiver<NetEnvelope<M>>,
    shutdown_rx: &Receiver<ShutdownSignal>,
    inboxes_tx: &[(Sender<NetEnvelope<M>>, Gate)],
) -> NetStats {
    let reliable = config.is_reliable();
    let chaos = config.chaos();
    let seed = config.seed;
    let armed = monitor.is_armed();
    let delta = monitor.delta();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut heap: BinaryHeap<Scheduled> = BinaryHeap::new();
    let mut wires: Vec<WireState<M>> = Vec::new();
    let mut seq = 0u64;
    let mut stats = NetStats::default();
    let mut closed = false;
    let mut draining: Option<Tick> = None;
    // Per-link wire counters, for LinkScript indexing and the reliable
    // layer's sequence numbers.
    let mut link_count: HashMap<(usize, usize), u64> = HashMap::new();

    let finish = |wires: &[WireState<M>], mut stats: NetStats| -> NetStats {
        for w in wires {
            if w.delivered {
                continue;
            }
            stats.undelivered += 1;
            if armed && w.base_delay > delta {
                monitor.record(SynchronyEvent::UndeliveredAtShutdown {
                    src: w.env.src,
                    dst: w.env.dst,
                    round: Round::new(w.link_seq as u32 + 1),
                });
            }
        }
        stats
    };

    loop {
        // Handle everything due.
        let now = clock.now();
        while heap.peek().is_some_and(|s| s.at <= now) {
            let s = heap.pop().expect("peeked");
            match s.ev {
                NetEvent::Deliver { wire, attempt } => {
                    let w = &mut wires[wire];
                    if w.delivered {
                        stats.dup_suppressed += 1;
                    } else {
                        w.delivered = true;
                        stats.delivered += 1;
                        let latency = s.at.saturating_duration_since(w.submitted);
                        if armed && latency > delta {
                            stats.late_deliveries += 1;
                            monitor.record(SynchronyEvent::LateDelivery {
                                src: w.env.src,
                                dst: w.env.dst,
                                latency,
                            });
                        }
                        let (inbox, inbox_gate) = &inboxes_tx[w.env.dst.index()];
                        let _ = inbox.try_send(w.env.clone());
                        inbox_gate.notify();
                    }
                    if reliable {
                        // The receiving transport acks every copy, so a
                        // lost ack cannot strand the sender forever.
                        let (src, dst, k) = (w.env.src, w.env.dst, w.link_seq);
                        if chaos.is_some_and(|c| c.drops_ack(seed, src, dst, k, attempt)) {
                            stats.acks_lost += 1;
                        } else {
                            let span = config
                                .max_delay
                                .saturating_sub(config.min_delay)
                                .as_micros() as u64;
                            let extra = if span == 0 {
                                0
                            } else {
                                roll(seed, SALT_ACK_DELAY, src, dst, k, attempt) % (span + 1)
                            };
                            let at = s.at + config.min_delay + Duration::from_micros(extra);
                            heap.push(Scheduled {
                                at,
                                seq,
                                ev: NetEvent::Ack { wire },
                            });
                            seq += 1;
                        }
                    }
                }
                NetEvent::Ack { wire } => {
                    wires[wire].acked = true;
                }
                NetEvent::Retransmit { wire, attempt } => {
                    if !wires[wire].acked {
                        stats.retransmits += 1;
                        schedule_attempt(
                            &mut heap,
                            &mut seq,
                            &mut stats,
                            chaos,
                            seed,
                            reliable,
                            &wires[wire],
                            wire,
                            attempt,
                            s.at,
                        );
                    }
                }
            }
        }
        match shutdown_rx.try_recv() {
            Ok(ShutdownSignal::Now) => return finish(&wires, stats),
            Ok(ShutdownSignal::Drain(d)) => draining = Some(clock.now() + d),
            Err(_) => {}
        }
        if let Some(deadline) = draining {
            // Bounded drain: absorb any submissions that raced the
            // signal, then keep firing already-scheduled deliveries
            // until everything lands or the window elapses. Whatever
            // is still in flight at the deadline is stranded and
            // counted, same as an immediate shutdown.
            while let Ok(env) = submit_rx.try_recv() {
                admit_wire(
                    env,
                    config,
                    monitor,
                    clock,
                    &mut rng,
                    &mut link_count,
                    &mut heap,
                    &mut wires,
                    &mut seq,
                    &mut stats,
                );
            }
            if wires.iter().all(|w| w.delivered) {
                return finish(&wires, stats);
            }
            let now = clock.now();
            if now >= deadline {
                return finish(&wires, stats);
            }
            let wait = match heap.peek() {
                // No events left but undelivered wires remain (their
                // attempts were all dropped): nothing more can land.
                None => return finish(&wires, stats),
                // The earliest remaining event is past the deadline:
                // the window cannot deliver anything else.
                Some(s) if s.at > deadline => return finish(&wires, stats),
                Some(s) => s.at.saturating_duration_since(now),
            };
            if !wait.is_zero() {
                match clock.backend() {
                    Backend::Real => std::thread::sleep(wait.min(IDLE_POLL)),
                    Backend::Virtual => clock.sleep(wait),
                }
            }
            continue;
        }
        if closed && (heap.is_empty() || clock.is_virtual()) {
            // Every sender gone means every worker has exited. Under
            // the virtual clock the driver's shutdown signal arrives in
            // *real* time, which the virtual timeline does not wait
            // for; advancing through leftover deadlines here would race
            // it. Stop immediately instead — stranded wires are
            // accounted undelivered, exactly as the real backend's
            // prompt shutdown leaves them.
            return finish(&wires, stats);
        }
        let next_due = heap
            .peek()
            .map(|s| s.at.saturating_duration_since(clock.now()));
        if closed {
            // All senders are gone (real clock): flush remaining
            // deadlines, polling for shutdown between sleeps.
            std::thread::sleep(next_due.unwrap_or(IDLE_POLL).min(IDLE_POLL));
            continue;
        }
        // On the real clock, cap the wait at IDLE_POLL so shutdown is
        // noticed promptly; under virtual time, sleep exactly until the
        // next scheduled event (or indefinitely when idle — a send,
        // sender drop, or shutdown notify will ring the gate).
        match clock.backend() {
            Backend::Real => {
                // Cap the wait at IDLE_POLL so shutdown is noticed
                // promptly.
                let wait = Some(next_due.unwrap_or(IDLE_POLL).min(IDLE_POLL));
                match clock.recv(submit_rx, gate, wait) {
                    Ok(env) => {
                        admit_wire(
                            env,
                            config,
                            monitor,
                            clock,
                            &mut rng,
                            &mut link_count,
                            &mut heap,
                            &mut wires,
                            &mut seq,
                            &mut stats,
                        );
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                        closed = true;
                    }
                }
            }
            Backend::Virtual => {
                // Park until the next scheduled event or any gate
                // notify. A bare park (not `Clock::recv`) so that a
                // notify with nothing in the submit channel — the
                // shutdown handle ringing the shared gate — still
                // brings us back around to re-check the shutdown
                // channel instead of being silently re-parked.
                match submit_rx.try_recv() {
                    Ok(env) => {
                        admit_wire(
                            env,
                            config,
                            monitor,
                            clock,
                            &mut rng,
                            &mut link_count,
                            &mut heap,
                            &mut wires,
                            &mut seq,
                            &mut stats,
                        );
                    }
                    Err(crossbeam::channel::TryRecvError::Empty) => {
                        clock.park_gate(gate, next_due);
                    }
                    Err(crossbeam::channel::TryRecvError::Disconnected) => {
                        closed = true;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::DegradeMode;
    use std::time::Instant;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn messages_arrive_in_link_order_with_zero_delay() {
        let (tx, rx, _net) = spawn_network::<u32>(2, NetConfig::bounded(Duration::ZERO, 1));
        for i in 0..10 {
            tx.send(p(0), p(1), i);
        }
        let mut got = Vec::new();
        for _ in 0..10 {
            got.push(rx[1].recv_timeout(Duration::from_secs(2)).unwrap().payload);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn link_override_holds_messages_back() {
        let config = NetConfig::bounded(Duration::from_millis(1), 7).with_link_delay(
            p(0),
            p(1),
            Duration::from_millis(150),
        );
        let (tx, rx, _net) = spawn_network::<u32>(2, config);
        let t0 = Instant::now();
        tx.send(p(0), p(1), 42);
        let env = rx[1].recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(env.payload, 42);
        assert!(t0.elapsed() >= Duration::from_millis(140));
    }

    #[test]
    fn bounded_delays_respect_the_bound() {
        let bound = Duration::from_millis(20);
        let (tx, rx, _net) = spawn_network::<u32>(2, NetConfig::bounded(bound, 3));
        for i in 0..20 {
            let t0 = Instant::now();
            tx.send(p(1), p(0), i);
            let _ = rx[0].recv_timeout(Duration::from_secs(2)).unwrap();
            // generous scheduling slack on top of the bound
            assert!(t0.elapsed() < bound + Duration::from_millis(200));
        }
    }

    #[test]
    fn link_script_pins_per_message_delays() {
        // Message #0 on p1→p2 is scripted slow, #1 fast: the fast one
        // overtakes (the adversary's reordering knob, deterministic).
        let mut script = LinkScript::new();
        script.set(p(0), p(1), 0, Duration::from_millis(120));
        script.set(p(0), p(1), 1, Duration::ZERO);
        let config = NetConfig::bounded(Duration::from_millis(1), 3).with_script(script);
        let (tx, rx, _net) = spawn_network::<u32>(2, config);
        tx.send(p(0), p(1), 0);
        tx.send(p(0), p(1), 1);
        let first = rx[1].recv_timeout(Duration::from_secs(2)).unwrap();
        let second = rx[1].recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!((first.payload, second.payload), (1, 0));
    }

    #[test]
    fn link_script_lookup_and_len() {
        let mut script = LinkScript::new();
        assert!(script.is_empty());
        script.set(p(0), p(1), 2, Duration::from_millis(5));
        assert_eq!(script.delay(p(0), p(1), 2), Some(Duration::from_millis(5)));
        assert_eq!(script.delay(p(0), p(1), 0), None, "unset prefix index");
        assert_eq!(script.delay(p(1), p(0), 2), None, "unscripted link");
        assert_eq!(script.len(), 1);
    }

    #[test]
    fn network_thread_exits_after_senders_drop() {
        let (tx, _rx, net) = spawn_network::<u32>(1, NetConfig::bounded(Duration::ZERO, 1));
        drop(tx);
        let stats = net.shutdown();
        assert_eq!(stats.wires, 0);
    }

    #[test]
    fn reliable_layer_masks_heavy_loss() {
        let config = NetConfig::bounded(Duration::from_millis(1), 11).with_chaos(ChaosConfig {
            loss_pm: 300,
            dup_pm: 0,
            reorder_pm: 0,
        });
        let (tx, rx, net) = spawn_network::<u32>(2, config);
        for i in 0..40 {
            tx.send(p(0), p(1), i);
        }
        let mut got = Vec::new();
        for _ in 0..40 {
            got.push(rx[1].recv_timeout(Duration::from_secs(5)).unwrap().payload);
        }
        // Retransmitted wires may overtake later ones: exactly-once,
        // but not necessarily in order.
        got.sort_unstable();
        assert_eq!(got, (0..40).collect::<Vec<_>>());
        drop(tx);
        let stats = net.shutdown();
        assert_eq!(stats.wires, 40);
        assert_eq!(stats.delivered, 40);
        assert_eq!(stats.undelivered, 0);
        assert!(stats.chaos_dropped > 0, "loss 0.3 over 40 wires must fire");
        assert!(stats.retransmits >= stats.chaos_dropped);
    }

    #[test]
    fn duplicates_are_suppressed_exactly_once_each() {
        let config = NetConfig::bounded(Duration::from_millis(1), 5).with_chaos(ChaosConfig {
            loss_pm: 0,
            dup_pm: 1000,
            reorder_pm: 200,
        });
        let (tx, rx, net) = spawn_network::<u32>(2, config);
        for i in 0..20 {
            tx.send(p(0), p(1), i);
        }
        let mut got = Vec::new();
        for _ in 0..20 {
            got.push(rx[1].recv_timeout(Duration::from_secs(5)).unwrap().payload);
        }
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        // Nothing further arrives: every duplicate was suppressed.
        assert!(rx[1].recv_timeout(Duration::from_millis(120)).is_err());
        drop(tx);
        let stats = net.shutdown();
        assert_eq!(stats.delivered, 20);
        assert_eq!(stats.chaos_duplicated, 20, "dup rate 1.0: one per wire");
        assert!(stats.dup_suppressed >= 20);
    }

    #[test]
    fn total_loss_still_delivers_via_the_final_attempt() {
        let config = NetConfig::bounded(Duration::from_millis(1), 9).with_chaos(ChaosConfig {
            loss_pm: 1000,
            dup_pm: 0,
            reorder_pm: 0,
        });
        let (tx, rx, net) = spawn_network::<u32>(2, config);
        tx.send(p(0), p(1), 7);
        let t0 = Instant::now();
        let env = rx[1].recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.payload, 7);
        assert!(
            t0.elapsed() <= NetConfig::retransmit_budget() + Duration::from_millis(500),
            "delivery within the retransmit budget"
        );
        drop(tx);
        let stats = net.shutdown();
        assert_eq!(stats.delivered, 1);
        assert_eq!(
            stats.chaos_dropped,
            u64::from(MAX_SEND_ATTEMPTS) - 1,
            "every attempt but the immune final one was dropped"
        );
    }

    #[test]
    fn chaos_decisions_are_seed_deterministic() {
        // On the virtual clock: whether an in-flight duplicate lands
        // before shutdown is a timing race under the real clock, so
        // exact counter equality is only promised in simulated time.
        let run = || {
            let config = NetConfig::bounded(Duration::from_millis(1), 17).with_chaos(ChaosConfig {
                loss_pm: 250,
                dup_pm: 150,
                reorder_pm: 100,
            });
            let clock = Clock::simulated();
            let (tx, rx, net) = spawn_network_watched::<u32>(
                3,
                config,
                SynchronyMonitor::disarmed(),
                clock.clone(),
            );
            clock.register();
            for i in 0..30 {
                tx.send(p(i % 2), p(2), i as u32);
            }
            for _ in 0..30 {
                let _ = rx[2].recv_timeout(Duration::from_secs(5)).unwrap();
            }
            drop(tx);
            let stats = net.shutdown();
            clock.deregister();
            stats
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same chaos counters");
        assert!(a.chaos_dropped > 0 && a.chaos_duplicated > 0);
    }

    #[test]
    fn watchdog_sees_over_delta_scheduling_and_stranded_wires() {
        let monitor = SynchronyMonitor::armed(Duration::from_millis(50), DegradeMode::Off);
        let config = NetConfig::bounded(Duration::from_millis(1), 3).with_link_delay(
            p(0),
            p(1),
            Duration::from_millis(400),
        );
        let (tx, _rx, net) =
            spawn_network_watched::<u32>(2, config, Arc::clone(&monitor), Clock::real());
        tx.send(p(0), p(1), 1);
        // Give the thread a moment to process the submission, then cut
        // the run short with the wire still in flight.
        std::thread::sleep(Duration::from_millis(50));
        drop(tx);
        let t0 = Instant::now();
        let stats = net.shutdown();
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "shutdown does not wait out the 400ms delay"
        );
        assert_eq!(stats.slow_scheduled, 1);
        assert_eq!(stats.undelivered, 1);
        let report = monitor.report();
        assert!(report.violated);
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, SynchronyEvent::SlowWireScheduled { .. })));
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, SynchronyEvent::UndeliveredAtShutdown { .. })));
    }

    #[test]
    fn late_delivery_is_reported_when_the_wire_lands() {
        let monitor = SynchronyMonitor::armed(Duration::from_millis(30), DegradeMode::Off);
        let config = NetConfig::bounded(Duration::from_millis(1), 3).with_link_delay(
            p(0),
            p(1),
            Duration::from_millis(80),
        );
        let (tx, rx, _net) =
            spawn_network_watched::<u32>(2, config, Arc::clone(&monitor), Clock::real());
        tx.send(p(0), p(1), 9);
        let env = rx[1].recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(env.payload, 9);
        let report = monitor.report();
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, SynchronyEvent::LateDelivery { .. })));
    }

    #[test]
    fn transport_budget_bounds_are_consistent() {
        assert_eq!(NetConfig::retransmit_budget(), Duration::from_millis(48));
        let plain = NetConfig::bounded(Duration::from_millis(2), 0);
        assert_eq!(plain.worst_transport_delay(), Duration::from_millis(2));
        let chaotic = plain.clone().with_chaos(ChaosConfig::default());
        assert!(chaotic.worst_transport_delay() > Duration::from_millis(48));
    }

    #[test]
    fn bounded_drain_times_out_with_wires_in_flight() {
        let config = NetConfig::bounded(Duration::ZERO, 11).with_link_delay(
            p(0),
            p(1),
            Duration::from_millis(150),
        );
        let clock = Clock::simulated();
        // The test thread holds a running slot for the whole sequence,
        // so virtual time is frozen at zero until the drain signal is
        // in place: the 150 ms wire cannot race the 50 ms deadline.
        clock.register();
        let (tx, rx, net) =
            spawn_network_watched::<u32>(2, config, SynchronyMonitor::disarmed(), clock.clone());
        tx.send(p(0), p(1), 5);
        // The drain deadline (50 ms) precedes the wire's delivery
        // (150 ms), so the network thread finishes without ever
        // needing virtual time to advance — holding our slot through
        // the join cannot deadlock it.
        let err = net
            .shutdown_within(Duration::from_millis(50))
            .expect_err("the 150 ms wire cannot land inside a 50 ms drain");
        clock.deregister();
        assert_eq!(err.undelivered, 1);
        assert_eq!(err.stats.delivered, 0);
        assert_eq!(err.stats.wires, 1);
        assert!(err.to_string().contains("undelivered"), "{err}");
        assert!(rx[1].try_recv().is_err(), "nothing was delivered");
        drop(tx);
    }

    #[test]
    fn bounded_drain_flushes_in_flight_wires_in_virtual_time() {
        let config = NetConfig::bounded(Duration::ZERO, 11).with_link_delay(
            p(0),
            p(1),
            Duration::from_millis(150),
        );
        let clock = Clock::simulated();
        let (tx, rx, net) =
            spawn_network_watched::<u32>(2, config, SynchronyMonitor::disarmed(), clock.clone());
        tx.send(p(0), p(1), 6);
        let wall = Instant::now();
        // A generous window: the network thread (the sole registered
        // thread) advances virtual time to the wire's 150 ms deadline
        // and delivers it, then exits early — the remaining window is
        // never waited out, in virtual or real time.
        let stats = net
            .shutdown_within(Duration::from_secs(600))
            .expect("the wire lands well inside the window");
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.undelivered, 0);
        assert_eq!(rx[1].try_recv().unwrap().payload, 6);
        assert!(
            clock.now() <= Tick::ZERO + Duration::from_millis(150),
            "drain ends at delivery, not at the window: {:?}",
            clock.now()
        );
        assert!(
            wall.elapsed() < Duration::from_secs(30),
            "no real-time wait for a virtual window"
        );
        drop(tx);
    }
}
