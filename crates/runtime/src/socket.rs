//! TCP transport: the threaded runtime's wire protocol on real
//! sockets, one OS process per consensus process.
//!
//! Architecture (per node):
//!
//! * one **acceptor** thread owns the listening socket and spawns a
//!   **reader** thread per inbound connection — *all* frames from a
//!   peer arrive on that peer's own outgoing connection, so each
//!   direction of the full mesh has exactly one writer;
//! * one **supervisor** thread per peer owns the outgoing connection:
//!   it dials with capped-exponential, seed-jittered backoff
//!   ([`backoff_delay`]), introduces itself with a `Hello{epoch}`
//!   handshake, sends data/ack/heartbeat/abort frames, arms an RTO
//!   retransmit timer per unacked data frame, and on reconnect resends
//!   everything unacked — the same seqno/ack/dedup reliable-delivery
//!   protocol the in-process chaos network uses, now over a wire that
//!   can genuinely fail.
//!
//! Two properties the paper cares about are structural here:
//!
//! * **Suspicion is gated on the PFD timeout, never on connection
//!   state.** Only frame arrivals touch the [`LastSeenBoard`]; a
//!   refused dial, a mid-stream reset, or a closed socket is invisible
//!   to [`StalenessFd`](crate::fd::StalenessFd). A `kill -9`'d peer is
//!   suspected when its silence outlives the timeout — §3's detector
//!   construction — while a reset that reconnects inside the bound
//!   leaves no trace.
//! * **Δ is measured, not assumed.** Every data frame carries its
//!   sender's wall-clock stamp; the receiver measures the one-way
//!   delay against the configured Δ and reports violations to the
//!   current instance's [`SynchronyMonitor`], which drives the
//!   `off|rws|abort` degrade modes mid-run ([`DegradeMode`]) — the §3
//!   caveat as an online guard.

use std::collections::{BTreeMap, HashSet};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use ssp_model::{ProcessId, Round};

use crate::fd::{DegradeMode, LastSeenBoard, SynchronyEvent, SynchronyMonitor};
use crate::transport::{
    backoff_delay, Frame, GatewayStats, TransportError, TransportStats, MAX_FRAME_LEN,
};

/// Supervisor command-poll granularity; bounds shutdown latency and
/// RTO/heartbeat timer resolution.
const SUP_TICK: Duration = Duration::from_millis(5);

/// Reader-side socket timeout used purely to poll the shutdown flag;
/// partially read frames survive across timeouts.
const READ_POLL: Duration = Duration::from_millis(50);

/// Retransmission timeout for unacked data frames on an established
/// connection.
const SOCKET_RTO: Duration = Duration::from_millis(100);

/// Sentinel in the remote-abort cell: no abort received.
const NO_ABORT: u64 = u64::MAX;

/// Upper bound on the shutdown flush: how long a node will wait for
/// live peers to ack its remaining in-flight frames before exiting
/// anyway.
pub const FLUSH_TIMEOUT: Duration = Duration::from_secs(3);

/// Peers silent for longer than this are excluded from the shutdown
/// flush — they are dead or partitioned and will never ack, and the
/// frames owed to them die with this node exactly as a crash would
/// lose them.
pub const FLUSH_STALE_CUT: Duration = Duration::from_millis(750);

/// Configuration of one socket-transport node.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// This node's process identity.
    pub me: ProcessId,
    /// Cluster size.
    pub n: usize,
    /// Address to listen on (e.g. `127.0.0.1:0` to let the OS pick).
    pub listen: String,
    /// Peer addresses, indexed by process; the entry for `me` is
    /// ignored.
    pub peers: Vec<String>,
    /// Monotone incarnation number of this process (guards against
    /// ghost writes from a predecessor incarnation).
    pub epoch: u64,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
    /// Heartbeat interval (must sit well inside the PFD timeout).
    pub heartbeat: Duration,
    /// Claimed synchrony bound Δ for the online guard, or `None` to
    /// run unguarded (a disarmed monitor).
    pub delta: Option<Duration>,
    /// What a Δ violation does to the current instance.
    pub degrade: DegradeMode,
}

impl SocketConfig {
    /// A loopback-friendly config with conventional timing: 20 ms
    /// heartbeats and an unarmed guard.
    #[must_use]
    pub fn local(me: ProcessId, n: usize, listen: String, peers: Vec<String>) -> Self {
        SocketConfig {
            me,
            n,
            listen,
            peers,
            epoch: 1,
            seed: 0,
            heartbeat: Duration::from_millis(20),
            delta: None,
            degrade: DegradeMode::Off,
        }
    }
}

/// A data frame delivered to the round layer (post-dedup).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocketMsg {
    /// Sending process.
    pub src: ProcessId,
    /// Consensus instance of the payload.
    pub instance: u64,
    /// Round within the instance.
    pub round: Round,
    /// Caller-encoded round message.
    pub payload: Vec<u8>,
}

/// Commands from readers / the round layer to a peer's supervisor.
enum SupCmd {
    /// Send a data frame (seq assigned by the supervisor).
    Data {
        instance: u64,
        round: u32,
        payload: Vec<u8>,
    },
    /// Acknowledge the peer's data frame `seq` (on *our* connection to
    /// it).
    SendAck { seq: u64 },
    /// The peer acknowledged *our* data frame `seq`.
    Acked { seq: u64 },
    /// Tell the peer we aborted `instance`.
    Abort { instance: u64 },
}

/// Non-deterministic transport counters, shared across threads.
#[derive(Debug, Default)]
struct SharedStats {
    reconnects: AtomicU64,
    retransmits: AtomicU64,
    backoff_micros: AtomicU64,
    delivered: AtomicU64,
    dup_suppressed: AtomicU64,
    late_frames: AtomicU64,
    stale_epoch_drops: AtomicU64,
    corrupt_drops: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> TransportStats {
        TransportStats {
            reconnects: self.reconnects.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            backoff_micros: self.backoff_micros.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dup_suppressed: self.dup_suppressed.load(Ordering::Relaxed),
            late_frames: self.late_frames.load(Ordering::Relaxed),
            stale_epoch_drops: self.stale_epoch_drops.load(Ordering::Relaxed),
            corrupt_drops: self.corrupt_drops.load(Ordering::Relaxed),
        }
    }
}

/// State shared by every thread of one node.
struct Core {
    me: ProcessId,
    epoch: u64,
    heartbeat: Duration,
    seed: u64,
    delta: Option<Duration>,
    degrade: DegradeMode,
    shutdown: AtomicBool,
    board: Arc<LastSeenBoard>,
    stats: SharedStats,
    /// The current instance's synchrony guard (swapped by
    /// `begin_instance`) and which instance it guards.
    monitor: Mutex<Arc<SynchronyMonitor>>,
    guarded_instance: AtomicU64,
    /// Lowest instance any peer reported aborting, `NO_ABORT` if none.
    remote_abort: AtomicU64,
    /// Newest epoch seen per peer.
    epochs: Vec<AtomicU64>,
    /// Per-peer dedup of received data seqs.
    seen: Vec<Mutex<HashSet<u64>>>,
    /// Per-peer supervisor inboxes (entry for `me` exists but is
    /// never dialed).
    sups: Vec<Sender<SupCmd>>,
    /// Per-peer count of data frames queued or sent but not yet
    /// acked. `shutdown` flushes these before tearing down — a node
    /// that exited the instant its own rounds closed would otherwise
    /// take its final relays to the grave and manufacture false
    /// suspicions at the survivors.
    inflight: Vec<AtomicU64>,
    inbox_tx: Sender<SocketMsg>,
}

impl Core {
    fn monitor(&self) -> Arc<SynchronyMonitor> {
        Arc::clone(&self.monitor.lock())
    }
}

/// Microseconds since the Unix epoch on the sender's wall clock — the
/// one-way-delay stamp. All nodes of a local cluster share one wall
/// clock, so the receiver-side difference is a real delay measurement.
fn unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_micros() as u64)
}

/// The socket-transport node handle: spawn, exchange round messages,
/// observe the guard, shut down.
#[derive(Debug)]
pub struct SocketNet {
    core: Arc<Core>,
    inbox_rx: Receiver<SocketMsg>,
    local_addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("me", &self.me)
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl SocketNet {
    /// Binds the listener and spawns the acceptor and all peer
    /// supervisors. Dialing is lazy and fault-tolerant: peers that are
    /// not up yet are retried with backoff, so nodes can start in any
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn spawn(config: SocketConfig) -> io::Result<SocketNet> {
        let listener = TcpListener::bind(&config.listen)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (inbox_tx, inbox_rx) = unbounded::<SocketMsg>();
        let mut sup_txs = Vec::with_capacity(config.n);
        let mut sup_rxs = Vec::with_capacity(config.n);
        for _ in 0..config.n {
            let (tx, rx) = unbounded::<SupCmd>();
            sup_txs.push(tx);
            sup_rxs.push(rx);
        }
        let core = Arc::new(Core {
            me: config.me,
            epoch: config.epoch,
            heartbeat: config.heartbeat,
            seed: config.seed,
            delta: config.delta,
            degrade: config.degrade,
            shutdown: AtomicBool::new(false),
            board: LastSeenBoard::new(config.n),
            stats: SharedStats::default(),
            monitor: Mutex::new(SynchronyMonitor::disarmed()),
            guarded_instance: AtomicU64::new(NO_ABORT),
            remote_abort: AtomicU64::new(NO_ABORT),
            epochs: (0..config.n).map(|_| AtomicU64::new(0)).collect(),
            seen: (0..config.n).map(|_| Mutex::new(HashSet::new())).collect(),
            sups: sup_txs,
            inflight: (0..config.n).map(|_| AtomicU64::new(0)).collect(),
            inbox_tx,
        });
        let mut threads = Vec::new();
        let acceptor_core = Arc::clone(&core);
        threads.push(
            std::thread::Builder::new()
                .name(format!("ssp-accept-{}", config.me.index()))
                .spawn(move || acceptor(&acceptor_core, &listener))
                .expect("spawn acceptor"),
        );
        for (j, rx) in sup_rxs.into_iter().enumerate() {
            if j == config.me.index() {
                continue;
            }
            let sup_core = Arc::clone(&core);
            let addr = config.peers[j].clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ssp-sup-{}-{}", config.me.index(), j))
                    .spawn(move || supervisor(&sup_core, ProcessId::new(j), &addr, &rx))
                    .expect("spawn supervisor"),
            );
        }
        Ok(SocketNet {
            core,
            inbox_rx,
            local_addr,
            threads,
        })
    }

    /// The bound listener address (resolves `:0` to the real port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The last-arrival board feeding
    /// [`StalenessFd`](crate::fd::StalenessFd).
    #[must_use]
    pub fn board(&self) -> Arc<LastSeenBoard> {
        Arc::clone(&self.core.board)
    }

    /// Arms a fresh synchrony monitor for `instance` (or a disarmed
    /// one when no Δ is configured) and returns it. Late frames of
    /// *other* instances never touch it, so one slow instance cannot
    /// degrade its successor.
    #[must_use]
    pub fn begin_instance(&self, instance: u64) -> Arc<SynchronyMonitor> {
        let fresh = match self.core.delta {
            Some(delta) => SynchronyMonitor::armed(delta, self.core.degrade),
            None => SynchronyMonitor::disarmed(),
        };
        self.core.guarded_instance.store(instance, Ordering::SeqCst);
        *self.core.monitor.lock() = Arc::clone(&fresh);
        fresh
    }

    /// The current instance's synchrony monitor.
    #[must_use]
    pub fn monitor(&self) -> Arc<SynchronyMonitor> {
        self.core.monitor()
    }

    /// Queues a round message to `dst`; the peer's supervisor assigns
    /// the wire sequence number, stamps the send time, and owns
    /// retransmission until acked.
    pub fn send(&self, dst: ProcessId, instance: u64, round: Round, payload: Vec<u8>) {
        self.core.inflight[dst.index()].fetch_add(1, Ordering::SeqCst);
        let _ = self.core.sups[dst.index()].send(SupCmd::Data {
            instance,
            round: round.get(),
            payload,
        });
    }

    /// Waits for the next delivered (deduplicated) data frame.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when nothing arrived in time.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<SocketMsg, RecvTimeoutError> {
        self.inbox_rx.recv_timeout(timeout)
    }

    /// Broadcasts an abort of `instance` to every peer (best effort —
    /// an aborting node is halting, peers that miss the frame fall
    /// back to their round timeout).
    pub fn abort(&self, instance: u64) {
        for (j, sup) in self.core.sups.iter().enumerate() {
            if j != self.core.me.index() {
                let _ = sup.send(SupCmd::Abort { instance });
            }
        }
    }

    /// The lowest instance any peer reported aborting, if any.
    #[must_use]
    pub fn remote_abort(&self) -> Option<u64> {
        match self.core.remote_abort.load(Ordering::SeqCst) {
            NO_ABORT => None,
            k => Some(k),
        }
    }

    /// A snapshot of the transport counters.
    #[must_use]
    pub fn stats(&self) -> TransportStats {
        self.core.stats.snapshot()
    }

    /// Flushes the in-flight windows, then signals every thread and
    /// joins the acceptor and supervisors. Reader threads (one per
    /// inbound connection) notice the flag at their next read poll and
    /// exit on their own.
    ///
    /// The flush is the reliable-delivery tail: a node whose own
    /// rounds have closed may still hold the *last* relay some peer is
    /// waiting for, queued or unacked; exiting immediately would lose
    /// it with the process and manufacture a false suspicion at the
    /// survivor. Peers that have gone silent past [`FLUSH_STALE_CUT`]
    /// are excluded — a dead peer can never ack — and the whole flush
    /// is bounded by [`FLUSH_TIMEOUT`].
    pub fn shutdown(mut self) -> TransportStats {
        let deadline = Instant::now() + FLUSH_TIMEOUT;
        while Instant::now() < deadline {
            let blocked = (0..self.core.inflight.len()).any(|j| {
                j != self.core.me.index()
                    && self.core.inflight[j].load(Ordering::SeqCst) > 0
                    && self.core.board.staleness(ProcessId::new(j)) < FLUSH_STALE_CUT
            });
            if !blocked {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        self.core.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.core.stats.snapshot()
    }
}

impl Drop for SocketNet {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Sleeps `d` in small slices, returning early on shutdown.
fn sleep_interruptibly(core: &Core, d: Duration) {
    let until = Instant::now() + d;
    while !core.shutdown.load(Ordering::SeqCst) {
        let left = until.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(Duration::from_millis(25)));
    }
}

fn acceptor(core: &Arc<Core>, listener: &TcpListener) {
    while !core.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(READ_POLL));
                let _ = stream.set_nonblocking(false);
                let reader_core = Arc::clone(core);
                let _ = std::thread::Builder::new()
                    .name(format!("ssp-read-{}", core.me.index()))
                    .spawn(move || reader(&reader_core, stream));
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Incremental frame parser over a socket with a read timeout: partial
/// frames survive timeouts (used only to poll the shutdown flag), so a
/// slow sender is never mistaken for a corrupt one. Public so the
/// gateway's client-session readers can share the parsing discipline.
#[derive(Debug)]
pub struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FrameReader {
    /// Wraps a stream; the caller should have set a read timeout so
    /// [`next`](FrameReader::next) can poll the shutdown flag.
    #[must_use]
    pub fn new(stream: TcpStream) -> Self {
        FrameReader {
            stream,
            buf: Vec::new(),
        }
    }

    /// Blocks until one full frame is parsed, the stream dies, or
    /// `shutdown` is raised (reported as [`TransportError::Reset`]).
    ///
    /// # Errors
    ///
    /// [`TransportError::Reset`] on EOF/shutdown/IO failure,
    /// [`TransportError::FrameCorrupt`] on an unparseable stream.
    pub fn next(&mut self, shutdown: &AtomicBool) -> Result<Frame, TransportError> {
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                    as usize;
                if len > MAX_FRAME_LEN {
                    return Err(TransportError::FrameCorrupt(format!(
                        "frame length {len} exceeds cap"
                    )));
                }
                if self.buf.len() >= 4 + len {
                    let frame = Frame::decode_body(&self.buf[4..4 + len])?;
                    self.buf.drain(..4 + len);
                    return Ok(frame);
                }
            }
            if shutdown.load(Ordering::SeqCst) {
                return Err(TransportError::Reset);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Reset),
                Ok(got) => self.buf.extend_from_slice(&chunk[..got]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => return Err(TransportError::from_io(&e)),
            }
        }
    }
}

/// Handles one inbound connection: epoch handshake, then a frame loop
/// that marks the last-seen board, acks and dedups data, measures
/// one-way delays against Δ, and routes acks/aborts. Connection death
/// in any form simply ends the thread — the peer's supervisor owns
/// reconnection, and *nothing here touches the failure detector*.
fn reader(core: &Arc<Core>, stream: TcpStream) {
    let mut fr = FrameReader::new(stream);
    let src = match fr.next(&core.shutdown) {
        Ok(Frame::Hello { src, epoch }) => {
            if src.index() >= core.epochs.len() || src == core.me {
                core.stats.corrupt_drops.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let cell = &core.epochs[src.index()];
            let mut latest = cell.load(Ordering::SeqCst);
            loop {
                if epoch < latest {
                    // A predecessor incarnation: TransportError::StaleEpoch.
                    core.stats.stale_epoch_drops.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                match cell.compare_exchange(latest, epoch, Ordering::SeqCst, Ordering::SeqCst) {
                    Ok(_) => break,
                    Err(cur) => latest = cur,
                }
            }
            src
        }
        Ok(_) => {
            core.stats.corrupt_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        Err(TransportError::FrameCorrupt(_)) => {
            core.stats.corrupt_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        Err(_) => return,
    };
    core.board.mark(src);
    loop {
        match fr.next(&core.shutdown) {
            Ok(Frame::Data {
                instance,
                round,
                seq,
                attempt: _,
                sent_micros,
                payload,
            }) => {
                core.board.mark(src);
                if round == 0 {
                    // Rounds are one-based; a zero round is a corrupt
                    // frame that happened to parse.
                    core.stats.corrupt_drops.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                // Ack every copy — a lost ack cannot strand the sender.
                let _ = core.sups[src.index()].send(SupCmd::SendAck { seq });
                let fresh = core.seen[src.index()].lock().insert(seq);
                if !fresh {
                    core.stats.dup_suppressed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let latency = Duration::from_micros(unix_micros().saturating_sub(sent_micros));
                if instance == core.guarded_instance.load(Ordering::SeqCst) {
                    if let Some(delta) = core.delta {
                        if latency > delta {
                            core.stats.late_frames.fetch_add(1, Ordering::Relaxed);
                            core.monitor().record(SynchronyEvent::LateDelivery {
                                src,
                                dst: core.me,
                                latency,
                            });
                        }
                    }
                }
                core.stats.delivered.fetch_add(1, Ordering::Relaxed);
                let _ = core.inbox_tx.send(SocketMsg {
                    src,
                    instance,
                    round: Round::new(round),
                    payload,
                });
            }
            Ok(Frame::Heartbeat { .. }) => core.board.mark(src),
            Ok(Frame::Ack { seq }) => {
                let _ = core.sups[src.index()].send(SupCmd::Acked { seq });
            }
            Ok(Frame::Abort { instance }) => {
                core.board.mark(src);
                let _ = core.remote_abort.fetch_min(instance, Ordering::SeqCst);
            }
            Ok(Frame::Hello { .. }) => {}
            Ok(
                Frame::Submit { .. }
                | Frame::ClientAck { .. }
                | Frame::Redirect { .. }
                | Frame::Busy { .. },
            ) => {
                // Client-protocol frames belong on the gateway port,
                // not the peer port: treat them as corruption.
                core.stats.corrupt_drops.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(TransportError::FrameCorrupt(_)) => {
                core.stats.corrupt_drops.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(_) => return,
        }
    }
}

/// An unacked data frame owned by a supervisor.
struct Pending {
    instance: u64,
    round: u32,
    sent_micros: u64,
    payload: Vec<u8>,
    attempt: u32,
    last_sent: Instant,
}

/// Writes one frame; `Err` means the connection must be considered
/// dead.
fn write_frame(stream: &mut TcpStream, frame: &Frame) -> Result<(), TransportError> {
    frame
        .write_to(stream)
        .map_err(|e| TransportError::from_io(&e))
}

/// Owns the outgoing connection to `peer`: dial + handshake +
/// backoff, sends and retransmits until acked, heartbeats, and
/// resends the unacked window after every reconnect.
#[allow(clippy::too_many_lines)]
fn supervisor(core: &Arc<Core>, peer: ProcessId, addr: &str, rx: &Receiver<SupCmd>) {
    let mut stream: Option<TcpStream> = None;
    let mut unacked: BTreeMap<u64, Pending> = BTreeMap::new();
    let mut next_seq = 0u64;
    let mut dial_attempt = 0u32;
    let mut ever_connected = false;
    let mut last_heartbeat = Instant::now();
    while !core.shutdown.load(Ordering::SeqCst) {
        if stream.is_none() {
            match TcpStream::connect(addr) {
                Ok(mut s) => {
                    let _ = s.set_nodelay(true);
                    let hello = Frame::Hello {
                        src: core.me,
                        epoch: core.epoch,
                    };
                    if write_frame(&mut s, &hello).is_err() {
                        // Treat as a failed dial.
                        let wait = backoff_delay(core.seed, core.me, peer, dial_attempt);
                        core.stats
                            .backoff_micros
                            .fetch_add(wait.as_micros() as u64, Ordering::Relaxed);
                        dial_attempt += 1;
                        sleep_interruptibly(core, wait);
                        continue;
                    }
                    if ever_connected {
                        core.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    ever_connected = true;
                    dial_attempt = 0;
                    // Resend the whole unacked window: the peer dedups
                    // by seq, so over-delivery is safe and
                    // under-delivery is impossible.
                    let mut dead = false;
                    for (seq, p) in &mut unacked {
                        p.attempt += 1;
                        p.last_sent = Instant::now();
                        core.stats.retransmits.fetch_add(1, Ordering::Relaxed);
                        let f = Frame::Data {
                            instance: p.instance,
                            round: p.round,
                            seq: *seq,
                            attempt: p.attempt,
                            sent_micros: p.sent_micros,
                            payload: p.payload.clone(),
                        };
                        if write_frame(&mut s, &f).is_err() {
                            dead = true;
                            break;
                        }
                    }
                    if !dead {
                        stream = Some(s);
                    }
                }
                Err(_refused_or_unreachable) => {
                    // TransportError::Refused (or any dial failure):
                    // back off deterministically and retry.
                    let wait = backoff_delay(core.seed, core.me, peer, dial_attempt);
                    core.stats
                        .backoff_micros
                        .fetch_add(wait.as_micros() as u64, Ordering::Relaxed);
                    dial_attempt += 1;
                    sleep_interruptibly(core, wait);
                    continue;
                }
            }
        }
        let mut broken = false;
        match rx.recv_timeout(SUP_TICK) {
            Ok(SupCmd::Data {
                instance,
                round,
                payload,
            }) => {
                let seq = next_seq;
                next_seq += 1;
                let p = Pending {
                    instance,
                    round,
                    sent_micros: unix_micros(),
                    payload,
                    attempt: 0,
                    last_sent: Instant::now(),
                };
                let f = Frame::Data {
                    instance,
                    round,
                    seq,
                    attempt: 0,
                    sent_micros: p.sent_micros,
                    payload: p.payload.clone(),
                };
                unacked.insert(seq, p);
                if let Some(s) = stream.as_mut() {
                    broken = write_frame(s, &f).is_err();
                }
            }
            Ok(SupCmd::SendAck { seq }) => {
                if let Some(s) = stream.as_mut() {
                    broken = write_frame(s, &Frame::Ack { seq }).is_err();
                }
                // Disconnected: drop the ack. The peer retransmits and
                // a later copy gets acked on the next connection.
            }
            Ok(SupCmd::Acked { seq }) => {
                if unacked.remove(&seq).is_some() {
                    core.inflight[peer.index()].fetch_sub(1, Ordering::SeqCst);
                }
            }
            Ok(SupCmd::Abort { instance }) => {
                if let Some(s) = stream.as_mut() {
                    broken = write_frame(s, &Frame::Abort { instance }).is_err();
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        if let Some(s) = stream.as_mut() {
            if !broken && last_heartbeat.elapsed() >= core.heartbeat {
                broken = write_frame(
                    s,
                    &Frame::Heartbeat {
                        sent_micros: unix_micros(),
                    },
                )
                .is_err();
                last_heartbeat = Instant::now();
            }
            if !broken {
                for (seq, p) in &mut unacked {
                    if p.last_sent.elapsed() < SOCKET_RTO {
                        continue;
                    }
                    p.attempt += 1;
                    p.last_sent = Instant::now();
                    core.stats.retransmits.fetch_add(1, Ordering::Relaxed);
                    let f = Frame::Data {
                        instance: p.instance,
                        round: p.round,
                        seq: *seq,
                        attempt: p.attempt,
                        sent_micros: p.sent_micros,
                        payload: p.payload.clone(),
                    };
                    if write_frame(s, &f).is_err() {
                        broken = true;
                        break;
                    }
                }
            }
        }
        if broken {
            // TransportError::Reset: reconnect (with backoff if the
            // peer is really gone) and resend the unacked window.
            stream = None;
        }
    }
}

// ---------------------------------------------------------------------------
// Gateway: the client-facing acceptor
// ---------------------------------------------------------------------------

/// One client submission admitted through the gateway's bounded queue,
/// awaiting the serving layer's drain. The payload is opaque here —
/// the engine-side glue decodes it into operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewaySubmission {
    /// Client identity (stable across reconnects).
    pub client: u64,
    /// Client-chosen request number; `(client, req)` is the
    /// exactly-once identity.
    pub req: u64,
    /// Encoded operations.
    pub payload: Vec<u8>,
}

/// State shared between the gateway acceptor, its per-session reader
/// threads, and the serving layer.
struct GatewayShared {
    shutdown: AtomicBool,
    /// Whether this node currently admits submissions; flipped by the
    /// serving layer as its failure detector moves the accepting role.
    accepting: AtomicBool,
    /// Where refused clients are pointed (node index) while not
    /// accepting.
    redirect_to: AtomicU64,
    /// Backpressure hint carried in `Busy` rejections.
    retry_after_ms: u32,
    busy_rejected: AtomicU64,
    redirects: AtomicU64,
    /// Ack route per client: the write half of the client's *latest*
    /// connection (a reconnect simply overwrites the entry).
    sessions: Mutex<BTreeMap<u64, Arc<Mutex<TcpStream>>>>,
    queue_tx: Sender<GatewaySubmission>,
}

impl GatewayShared {
    /// Writes one frame to the client's registered session, dropping
    /// the route when the connection is dead (the client will
    /// reconnect and resubmit; dedup makes that idempotent).
    fn reply(&self, client: u64, frame: &Frame) {
        let writer = self.sessions.lock().get(&client).cloned();
        if let Some(writer) = writer {
            if write_frame(&mut writer.lock(), frame).is_err() {
                self.sessions.lock().remove(&client);
            }
        }
    }
}

/// The per-node client-facing acceptor: listens for client
/// connections, parses [`Frame::Submit`]s with the same length-prefix
/// discipline as the peer transport, applies bounded-queue
/// backpressure (typed [`Frame::Busy`] rejection, never silent drops)
/// and leadership redirects ([`Frame::Redirect`]), and routes
/// [`Frame::ClientAck`]s back to each client's latest connection.
///
/// Admission-level dedup lives with the serving layer (it owns the
/// proposer's decided-id ledger); this type owns everything socket.
#[derive(Debug)]
pub struct GatewayListener {
    shared: Arc<GatewayShared>,
    queue_rx: Receiver<GatewaySubmission>,
    local: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for GatewayShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayShared")
            .field("accepting", &self.accepting.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl GatewayListener {
    /// Binds `listen` and starts accepting client sessions. At most
    /// `queue_cap` submissions sit admitted-but-undrained; beyond
    /// that, clients get `Busy { retry_after }`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(listen: &str, queue_cap: usize, retry_after: Duration) -> io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let (queue_tx, queue_rx) = crossbeam::channel::bounded(queue_cap.max(1));
        #[allow(clippy::cast_possible_truncation)]
        let shared = Arc::new(GatewayShared {
            shutdown: AtomicBool::new(false),
            accepting: AtomicBool::new(true),
            redirect_to: AtomicU64::new(0),
            retry_after_ms: retry_after.as_millis().min(u128::from(u32::MAX)) as u32,
            busy_rejected: AtomicU64::new(0),
            redirects: AtomicU64::new(0),
            sessions: Mutex::new(BTreeMap::new()),
            queue_tx,
        });
        let acc = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("ssp-gateway".to_string())
            .spawn(move || gateway_acceptor(&acc, &listener))?;
        Ok(GatewayListener {
            shared,
            queue_rx,
            local,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with `listen = "127.0.0.1:0"`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Drains up to `max` queued submissions without blocking.
    #[must_use]
    pub fn drain(&self, max: usize) -> Vec<GatewaySubmission> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.queue_rx.try_recv() {
                Ok(sub) => out.push(sub),
                Err(_) => break,
            }
        }
        out
    }

    /// Updates the leadership hint: while not accepting, sessions
    /// answer every submission with `Redirect { group: redirect_to }`
    /// instead of queueing it.
    pub fn set_accepting(&self, accepting: bool, redirect_to: u32) {
        self.shared
            .redirect_to
            .store(u64::from(redirect_to), Ordering::SeqCst);
        self.shared.accepting.store(accepting, Ordering::SeqCst);
    }

    /// Acks `(client, req)` as decided by consensus instance `seq` in
    /// `round`, over the client's latest session.
    pub fn ack(&self, client: u64, req: u64, seq: u64, round: u32) {
        self.shared
            .reply(client, &Frame::ClientAck { req, seq, round });
    }

    /// Redirects a drained-but-refused submission (the accepting role
    /// moved between enqueue and drain).
    pub fn redirect(&self, client: u64, req: u64, group: u32) {
        self.shared.redirects.fetch_add(1, Ordering::Relaxed);
        self.shared.reply(client, &Frame::Redirect { req, group });
    }

    /// Socket-level admission counters (`busy_rejected`, `redirects`;
    /// `admitted`/`deduped` belong to the serving layer's glue).
    #[must_use]
    pub fn stats(&self) -> GatewayStats {
        GatewayStats {
            admitted: 0,
            deduped: 0,
            busy_rejected: self.shared.busy_rejected.load(Ordering::Relaxed),
            redirects: self.shared.redirects.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, wakes every session reader, and joins the
    /// acceptor.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.shared.sessions.lock().clear();
    }
}

impl Drop for GatewayListener {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn gateway_acceptor(shared: &Arc<GatewayShared>, listener: &TcpListener) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let session_shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("ssp-gateway-session".to_string())
                    .spawn(move || gateway_session(&session_shared, stream));
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// One client session: a [`FrameReader`] loop over `Submit` frames.
/// Anything other than a well-formed `Submit` ends the session — the
/// client protocol has exactly one request frame.
fn gateway_session(shared: &Arc<GatewayShared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let mut fr = FrameReader::new(stream);
    loop {
        match fr.next(&shared.shutdown) {
            Ok(Frame::Submit {
                client,
                req,
                payload,
            }) => {
                // Latest connection wins the ack route for this
                // client: a resubmission after reconnect must be
                // answered on the new socket, not the dead one.
                shared.sessions.lock().insert(client, Arc::clone(&writer));
                if !shared.accepting.load(Ordering::SeqCst) {
                    #[allow(clippy::cast_possible_truncation)]
                    let group = shared.redirect_to.load(Ordering::SeqCst) as u32;
                    shared.redirects.fetch_add(1, Ordering::Relaxed);
                    if write_frame(&mut writer.lock(), &Frame::Redirect { req, group }).is_err() {
                        return;
                    }
                    continue;
                }
                match shared.queue_tx.try_send(GatewaySubmission {
                    client,
                    req,
                    payload,
                }) {
                    Ok(()) => {}
                    Err(crossbeam::channel::TrySendError::Full(_)) => {
                        shared.busy_rejected.fetch_add(1, Ordering::Relaxed);
                        let busy = Frame::Busy {
                            req,
                            retry_after_ms: shared.retry_after_ms,
                        };
                        if write_frame(&mut writer.lock(), &busy).is_err() {
                            return;
                        }
                    }
                    Err(crossbeam::channel::TrySendError::Disconnected(_)) => return,
                }
            }
            Ok(_) | Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn pair() -> (SocketNet, SocketNet) {
        // Bind both listeners first so the peer addresses are known.
        let a_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let b_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a_addr = a_listener.local_addr().unwrap().to_string();
        let b_addr = b_listener.local_addr().unwrap().to_string();
        drop(a_listener);
        drop(b_listener);
        let peers = vec![a_addr.clone(), b_addr.clone()];
        let a = SocketNet::spawn(SocketConfig::local(p(0), 2, a_addr, peers.clone())).unwrap();
        let b = SocketNet::spawn(SocketConfig::local(p(1), 2, b_addr, peers)).unwrap();
        (a, b)
    }

    #[test]
    fn loopback_pair_exchanges_round_messages() {
        let (a, b) = pair();
        a.send(p(1), 0, Round::FIRST, vec![1, 2, 3]);
        let got = b.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(got.src, p(0));
        assert_eq!(got.instance, 0);
        assert_eq!(got.round, Round::FIRST);
        assert_eq!(got.payload, vec![1, 2, 3]);
        b.send(p(0), 0, Round::FIRST, vec![9]);
        let got = a.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(got.src, p(1));
        assert_eq!(got.payload, vec![9]);
        let stats = a.shutdown();
        assert!(stats.delivered >= 1);
        drop(b);
    }

    #[test]
    fn heartbeats_keep_staleness_fresh() {
        use crate::fd::{FdModule, StalenessFd};
        let (a, b) = pair();
        let fd = StalenessFd::new(a.board(), Duration::from_millis(500), p(0));
        // Wait long enough that only heartbeats can be keeping b fresh.
        std::thread::sleep(Duration::from_millis(700));
        assert!(
            fd.suspects().is_empty(),
            "a heartbeating peer is never suspected"
        );
        drop(b);
        // With b gone, silence accumulates past the timeout.
        std::thread::sleep(Duration::from_millis(900));
        assert!(fd.suspects().contains(p(1)), "a dead peer is suspected");
        drop(a);
    }
}
