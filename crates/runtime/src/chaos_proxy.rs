//! Deterministic socket-level fault interposer.
//!
//! A [`ChaosProxy`] sits between a node's supervisor and its peer: one
//! TCP listener per **directed link**, forwarding length-prefixed
//! [`Frame`]s upstream while injecting faults — extra delay, drops,
//! one-shot connection resets, and full partitions. Decisions use the
//! same splitmix discipline as the in-process
//! [`ChaosConfig`](crate::ChaosConfig): a fault is a pure function of
//! `(seed, src, dst, seq[, attempt])`, never of wall-clock timing, so
//! the *set* of injected faults is identical across runs of the same
//! seed even though real sockets execute them.
//!
//! Two scoping rules keep experiments sharp:
//!
//! * **delay decisions key on `seq` alone** (not the attempt number),
//!   so a retransmitted copy of a delayed frame is delayed too — the
//!   reliable-delivery layer cannot launder an injected Δ violation
//!   out of existence;
//! * **only `Data` frames are targeted** — `Hello`, `Heartbeat`, `Ack`
//!   and `Abort` pass through untouched, so the failure detector stays
//!   quiet while the synchrony guard is being provoked (suspicions and
//!   Δ violations can be injected independently).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, RecvTimeoutError};

use ssp_model::ProcessId;

use crate::net::{roll, splitmix};
use crate::transport::{Frame, TransportError, MAX_FRAME_LEN};

/// Salt for the per-frame delay decision (keyed on seq only).
const SALT_PROXY_DELAY: u64 = 0x9d1a;
/// Salt for the per-copy drop decision (keyed on seq and attempt).
const SALT_PROXY_DROP: u64 = 0x9d0b;

/// One proxied directed link.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Sending process (dials `listen`).
    pub src: ProcessId,
    /// Receiving process (reached at `upstream`).
    pub dst: ProcessId,
    /// Address the proxy listens on for this link.
    pub listen: String,
    /// The real destination address frames are forwarded to.
    pub upstream: String,
}

/// Fault script for a [`ChaosProxy`]; probabilities are per-mille and
/// resolved deterministically from the seed.
#[derive(Debug, Clone)]
pub struct ChaosProxyConfig {
    /// Seed for all fault decisions.
    pub seed: u64,
    /// Per-mille probability that a data frame is held for `delay`.
    pub delay_pm: u32,
    /// Extra one-way delay injected on selected frames.
    pub delay: Duration,
    /// Per-mille probability that one copy of a data frame is dropped.
    pub drop_pm: u32,
    /// Reset each link's connection once, after this many data frames
    /// have crossed it.
    pub reset_after: Option<u64>,
    /// Directed links whose data frames are all silently dropped.
    pub partitioned: Vec<(ProcessId, ProcessId)>,
    /// The links to proxy.
    pub links: Vec<LinkSpec>,
}

impl ChaosProxyConfig {
    /// A proxy that forwards everything unchanged — useful to verify
    /// the interposer itself is transparent.
    #[must_use]
    pub fn passthrough(seed: u64, links: Vec<LinkSpec>) -> Self {
        ChaosProxyConfig {
            seed,
            delay_pm: 0,
            delay: Duration::ZERO,
            drop_pm: 0,
            reset_after: None,
            partitioned: Vec::new(),
            links,
        }
    }
}

/// Counters of injected faults (observability only; determinism is
/// asserted on the cluster's own stats and audit verdicts).
#[derive(Debug, Default)]
struct ProxyStats {
    delayed: AtomicU64,
    dropped: AtomicU64,
    resets: AtomicU64,
}

/// Handle over the running interposer threads.
#[derive(Debug)]
pub struct ChaosProxy {
    shutdown: Arc<AtomicBool>,
    stats: Arc<ProxyStats>,
    addrs: Vec<SocketAddr>,
    threads: Vec<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds every link listener and spawns one forwarding thread per
    /// link.
    ///
    /// # Errors
    ///
    /// Propagates listener bind failures.
    pub fn spawn(config: ChaosProxyConfig) -> io::Result<ChaosProxy> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ProxyStats::default());
        let mut addrs = Vec::with_capacity(config.links.len());
        let mut threads = Vec::new();
        let cfg = Arc::new(config);
        for (i, link) in cfg.links.iter().enumerate() {
            let listener = TcpListener::bind(&link.listen)?;
            addrs.push(listener.local_addr()?);
            listener.set_nonblocking(true)?;
            let cfg = Arc::clone(&cfg);
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ssp-proxy-{i}"))
                    .spawn(move || link_acceptor(&cfg, i, &listener, &shutdown, &stats))
                    .expect("spawn proxy link thread"),
            );
        }
        Ok(ChaosProxy {
            shutdown,
            stats,
            addrs,
            threads,
        })
    }

    /// Bound listener addresses, in `config.links` order (resolves
    /// `:0` binds to real ports).
    #[must_use]
    pub fn link_addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// `(delayed, dropped, resets)` injected so far.
    #[must_use]
    pub fn injected(&self) -> (u64, u64, u64) {
        (
            self.stats.delayed.load(Ordering::Relaxed),
            self.stats.dropped.load(Ordering::Relaxed),
            self.stats.resets.load(Ordering::Relaxed),
        )
    }

    /// Stops all link threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn per_mille(seed: u64, salt: u64, link: &LinkSpec, seq: u64, attempt: u32, pm: u32) -> bool {
    if pm == 0 {
        return false;
    }
    splitmix(roll(seed, salt, link.src, link.dst, seq, attempt)) % 1000 < u64::from(pm)
}

/// Accepts connections for one directed link, handling them
/// sequentially — each reconnect from the supervisor gets a fresh
/// upstream connection.
fn link_acceptor(
    cfg: &Arc<ChaosProxyConfig>,
    idx: usize,
    listener: &TcpListener,
    shutdown: &Arc<AtomicBool>,
    stats: &Arc<ProxyStats>,
) {
    // Data-frame count and the one-shot reset latch persist across
    // reconnects of this link.
    let data_seen = AtomicU64::new(0);
    let reset_done = AtomicBool::new(false);
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((downstream, _)) => {
                forward_connection(
                    cfg,
                    idx,
                    downstream,
                    shutdown,
                    stats,
                    &data_seen,
                    &reset_done,
                );
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Pumps one downstream connection: parses frames, applies the fault
/// script, and forwards surviving bytes upstream (delayed frames hold
/// the line behind them, like a genuinely slow link would).
#[allow(clippy::too_many_arguments)]
fn forward_connection(
    cfg: &Arc<ChaosProxyConfig>,
    idx: usize,
    downstream: TcpStream,
    shutdown: &Arc<AtomicBool>,
    stats: &Arc<ProxyStats>,
    data_seen: &AtomicU64,
    reset_done: &AtomicBool,
) {
    let link = &cfg.links[idx];
    let _ = downstream.set_nodelay(true);
    let _ = downstream.set_read_timeout(Some(Duration::from_millis(50)));
    // The upstream node may not be listening yet; retry briefly.
    let upstream = loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match TcpStream::connect(&link.upstream) {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                break s;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    };
    // Writer thread: releases frames at their due instant, in decision
    // order, so an injected delay also delays everything queued behind
    // it on this link.
    let (tx, rx) = unbounded::<(Instant, Vec<u8>)>();
    let writer_shutdown = Arc::clone(shutdown);
    let mut upstream_w = match upstream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer = std::thread::spawn(move || loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok((due, bytes)) => {
                let mut left = due.saturating_duration_since(Instant::now());
                while !left.is_zero() && !writer_shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(left.min(Duration::from_millis(25)));
                    left = due.saturating_duration_since(Instant::now());
                }
                if upstream_w.write_all(&bytes).is_err() {
                    return;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if writer_shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    });
    let partitioned = cfg
        .partitioned
        .iter()
        .any(|&(s, d)| s == link.src && d == link.dst);
    let mut downstream_r = downstream;
    let mut buf: Vec<u8> = Vec::new();
    'conn: loop {
        // Extract complete frames from the buffer.
        while buf.len() >= 4 {
            let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            if len > MAX_FRAME_LEN || buf.len() < 4 + len {
                if len > MAX_FRAME_LEN {
                    break 'conn;
                }
                break;
            }
            let raw: Vec<u8> = buf.drain(..4 + len).collect();
            let mut due = Instant::now();
            match Frame::decode_body(&raw[4..]) {
                Ok(Frame::Data { seq, attempt, .. }) => {
                    let nth = data_seen.fetch_add(1, Ordering::SeqCst) + 1;
                    if let Some(k) = cfg.reset_after {
                        if nth >= k && !reset_done.swap(true, Ordering::SeqCst) {
                            stats.resets.fetch_add(1, Ordering::Relaxed);
                            break 'conn;
                        }
                    }
                    if partitioned
                        || per_mille(cfg.seed, SALT_PROXY_DROP, link, seq, attempt, cfg.drop_pm)
                    {
                        stats.dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    // Delay keys on seq alone: every copy of a delayed
                    // frame is delayed, so retransmits cannot undo it.
                    if per_mille(cfg.seed, SALT_PROXY_DELAY, link, seq, 0, cfg.delay_pm) {
                        stats.delayed.fetch_add(1, Ordering::Relaxed);
                        due += cfg.delay;
                    }
                }
                Ok(_) => {}
                Err(TransportError::FrameCorrupt(_)) => break 'conn,
                Err(_) => break 'conn,
            }
            if tx.send((due, raw)).is_err() {
                break 'conn;
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let mut chunk = [0u8; 4096];
        match downstream_r.read(&mut chunk) {
            Ok(0) => break,
            Ok(got) => buf.extend_from_slice(&chunk[..got]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => break,
        }
    }
    drop(tx);
    let _ = writer.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socket::{SocketConfig, SocketNet};
    use ssp_model::Round;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Reserves a distinct loopback address by binding then dropping.
    fn free_addr() -> String {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = l.local_addr().unwrap().to_string();
        drop(l);
        a
    }

    /// Two nodes with the 0→1 direction proxied.
    fn proxied_pair(
        cfg_fn: impl FnOnce(Vec<LinkSpec>) -> ChaosProxyConfig,
    ) -> (SocketNet, SocketNet, ChaosProxy) {
        let a_addr = free_addr();
        let b_addr = free_addr();
        let proxy_addr = free_addr();
        let proxy = ChaosProxy::spawn(cfg_fn(vec![LinkSpec {
            src: p(0),
            dst: p(1),
            listen: proxy_addr.clone(),
            upstream: b_addr.clone(),
        }]))
        .unwrap();
        // Node 0 dials node 1 through the proxy; everything else is
        // direct.
        let a = SocketNet::spawn(SocketConfig::local(
            p(0),
            2,
            a_addr.clone(),
            vec![a_addr.clone(), proxy_addr],
        ))
        .unwrap();
        let b = SocketNet::spawn(SocketConfig::local(
            p(1),
            2,
            b_addr.clone(),
            vec![a_addr, b_addr],
        ))
        .unwrap();
        (a, b, proxy)
    }

    #[test]
    fn passthrough_proxy_is_transparent() {
        let (a, b, proxy) = proxied_pair(|links| ChaosProxyConfig::passthrough(7, links));
        a.send(p(1), 0, Round::FIRST, vec![42]);
        let got = b.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(got.payload, vec![42]);
        assert_eq!(proxy.injected(), (0, 0, 0));
        drop(a);
        drop(b);
        proxy.shutdown();
    }

    #[test]
    fn injected_delay_holds_frames_for_the_scripted_duration() {
        let (a, b, proxy) = proxied_pair(|links| ChaosProxyConfig {
            seed: 7,
            delay_pm: 1000,
            delay: Duration::from_millis(300),
            drop_pm: 0,
            reset_after: None,
            partitioned: Vec::new(),
            links,
        });
        let t0 = Instant::now();
        a.send(p(1), 0, Round::FIRST, vec![5]);
        let got = b.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(got.payload, vec![5]);
        assert!(
            t0.elapsed() >= Duration::from_millis(250),
            "frame arrived in {:?}, before the injected delay",
            t0.elapsed()
        );
        let (delayed, _, _) = proxy.injected();
        assert!(delayed >= 1);
        drop(a);
        drop(b);
        proxy.shutdown();
    }

    #[test]
    fn reset_link_recovers_through_reconnect_and_retransmit() {
        let (a, b, proxy) = proxied_pair(|links| ChaosProxyConfig {
            seed: 7,
            delay_pm: 0,
            delay: Duration::ZERO,
            drop_pm: 0,
            reset_after: Some(1),
            partitioned: Vec::new(),
            links,
        });
        // The first data frame trips the one-shot reset; the
        // supervisor reconnects and resends, and delivery still
        // happens exactly once.
        a.send(p(1), 0, Round::FIRST, vec![8]);
        let got = b.recv_timeout(Duration::from_secs(20)).unwrap();
        assert_eq!(got.payload, vec![8]);
        assert!(
            b.recv_timeout(Duration::from_millis(200)).is_err(),
            "dedup must suppress the retransmitted copy"
        );
        let (_, _, resets) = proxy.injected();
        assert_eq!(resets, 1);
        let stats = a.stats();
        assert!(stats.reconnects >= 1, "supervisor must have reconnected");
        drop(a);
        drop(b);
        proxy.shutdown();
    }
}
