//! The threaded round driver: runs any [`RoundAlgorithm`] with one OS
//! thread per process over the delay-injecting network of
//! [`crate::net`], with failure detection from [`crate::fd`].
//!
//! The same driver realizes both models:
//!
//! * [`SyncPolicy::Rs`] — bounded-delay network + timeout detector +
//!   a *drain* period after each suspicion, so that in-flight messages
//!   from a crashed sender still land before the round closes. Under
//!   the delay bound this yields round synchrony (missing message ⇒
//!   the sender never sent it to us).
//! * [`SyncPolicy::Rws`] — the §4.2 rule verbatim: close the round as
//!   soon as every peer has either delivered or become suspected.
//!   Messages that arrive after their round closed are *pending*,
//!   counted in [`ThreadedOutcome::pending_messages`].
//!
//! `RS` runs carry a **synchrony watchdog**
//! ([`crate::fd::SynchronyMonitor`]): the claimed delivery bound Δ is
//! checked at runtime (over-Δ scheduling and deliveries by the
//! network, detector mistakes and pending arrivals by the workers),
//! and on violation the run either keeps going *flagged*
//! ([`DegradeMode::Off`]), downgrades every still-open and future
//! round to `RWS` semantics ([`DegradeMode::Rws`] — suspicion closes
//! rounds, in-flight wires become pending, which is sound because
//! `RWS` never relied on Δ), or stops undecided
//! ([`DegradeMode::Abort`]). [`RuntimeConfig::validate`] rejects
//! configurations that could not realize `RS` even on a well-behaved
//! network (drain ≤ worst transport delay, FD timeout ≤ delay bound).

use core::fmt;
use std::sync::Arc;
use std::time::Duration;

use ssp_model::{
    process::all_processes, ConsensusOutcome, InitialConfig, ProcessId, ProcessOutcome, ProcessSet,
    Round, Value,
};
use ssp_rounds::{RoundAlgorithm, RoundProcess};

use crate::clock::{Backend, Clock, Tick};
use crate::fd::{
    CrashLedger, DegradeMode, FdModule, HeartbeatBoard, Oracle, OracleFd, SynchronyEvent,
    SynchronyMonitor, SynchronyReport, TimeoutFd,
};
use crate::net::{spawn_network_watched, NetConfig, NetReceiver, NetSender, NetStats};
use crate::trace::{RoundObs, RunTrace};

/// Safety margin the auto-derived watchdog Δ adds on top of the
/// network's worst transport delay (absorbs scheduling jitter between
/// submission and the net thread picking the wire up).
pub const WATCHDOG_MARGIN: Duration = Duration::from_millis(25);

/// Minimum headroom the FD timeout must keep above the delay bound
/// (heartbeats ride the scheduler, not the network, but the same
/// jitter budget applies).
pub const FD_TIMEOUT_MARGIN: Duration = Duration::from_millis(10);

/// Round-tagged wire format (nulls sent explicitly, as in the §4.2
/// emulation, so receivers can stop waiting for live-but-silent peers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundWire<M> {
    round: u32,
    payload: Option<M>,
}

/// When a round may close on a missing peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Suspicion + a drain period (realizes `RS` under bounded delays).
    Rs {
        /// How long to keep receiving after a peer is first found
        /// suspected-and-missing. Must exceed the network's maximum
        /// delay for round synchrony to hold.
        drain: Duration,
    },
    /// Suspicion alone (realizes `RWS`; pending messages possible).
    Rws,
}

/// Which perfect-detector implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdFlavor {
    /// Heartbeats + timeout (the `SS` construction of §3).
    Timeout {
        /// Staleness threshold; must exceed the worst heartbeat gap.
        timeout: Duration,
    },
    /// Crash oracle with per-observer notification delays (the `SP`
    /// abstraction).
    Oracle {
        /// Minimum notification delay.
        min_notify: Duration,
        /// Maximum notification delay.
        max_notify: Duration,
    },
}

/// A scripted crash: the process stops during `round` after emitting
/// a subset of its `n` messages (self-delivery counts as a send slot).
/// A round beyond the horizon makes the process complete every round —
/// possibly deciding — and *then* crash.
///
/// With `sends_to: None` the emitted subset is the *prefix* of length
/// `after_sends` in process order — the seed-derived [`FaultPlan`]
/// shape. With `sends_to: Some(set)` the process emits exactly to the
/// members of `set` (in process order) and then dies at the end of the
/// send phase; `after_sends` is ignored. Arbitrary sets are what the
/// exploration layer needs: the canonical representative of a crash
/// orbit is rarely a prefix.
///
/// [`FaultPlan`]: crate::plan::FaultPlan
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCrash {
    /// The round during which the process crashes.
    pub round: u32,
    /// Messages it manages to emit in that round before dying
    /// (prefix mode; ignored when `sends_to` is set).
    pub after_sends: usize,
    /// Exact set of processes reached in the crash round, overriding
    /// the `after_sends` prefix when present.
    pub sends_to: Option<ProcessSet>,
}

impl ThreadCrash {
    /// Prefix-mode crash: die in `round` after the first `after_sends`
    /// send slots (the historical constructor shape).
    #[must_use]
    pub fn prefix(round: u32, after_sends: usize) -> Self {
        ThreadCrash {
            round,
            after_sends,
            sends_to: None,
        }
    }

    /// Set-mode crash: die in `round` after emitting exactly to `set`.
    #[must_use]
    pub fn sending_to(round: u32, set: ProcessSet) -> Self {
        ThreadCrash {
            round,
            after_sends: 0,
            sends_to: Some(set),
        }
    }

    /// Whether slot `slot` (for receiver `q` out of `n`) is emitted.
    fn emits(&self, slot: usize, q: ProcessId) -> bool {
        match self.sends_to {
            Some(set) => set.contains(q),
            None => slot < self.after_sends,
        }
    }

    /// Whether the crash fires only *after* the full send phase of its
    /// round (i.e. every slot it wanted to emit is emitted in-loop).
    fn after_full_send_phase(&self, n: usize) -> bool {
        self.sends_to.is_some() || self.after_sends >= n
    }
}

/// A scripted heartbeat starvation: the process sleeps for `duration`
/// at the start of `round`, before sending or beating — live but
/// unresponsive, the raw material of detector mistakes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stall {
    /// The round whose start is delayed.
    pub round: u32,
    /// How long the process sleeps.
    pub duration: Duration,
}

/// Synchrony-watchdog configuration. The watchdog arms only under
/// [`SyncPolicy::Rs`] — `RWS` claims no delivery bound to violate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WatchdogConfig {
    /// Claimed transport-level delivery bound Δ. `None` derives it
    /// from the network: worst transport delay + [`WATCHDOG_MARGIN`].
    pub delta: Option<Duration>,
    /// What to do when the bound is violated.
    pub degrade: DegradeMode,
}

/// A configuration that cannot realize its claimed model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `crashes` must have one slot per process.
    CrashSlots {
        /// Expected length (`n`).
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// `stalls` must have one slot per process.
    StallSlots {
        /// Expected length (`n`).
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// The delay window is inverted.
    DelayWindow {
        /// Configured minimum delay.
        min: Duration,
        /// Configured maximum delay.
        max: Duration,
    },
    /// The `RS` drain does not cover the network's worst transport
    /// delay: a slow-but-in-bound wire could be declared absent and
    /// round synchrony silently forfeited.
    DrainTooShort {
        /// Configured drain.
        drain: Duration,
        /// Worst transport delay it must exceed.
        required: Duration,
    },
    /// The timeout detector's threshold does not clear the delay
    /// bound plus margin: a live process could be suspected under
    /// ordinary jitter, making the "perfect" detector imperfect by
    /// construction.
    FdTimeoutTooShort {
        /// Configured timeout.
        timeout: Duration,
        /// Bound + margin it must exceed.
        required: Duration,
    },
    /// The scripted oracle-notification matrix is not `n × n`.
    NotifyShape {
        /// Expected dimension (`n`).
        expected: usize,
    },
    /// A set-mode crash script names a receiver outside `0..n`.
    CrashSendSet {
        /// The crashing process.
        process: ProcessId,
        /// The offending receiver index.
        receiver: ProcessId,
        /// Number of processes (`n`).
        n: usize,
    },
    /// A sharded service was configured with zero shard groups; the
    /// key space has nowhere to live.
    ShardCountZero,
    /// The cross-shard fraction is not a probability. The rate is
    /// carried in per-mille so the error stays `Eq`-comparable.
    CrossShardRateOutOfRange {
        /// The offending rate, in per-mille of submissions.
        rate_pm: i64,
    },
    /// A cross-shard rate was explicitly requested on a single-group
    /// service: with `G = 1` every key has the same owner, so there is
    /// no second group for a transaction to span.
    CrossShardRateWithoutShards {
        /// The requested rate, in per-mille of submissions.
        rate_pm: i64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::CrashSlots { expected, got } => write!(
                f,
                "crash script must have one slot per process (expected {expected}, got {got})"
            ),
            ConfigError::StallSlots { expected, got } => write!(
                f,
                "stall script must have one slot per process (expected {expected}, got {got})"
            ),
            ConfigError::DelayWindow { min, max } => write!(
                f,
                "network delay window is inverted (min {min:?} > max {max:?})"
            ),
            ConfigError::DrainTooShort { drain, required } => write!(
                f,
                "RS drain {drain:?} does not exceed the worst transport delay {required:?}: \
                 an in-bound wire could be declared absent and round synchrony forfeited"
            ),
            ConfigError::FdTimeoutTooShort { timeout, required } => write!(
                f,
                "FD timeout {timeout:?} does not exceed the delay bound plus margin \
                 {required:?}: a live process could be suspected under ordinary jitter"
            ),
            ConfigError::NotifyShape { expected } => write!(
                f,
                "oracle notify script must be {expected}\u{d7}{expected} (one delay per \
                 crasher/observer pair)"
            ),
            ConfigError::CrashSendSet {
                process,
                receiver,
                n,
            } => write!(
                f,
                "crash script for {process} sends to {receiver}, outside the {n}-process ring"
            ),
            ConfigError::ShardCountZero => write!(
                f,
                "shard count must be at least 1: zero consensus groups cannot own a key space"
            ),
            ConfigError::CrossShardRateOutOfRange { rate_pm } => write!(
                f,
                "cross-shard rate {}\u{2030} is not a probability (need 0 \u{2264} rate \u{2264} 1)",
                rate_pm
            ),
            ConfigError::CrossShardRateWithoutShards { rate_pm } => write!(
                f,
                "cross-shard rate {}\u{2030} requested on a single-group service: \
                 transactions need --shards \u{2265} 2 to span groups",
                rate_pm
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of a threaded execution.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Network delays (and chaos faults).
    pub net: NetConfig,
    /// Round-closing policy.
    pub policy: SyncPolicy,
    /// Failure-detector implementation.
    pub fd: FdFlavor,
    /// Per-process crash script.
    pub crashes: Vec<Option<ThreadCrash>>,
    /// Per-process stall script (heartbeat starvation).
    pub stalls: Vec<Option<Stall>>,
    /// Synchrony-watchdog settings (effective under `RS` only).
    pub watchdog: WatchdogConfig,
    /// Hard per-round safety timeout (a liveness bug fails the run
    /// rather than hanging the test suite).
    pub round_timeout: Duration,
    /// Scripted oracle-notification delays, `[crasher][observer]`
    /// (see [`crate::fd::Oracle::scripted`]). Only meaningful with
    /// [`FdFlavor::Oracle`]; [`crate::FaultPlan`] fills this in.
    pub notify_script: Option<Vec<Vec<Duration>>>,
    /// Early-close fast path: a process that has decided burst-sends
    /// its remaining rounds and retires instead of waiting them out.
    /// Only effective when the algorithm declares
    /// [`ssp_rounds::RoundAlgorithm::retires_after_decision`]; the
    /// engine's instance pipelining turns this on so `A1`'s round-1
    /// decisions translate into shorter instances. Retired rounds are
    /// recorded in [`RunTrace::retired`] and excluded from full
    /// trace-replay conformance.
    pub early_close: bool,
}

impl RuntimeConfig {
    /// An `SS`-flavoured configuration: bounded delays, timeout
    /// detector, drain long enough for round synchrony.
    #[must_use]
    pub fn ss_flavor(n: usize, seed: u64) -> Self {
        let max_delay = Duration::from_millis(2);
        RuntimeConfig {
            net: NetConfig::bounded(max_delay, seed),
            policy: SyncPolicy::Rs {
                drain: Duration::from_millis(200),
            },
            fd: FdFlavor::Timeout {
                timeout: Duration::from_millis(100),
            },
            crashes: vec![None; n],
            stalls: vec![None; n],
            watchdog: WatchdogConfig::default(),
            round_timeout: Duration::from_secs(20),
            notify_script: None,
            early_close: false,
        }
    }

    /// An `SP`-flavoured configuration: oracle detector, suspicion
    /// closes rounds immediately.
    #[must_use]
    pub fn sp_flavor(n: usize, seed: u64) -> Self {
        RuntimeConfig {
            net: NetConfig::bounded(Duration::from_millis(2), seed),
            policy: SyncPolicy::Rws,
            fd: FdFlavor::Oracle {
                min_notify: Duration::from_millis(5),
                max_notify: Duration::from_millis(15),
            },
            crashes: vec![None; n],
            stalls: vec![None; n],
            watchdog: WatchdogConfig::default(),
            round_timeout: Duration::from_secs(20),
            notify_script: None,
            early_close: false,
        }
    }

    /// Scripts a crash.
    #[must_use]
    pub fn with_crash(mut self, p: ProcessId, crash: ThreadCrash) -> Self {
        self.crashes[p.index()] = Some(crash);
        self
    }

    /// Scripts a stall (heartbeat starvation).
    #[must_use]
    pub fn with_stall(mut self, p: ProcessId, stall: Stall) -> Self {
        self.stalls[p.index()] = Some(stall);
        self
    }

    /// Replaces the network configuration.
    #[must_use]
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Sets the watchdog's degradation mode.
    #[must_use]
    pub fn with_degrade(mut self, degrade: DegradeMode) -> Self {
        self.watchdog.degrade = degrade;
        self
    }

    /// Enables (or disables) the early-close fast path. No-op unless
    /// the algorithm declares
    /// [`ssp_rounds::RoundAlgorithm::retires_after_decision`].
    #[must_use]
    pub fn with_early_close(mut self, on: bool) -> Self {
        self.early_close = on;
        self
    }

    /// The watchdog Δ this configuration claims: the explicit value,
    /// or the network's worst transport delay plus
    /// [`WATCHDOG_MARGIN`].
    #[must_use]
    pub fn effective_delta(&self) -> Duration {
        self.watchdog
            .delta
            .unwrap_or(self.net.worst_transport_delay() + WATCHDOG_MARGIN)
    }

    /// Checks that this configuration can realize its claimed model
    /// for `n` processes: script shapes, a sane delay window, and —
    /// the paper's point — that drain and FD timeout actually clear
    /// the delay bound, without which the `RS`/perfect-detector claim
    /// is vacuous (§3).
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self, n: usize) -> Result<(), ConfigError> {
        if self.crashes.len() != n {
            return Err(ConfigError::CrashSlots {
                expected: n,
                got: self.crashes.len(),
            });
        }
        if self.stalls.len() != n {
            return Err(ConfigError::StallSlots {
                expected: n,
                got: self.stalls.len(),
            });
        }
        if self.net.min_delay > self.net.max_delay {
            return Err(ConfigError::DelayWindow {
                min: self.net.min_delay,
                max: self.net.max_delay,
            });
        }
        if let SyncPolicy::Rs { drain } = self.policy {
            let required = self.net.worst_transport_delay();
            if drain <= required {
                return Err(ConfigError::DrainTooShort { drain, required });
            }
        }
        if let FdFlavor::Timeout { timeout } = self.fd {
            let required = self.net.max_delay + FD_TIMEOUT_MARGIN;
            if timeout <= required {
                return Err(ConfigError::FdTimeoutTooShort { timeout, required });
            }
        }
        if let Some(script) = &self.notify_script {
            if script.len() != n || script.iter().any(|row| row.len() != n) {
                return Err(ConfigError::NotifyShape { expected: n });
            }
        }
        for (slot, crash) in self.crashes.iter().enumerate() {
            let Some(ThreadCrash {
                sends_to: Some(set),
                ..
            }) = crash
            else {
                continue;
            };
            if let Some(receiver) = set.iter().find(|q| q.index() >= n) {
                return Err(ConfigError::CrashSendSet {
                    process: ProcessId::new(slot),
                    receiver,
                    n,
                });
            }
        }
        Ok(())
    }
}

/// The result of a threaded execution.
#[derive(Debug)]
pub struct ThreadedOutcome<V, M> {
    /// Per-process consensus outcome (decisions include those made by
    /// processes that crashed afterwards).
    pub outcome: ConsensusOutcome<V>,
    /// Messages that arrived after their round had already closed at
    /// the receiver — real pending messages. Always 0 under
    /// [`SyncPolicy::Rs`] with an adequate drain and intact bounds.
    pub pending_messages: u64,
    /// Duration of the whole execution on the run's clock: wall time
    /// under [`Backend::Real`], simulated time under
    /// [`Backend::Virtual`].
    pub elapsed: Duration,
    /// The canonical record of the run: what every process sent and
    /// had received when each round closed, plus crash rounds —
    /// replayable through the round models and exportable as an
    /// `ssp-sim` step trace.
    pub trace: RunTrace<M>,
    /// Everything the synchrony watchdog saw: violations, degradation,
    /// abort.
    pub synchrony: SynchronyReport,
    /// Transport counters (chaos drops/dups, retransmits, stranded
    /// wires).
    pub net: NetStats,
}

struct ProcessReturn<V, M> {
    input: V,
    decision: Option<(V, Round)>,
    crashed_in: Option<Round>,
    retired: Option<Round>,
    pending_seen: u64,
    log: Vec<RoundObs<M>>,
}

enum AnyFd {
    Timeout(TimeoutFd),
    Oracle(OracleFd),
}

impl AnyFd {
    fn suspects(&self) -> ssp_model::ProcessSet {
        match self {
            AnyFd::Timeout(fd) => fd.suspects(),
            AnyFd::Oracle(fd) => fd.suspects(),
        }
    }
}

/// Per-worker wiring, bundled to keep [`worker`]'s signature sane.
struct WorkerEnv<M> {
    me: ProcessId,
    n: usize,
    horizon: u32,
    rx: NetReceiver<RoundWire<M>>,
    tx: NetSender<RoundWire<M>>,
    fd: AnyFd,
    board: Arc<HeartbeatBoard>,
    oracle: Arc<Oracle>,
    monitor: Arc<SynchronyMonitor>,
    ledger: Arc<CrashLedger>,
    crash: Option<ThreadCrash>,
    stall: Option<Stall>,
    policy: SyncPolicy,
    round_timeout: Duration,
    /// Early-close enabled *and* the algorithm declared itself
    /// retire-capable: a decided worker bursts its remaining rounds
    /// and stops receiving.
    retire: bool,
    /// The run's clock (shared by the network, detectors, and every
    /// worker).
    clock: Clock,
}

/// Runs `algo` on one OS thread per process over the chosen clock
/// backend. This is the engine behind [`crate::RuntimeBuilder::run`];
/// configuration errors are surfaced as values.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub(crate) fn run_on_backend<V, A>(
    algo: &A,
    config: &InitialConfig<V>,
    t: usize,
    runtime: RuntimeConfig,
    backend: Backend,
) -> Result<ThreadedOutcome<V, <A::Process as RoundProcess>::Msg>, ConfigError>
where
    V: Value + Sync,
    A: RoundAlgorithm<V>,
    A::Process: Send + 'static,
    <A::Process as RoundProcess>::Msg: Send + 'static,
{
    let n = config.n();
    runtime.validate(n)?;
    let clock = Clock::for_backend(backend);
    let horizon = algo.round_horizon(n, t);
    let retire = runtime.early_close && algo.retires_after_decision();
    let rs = matches!(runtime.policy, SyncPolicy::Rs { .. });
    let monitor = if rs {
        SynchronyMonitor::armed(runtime.effective_delta(), runtime.watchdog.degrade)
    } else {
        SynchronyMonitor::disarmed()
    };
    let ledger = CrashLedger::new(n);
    let (net_tx, net_rxs, net_handle) =
        spawn_network_watched::<RoundWire<<A::Process as RoundProcess>::Msg>>(
            n,
            runtime.net.clone(),
            Arc::clone(&monitor),
            clock.clone(),
        );

    let board = HeartbeatBoard::new(n, clock.clone());
    let oracle = match &runtime.notify_script {
        Some(script) => Oracle::scripted(n, script.clone(), clock.clone()),
        None => Oracle::new(
            n,
            match runtime.fd {
                FdFlavor::Oracle { min_notify, .. } => min_notify,
                _ => Duration::ZERO,
            },
            match runtime.fd {
                FdFlavor::Oracle { max_notify, .. } => max_notify,
                _ => Duration::ZERO,
            },
            runtime.net.seed,
            clock.clone(),
        ),
    };

    let started = clock.now();
    // Reserve every worker's running slot before spawning any of them.
    // Registering lazily (each slot just before its own spawn) leaves a
    // window where the already-spawned workers are the only registered
    // threads: if the spawning thread is descheduled mid-loop, those
    // workers' polls drive virtual time forward unboundedly, and the
    // not-yet-spawned workers' epoch heartbeats go stale — live peers
    // get suspected before they ever run.
    for _ in all_processes(n) {
        clock.register();
    }
    let mut handles = Vec::with_capacity(n);
    for me in all_processes(n) {
        let proc_ = algo.spawn(me, n, t, config.input(me).clone());
        let input = config.input(me).clone();
        let fd = match runtime.fd {
            FdFlavor::Timeout { timeout } => {
                AnyFd::Timeout(TimeoutFd::new(Arc::clone(&board), timeout, me))
            }
            FdFlavor::Oracle { .. } => AnyFd::Oracle(oracle.module(me)),
        };
        let env = WorkerEnv {
            me,
            n,
            horizon,
            rx: net_rxs[me.index()].clone(),
            tx: net_tx.clone(),
            fd,
            board: Arc::clone(&board),
            oracle: Arc::clone(&oracle),
            monitor: Arc::clone(&monitor),
            ledger: Arc::clone(&ledger),
            crash: runtime.crashes[me.index()],
            stall: runtime.stalls[me.index()],
            policy: runtime.policy,
            round_timeout: runtime.round_timeout,
            retire,
            clock: clock.clone(),
        };
        let wclock = clock.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("ssp-{me}"))
                .spawn(move || {
                    // `worker` drops its NetSender (waking the network
                    // thread) before we take the finish stamp and leave
                    // the virtual timeline.
                    let ret = worker(proc_, input, env);
                    let finished = wclock.now();
                    wclock.deregister();
                    (ret, finished)
                })
                .expect("spawn worker"),
        );
    }
    drop(net_tx);

    let mut outcomes = Vec::with_capacity(n);
    let mut pending_total = 0;
    let mut logs = Vec::with_capacity(n);
    let mut crash_rounds = Vec::with_capacity(n);
    let mut retired_rounds = Vec::with_capacity(n);
    let mut ended = started;
    for h in handles {
        let (r, finished): (ProcessReturn<V, <A::Process as RoundProcess>::Msg>, Tick) =
            h.join().expect("worker thread panicked");
        ended = ended.max(finished);
        pending_total += r.pending_seen;
        logs.push(r.log);
        // Clamp post-horizon crash rounds to the round-model limit.
        crash_rounds.push(r.crashed_in.map(|c| c.min(Round::new(horizon + 1))));
        retired_rounds.push(r.retired);
        outcomes.push(ProcessOutcome {
            input: r.input,
            decision: r.decision,
            crashed_in: r.crashed_in,
        });
    }
    // All workers are done: shut the network down, discarding (and
    // accounting) whatever is still in flight.
    let net_stats = net_handle.shutdown();
    let synchrony = monitor.report();
    Ok(ThreadedOutcome {
        outcome: ConsensusOutcome::new(outcomes),
        pending_messages: pending_total,
        elapsed: ended.saturating_duration_since(started),
        trace: RunTrace {
            n,
            horizon,
            rs,
            logs,
            crashes: crash_rounds,
            retired: retired_rounds,
            degraded_at: synchrony.degraded_at,
            aborted: synchrony.aborted,
            net: net_stats,
        },
        synchrony,
        net: net_stats,
    })
}

fn worker<P>(
    mut proc_: P,
    input: P::Value,
    env: WorkerEnv<P::Msg>,
) -> ProcessReturn<P::Value, P::Msg>
where
    P: RoundProcess,
    P::Msg: Send + 'static,
{
    let WorkerEnv {
        me,
        n,
        horizon,
        rx,
        tx,
        fd,
        board,
        oracle,
        monitor,
        ledger,
        crash,
        stall,
        policy: base_policy,
        round_timeout,
        retire,
        clock,
    } = env;
    let crash_now = |_r: u32| {
        ledger.mark(me);
        board.silence(me);
        oracle.report_crash(me);
    };
    let mut future: Vec<(u32, ProcessId, Option<P::Msg>)> = Vec::new();
    let mut pending_seen = 0u64;
    let mut log: Vec<RoundObs<P::Msg>> = Vec::with_capacity(horizon as usize);
    // Live peers already reported as detector mistakes (once each).
    let mut mistaken = vec![false; n];

    for r in 1..=horizon {
        if let Some(s) = stall {
            if s.round == r {
                // Heartbeat starvation: live, but silent and deaf.
                clock.sleep(s.duration);
            }
        }
        if monitor.aborted() {
            return ProcessReturn {
                input,
                decision: proc_.decision(),
                crashed_in: None,
                retired: None,
                pending_seen,
                log,
            };
        }
        board.beat(me);
        // --- early-close fast path ---
        // A decided process of a retire-capable algorithm bursts its
        // wires for every remaining round (their content is fixed by
        // the decided state) and stops receiving: the instance is over
        // for it, which is what lets the engine start the next one
        // sooner. The scripted crash still applies mid-burst, so fault
        // plans keep their bite under early close.
        if retire && proc_.decision().is_some() {
            let retired = Some(Round::new(r));
            for rr in r..=horizon {
                board.beat(me);
                let mut sent: Vec<Option<Option<P::Msg>>> = vec![None; n];
                for (slot, q) in all_processes(n).enumerate() {
                    if let Some(c) = crash {
                        if c.round == rr && !c.emits(slot, q) {
                            if c.sends_to.is_some() {
                                // Set mode: an unscripted slot is
                                // skipped, not fatal — the crash fires
                                // after the send phase.
                                continue;
                            }
                            crash_now(rr);
                            log.push(RoundObs {
                                sent,
                                received: None,
                            });
                            return ProcessReturn {
                                input,
                                decision: proc_.decision(),
                                crashed_in: Some(Round::new(rr)),
                                retired,
                                pending_seen,
                                log,
                            };
                        }
                    }
                    let payload = proc_.msgs(Round::new(rr), q);
                    sent[q.index()] = Some(payload.clone());
                    if q != me {
                        tx.send(me, q, RoundWire { round: rr, payload });
                    }
                }
                if let Some(c) = crash {
                    if c.round == rr && c.after_full_send_phase(n) {
                        crash_now(rr);
                        log.push(RoundObs {
                            sent,
                            received: None,
                        });
                        return ProcessReturn {
                            input,
                            decision: proc_.decision(),
                            crashed_in: Some(Round::new(rr)),
                            retired,
                            pending_seen,
                            log,
                        };
                    }
                }
                log.push(RoundObs {
                    sent,
                    received: None,
                });
            }
            let crashed_in = crash.and_then(|c| {
                (c.round > horizon).then(|| {
                    crash_now(c.round);
                    Round::new(c.round)
                })
            });
            if crashed_in.is_none() {
                // One last beat so laggards don't suspect us while
                // they wait out our burst wires.
                board.beat(me);
            }
            return ProcessReturn {
                input,
                decision: proc_.decision(),
                crashed_in,
                retired,
                pending_seen,
                log,
            };
        }
        // --- send phase ---
        let mut sent: Vec<Option<Option<P::Msg>>> = vec![None; n];
        let mut self_payload: Option<Option<P::Msg>> = None;
        for (slot, q) in all_processes(n).enumerate() {
            if let Some(c) = crash {
                if c.round == r && !c.emits(slot, q) {
                    if c.sends_to.is_some() {
                        // Set mode: an unscripted slot is skipped, not
                        // fatal — the crash fires after the send phase.
                        continue;
                    }
                    crash_now(r);
                    log.push(RoundObs {
                        sent,
                        received: None,
                    });
                    return ProcessReturn {
                        input,
                        decision: proc_.decision(),
                        crashed_in: Some(Round::new(r)),
                        retired: None,
                        pending_seen,
                        log,
                    };
                }
            }
            let payload = proc_.msgs(Round::new(r), q);
            sent[q.index()] = Some(payload.clone());
            if q == me {
                self_payload = Some(payload);
            } else {
                tx.send(me, q, RoundWire { round: r, payload });
            }
        }
        if let Some(c) = crash {
            // `after_sends ≥ n` (prefix mode) or any set-mode script
            // means "crash during round r after the send phase, before
            // applying trans".
            if c.round == r && c.after_full_send_phase(n) {
                crash_now(r);
                log.push(RoundObs {
                    sent,
                    received: None,
                });
                return ProcessReturn {
                    input,
                    decision: proc_.decision(),
                    crashed_in: Some(Round::new(r)),
                    retired: None,
                    pending_seen,
                    log,
                };
            }
        }
        // --- collect phase ---
        let mut got: Vec<Option<Option<P::Msg>>> = vec![None; n];
        got[me.index()] = Some(self_payload.unwrap_or(None));
        // Absorb early arrivals stashed in previous rounds.
        future.retain(|(fr, src, payload)| {
            if *fr == r {
                got[src.index()] = Some(payload.clone());
                false
            } else {
                true
            }
        });
        let deadline = clock.now() + round_timeout;
        let mut missing_since: Vec<Option<Tick>> = vec![None; n];
        loop {
            // Abort wins over everything, including a ready round: the
            // check runs before readiness so the outcome is the same
            // whichever the worker notices first.
            if monitor.aborted() {
                log.push(RoundObs {
                    sent,
                    received: None,
                });
                return ProcessReturn {
                    input,
                    decision: proc_.decision(),
                    crashed_in: None,
                    retired: None,
                    pending_seen,
                    log,
                };
            }
            board.beat(me);
            // Mid-run degradation: a violated Δ forfeits the RS drain
            // discipline; close on suspicion alone from here on.
            let policy = if monitor.degraded() {
                SyncPolicy::Rws
            } else {
                base_policy
            };
            let suspects = fd.suspects();
            let now = clock.now();
            let mut ready = true;
            for q in all_processes(n) {
                if got[q.index()].is_some() {
                    continue;
                }
                if !suspects.contains(q) {
                    ready = false;
                    continue;
                }
                // The detector is about to be trusted on q. If q never
                // actually crashed, that is a detector mistake — report
                // it (once) to the watchdog.
                if !mistaken[q.index()] && !ledger.crashed(q) {
                    mistaken[q.index()] = true;
                    monitor.record(SynchronyEvent::DetectorMistake {
                        observer: me,
                        suspect: q,
                        round: Round::new(r),
                    });
                }
                match policy {
                    SyncPolicy::Rws => {}
                    SyncPolicy::Rs { drain } => {
                        // Keep draining the link for `drain` after the
                        // suspicion before declaring the message absent.
                        let since = missing_since[q.index()].get_or_insert(now);
                        if now.saturating_duration_since(*since) < drain {
                            ready = false;
                        }
                    }
                }
            }
            if ready {
                break;
            }
            if now > deadline {
                // Liveness failure: give up undecided. The incomplete
                // round (without a crash) makes the trace inadmissible,
                // which is exactly what conformance should report.
                log.push(RoundObs {
                    sent,
                    received: None,
                });
                return ProcessReturn {
                    input,
                    decision: proc_.decision(),
                    crashed_in: None,
                    retired: None,
                    pending_seen,
                    log,
                };
            }
            if let Ok(env) = rx.recv_timeout(Duration::from_micros(500)) {
                let wire = env.payload;
                if wire.round == r {
                    got[env.src.index()] = Some(wire.payload);
                } else if wire.round > r {
                    future.push((wire.round, env.src, wire.payload));
                } else {
                    pending_seen += 1; // arrived after its round closed
                    if monitor.is_armed() && !monitor.degraded() {
                        // A pending arrival while still claiming RS:
                        // round synchrony was already broken.
                        monitor.record(SynchronyEvent::PendingUnderRs {
                            src: env.src,
                            dst: me,
                            wire_round: Round::new(wire.round),
                            observed_in: Round::new(r),
                        });
                    }
                }
            }
        }
        log.push(RoundObs {
            sent,
            received: Some(got.clone()),
        });
        let received: Vec<Option<P::Msg>> = got.into_iter().map(Option::flatten).collect();
        proc_.trans(Round::new(r), &received);
    }

    // Post-horizon scripted crash ("decide then crash").
    let crashed_in = crash.map(|c| {
        debug_assert!(c.round > horizon, "in-horizon crashes return earlier");
        crash_now(c.round);
        Round::new(c.round)
    });
    if crashed_in.is_none() {
        // Keep beating briefly so laggards don't suspect us while they finish.
        board.beat(me);
    }
    ProcessReturn {
        input,
        decision: proc_.decision(),
        crashed_in,
        retired: None,
        pending_seen,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RuntimeBuilder;
    use ssp_algos::{FloodSet, FloodSetWs, A1};
    use ssp_model::{check_uniform_consensus, check_uniform_consensus_strong};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Test shorthand: run `runtime` verbatim on the default (virtual)
    /// backend.
    fn run_virtual<V, A>(
        algo: &A,
        config: &InitialConfig<V>,
        t: usize,
        runtime: RuntimeConfig,
    ) -> ThreadedOutcome<V, <A::Process as RoundProcess>::Msg>
    where
        V: Value + Sync,
        A: RoundAlgorithm<V>,
        A::Process: Send + 'static,
        <A::Process as RoundProcess>::Msg: Send + 'static,
    {
        RuntimeBuilder::new(algo, config)
            .t(t)
            .runtime(runtime)
            .run()
            .unwrap()
    }

    #[test]
    fn sharding_config_errors_render_their_diagnosis() {
        assert!(ConfigError::ShardCountZero
            .to_string()
            .contains("at least 1"));
        let oob = ConfigError::CrossShardRateOutOfRange { rate_pm: 1500 };
        assert!(oob.to_string().contains("1500"), "{oob}");
        let single = ConfigError::CrossShardRateWithoutShards { rate_pm: 100 };
        assert!(single.to_string().contains("--shards"), "{single}");
        assert_ne!(oob, single.clone());
    }

    #[test]
    fn failure_free_a1_decides_round_1_on_threads() {
        let config = InitialConfig::new(vec![4u64, 9, 2]);
        let result = run_virtual(&A1, &config, 1, RuntimeConfig::ss_flavor(3, 42));
        check_uniform_consensus_strong(&result.outcome).unwrap();
        assert_eq!(result.outcome.latency_degree(), Some(1));
        assert_eq!(result.pending_messages, 0);
        assert!(!result.synchrony.violated, "bounds held");
        assert_eq!(
            result.net.undelivered, 0,
            "shutdown found nothing in flight"
        );
    }

    #[test]
    fn floodset_with_mid_round_crash_on_threads() {
        let config = InitialConfig::new(vec![0u64, 3, 5]);
        let runtime = RuntimeConfig::ss_flavor(3, 7).with_crash(
            p(0),
            ThreadCrash {
                round: 1,
                after_sends: 2, // reaches itself and p2, not p3
                sends_to: None,
            },
        );
        let result = run_virtual(&FloodSet, &config, 1, runtime);
        check_uniform_consensus_strong(&result.outcome).unwrap();
        assert_eq!(result.outcome.outcome(p(0)).crashed_in, Some(Round::FIRST));
        // p2 saw the 0 in round 1 and floods it in round 2.
        for q in [p(1), p(2)] {
            assert_eq!(result.outcome.outcome(q).decision.as_ref().unwrap().0, 0);
        }
    }

    #[test]
    fn a1_uniformity_breaks_on_threads_under_sp_flavor() {
        // The §5.3 scenario in real time: p1 broadcasts with its links
        // slowed to 2s, decides on its own value, crashes; the oracle
        // tells the others quickly; they decide p2's value. Real
        // pending messages, real disagreement.
        let n = 3;
        let config = InitialConfig::new(vec![10u64, 11, 12]);
        let net = NetConfig::bounded(Duration::from_millis(2), 9).with_sender_delay(
            p(0),
            n,
            Duration::from_secs(2),
        );
        let runtime = RuntimeConfig::sp_flavor(n, 9).with_net(net).with_crash(
            p(0),
            ThreadCrash {
                round: 2,
                after_sends: 0,
                sends_to: None,
            },
        );
        let result = run_virtual(&A1, &config, 1, runtime);
        // p1 decided its own value (self-delivery is internal, instant).
        assert_eq!(
            result.outcome.outcome(p(0)).decision.as_ref().map(|d| d.0),
            Some(10)
        );
        // Survivors went with p2's fallback value.
        for q in [p(1), p(2)] {
            assert_eq!(
                result.outcome.outcome(q).decision.as_ref().map(|d| d.0),
                Some(11)
            );
        }
        assert!(check_uniform_consensus(&result.outcome).is_err());
        // RWS claims no Δ: nothing to violate even with 2s links.
        assert!(!result.synchrony.violated);
    }

    #[test]
    fn floodset_ws_survives_the_same_sp_adversary() {
        let n = 3;
        let config = InitialConfig::new(vec![10u64, 11, 12]);
        let net = NetConfig::bounded(Duration::from_millis(2), 9).with_sender_delay(
            p(0),
            n,
            Duration::from_secs(2),
        );
        let runtime = RuntimeConfig::sp_flavor(n, 9).with_net(net).with_crash(
            p(0),
            ThreadCrash {
                round: 2,
                after_sends: 0,
                sends_to: None,
            },
        );
        let result = run_virtual(&FloodSetWs, &config, 1, runtime);
        check_uniform_consensus(&result.outcome).unwrap();
    }

    #[test]
    fn early_close_retires_round_1_deciders() {
        let config = InitialConfig::new(vec![4u64, 9, 2]);
        let runtime = RuntimeConfig::ss_flavor(3, 42).with_early_close(true);
        let result = run_virtual(&A1, &config, 1, runtime);
        check_uniform_consensus_strong(&result.outcome).unwrap();
        assert_eq!(result.outcome.latency_degree(), Some(1));
        // Everyone decided in round 1, burst its round-2 relay, and
        // retired at the start of round 2 — without ever waiting for
        // the relays of the others.
        assert_eq!(
            result.trace.retired,
            vec![Some(Round::new(2)); 3],
            "all three retire at round 2"
        );
        result.trace.validate().unwrap();
    }

    #[test]
    fn early_close_is_a_no_op_for_non_retiring_algorithms() {
        let config = InitialConfig::new(vec![0u64, 3, 5]);
        let runtime = RuntimeConfig::ss_flavor(3, 7).with_early_close(true);
        let result = run_virtual(&FloodSet, &config, 1, runtime);
        check_uniform_consensus_strong(&result.outcome).unwrap();
        assert!(result.trace.retired.iter().all(Option::is_none));
        result.trace.validate().unwrap();
    }

    #[test]
    fn early_close_crash_mid_burst_is_still_a_crash() {
        let config = InitialConfig::new(vec![4u64, 9, 2]);
        let runtime = RuntimeConfig::ss_flavor(3, 5)
            .with_early_close(true)
            .with_crash(
                p(0),
                ThreadCrash {
                    round: 2,
                    after_sends: 1,
                    sends_to: None,
                },
            );
        let result = run_virtual(&A1, &config, 1, runtime);
        // p0 decided in round 1, retired, and died one send into its
        // round-2 relay burst — recorded as both retired and crashed.
        assert_eq!(result.outcome.outcome(p(0)).crashed_in, Some(Round::new(2)));
        assert_eq!(result.trace.retired[0], Some(Round::new(2)));
        check_uniform_consensus_strong(&result.outcome).unwrap();
        result.trace.validate().unwrap();
    }

    #[test]
    fn validate_rejects_drain_below_transport_delay() {
        let mut runtime = RuntimeConfig::ss_flavor(3, 1);
        runtime.policy = SyncPolicy::Rs {
            drain: Duration::from_millis(1),
        };
        assert!(matches!(
            runtime.validate(3),
            Err(ConfigError::DrainTooShort { .. })
        ));
    }

    #[test]
    fn validate_rejects_fd_timeout_below_bound() {
        let mut runtime = RuntimeConfig::ss_flavor(3, 1);
        runtime.fd = FdFlavor::Timeout {
            timeout: Duration::from_millis(2),
        };
        assert!(matches!(
            runtime.validate(3),
            Err(ConfigError::FdTimeoutTooShort { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let runtime = RuntimeConfig::ss_flavor(3, 1);
        assert!(matches!(
            runtime.clone().validate(4),
            Err(ConfigError::CrashSlots { .. })
        ));
        let mut bad = runtime.clone();
        bad.stalls = vec![None; 2];
        assert!(matches!(
            bad.validate(3),
            Err(ConfigError::StallSlots { .. })
        ));
        let mut bad = runtime.clone();
        bad.notify_script = Some(vec![vec![Duration::ZERO; 2]; 3]);
        assert!(matches!(
            bad.validate(3),
            Err(ConfigError::NotifyShape { .. })
        ));
        let mut bad = runtime;
        bad.net.min_delay = Duration::from_millis(5);
        assert!(matches!(
            bad.validate(3),
            Err(ConfigError::DelayWindow { .. })
        ));
    }

    #[test]
    fn checked_run_surfaces_config_errors() {
        let config = InitialConfig::new(vec![4u64, 9, 2]);
        let mut runtime = RuntimeConfig::ss_flavor(3, 1);
        runtime.policy = SyncPolicy::Rs {
            drain: Duration::ZERO,
        };
        let err = RuntimeBuilder::new(&A1, &config)
            .t(1)
            .runtime(runtime)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("drain"), "{err}");
    }

    #[test]
    fn config_errors_display() {
        let e = ConfigError::DrainTooShort {
            drain: Duration::from_millis(1),
            required: Duration::from_millis(50),
        };
        assert!(e.to_string().contains("drain"), "{e}");
        let e = ConfigError::FdTimeoutTooShort {
            timeout: Duration::from_millis(2),
            required: Duration::from_millis(12),
        };
        assert!(e.to_string().contains("timeout"), "{e}");
        let e = ConfigError::NotifyShape { expected: 3 };
        assert!(e.to_string().contains("3"), "{e}");
    }
}
