//! The threaded round driver: runs any [`RoundAlgorithm`] with one OS
//! thread per process over the delay-injecting network of
//! [`crate::net`], with failure detection from [`crate::fd`].
//!
//! The same driver realizes both models:
//!
//! * [`SyncPolicy::Rs`] — bounded-delay network + timeout detector +
//!   a *drain* period after each suspicion, so that in-flight messages
//!   from a crashed sender still land before the round closes. Under
//!   the delay bound this yields round synchrony (missing message ⇒
//!   the sender never sent it to us).
//! * [`SyncPolicy::Rws`] — the §4.2 rule verbatim: close the round as
//!   soon as every peer has either delivered or become suspected.
//!   Messages that arrive after their round closed are *pending*,
//!   counted in [`ThreadedOutcome::pending_messages`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use ssp_model::{
    process::all_processes, ConsensusOutcome, InitialConfig, ProcessId, ProcessOutcome, Round,
    Value,
};
use ssp_rounds::{RoundAlgorithm, RoundProcess};

use crate::fd::{FdModule, HeartbeatBoard, Oracle, OracleFd, TimeoutFd};
use crate::net::{spawn_network, NetConfig, NetReceiver, NetSender};
use crate::trace::{RoundObs, RunTrace};

/// Round-tagged wire format (nulls sent explicitly, as in the §4.2
/// emulation, so receivers can stop waiting for live-but-silent peers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundWire<M> {
    round: u32,
    payload: Option<M>,
}

/// When a round may close on a missing peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Suspicion + a drain period (realizes `RS` under bounded delays).
    Rs {
        /// How long to keep receiving after a peer is first found
        /// suspected-and-missing. Must exceed the network's maximum
        /// delay for round synchrony to hold.
        drain: Duration,
    },
    /// Suspicion alone (realizes `RWS`; pending messages possible).
    Rws,
}

/// Which perfect-detector implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdFlavor {
    /// Heartbeats + timeout (the `SS` construction of §3).
    Timeout {
        /// Staleness threshold; must exceed the worst heartbeat gap.
        timeout: Duration,
    },
    /// Crash oracle with per-observer notification delays (the `SP`
    /// abstraction).
    Oracle {
        /// Minimum notification delay.
        min_notify: Duration,
        /// Maximum notification delay.
        max_notify: Duration,
    },
}

/// A scripted crash: the process stops during `round` after emitting
/// `after_sends` of its `n` messages (self-delivery counts as a send
/// slot). A round beyond the horizon makes the process complete every
/// round — possibly deciding — and *then* crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCrash {
    /// The round during which the process crashes.
    pub round: u32,
    /// Messages it manages to emit in that round before dying.
    pub after_sends: usize,
}

/// Full configuration of a threaded execution.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Network delays.
    pub net: NetConfig,
    /// Round-closing policy.
    pub policy: SyncPolicy,
    /// Failure-detector implementation.
    pub fd: FdFlavor,
    /// Per-process crash script.
    pub crashes: Vec<Option<ThreadCrash>>,
    /// Hard per-round safety timeout (a liveness bug fails the run
    /// rather than hanging the test suite).
    pub round_timeout: Duration,
    /// Scripted oracle-notification delays, `[crasher][observer]`
    /// (see [`crate::fd::Oracle::scripted`]). Only meaningful with
    /// [`FdFlavor::Oracle`]; [`crate::FaultPlan`] fills this in.
    pub notify_script: Option<Vec<Vec<Duration>>>,
}

impl RuntimeConfig {
    /// An `SS`-flavoured configuration: bounded delays, timeout
    /// detector, drain long enough for round synchrony.
    #[must_use]
    pub fn ss_flavor(n: usize, seed: u64) -> Self {
        let max_delay = Duration::from_millis(2);
        RuntimeConfig {
            net: NetConfig::bounded(max_delay, seed),
            policy: SyncPolicy::Rs {
                drain: Duration::from_millis(200),
            },
            fd: FdFlavor::Timeout {
                timeout: Duration::from_millis(100),
            },
            crashes: vec![None; n],
            round_timeout: Duration::from_secs(20),
            notify_script: None,
        }
    }

    /// An `SP`-flavoured configuration: oracle detector, suspicion
    /// closes rounds immediately.
    #[must_use]
    pub fn sp_flavor(n: usize, seed: u64) -> Self {
        RuntimeConfig {
            net: NetConfig::bounded(Duration::from_millis(2), seed),
            policy: SyncPolicy::Rws,
            fd: FdFlavor::Oracle {
                min_notify: Duration::from_millis(5),
                max_notify: Duration::from_millis(15),
            },
            crashes: vec![None; n],
            round_timeout: Duration::from_secs(20),
            notify_script: None,
        }
    }

    /// Scripts a crash.
    #[must_use]
    pub fn with_crash(mut self, p: ProcessId, crash: ThreadCrash) -> Self {
        self.crashes[p.index()] = Some(crash);
        self
    }

    /// Replaces the network configuration.
    #[must_use]
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }
}

/// The result of a threaded execution.
#[derive(Debug)]
pub struct ThreadedOutcome<V, M> {
    /// Per-process consensus outcome (decisions include those made by
    /// processes that crashed afterwards).
    pub outcome: ConsensusOutcome<V>,
    /// Messages that arrived after their round had already closed at
    /// the receiver — real pending messages. Always 0 under
    /// [`SyncPolicy::Rs`] with an adequate drain.
    pub pending_messages: u64,
    /// Wall-clock duration of the whole execution.
    pub elapsed: Duration,
    /// The canonical record of the run: what every process sent and
    /// had received when each round closed, plus crash rounds —
    /// replayable through the round models and exportable as an
    /// `ssp-sim` step trace.
    pub trace: RunTrace<M>,
}

struct ProcessReturn<V, M> {
    input: V,
    decision: Option<(V, Round)>,
    crashed_in: Option<Round>,
    pending_seen: u64,
    log: Vec<RoundObs<M>>,
}

enum AnyFd {
    Timeout(TimeoutFd),
    Oracle(OracleFd),
}

impl AnyFd {
    fn suspects(&self) -> ssp_model::ProcessSet {
        match self {
            AnyFd::Timeout(fd) => fd.suspects(),
            AnyFd::Oracle(fd) => fd.suspects(),
        }
    }
}

/// Runs `algo` on real threads. Returns the assembled outcome; a
/// process that exceeds the round timeout gives up undecided (visible
/// as a termination violation to the specification checkers).
///
/// # Panics
///
/// Panics if a worker thread panics or `config.crashes` has the wrong
/// length.
#[must_use]
pub fn run_threaded<V, A>(
    algo: &A,
    config: &InitialConfig<V>,
    t: usize,
    runtime: RuntimeConfig,
) -> ThreadedOutcome<V, <A::Process as RoundProcess>::Msg>
where
    V: Value + Sync,
    A: RoundAlgorithm<V>,
    A::Process: Send + 'static,
    <A::Process as RoundProcess>::Msg: Send + 'static,
{
    let n = config.n();
    assert_eq!(runtime.crashes.len(), n, "one crash slot per process");
    let horizon = algo.round_horizon(n, t);
    let (net_tx, net_rxs) =
        spawn_network::<RoundWire<<A::Process as RoundProcess>::Msg>>(n, runtime.net.clone());

    let board = HeartbeatBoard::new(n);
    let oracle = match &runtime.notify_script {
        Some(script) => Oracle::scripted(n, script.clone()),
        None => Oracle::new(
            n,
            match runtime.fd {
                FdFlavor::Oracle { min_notify, .. } => min_notify,
                _ => Duration::ZERO,
            },
            match runtime.fd {
                FdFlavor::Oracle { max_notify, .. } => max_notify,
                _ => Duration::ZERO,
            },
            runtime.net.seed,
        ),
    };

    let started = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for me in all_processes(n) {
        let proc_ = algo.spawn(me, n, t, config.input(me).clone());
        let input = config.input(me).clone();
        let rx = net_rxs[me.index()].clone();
        let tx = net_tx.clone();
        let fd = match runtime.fd {
            FdFlavor::Timeout { timeout } => {
                AnyFd::Timeout(TimeoutFd::new(Arc::clone(&board), timeout, me))
            }
            FdFlavor::Oracle { .. } => AnyFd::Oracle(oracle.module(me)),
        };
        let board = Arc::clone(&board);
        let oracle = Arc::clone(&oracle);
        let crash = runtime.crashes[me.index()];
        let policy = runtime.policy;
        let round_timeout = runtime.round_timeout;
        handles.push(
            std::thread::Builder::new()
                .name(format!("ssp-{me}"))
                .spawn(move || {
                    worker(
                        proc_,
                        input,
                        me,
                        n,
                        horizon,
                        rx,
                        tx,
                        fd,
                        board,
                        oracle,
                        crash,
                        policy,
                        round_timeout,
                    )
                })
                .expect("spawn worker"),
        );
    }
    drop(net_tx);

    let mut outcomes = Vec::with_capacity(n);
    let mut pending_total = 0;
    let mut logs = Vec::with_capacity(n);
    let mut crash_rounds = Vec::with_capacity(n);
    for h in handles {
        let r: ProcessReturn<V, <A::Process as RoundProcess>::Msg> =
            h.join().expect("worker thread panicked");
        pending_total += r.pending_seen;
        logs.push(r.log);
        // Clamp post-horizon crash rounds to the round-model limit.
        crash_rounds.push(r.crashed_in.map(|c| c.min(Round::new(horizon + 1))));
        outcomes.push(ProcessOutcome {
            input: r.input,
            decision: r.decision,
            crashed_in: r.crashed_in,
        });
    }
    ThreadedOutcome {
        outcome: ConsensusOutcome::new(outcomes),
        pending_messages: pending_total,
        elapsed: started.elapsed(),
        trace: RunTrace {
            n,
            horizon,
            rs: matches!(runtime.policy, SyncPolicy::Rs { .. }),
            logs,
            crashes: crash_rounds,
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn worker<P>(
    mut proc_: P,
    input: P::Value,
    me: ProcessId,
    n: usize,
    horizon: u32,
    rx: NetReceiver<RoundWire<P::Msg>>,
    tx: NetSender<RoundWire<P::Msg>>,
    fd: AnyFd,
    board: Arc<HeartbeatBoard>,
    oracle: Arc<Oracle>,
    crash: Option<ThreadCrash>,
    policy: SyncPolicy,
    round_timeout: Duration,
) -> ProcessReturn<P::Value, P::Msg>
where
    P: RoundProcess,
    P::Msg: Send + 'static,
{
    let crash_now = |r: u32| {
        board.silence(me);
        oracle.report_crash(me);
        let _ = r;
    };
    let mut future: Vec<(u32, ProcessId, Option<P::Msg>)> = Vec::new();
    let mut pending_seen = 0u64;
    let mut log: Vec<RoundObs<P::Msg>> = Vec::with_capacity(horizon as usize);

    for r in 1..=horizon {
        board.beat(me);
        // --- send phase ---
        let mut sent: Vec<Option<Option<P::Msg>>> = vec![None; n];
        let mut self_payload: Option<Option<P::Msg>> = None;
        for (slot, q) in all_processes(n).enumerate() {
            if let Some(c) = crash {
                if c.round == r && slot >= c.after_sends {
                    crash_now(r);
                    log.push(RoundObs {
                        sent,
                        received: None,
                    });
                    return ProcessReturn {
                        input,
                        decision: proc_.decision(),
                        crashed_in: Some(Round::new(r)),
                        pending_seen,
                        log,
                    };
                }
            }
            let payload = proc_.msgs(Round::new(r), q);
            sent[q.index()] = Some(payload.clone());
            if q == me {
                self_payload = Some(payload);
            } else {
                tx.send(me, q, RoundWire { round: r, payload });
            }
        }
        if let Some(c) = crash {
            // `after_sends ≥ n` means "crash during round r after the
            // full broadcast, before applying trans".
            if c.round == r && c.after_sends >= n {
                crash_now(r);
                log.push(RoundObs {
                    sent,
                    received: None,
                });
                return ProcessReturn {
                    input,
                    decision: proc_.decision(),
                    crashed_in: Some(Round::new(r)),
                    pending_seen,
                    log,
                };
            }
        }
        // --- collect phase ---
        let mut got: Vec<Option<Option<P::Msg>>> = vec![None; n];
        got[me.index()] = Some(self_payload.unwrap_or(None));
        // Absorb early arrivals stashed in previous rounds.
        future.retain(|(fr, src, payload)| {
            if *fr == r {
                got[src.index()] = Some(payload.clone());
                false
            } else {
                true
            }
        });
        let deadline = Instant::now() + round_timeout;
        let mut missing_since: Vec<Option<Instant>> = vec![None; n];
        loop {
            board.beat(me);
            let suspects = fd.suspects();
            let now = Instant::now();
            let ready = all_processes(n).all(|q| {
                if got[q.index()].is_some() {
                    return true;
                }
                if !suspects.contains(q) {
                    return false;
                }
                match policy {
                    SyncPolicy::Rws => true,
                    SyncPolicy::Rs { drain } => {
                        // Keep draining the link for `drain` after the
                        // suspicion before declaring the message absent.
                        let since = missing_since[q.index()].get_or_insert(now);
                        now.saturating_duration_since(*since) >= drain
                    }
                }
            });
            if ready {
                break;
            }
            if now > deadline {
                // Liveness failure: give up undecided. The incomplete
                // round (without a crash) makes the trace inadmissible,
                // which is exactly what conformance should report.
                log.push(RoundObs {
                    sent,
                    received: None,
                });
                return ProcessReturn {
                    input,
                    decision: proc_.decision(),
                    crashed_in: None,
                    pending_seen,
                    log,
                };
            }
            if let Ok(env) = rx.recv_timeout(Duration::from_micros(500)) {
                let wire = env.payload;
                if wire.round == r {
                    got[env.src.index()] = Some(wire.payload);
                } else if wire.round > r {
                    future.push((wire.round, env.src, wire.payload));
                } else {
                    pending_seen += 1; // arrived after its round closed
                }
            }
        }
        log.push(RoundObs {
            sent,
            received: Some(got.clone()),
        });
        let received: Vec<Option<P::Msg>> = got.into_iter().map(Option::flatten).collect();
        proc_.trans(Round::new(r), &received);
    }

    // Post-horizon scripted crash ("decide then crash").
    let crashed_in = crash.map(|c| {
        debug_assert!(c.round > horizon, "in-horizon crashes return earlier");
        crash_now(c.round);
        Round::new(c.round)
    });
    if crashed_in.is_none() {
        // Keep beating briefly so laggards don't suspect us while they finish.
        board.beat(me);
    }
    ProcessReturn {
        input,
        decision: proc_.decision(),
        crashed_in,
        pending_seen,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_algos::{FloodSet, FloodSetWs, A1};
    use ssp_model::{check_uniform_consensus, check_uniform_consensus_strong};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn failure_free_a1_decides_round_1_on_threads() {
        let config = InitialConfig::new(vec![4u64, 9, 2]);
        let result = run_threaded(&A1, &config, 1, RuntimeConfig::ss_flavor(3, 42));
        check_uniform_consensus_strong(&result.outcome).unwrap();
        assert_eq!(result.outcome.latency_degree(), Some(1));
        assert_eq!(result.pending_messages, 0);
    }

    #[test]
    fn floodset_with_mid_round_crash_on_threads() {
        let config = InitialConfig::new(vec![0u64, 3, 5]);
        let runtime = RuntimeConfig::ss_flavor(3, 7).with_crash(
            p(0),
            ThreadCrash {
                round: 1,
                after_sends: 2, // reaches itself and p2, not p3
            },
        );
        let result = run_threaded(&FloodSet, &config, 1, runtime);
        check_uniform_consensus_strong(&result.outcome).unwrap();
        assert_eq!(result.outcome.outcome(p(0)).crashed_in, Some(Round::FIRST));
        // p2 saw the 0 in round 1 and floods it in round 2.
        for q in [p(1), p(2)] {
            assert_eq!(result.outcome.outcome(q).decision.as_ref().unwrap().0, 0);
        }
    }

    #[test]
    fn a1_uniformity_breaks_on_threads_under_sp_flavor() {
        // The §5.3 scenario in real time: p1 broadcasts with its links
        // slowed to 2s, decides on its own value, crashes; the oracle
        // tells the others quickly; they decide p2's value. Real
        // pending messages, real disagreement.
        let n = 3;
        let config = InitialConfig::new(vec![10u64, 11, 12]);
        let net = NetConfig::bounded(Duration::from_millis(2), 9).with_sender_delay(
            p(0),
            n,
            Duration::from_secs(2),
        );
        let runtime = RuntimeConfig::sp_flavor(n, 9).with_net(net).with_crash(
            p(0),
            ThreadCrash {
                round: 2,
                after_sends: 0,
            },
        );
        let result = run_threaded(&A1, &config, 1, runtime);
        // p1 decided its own value (self-delivery is internal, instant).
        assert_eq!(
            result.outcome.outcome(p(0)).decision.as_ref().map(|d| d.0),
            Some(10)
        );
        // Survivors went with p2's fallback value.
        for q in [p(1), p(2)] {
            assert_eq!(
                result.outcome.outcome(q).decision.as_ref().map(|d| d.0),
                Some(11)
            );
        }
        assert!(check_uniform_consensus(&result.outcome).is_err());
    }

    #[test]
    fn floodset_ws_survives_the_same_sp_adversary() {
        let n = 3;
        let config = InitialConfig::new(vec![10u64, 11, 12]);
        let net = NetConfig::bounded(Duration::from_millis(2), 9).with_sender_delay(
            p(0),
            n,
            Duration::from_secs(2),
        );
        let runtime = RuntimeConfig::sp_flavor(n, 9).with_net(net).with_crash(
            p(0),
            ThreadCrash {
                round: 2,
                after_sends: 0,
            },
        );
        let result = run_threaded(&FloodSetWs, &config, 1, runtime);
        check_uniform_consensus(&result.outcome).unwrap();
    }
}
