//! Canonical records of threaded runs, replayable against the round
//! models and exportable as `ssp-sim` step traces.
//!
//! Every [`crate::RuntimeBuilder`] execution assembles a [`RunTrace`]
//! from the per-worker logs: what each process sent (including
//! explicit null wires), what it had received when each of its rounds
//! closed, and where it crashed. From that single artifact the
//! conformance layer derives all three views the checker stack
//! understands:
//!
//! * a [`CrashSchedule`] + [`PendingChoice`] pair — the round-model
//!   adversary that *this* wall-clock run realized, replayable
//!   tick-for-tick through `ssp_rounds::run_rws_traced`;
//! * a [`RoundTrace`] of observed deliveries, comparable with the
//!   replay's trace matrix-for-matrix;
//! * an `ssp-sim` step [`Trace`] (via [`RunTrace::step_log`] and
//!   [`Trace::from_run_log`]), checkable by the §2 validators
//!   (`validate_basic`, `validate_perfect_fd`);
//! * the canonical round-level [`RunLog`] itself
//!   ([`RunTrace::run_log`]), whose projection onto delivery events
//!   diffs directly against a replay's log.
//!
//! [`RunTrace::validate`] certifies internal admissibility: complete
//! logs, message integrity across matching send/receive cells, no
//! pending messages under `RS`, and Lemma 4.1 for every pending
//! message under `RWS`. A run the synchrony watchdog *degraded*
//! ([`RunTrace::degraded_at`]) forfeits its `RS` claim and is
//! validated under the `RWS` discipline instead — a violated Δ voids
//! round synchrony for the whole run, not just the rounds after the
//! violation. An [`RunTrace::aborted`] run is not a run at all and
//! never validates.

use core::fmt;
use std::collections::BTreeMap;

use crate::net::NetStats;
use ssp_model::events::{DeliveryMatrix, StepStamp};
use ssp_model::{ProcessId, ProcessSet, Round, RunEvent, RunLog, StepIndex, Time};
use ssp_rounds::{
    validate_pending, CrashSchedule, PendingChoice, PendingError, RoundCrash, RoundRecord,
    RoundTrace,
};

/// One process's observation of one round.
///
/// `sent[dst]` is `None` when no wire was emitted to `dst` (the crash
/// cut off that slot), `Some(None)` for an explicit null wire, and
/// `Some(Some(m))` for a payload. The self slot records the internal
/// self-delivery. `received` is `None` when the process died (or gave
/// up) before the round closed; otherwise `received[src]` uses the
/// same encoding for what had arrived by close time.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundObs<M> {
    /// Per-destination wires emitted this round.
    pub sent: Vec<Option<Option<M>>>,
    /// Per-sender wires present when the round closed, if it closed.
    pub received: Option<Vec<Option<Option<M>>>>,
}

/// Why a [`RunTrace`] is not an admissible run of its round model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunTraceError {
    /// A correct process's log does not cover the full horizon, or a
    /// crashed process's log length disagrees with its crash round.
    WrongLogLength {
        /// The process.
        process: ProcessId,
        /// Rounds its log should cover.
        expected: usize,
        /// Rounds it actually covers.
        got: usize,
    },
    /// A non-final round (or a correct process's round) never closed.
    IncompleteRound {
        /// The process.
        process: ProcessId,
        /// The round that did not close.
        round: Round,
    },
    /// A receive cell disagrees with the matching send cell.
    PayloadMismatch {
        /// The round.
        round: Round,
        /// The sender.
        sender: ProcessId,
        /// The receiver whose cell disagrees.
        receiver: ProcessId,
    },
    /// A receiver closed a round without a wire from a process that
    /// never crashed — the detector suspected a live process.
    FalseSuspicion {
        /// The suspecting receiver.
        observer: ProcessId,
        /// The live process it gave up on.
        suspect: ProcessId,
        /// The round it closed without the wire.
        round: Round,
    },
    /// The run executed under `RS` but produced a pending message.
    PendingInRs {
        /// The withheld round.
        round: Round,
        /// The sender.
        sender: ProcessId,
        /// The receiver.
        receiver: ProcessId,
    },
    /// The pending messages violate weak round synchrony (Lemma 4.1).
    Pending(PendingError),
    /// No event order realizes the recorded observations (only
    /// possible for hand-built traces; real runs are acyclic).
    Unschedulable {
        /// A process whose next event could never be enabled.
        process: ProcessId,
    },
    /// The watchdog aborted the run: the logs are deliberately cut
    /// short and certify nothing.
    AbortedRun,
}

impl fmt::Display for RunTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunTraceError::WrongLogLength {
                process,
                expected,
                got,
            } => write!(f, "{process} logged {got} rounds, expected {expected}"),
            RunTraceError::IncompleteRound { process, round } => {
                write!(
                    f,
                    "{process} never closed {round} (and did not crash there)"
                )
            }
            RunTraceError::PayloadMismatch {
                round,
                sender,
                receiver,
            } => write!(
                f,
                "{receiver}'s {round} cell for {sender} disagrees with what {sender} sent"
            ),
            RunTraceError::FalseSuspicion {
                observer,
                suspect,
                round,
            } => write!(
                f,
                "{observer} closed {round} without {suspect}'s wire, but {suspect} never crashed"
            ),
            RunTraceError::PendingInRs {
                round,
                sender,
                receiver,
            } => write!(
                f,
                "pending {sender}→{receiver} at {round} under RS (round synchrony forbids it)"
            ),
            RunTraceError::Pending(e) => write!(f, "{e}"),
            RunTraceError::Unschedulable { process } => {
                write!(f, "no event order realizes the trace ({process} is stuck)")
            }
            RunTraceError::AbortedRun => {
                write!(
                    f,
                    "the watchdog aborted the run; the trace certifies nothing"
                )
            }
        }
    }
}

impl std::error::Error for RunTraceError {}

impl From<PendingError> for RunTraceError {
    fn from(e: PendingError) -> Self {
        RunTraceError::Pending(e)
    }
}

/// The canonical record of one threaded run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace<M> {
    /// Number of processes.
    pub n: usize,
    /// The algorithm's round horizon.
    pub horizon: u32,
    /// Whether the run executed under [`crate::SyncPolicy::Rs`].
    pub rs: bool,
    /// `logs[p]` — process `p`'s per-round observations, round order.
    pub logs: Vec<Vec<RoundObs<M>>>,
    /// Crash rounds, clamped to `horizon + 1` (the round-model limit
    /// for "decide then crash").
    pub crashes: Vec<Option<Round>>,
    /// `retired[p]` — the round at whose start process `p` *retired*
    /// under the early-close fast path: already decided, it burst-sent
    /// its wires for every remaining round and stopped receiving (see
    /// [`crate::RuntimeConfig::early_close`]). Its log still covers the
    /// full horizon, but rounds at or after the retire round record
    /// `received: None` without a crash. `None` for processes that ran
    /// every round to completion.
    pub retired: Vec<Option<Round>>,
    /// The round in which the synchrony watchdog downgraded the run to
    /// `RWS` semantics, if it did. A degraded run validates under the
    /// `RWS` discipline regardless of [`Self::rs`].
    pub degraded_at: Option<Round>,
    /// Whether the watchdog aborted the run (logs deliberately cut
    /// short; nothing to certify).
    pub aborted: bool,
    /// Transport counters of the run (chaos drops/dups, retransmits,
    /// late and stranded wires).
    pub net: NetStats,
}

impl<M: Clone + fmt::Debug + PartialEq> RunTrace<M> {
    /// The round-model crash schedule this run realized: each victim
    /// crashes in its recorded round, delivering exactly to the slots
    /// its log shows wires for.
    #[must_use]
    pub fn schedule(&self) -> CrashSchedule {
        let mut schedule = CrashSchedule::none(self.n);
        for (i, crash) in self.crashes.iter().enumerate() {
            let Some(round) = crash else { continue };
            let p = ProcessId::new(i);
            let sends_to = if round.get() > self.horizon {
                ProcessSet::full(self.n)
            } else {
                self.logs[i]
                    .get((round.get() - 1) as usize)
                    .map(|obs| {
                        (0..self.n)
                            .filter(|&q| obs.sent[q].is_some())
                            .map(ProcessId::new)
                            .collect()
                    })
                    .unwrap_or_else(ProcessSet::empty)
            };
            schedule.crash(
                p,
                RoundCrash {
                    round: *round,
                    sends_to,
                },
            );
        }
        schedule
    }

    /// The pending-message choice this run realized: every wire that
    /// was emitted but absent from its receiver's closed round.
    #[must_use]
    pub fn pending(&self) -> PendingChoice {
        let mut pending = PendingChoice::none();
        for (q, log) in self.logs.iter().enumerate() {
            for (ri, obs) in log.iter().enumerate() {
                let Some(row) = &obs.received else { continue };
                let round = Round::new(ri as u32 + 1);
                for (p, cell) in row.iter().enumerate() {
                    if p == q || cell.is_some() {
                        continue;
                    }
                    let emitted = self.logs[p]
                        .get(ri)
                        .is_some_and(|sobs| sobs.sent[q].is_some());
                    if emitted {
                        pending.withhold(round, ProcessId::new(p), ProcessId::new(q));
                    }
                }
            }
        }
        pending
    }

    /// The canonical round-level [`RunLog`] of this run, in the exact
    /// emission order of the `ssp-rounds` executors: per round,
    /// `Crash` events (ascending process), `Deliver` events
    /// receiver-major over the flattened matrices, `Withhold` events
    /// for wires emitted but absent from their receiver's closed row,
    /// and a lockstep `Close` carrying the heard matrix; then
    /// post-horizon `Crash` events, the watchdog's `Degrade` (in its
    /// round), and a final `Abort` if the run was cut short.
    ///
    /// Because the order matches the executors' by construction,
    /// conformance is a projected
    /// [`first_divergence`](RunLog::first_divergence) between this log
    /// and the replay's.
    #[must_use]
    pub fn run_log(&self) -> RunLog<M> {
        let mut log = RunLog::new(self.n);
        for r in 1..=self.horizon {
            let round = Round::new(r);
            let ri = (r - 1) as usize;
            for (p, crash) in self.crashes.iter().enumerate() {
                if *crash == Some(round) {
                    log.push(RunEvent::Crash {
                        process: ProcessId::new(p),
                        round: Some(round),
                        time: None,
                    });
                }
            }
            let mut heard = DeliveryMatrix::empty(self.n);
            for (q, qlog) in self.logs.iter().enumerate() {
                let row = qlog.get(ri).and_then(|obs| obs.received.as_ref());
                let Some(row) = row else { continue };
                for (p, cell) in row.iter().enumerate() {
                    if let Some(m) = cell.clone().flatten() {
                        heard.insert(ProcessId::new(q), ProcessId::new(p));
                        log.push(RunEvent::Deliver {
                            src: ProcessId::new(p),
                            dst: ProcessId::new(q),
                            round: Some(round),
                            sent_at: None,
                            payload: Some(m),
                        });
                    }
                }
            }
            for (q, qlog) in self.logs.iter().enumerate() {
                let row = qlog.get(ri).and_then(|obs| obs.received.as_ref());
                let Some(row) = row else { continue };
                for (p, cell) in row.iter().enumerate() {
                    if p == q || cell.is_some() {
                        continue;
                    }
                    let emitted = self.logs[p]
                        .get(ri)
                        .is_some_and(|sobs| sobs.sent[q].is_some());
                    if emitted {
                        log.push(RunEvent::Withhold {
                            round,
                            src: ProcessId::new(p),
                            dst: ProcessId::new(q),
                        });
                    }
                }
            }
            log.push(RunEvent::Close {
                round: Some(round),
                process: None,
                stamp: None,
                heard,
            });
            if self.degraded_at == Some(round) {
                log.push(RunEvent::Degrade { round });
            }
        }
        for (p, crash) in self.crashes.iter().enumerate() {
            if let Some(round) = crash {
                if round.get() > self.horizon {
                    log.push(RunEvent::Crash {
                        process: ProcessId::new(p),
                        round: Some(*round),
                        time: None,
                    });
                }
            }
        }
        if self.aborted {
            log.push(RunEvent::Abort);
        }
        log
    }

    /// The per-round delivery matrices, in the convention of
    /// [`ssp_rounds::run_rws_traced`]: a crashed (or unclosed)
    /// receiver's row is all-`None`, and null wires flatten to `None`.
    #[must_use]
    pub fn round_trace(&self) -> RoundTrace<M> {
        let mut trace = RoundTrace::new();
        for r in 1..=self.horizon {
            let mut deliveries: Vec<Vec<Option<M>>> = vec![vec![None; self.n]; self.n];
            for (q, log) in self.logs.iter().enumerate() {
                let Some(obs) = log.get((r - 1) as usize) else {
                    continue;
                };
                let Some(row) = &obs.received else { continue };
                deliveries[q] = row.iter().map(|c| c.clone().flatten()).collect();
            }
            trace.push(RoundRecord {
                round: Round::new(r),
                deliveries,
            });
        }
        trace
    }

    /// Certifies that the trace is an admissible run of its model.
    ///
    /// Checks, in order: log shapes against crash rounds; round
    /// completeness (a round may stay open only in its owner's crash
    /// round or at/after its owner's retire round); message integrity
    /// (each received cell equals the matching sent cell); detector
    /// accuracy (a round closed without a wire only when the sender
    /// crashed); and the pending-message discipline — none under `RS`,
    /// Lemma 4.1 under `RWS`.
    ///
    /// Whether the run still holds its `RS` claim: executed under `RS`
    /// and never degraded.
    #[must_use]
    pub fn effective_rs(&self) -> bool {
        self.rs && self.degraded_at.is_none()
    }

    /// # Errors
    ///
    /// Returns the first inadmissibility found.
    pub fn validate(&self) -> Result<(), RunTraceError> {
        if self.aborted {
            return Err(RunTraceError::AbortedRun);
        }
        for p in 0..self.n {
            let pid = ProcessId::new(p);
            let expected = match self.crashes[p] {
                Some(r) if r.get() <= self.horizon => r.get() as usize,
                _ => self.horizon as usize,
            };
            if self.logs[p].len() != expected {
                return Err(RunTraceError::WrongLogLength {
                    process: pid,
                    expected,
                    got: self.logs[p].len(),
                });
            }
            for (ri, obs) in self.logs[p].iter().enumerate() {
                let round = Round::new(ri as u32 + 1);
                let in_crash_round = self.crashes[p].is_some_and(|c| c.get() as usize == ri + 1);
                let retired = self.retired[p].is_some_and(|rr| rr.get() as usize <= ri + 1);
                if obs.received.is_none() && !in_crash_round && !retired {
                    return Err(RunTraceError::IncompleteRound {
                        process: pid,
                        round,
                    });
                }
            }
        }
        // Message integrity + detector accuracy.
        for (q, log) in self.logs.iter().enumerate() {
            for (ri, obs) in log.iter().enumerate() {
                let Some(row) = &obs.received else { continue };
                let round = Round::new(ri as u32 + 1);
                for (p, cell) in row.iter().enumerate() {
                    if p == q {
                        continue;
                    }
                    match cell {
                        Some(wire) => {
                            let sent = self.logs[p].get(ri).and_then(|s| s.sent[q].as_ref());
                            if sent != Some(wire) {
                                return Err(RunTraceError::PayloadMismatch {
                                    round,
                                    sender: ProcessId::new(p),
                                    receiver: ProcessId::new(q),
                                });
                            }
                        }
                        None => {
                            if self.crashes[p].is_none() {
                                return Err(RunTraceError::FalseSuspicion {
                                    observer: ProcessId::new(q),
                                    suspect: ProcessId::new(p),
                                    round,
                                });
                            }
                        }
                    }
                }
            }
        }
        let pending = self.pending();
        if self.effective_rs() {
            if let Some(&(round, sender, receiver)) = pending.triples().first() {
                return Err(RunTraceError::PendingInRs {
                    round,
                    sender,
                    receiver,
                });
            }
        } else {
            validate_pending(&self.schedule(), &pending)?;
        }
        Ok(())
    }

    /// Exports the run as a canonical *step-level* [`RunLog`]: one
    /// `Send`+`Close` step per emitted wire (payload `None` is an
    /// explicit null wire), one receive step per closed round
    /// (`Deliver`s, a `Suspect` reading for the wires given up on, a
    /// stamped `Close`), crash events in a realizable order, and a
    /// final flush step per correct process delivering whatever was
    /// still in flight (messages to correct processes are received
    /// *eventually* — pending just means "after its round").
    ///
    /// The [`Trace`] view of the result satisfies
    /// `ssp_sim::validate_basic` and `ssp_sim::validate_perfect_fd`
    /// for every admissible run.
    ///
    /// # Errors
    ///
    /// Returns [`RunTraceError::Unschedulable`] if no event order
    /// realizes the logs (impossible for traces recorded from real
    /// runs).
    pub fn step_log(&self) -> Result<RunLog<Option<M>>, RunTraceError> {
        enum Ev {
            /// Send the round-`r` wire to `dst`.
            Send {
                r: usize,
                dst: usize,
            },
            /// Close round `r` (deliver its row, suspect the missing).
            Recv {
                r: usize,
            },
            Crash,
        }
        let n = self.n;
        let mut queues: Vec<Vec<Ev>> = Vec::with_capacity(n);
        for p in 0..n {
            let mut q = Vec::new();
            for (ri, obs) in self.logs[p].iter().enumerate() {
                for dst in 0..n {
                    if dst != p && obs.sent[dst].is_some() {
                        q.push(Ev::Send { r: ri, dst });
                    }
                }
                if obs.received.is_some() {
                    q.push(Ev::Recv { r: ri });
                }
            }
            if self.crashes[p].is_some() {
                q.push(Ev::Crash);
            }
            queues.push(q);
        }

        let mut log: RunLog<Option<M>> = RunLog::new(n);
        let mut time = 0u64;
        let mut gstep = 0u64;
        let mut own = vec![0u64; n];
        let mut next = vec![0usize; n];
        let mut crashed = vec![false; n];
        // (round, src, dst) → the send step's index and payload.
        let mut wires: BTreeMap<(usize, usize, usize), (StepIndex, Option<M>)> = BTreeMap::new();
        let mut delivered: Vec<(usize, usize, usize)> = Vec::new();

        loop {
            let mut progressed = false;
            for p in 0..n {
                while next[p] < queues[p].len() {
                    let ready = match &queues[p][next[p]] {
                        Ev::Send { .. } | Ev::Crash => true,
                        Ev::Recv { r } => {
                            let row = self.logs[p][*r].received.as_ref().expect("Recv queued");
                            (0..n).all(|src| {
                                src == p
                                    || if row[src].is_some() {
                                        wires.contains_key(&(*r, src, p))
                                    } else {
                                        crashed[src]
                                    }
                            })
                        }
                    };
                    if !ready {
                        break;
                    }
                    match &queues[p][next[p]] {
                        Ev::Send { r, dst } => {
                            let round = Round::new(*r as u32 + 1);
                            let payload = self.logs[p][*r].sent[*dst]
                                .clone()
                                .expect("Send queued for emitted wire");
                            let sent_at = StepIndex::new(gstep);
                            wires.insert((*r, p, *dst), (sent_at, payload.clone()));
                            log.push(RunEvent::Send {
                                src: ProcessId::new(p),
                                dst: ProcessId::new(*dst),
                                round: Some(round),
                                at: Some(sent_at),
                                payload: Some(payload),
                            });
                            log.push(RunEvent::Close {
                                round: Some(round),
                                process: Some(ProcessId::new(p)),
                                stamp: Some(StepStamp {
                                    time: Time::new(time),
                                    global_step: StepIndex::new(gstep),
                                    own_step: own[p],
                                }),
                                heard: DeliveryMatrix::step(ProcessSet::empty()),
                            });
                            gstep += 1;
                            own[p] += 1;
                        }
                        Ev::Recv { r } => {
                            let round = Round::new(*r as u32 + 1);
                            let row = self.logs[p][*r].received.as_ref().expect("Recv queued");
                            let mut heard = ProcessSet::empty();
                            let mut suspects = ProcessSet::empty();
                            for src in 0..n {
                                if src == p {
                                    continue;
                                }
                                if row[src].is_some() {
                                    let (sent_at, payload) = wires[&(*r, src, p)].clone();
                                    delivered.push((*r, src, p));
                                    heard.insert(ProcessId::new(src));
                                    log.push(RunEvent::Deliver {
                                        src: ProcessId::new(src),
                                        dst: ProcessId::new(p),
                                        round: Some(round),
                                        sent_at: Some(sent_at),
                                        payload: Some(payload),
                                    });
                                } else {
                                    suspects.insert(ProcessId::new(src));
                                }
                            }
                            if !suspects.is_empty() {
                                log.push(RunEvent::Suspect {
                                    observer: ProcessId::new(p),
                                    suspected: suspects,
                                });
                            }
                            log.push(RunEvent::Close {
                                round: Some(round),
                                process: Some(ProcessId::new(p)),
                                stamp: Some(StepStamp {
                                    time: Time::new(time),
                                    global_step: StepIndex::new(gstep),
                                    own_step: own[p],
                                }),
                                heard: DeliveryMatrix::step(heard),
                            });
                            gstep += 1;
                            own[p] += 1;
                        }
                        Ev::Crash => {
                            log.push(RunEvent::Crash {
                                process: ProcessId::new(p),
                                round: self.crashes[p],
                                time: Some(Time::new(time)),
                            });
                            crashed[p] = true;
                        }
                    }
                    time += 1;
                    next[p] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        if let Some(p) = (0..n).find(|&p| next[p] < queues[p].len()) {
            return Err(RunTraceError::Unschedulable {
                process: ProcessId::new(p),
            });
        }

        // Flush: deliver everything still in flight to correct
        // processes in one final step each.
        let all_crashed: ProcessSet = (0..n)
            .filter(|&p| self.crashes[p].is_some())
            .map(ProcessId::new)
            .collect();
        for (p, crash) in self.crashes.iter().enumerate() {
            if crash.is_some() {
                continue;
            }
            let outstanding: Vec<(usize, usize, StepIndex, Option<M>)> = wires
                .iter()
                .filter(|(&(r, src, dst), _)| dst == p && !delivered.contains(&(r, src, dst)))
                .map(|(&(r, src, _), (sent_at, payload))| (r, src, *sent_at, payload.clone()))
                .collect();
            if outstanding.is_empty() {
                continue;
            }
            let mut heard = ProcessSet::empty();
            for (r, src, sent_at, payload) in outstanding {
                heard.insert(ProcessId::new(src));
                log.push(RunEvent::Deliver {
                    src: ProcessId::new(src),
                    dst: ProcessId::new(p),
                    round: Some(Round::new(r as u32 + 1)),
                    sent_at: Some(sent_at),
                    payload: Some(payload),
                });
            }
            if !all_crashed.is_empty() {
                log.push(RunEvent::Suspect {
                    observer: ProcessId::new(p),
                    suspected: all_crashed,
                });
            }
            log.push(RunEvent::Close {
                round: None,
                process: Some(ProcessId::new(p)),
                stamp: Some(StepStamp {
                    time: Time::new(time),
                    global_step: StepIndex::new(gstep),
                    own_step: own[p],
                }),
                heard: DeliveryMatrix::step(heard),
            });
            time += 1;
            gstep += 1;
            own[p] += 1;
        }
        Ok(log)
    }
}

impl<M: Clone + fmt::Debug + PartialEq> fmt::Display for RunTrace<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let retired = self.retired.iter().filter(|r| r.is_some()).count();
        writeln!(
            f,
            "run trace (n={} horizon={} model={}{}{}{})",
            self.n,
            self.horizon,
            if self.rs { "RS" } else { "RWS" },
            match self.degraded_at {
                Some(r) => format!(" degraded@{r}"),
                None => String::new(),
            },
            if retired > 0 {
                format!(" retired={retired}")
            } else {
                String::new()
            },
            if self.aborted { " ABORTED" } else { "" },
        )?;
        writeln!(f, "  {}", self.schedule())?;
        let pending = self.pending();
        if pending.is_empty() {
            writeln!(f, "  pending[none]")?;
        } else {
            write!(f, "  pending[")?;
            for (i, (r, s, q)) in pending.triples().iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{s}→{q}@{r}")?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_sim::Trace;

    fn obs(
        sent: Vec<Option<Option<u64>>>,
        received: Option<Vec<Option<Option<u64>>>>,
    ) -> RoundObs<u64> {
        RoundObs { sent, received }
    }

    /// n=2, horizon=1, failure-free: both broadcast and hear each other.
    fn clean_trace() -> RunTrace<u64> {
        RunTrace {
            n: 2,
            horizon: 1,
            rs: true,
            logs: vec![
                vec![obs(
                    vec![Some(Some(7)), Some(Some(7))],
                    Some(vec![Some(Some(7)), Some(Some(8))]),
                )],
                vec![obs(
                    vec![Some(Some(8)), Some(Some(8))],
                    Some(vec![Some(Some(7)), Some(Some(8))]),
                )],
            ],
            crashes: vec![None, None],
            retired: vec![None, None],
            degraded_at: None,
            aborted: false,
            net: NetStats::default(),
        }
    }

    /// n=2, horizon=1, RWS: p1's wire to p2 is pending, p1 crashes
    /// post-horizon.
    fn pending_trace() -> RunTrace<u64> {
        RunTrace {
            n: 2,
            horizon: 1,
            rs: false,
            logs: vec![
                vec![obs(
                    vec![Some(Some(7)), Some(Some(7))],
                    Some(vec![Some(Some(7)), Some(Some(8))]),
                )],
                vec![obs(
                    vec![Some(Some(8)), Some(Some(8))],
                    Some(vec![None, Some(Some(8))]),
                )],
            ],
            crashes: vec![Some(Round::new(2)), None],
            retired: vec![None, None],
            degraded_at: None,
            aborted: false,
            net: NetStats::default(),
        }
    }

    #[test]
    fn clean_trace_validates_and_exports() {
        let t = clean_trace();
        t.validate().unwrap();
        assert!(t.pending().is_empty());
        assert_eq!(t.schedule().fault_count(), 0);
        let steps = Trace::from_run_log(&t.step_log().unwrap());
        ssp_sim::validate_basic(&steps).unwrap();
        // 1 send + 1 recv per process.
        assert_eq!(steps.len(), 4);
    }

    #[test]
    fn pending_is_derived_and_lemma_checked() {
        let t = pending_trace();
        t.validate().unwrap();
        let pending = t.pending();
        assert_eq!(
            pending.triples(),
            &[(Round::FIRST, ProcessId::new(0), ProcessId::new(1))]
        );
        let steps = Trace::from_run_log(&t.step_log().unwrap());
        // The pending wire is flushed to the correct receiver at the end.
        ssp_sim::validate_basic(&steps).unwrap();
    }

    #[test]
    fn retired_rounds_may_stay_open() {
        // An open round is inadmissible for a running process…
        let mut t = clean_trace();
        t.logs[0][0].received = None;
        assert!(matches!(
            t.validate(),
            Err(RunTraceError::IncompleteRound { .. })
        ));
        // …but fine at/after the owner's retire round.
        t.retired[0] = Some(Round::FIRST);
        t.validate().unwrap();
        assert!(t.to_string().contains("retired=1"), "{t}");
    }

    #[test]
    fn rs_rejects_pending() {
        let mut t = pending_trace();
        t.rs = true;
        assert!(matches!(
            t.validate(),
            Err(RunTraceError::PendingInRs { .. })
        ));
    }

    #[test]
    fn degraded_rs_validates_as_rws() {
        // The same pending message that damns an RS trace is fine once
        // the watchdog downgraded the run (and Lemma 4.1 holds).
        let mut t = pending_trace();
        t.rs = true;
        t.degraded_at = Some(Round::FIRST);
        assert!(!t.effective_rs());
        t.validate().unwrap();
        let s = t.to_string();
        assert!(s.contains("degraded@round 1"), "{s}");
    }

    #[test]
    fn aborted_traces_certify_nothing() {
        let mut t = clean_trace();
        t.aborted = true;
        assert!(matches!(t.validate(), Err(RunTraceError::AbortedRun)));
        assert!(t.to_string().contains("ABORTED"));
    }

    #[test]
    fn false_suspicion_is_caught() {
        let mut t = pending_trace();
        t.crashes[0] = None; // sender "never crashed" — suspicion was wrong
                             // Fix the log length expectation: p1 is now correct with 1 round.
        assert!(matches!(
            t.validate(),
            Err(RunTraceError::FalseSuspicion { .. })
        ));
    }

    #[test]
    fn payload_mismatch_is_caught() {
        let mut t = clean_trace();
        t.logs[1][0].received.as_mut().unwrap()[0] = Some(Some(99));
        assert!(matches!(
            t.validate(),
            Err(RunTraceError::PayloadMismatch { .. })
        ));
    }

    #[test]
    fn wrong_log_length_is_caught() {
        let mut t = clean_trace();
        t.logs[0].clear();
        assert!(matches!(
            t.validate(),
            Err(RunTraceError::WrongLogLength { .. })
        ));
    }

    #[test]
    fn round_trace_flattens_null_wires() {
        let t = clean_trace();
        let rt = t.round_trace();
        assert_eq!(rt.len(), 1);
        assert!(rt.rounds()[0].heard(ProcessId::new(0), ProcessId::new(1)));
        assert_eq!(rt.total_delivered(), 4);
    }

    #[test]
    fn run_log_emits_canonical_delivery_core() {
        let t = pending_trace();
        let log = t.run_log();
        // p1's withheld wire to p2 shows up as a Withhold, its
        // post-horizon crash as a round-2 Crash.
        assert!(log.events().iter().any(|e| matches!(
            e,
            RunEvent::Withhold { round, src, dst }
                if *round == Round::FIRST && src.index() == 0 && dst.index() == 1
        )));
        assert!(log.events().iter().any(|e| matches!(
            e,
            RunEvent::Crash { process, round: Some(r), .. }
                if process.index() == 0 && r.get() == 2
        )));
        // The clean run's log has no withholds and diverges from the
        // pending run's at the first delivery difference.
        let clean = clean_trace().run_log();
        assert!(clean
            .events()
            .iter()
            .all(|e| !matches!(e, RunEvent::Withhold { .. })));
        assert!(clean.first_divergence(&log).is_some());
    }

    #[test]
    fn aborted_run_log_ends_with_abort() {
        let mut t = clean_trace();
        t.aborted = true;
        assert_eq!(t.run_log().events().last(), Some(&RunEvent::Abort));
    }

    #[test]
    fn display_summarizes_schedule_and_pending() {
        let s = pending_trace().to_string();
        assert!(s.contains("RWS"), "{s}");
        assert!(s.contains("pending[p1→p2@round 1]"), "{s}");
    }

    #[test]
    fn errors_display() {
        let e = RunTraceError::FalseSuspicion {
            observer: ProcessId::new(1),
            suspect: ProcessId::new(0),
            round: Round::FIRST,
        };
        assert!(e.to_string().contains("never crashed"));
    }
}
