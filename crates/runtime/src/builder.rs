//! The one front door of the threaded runtime: [`RuntimeBuilder`].
//!
//! Mirrors the `Verifier` builder of `ssp-lab`: construct with the
//! algorithm and the initial configuration, chain the knobs you care
//! about, and [`RuntimeBuilder::run`] the execution. Three sources of
//! fault configuration compose, in precedence order:
//!
//! 1. an explicit [`RuntimeConfig`] ([`RuntimeBuilder::runtime`]),
//!    used verbatim;
//! 2. an explicit [`FaultPlan`] ([`RuntimeBuilder::plan`]);
//! 3. otherwise a plan derived from [`RuntimeBuilder::seed`] under the
//!    configured model, chaos, and degrade mode — the fuzzing path.
//!
//! The clock backend defaults to [`Backend::Virtual`]: virtual-time
//! runs emit `RunLog`s byte-identical to real-clock runs (the backend
//! conformance suite pins this, seed by seed) while completing in
//! microseconds of wall time.

use ssp_model::{InitialConfig, Value};
use ssp_rounds::{RoundAlgorithm, RoundProcess};

use crate::clock::Backend;
use crate::driver::{run_on_backend, ConfigError, RuntimeConfig, ThreadedOutcome};
use crate::fd::DegradeMode;
use crate::net::ChaosConfig;
use crate::plan::{FaultPlan, PlanModel};

/// Builder for threaded runtime executions — the single entry point
/// that replaced the `run_threaded*` free functions.
///
/// ```
/// use ssp_runtime::{Backend, PlanModel, RuntimeBuilder};
/// use ssp_algos::A1;
/// use ssp_model::InitialConfig;
///
/// let config = InitialConfig::new(vec![4u64, 9, 2]);
/// let outcome = RuntimeBuilder::new(&A1, &config)
///     .t(1)
///     .model(PlanModel::Rs)
///     .seed(42)
///     .backend(Backend::Virtual)
///     .run()
///     .unwrap();
/// assert!(outcome.outcome.iter().all(|(_, o)| o.decision.is_some()));
/// ```
#[derive(Debug)]
pub struct RuntimeBuilder<'a, V, A> {
    algo: &'a A,
    config: &'a InitialConfig<V>,
    t: usize,
    model: PlanModel,
    seed: u64,
    chaos: Option<ChaosConfig>,
    degrade: DegradeMode,
    backend: Backend,
    early_close: bool,
    plan: Option<FaultPlan>,
    runtime: Option<RuntimeConfig>,
}

// Manual impl: a derived `Clone` would demand `V: Clone, A: Clone`,
// which the borrowed fields don't actually need.
impl<V, A> Clone for RuntimeBuilder<'_, V, A> {
    fn clone(&self) -> Self {
        RuntimeBuilder {
            algo: self.algo,
            config: self.config,
            t: self.t,
            model: self.model,
            seed: self.seed,
            chaos: self.chaos,
            degrade: self.degrade,
            backend: self.backend,
            early_close: self.early_close,
            plan: self.plan.clone(),
            runtime: self.runtime.clone(),
        }
    }
}

impl<'a, V, A> RuntimeBuilder<'a, V, A>
where
    V: Value + Sync,
    A: RoundAlgorithm<V>,
    A::Process: Send + 'static,
    <A::Process as RoundProcess>::Msg: Send + 'static,
{
    /// Starts a builder for `algo` over `config` with the defaults:
    /// `t = 1`, [`PlanModel::Rs`], seed 0, no chaos,
    /// [`DegradeMode::Off`], [`Backend::Virtual`], early close off.
    #[must_use]
    pub fn new(algo: &'a A, config: &'a InitialConfig<V>) -> Self {
        RuntimeBuilder {
            algo,
            config,
            t: 1,
            model: PlanModel::Rs,
            seed: 0,
            chaos: None,
            degrade: DegradeMode::Off,
            backend: Backend::Virtual,
            early_close: false,
            plan: None,
            runtime: None,
        }
    }

    /// Sets the resilience bound `t` (number of tolerated crashes).
    #[must_use]
    pub fn t(mut self, t: usize) -> Self {
        self.t = t;
        self
    }

    /// Sets the round model seeded plans are derived for.
    #[must_use]
    pub fn model(mut self, model: PlanModel) -> Self {
        self.model = model;
        self
    }

    /// Sets the fault-plan seed (ignored when an explicit plan or
    /// runtime configuration is supplied).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds (or removes) transport chaos on the seeded-plan path.
    #[must_use]
    pub fn chaos(mut self, chaos: Option<ChaosConfig>) -> Self {
        self.chaos = chaos;
        self
    }

    /// Sets the watchdog's degradation mode on the seeded-plan path.
    #[must_use]
    pub fn degrade(mut self, degrade: DegradeMode) -> Self {
        self.degrade = degrade;
        self
    }

    /// Selects the clock backend (default [`Backend::Virtual`]).
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Enables the early-close fast path on the plan and seed paths
    /// (no-op for algorithms that do not retire after deciding).
    #[must_use]
    pub fn early_close(mut self, on: bool) -> Self {
        self.early_close = on;
        self
    }

    /// Runs this exact fault plan instead of deriving one from the
    /// seed.
    #[must_use]
    pub fn plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Runs this exact runtime configuration, verbatim — the highest-
    /// precedence source; seed, model, chaos, degrade, and early-close
    /// knobs are ignored.
    #[must_use]
    pub fn runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// The algorithm under execution.
    #[must_use]
    pub fn algo(&self) -> &'a A {
        self.algo
    }

    /// The initial configuration under execution.
    #[must_use]
    pub fn config(&self) -> &'a InitialConfig<V> {
        self.config
    }

    /// The configured resilience bound.
    #[must_use]
    pub fn t_bound(&self) -> usize {
        self.t
    }

    /// The configured round model.
    #[must_use]
    pub fn plan_model(&self) -> PlanModel {
        self.model
    }

    /// The configured clock backend.
    #[must_use]
    pub fn backend_choice(&self) -> Backend {
        self.backend
    }

    /// The fault plan this builder would execute: the explicit plan if
    /// one was set, otherwise the seed-derived plan with chaos and
    /// degrade applied. (An explicit [`RuntimeBuilder::runtime`] has no
    /// plan representation; this still returns the seeded plan.)
    #[must_use]
    pub fn effective_plan(&self) -> FaultPlan {
        if let Some(plan) = &self.plan {
            return plan.clone();
        }
        let n = self.config.n();
        let horizon = self.algo.round_horizon(n, self.t);
        let mut plan = FaultPlan::from_seed(self.seed, n, self.t, horizon, self.model);
        if let Some(chaos) = self.chaos {
            plan = plan.with_chaos(chaos);
        }
        plan.with_degrade(self.degrade)
    }

    /// Executes the run on the configured backend.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] found by [`RuntimeConfig::validate`].
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn run(self) -> Result<ThreadedOutcome<V, <A::Process as RoundProcess>::Msg>, ConfigError> {
        let runtime = match self.runtime {
            Some(rt) => rt,
            None => self
                .effective_plan()
                .runtime_config()
                .with_early_close(self.early_close),
        };
        run_on_backend(self.algo, self.config, self.t, runtime, self.backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_algos::A1;
    use ssp_model::check_uniform_consensus_strong;
    use ssp_rounds::RoundAlgorithm;

    #[test]
    fn builder_defaults_run_failure_free_rs() {
        let config = InitialConfig::new(vec![4u64, 9, 2]);
        let result = RuntimeBuilder::new(&A1, &config).seed(0).run().unwrap();
        check_uniform_consensus_strong(&result.outcome).unwrap();
        assert_eq!(result.pending_messages, 0);
    }

    #[test]
    fn explicit_plan_beats_the_seed() {
        let config = InitialConfig::new(vec![10u64, 11, 12]);
        let b = RuntimeBuilder::new(&A1, &config)
            .seed(7)
            .plan(FaultPlan::section_5_3());
        assert_eq!(
            b.effective_plan().to_string(),
            FaultPlan::section_5_3().to_string(),
            "the explicit plan wins over the seed"
        );
    }

    #[test]
    fn seeded_plan_reflects_model_and_horizon() {
        let config = InitialConfig::new(vec![1u64, 2, 3]);
        let horizon = RoundAlgorithm::<u64>::round_horizon(&A1, 3, 1);
        let b = RuntimeBuilder::new(&A1, &config)
            .model(PlanModel::Rws)
            .seed(98);
        assert_eq!(
            b.effective_plan().to_string(),
            FaultPlan::from_seed(98, 3, 1, horizon, PlanModel::Rws).to_string()
        );
    }

    #[test]
    fn invalid_runtime_is_a_typed_error() {
        let config = InitialConfig::new(vec![4u64, 9, 2]);
        let mut bad = RuntimeConfig::ss_flavor(3, 1);
        bad.policy = crate::driver::SyncPolicy::Rs {
            drain: core::time::Duration::ZERO,
        };
        let err = RuntimeBuilder::new(&A1, &config)
            .runtime(bad)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("drain"), "{err}");
    }
}
