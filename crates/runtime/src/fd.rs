//! Failure detection for the threaded runtime.
//!
//! Two implementations of the perfect detector `P`, mirroring the two
//! models:
//!
//! * [`TimeoutFd`] — the `SS` way (§3): every live process refreshes a
//!   shared heartbeat timestamp as it runs; an observer suspects a
//!   peer whose heartbeat is staler than the timeout. Perfect *given*
//!   the bounded-delay assumption (timeout > max scheduling +
//!   heartbeat gap) — exactly the synchrony premise of `SS`.
//! * [`OracleFd`] — the `SP` way: crashes are reported to an oracle,
//!   which notifies each observer after a finite but arbitrary,
//!   per-observer delay. Never wrong, always eventually complete, and
//!   completely silent about in-flight messages — which is why `SP`
//!   rounds are only *weakly* synchronous.
//!
//! Both detectors are *perfect only while the synchrony premise
//! holds*. The [`SynchronyMonitor`] is the runtime's watchdog for that
//! premise: the network and driver report bound violations (a wire
//! scheduled or delivered beyond the claimed Δ, a live process
//! suspected) and the monitor drives the degradation state machine —
//! keep going unsoundly ([`DegradeMode::Off`], the run is *flagged*),
//! downgrade the round discipline to `RWS` ([`DegradeMode::Rws`]), or
//! abort the run ([`DegradeMode::Abort`]). The [`CrashLedger`] is the
//! harness's ground truth of who actually crashed, which is what lets
//! the watchdog tell a detector *mistake* (suspecting the live) apart
//! from ordinary crash detection.

use core::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ssp_model::{ProcessId, ProcessSet, Round};

use crate::clock::{Clock, Tick};

/// A failure-detector module handle: query-able suspicion set.
pub trait FdModule: Send {
    /// The current suspicion set, as seen by this observer.
    fn suspects(&self) -> ProcessSet;
}

/// Shared heartbeat board for [`TimeoutFd`].
#[derive(Debug)]
pub struct HeartbeatBoard {
    clock: Clock,
    /// Last-beat time per process, in microseconds on the board's
    /// clock. `u64::MAX` marks a process that has announced its own
    /// crash (stops beating immediately).
    beats: Vec<AtomicU64>,
}

impl HeartbeatBoard {
    /// Creates a board for `n` processes, all freshly beating, stamped
    /// on `clock`.
    #[must_use]
    pub fn new(n: usize, clock: Clock) -> Arc<Self> {
        Arc::new(HeartbeatBoard {
            clock,
            beats: (0..n).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    fn now_micros(&self) -> u64 {
        self.clock.now().as_micros()
    }

    /// Records a heartbeat for `p` (call frequently from `p`'s thread).
    pub fn beat(&self, p: ProcessId) {
        let now = self.now_micros();
        let cell = &self.beats[p.index()];
        if cell.load(Ordering::Relaxed) != u64::MAX {
            cell.store(now, Ordering::Relaxed);
        }
    }

    /// Marks `p` as crashed: it stops beating forever.
    pub fn silence(&self, p: ProcessId) {
        self.beats[p.index()].store(u64::MAX, Ordering::Relaxed);
    }
}

/// Timeout-based perfect failure detection over a [`HeartbeatBoard`].
#[derive(Debug, Clone)]
pub struct TimeoutFd {
    board: Arc<HeartbeatBoard>,
    timeout: Duration,
    me: ProcessId,
}

impl TimeoutFd {
    /// Creates the module for observer `me` with the given timeout.
    ///
    /// The timeout must exceed the worst-case heartbeat gap (beat
    /// interval + scheduling jitter) for the detector to be accurate —
    /// this is the `SS` synchrony assumption in wall-clock form.
    #[must_use]
    pub fn new(board: Arc<HeartbeatBoard>, timeout: Duration, me: ProcessId) -> Self {
        TimeoutFd { board, timeout, me }
    }
}

impl FdModule for TimeoutFd {
    fn suspects(&self) -> ProcessSet {
        let now = self.board.now_micros();
        let timeout = self.timeout.as_micros() as u64;
        let mut s = ProcessSet::empty();
        for (i, beat) in self.board.beats.iter().enumerate() {
            let p = ProcessId::new(i);
            if p == self.me {
                continue;
            }
            let b = beat.load(Ordering::Relaxed);
            if b == u64::MAX || now.saturating_sub(b) > timeout {
                s.insert(p);
            }
        }
        s
    }
}

/// Last-arrival board for [`StalenessFd`]: the socket transport's
/// replacement for the shared-memory [`HeartbeatBoard`], which cannot
/// cross a process boundary. Every frame *received* from a peer —
/// heartbeat or data — refreshes that peer's mark; nothing else does.
/// In particular, connection state is invisible here: a reset, a
/// refused reconnect, or a closed socket never touches the board, so
/// suspicion can only arise from the PFD timeout elapsing without
/// traffic — exactly the §3 discipline, and the opposite of the
/// "suspect on disconnect" mistake the paper warns against.
#[derive(Debug)]
pub struct LastSeenBoard {
    origin: std::time::Instant,
    /// Last frame arrival per peer, microseconds since `origin`. Zero
    /// (the construction instant) gives every peer a full timeout of
    /// startup grace before it can be suspected.
    marks: Vec<AtomicU64>,
}

impl LastSeenBoard {
    /// A board for `n` processes, all marked as just seen.
    #[must_use]
    pub fn new(n: usize) -> Arc<Self> {
        Arc::new(LastSeenBoard {
            origin: std::time::Instant::now(),
            marks: (0..n).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Records that a frame from `p` just arrived.
    pub fn mark(&self, p: ProcessId) {
        self.marks[p.index()].store(self.now_micros(), Ordering::Relaxed);
    }

    /// How long ago the last frame from `p` arrived.
    #[must_use]
    pub fn staleness(&self, p: ProcessId) -> Duration {
        let mark = self.marks[p.index()].load(Ordering::Relaxed);
        Duration::from_micros(self.now_micros().saturating_sub(mark))
    }
}

/// Timeout-based perfect failure detection over a [`LastSeenBoard`]:
/// the `SS` detector for the socket transport. Suspects exactly the
/// peers whose last frame is older than the timeout; perfect given the
/// synchrony premise (heartbeat interval + one-way delay + scheduling
/// jitter all inside the timeout), which is the socket deployment's Δ
/// assumption — and what the online [`SynchronyMonitor`] guards.
#[derive(Debug, Clone)]
pub struct StalenessFd {
    board: Arc<LastSeenBoard>,
    timeout: Duration,
    me: ProcessId,
}

impl StalenessFd {
    /// Creates the module for observer `me` with the given timeout.
    #[must_use]
    pub fn new(board: Arc<LastSeenBoard>, timeout: Duration, me: ProcessId) -> Self {
        StalenessFd { board, timeout, me }
    }
}

impl FdModule for StalenessFd {
    fn suspects(&self) -> ProcessSet {
        let mut s = ProcessSet::empty();
        for i in 0..self.board.marks.len() {
            let p = ProcessId::new(i);
            if p != self.me && self.board.staleness(p) > self.timeout {
                s.insert(p);
            }
        }
        s
    }
}

/// Shared state of the crash oracle.
#[derive(Debug, Default)]
struct OracleState {
    /// For each crashed process: when each observer learns of it.
    notifications: Vec<(ProcessId, Vec<Tick>)>,
}

/// The crash oracle backing [`OracleFd`] modules.
#[derive(Debug)]
pub struct Oracle {
    n: usize,
    clock: Clock,
    state: Mutex<OracleState>,
    min_notify: Duration,
    max_notify: Duration,
    seed: AtomicU64,
    /// Scripted notification delays, `script[crasher][observer]`.
    /// When present, `report_crash` uses these instead of random draws
    /// — the fault-injection plane's deterministic suspicion timing.
    script: Option<Vec<Vec<Duration>>>,
}

impl Oracle {
    /// Creates an oracle whose per-observer notification delays are
    /// drawn uniformly from `[min_notify, max_notify]` on `clock`.
    #[must_use]
    pub fn new(
        n: usize,
        min_notify: Duration,
        max_notify: Duration,
        seed: u64,
        clock: Clock,
    ) -> Arc<Self> {
        Arc::new(Oracle {
            n,
            clock,
            state: Mutex::new(OracleState::default()),
            min_notify,
            max_notify,
            seed: AtomicU64::new(seed),
            script: None,
        })
    }

    /// Creates an oracle with a fully scripted notification matrix:
    /// when process `p` crashes, observer `q` learns of it exactly
    /// `script[p][q]` after the report. Used by the fault-injection
    /// plane to make `SP` suspicion timing seed-deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the script is not an `n × n` matrix.
    #[must_use]
    pub fn scripted(n: usize, script: Vec<Vec<Duration>>, clock: Clock) -> Arc<Self> {
        assert_eq!(script.len(), n, "one script row per crasher");
        assert!(
            script.iter().all(|row| row.len() == n),
            "one delay per observer"
        );
        Arc::new(Oracle {
            n,
            clock,
            state: Mutex::new(OracleState::default()),
            min_notify: Duration::ZERO,
            max_notify: Duration::ZERO,
            seed: AtomicU64::new(0),
            script: Some(script),
        })
    }

    /// Reports that `p` has crashed; observers will start suspecting it
    /// after their individual delays.
    pub fn report_crash(&self, p: ProcessId) {
        let now = self.clock.now();
        let delays: Vec<Tick> = if let Some(script) = &self.script {
            script[p.index()].iter().map(|d| now + *d).collect()
        } else {
            let mut rng = StdRng::seed_from_u64(self.seed.fetch_add(1, Ordering::Relaxed));
            let span = self.max_notify.saturating_sub(self.min_notify).as_micros() as u64;
            (0..self.n)
                .map(|_| {
                    let extra = if span == 0 {
                        0
                    } else {
                        rng.gen_range(0..=span)
                    };
                    now + self.min_notify + Duration::from_micros(extra)
                })
                .collect()
        };
        self.state.lock().notifications.push((p, delays));
    }

    /// The module handle for observer `me`.
    #[must_use]
    pub fn module(self: &Arc<Self>, me: ProcessId) -> OracleFd {
        OracleFd {
            oracle: Arc::clone(self),
            me,
        }
    }
}

/// Oracle-backed perfect failure detection (the `SP` flavour).
#[derive(Debug, Clone)]
pub struct OracleFd {
    oracle: Arc<Oracle>,
    me: ProcessId,
}

impl FdModule for OracleFd {
    fn suspects(&self) -> ProcessSet {
        let now = self.oracle.clock.now();
        let state = self.oracle.state.lock();
        let mut s = ProcessSet::empty();
        for (p, delays) in &state.notifications {
            if delays[self.me.index()] <= now {
                s.insert(*p);
            }
        }
        s
    }
}

/// Ground truth about crashes, maintained by the harness itself (a
/// process marks itself just before going silent). Detectors never
/// read it — it exists so the watchdog can classify a suspicion of a
/// *live* process as a detector mistake rather than a crash.
#[derive(Debug)]
pub struct CrashLedger {
    crashed: Vec<AtomicBool>,
}

impl CrashLedger {
    /// A ledger for `n` processes, all alive.
    #[must_use]
    pub fn new(n: usize) -> Arc<Self> {
        Arc::new(CrashLedger {
            crashed: (0..n).map(|_| AtomicBool::new(false)).collect(),
        })
    }

    /// Records that `p` has actually crashed.
    pub fn mark(&self, p: ProcessId) {
        self.crashed[p.index()].store(true, Ordering::SeqCst);
    }

    /// Whether `p` has actually crashed.
    #[must_use]
    pub fn crashed(&self, p: ProcessId) -> bool {
        self.crashed[p.index()].load(Ordering::SeqCst)
    }

    /// Number of processes marked crashed.
    #[must_use]
    pub fn crash_count(&self) -> usize {
        self.crashed
            .iter()
            .filter(|c| c.load(Ordering::SeqCst))
            .count()
    }
}

/// What an `RS` run does when the watchdog catches a synchrony-bound
/// violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradeMode {
    /// Keep running under `RS` rules. The run is *flagged* — its
    /// verdict is a `SynchronyViolation`, never an `RS` certificate —
    /// but the anomaly (e.g. the §5.3 disagreement) is left to unfold.
    #[default]
    Off,
    /// Downgrade the round discipline to `RWS` (close on suspicion
    /// alone; in-flight messages become pending). The paper's Δ no
    /// longer holds, so the `SS → RS` construction of §3 is forfeit,
    /// but `RWS` — which never relied on Δ — still is realized.
    Rws,
    /// Stop every process immediately; the run ends undecided with an
    /// aborted verdict.
    Abort,
}

impl fmt::Display for DegradeMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeMode::Off => write!(f, "off"),
            DegradeMode::Rws => write!(f, "rws"),
            DegradeMode::Abort => write!(f, "abort"),
        }
    }
}

/// A synchrony-bound violation (or detector mistake) observed at
/// runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynchronyEvent {
    /// The network assigned a wire a delay beyond the claimed Δ — the
    /// injector itself is violating the bound. Detected at scheduling
    /// time (harness omniscience: the fault plane knows its own
    /// delays), so degradation can react before the wire is missed.
    SlowWireScheduled {
        /// Sender.
        src: ProcessId,
        /// Receiver.
        dst: ProcessId,
        /// Round carried by the wire (per-link wire index + 1).
        round: Round,
        /// The assigned delay.
        delay: Duration,
    },
    /// A wire was delivered later than the claimed Δ after submission.
    LateDelivery {
        /// Sender.
        src: ProcessId,
        /// Receiver.
        dst: ProcessId,
        /// Observed submission-to-delivery latency.
        latency: Duration,
    },
    /// A wire with an over-Δ delay was still undelivered when the
    /// network shut down (it was pending for the whole run).
    UndeliveredAtShutdown {
        /// Sender.
        src: ProcessId,
        /// Receiver.
        dst: ProcessId,
        /// Round carried by the wire.
        round: Round,
    },
    /// An observer's detector suspected a process the ledger says is
    /// alive — the detector made a *mistake*, which a perfect detector
    /// never does while the bounds hold (§3).
    DetectorMistake {
        /// The observer whose detector erred.
        observer: ProcessId,
        /// The live process it suspected.
        suspect: ProcessId,
        /// The round in which the mistake was acted on.
        round: Round,
    },
    /// A message arrived after its round had closed at the receiver
    /// while the run was (still) claiming `RS` — round synchrony was
    /// already broken when the round closed.
    PendingUnderRs {
        /// Sender.
        src: ProcessId,
        /// Receiver.
        dst: ProcessId,
        /// The round the late wire belonged to.
        wire_round: Round,
        /// The receiver's round when it arrived.
        observed_in: Round,
    },
}

impl SynchronyEvent {
    /// The round this violation first affects (used as the degradation
    /// round when the event triggers a downgrade).
    #[must_use]
    pub fn round(&self) -> Round {
        match self {
            SynchronyEvent::SlowWireScheduled { round, .. }
            | SynchronyEvent::UndeliveredAtShutdown { round, .. }
            | SynchronyEvent::DetectorMistake { round, .. } => *round,
            SynchronyEvent::LateDelivery { .. } => Round::FIRST,
            SynchronyEvent::PendingUnderRs { wire_round, .. } => *wire_round,
        }
    }
}

impl fmt::Display for SynchronyEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynchronyEvent::SlowWireScheduled {
                src,
                dst,
                round,
                delay,
            } => write!(
                f,
                "wire {src}→{dst}@{round} scheduled with delay {delay:?} beyond Δ"
            ),
            SynchronyEvent::LateDelivery { src, dst, latency } => {
                write!(f, "wire {src}→{dst} delivered {latency:?} after send (> Δ)")
            }
            SynchronyEvent::UndeliveredAtShutdown { src, dst, round } => {
                write!(f, "wire {src}→{dst}@{round} still in flight at shutdown")
            }
            SynchronyEvent::DetectorMistake {
                observer,
                suspect,
                round,
            } => write!(
                f,
                "{observer} suspected live {suspect} in {round} (detector mistake)"
            ),
            SynchronyEvent::PendingUnderRs {
                src,
                dst,
                wire_round,
                observed_in,
            } => write!(
                f,
                "{src}→{dst}@{wire_round} arrived pending in {observed_in} under RS"
            ),
        }
    }
}

const STATE_OK: u8 = 0;
const STATE_DEGRADED: u8 = 1;
const STATE_ABORTED: u8 = 2;
const ROUND_UNSET: u32 = u32::MAX;

/// The synchrony watchdog: collects [`SynchronyEvent`]s from the
/// network and the drivers, and — when armed — drives the degradation
/// state machine `Ok → Degraded | Aborted` according to its
/// [`DegradeMode`].
///
/// A disarmed monitor (the `RWS` flavour, which never claimed Δ)
/// still records events for diagnostics but never flags a violation
/// and never transitions.
#[derive(Debug)]
pub struct SynchronyMonitor {
    armed: bool,
    delta: Duration,
    mode: DegradeMode,
    state: AtomicU8,
    degraded_round: AtomicU32,
    violated: AtomicBool,
    events: Mutex<Vec<SynchronyEvent>>,
}

impl SynchronyMonitor {
    /// An armed watchdog claiming delivery bound `delta`, reacting to
    /// violations per `mode`.
    #[must_use]
    pub fn armed(delta: Duration, mode: DegradeMode) -> Arc<Self> {
        Arc::new(SynchronyMonitor {
            armed: true,
            delta,
            mode,
            state: AtomicU8::new(STATE_OK),
            degraded_round: AtomicU32::new(ROUND_UNSET),
            violated: AtomicBool::new(false),
            events: Mutex::new(Vec::new()),
        })
    }

    /// A disarmed monitor: records nothing as a violation (used for
    /// `RWS` runs, which claim no delivery bound).
    #[must_use]
    pub fn disarmed() -> Arc<Self> {
        Arc::new(SynchronyMonitor {
            armed: false,
            delta: Duration::MAX,
            mode: DegradeMode::Off,
            state: AtomicU8::new(STATE_OK),
            degraded_round: AtomicU32::new(ROUND_UNSET),
            violated: AtomicBool::new(false),
            events: Mutex::new(Vec::new()),
        })
    }

    /// Whether this monitor enforces a bound.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// The claimed delivery bound Δ (transport-level: includes the
    /// reliable layer's retransmit budget).
    #[must_use]
    pub fn delta(&self) -> Duration {
        self.delta
    }

    /// Reports a violation. When armed, marks the run violated and
    /// transitions the state machine per the configured mode; the
    /// event's [`SynchronyEvent::round`] becomes the degradation round
    /// if this event is the first trigger.
    pub fn record(&self, event: SynchronyEvent) {
        let round = event.round();
        self.events.lock().push(event);
        if !self.armed {
            return;
        }
        self.violated.store(true, Ordering::SeqCst);
        match self.mode {
            DegradeMode::Off => {}
            DegradeMode::Rws => {
                if self
                    .state
                    .compare_exchange(STATE_OK, STATE_DEGRADED, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    self.degraded_round.store(round.get(), Ordering::SeqCst);
                }
            }
            DegradeMode::Abort => {
                self.state.store(STATE_ABORTED, Ordering::SeqCst);
            }
        }
    }

    /// Whether any violation has been recorded while armed.
    #[must_use]
    pub fn violated(&self) -> bool {
        self.violated.load(Ordering::SeqCst)
    }

    /// Whether the run has downgraded to `RWS` semantics.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.state.load(Ordering::SeqCst) == STATE_DEGRADED
    }

    /// Whether the run has been aborted.
    #[must_use]
    pub fn aborted(&self) -> bool {
        self.state.load(Ordering::SeqCst) == STATE_ABORTED
    }

    /// The round from which `RWS` semantics applied, if degraded.
    #[must_use]
    pub fn degraded_at(&self) -> Option<Round> {
        match self.degraded_round.load(Ordering::SeqCst) {
            ROUND_UNSET => None,
            r => Some(Round::new(r)),
        }
    }

    /// Snapshot of everything the watchdog saw.
    #[must_use]
    pub fn report(&self) -> SynchronyReport {
        SynchronyReport {
            events: self.events.lock().clone(),
            violated: self.violated(),
            degraded_at: self.degraded_at(),
            aborted: self.aborted(),
        }
    }
}

/// The watchdog's verdict on one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SynchronyReport {
    /// Every violation observed, in arrival order.
    pub events: Vec<SynchronyEvent>,
    /// Whether the claimed bound was violated (armed monitors only).
    pub violated: bool,
    /// The round from which the run executed under `RWS` semantics.
    pub degraded_at: Option<Round>,
    /// Whether the run was aborted.
    pub aborted: bool,
}

impl SynchronyReport {
    /// A violated, un-degraded, un-aborted run: it kept claiming `RS`
    /// while the bound was broken, so it must never be certified.
    #[must_use]
    pub fn flagged(&self) -> bool {
        self.violated && self.degraded_at.is_none() && !self.aborted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn timeout_fd_suspects_silent_process() {
        let board = HeartbeatBoard::new(2, Clock::real());
        let fd = TimeoutFd::new(Arc::clone(&board), Duration::from_millis(20), p(0));
        board.beat(p(1));
        assert!(fd.suspects().is_empty());
        std::thread::sleep(Duration::from_millis(40));
        assert!(fd.suspects().contains(p(1)), "stale heartbeat ⇒ suspected");
        // A fresh beat clears the suspicion (the process was only slow —
        // which the SS bound forbids, but the module is defensive).
        board.beat(p(1));
        assert!(!fd.suspects().contains(p(1)));
    }

    #[test]
    fn silence_is_permanent() {
        let board = HeartbeatBoard::new(2, Clock::real());
        let fd = TimeoutFd::new(Arc::clone(&board), Duration::from_millis(10), p(0));
        board.silence(p(1));
        board.beat(p(1)); // ignored after silence
        assert!(fd.suspects().contains(p(1)));
    }

    #[test]
    fn observer_does_not_suspect_itself() {
        let board = HeartbeatBoard::new(1, Clock::real());
        let fd = TimeoutFd::new(board, Duration::from_millis(1), p(0));
        std::thread::sleep(Duration::from_millis(5));
        assert!(fd.suspects().is_empty());
    }

    #[test]
    fn oracle_notifies_after_delay() {
        let oracle = Oracle::new(
            2,
            Duration::from_millis(30),
            Duration::from_millis(30),
            5,
            Clock::real(),
        );
        let fd = oracle.module(p(1));
        oracle.report_crash(p(0));
        assert!(fd.suspects().is_empty(), "not yet notified");
        std::thread::sleep(Duration::from_millis(60));
        assert!(fd.suspects().contains(p(0)));
    }

    #[test]
    fn scripted_oracle_uses_exact_delays() {
        // p1's crash: p2 learns immediately, p3 only after 80ms.
        let script = vec![
            vec![Duration::ZERO; 3],
            vec![Duration::ZERO; 3],
            vec![Duration::ZERO; 3],
        ];
        let mut script = script;
        script[0][2] = Duration::from_millis(80);
        let oracle = Oracle::scripted(3, script, Clock::real());
        let fast = oracle.module(p(1));
        let slow = oracle.module(p(2));
        oracle.report_crash(p(0));
        std::thread::sleep(Duration::from_millis(10));
        assert!(fast.suspects().contains(p(0)), "scripted zero delay");
        assert!(!slow.suspects().contains(p(0)), "scripted 80ms delay");
        std::thread::sleep(Duration::from_millis(100));
        assert!(slow.suspects().contains(p(0)));
    }

    #[test]
    fn oracle_never_suspects_unreported() {
        let oracle = Oracle::new(3, Duration::ZERO, Duration::ZERO, 5, Clock::real());
        let fd = oracle.module(p(0));
        assert!(fd.suspects().is_empty());
    }

    #[test]
    fn ledger_tracks_ground_truth() {
        let ledger = CrashLedger::new(3);
        assert_eq!(ledger.crash_count(), 0);
        assert!(!ledger.crashed(p(1)));
        ledger.mark(p(1));
        assert!(ledger.crashed(p(1)));
        assert_eq!(ledger.crash_count(), 1);
    }

    #[test]
    fn starved_heartbeat_is_a_detector_mistake_not_a_crash() {
        // A live process stops beating past the timeout: the detector
        // *must* suspect it (that is the SS rule) — and because the
        // ledger says it never crashed, the watchdog must classify the
        // suspicion as a mistake.
        let board = HeartbeatBoard::new(2, Clock::real());
        let fd = TimeoutFd::new(Arc::clone(&board), Duration::from_millis(20), p(0));
        let ledger = CrashLedger::new(2);
        let monitor = SynchronyMonitor::armed(Duration::from_millis(20), DegradeMode::Off);
        board.beat(p(1));
        assert!(fd.suspects().is_empty(), "bound not yet violated");
        std::thread::sleep(Duration::from_millis(40));
        assert!(
            fd.suspects().contains(p(1)),
            "suspected exactly when the bound is violated"
        );
        assert!(!ledger.crashed(p(1)), "but it never crashed");
        monitor.record(SynchronyEvent::DetectorMistake {
            observer: p(0),
            suspect: p(1),
            round: Round::FIRST,
        });
        let report = monitor.report();
        assert!(report.violated);
        assert!(report.flagged(), "mode off: flagged, not degraded");
        assert!(matches!(
            report.events[0],
            SynchronyEvent::DetectorMistake { suspect, .. } if suspect == p(1)
        ));
    }

    #[test]
    fn monitor_degrades_once_at_the_first_violation_round() {
        let monitor = SynchronyMonitor::armed(Duration::from_millis(50), DegradeMode::Rws);
        assert!(!monitor.degraded());
        monitor.record(SynchronyEvent::SlowWireScheduled {
            src: p(0),
            dst: p(1),
            round: Round::new(2),
            delay: Duration::from_secs(1),
        });
        monitor.record(SynchronyEvent::LateDelivery {
            src: p(0),
            dst: p(1),
            latency: Duration::from_secs(1),
        });
        assert!(monitor.degraded());
        assert!(!monitor.aborted());
        assert_eq!(monitor.degraded_at(), Some(Round::new(2)), "first trigger");
        let report = monitor.report();
        assert_eq!(report.events.len(), 2);
        assert!(!report.flagged(), "degraded runs are not merely flagged");
    }

    #[test]
    fn monitor_aborts_in_abort_mode() {
        let monitor = SynchronyMonitor::armed(Duration::from_millis(50), DegradeMode::Abort);
        monitor.record(SynchronyEvent::UndeliveredAtShutdown {
            src: p(1),
            dst: p(0),
            round: Round::FIRST,
        });
        assert!(monitor.aborted());
        assert!(!monitor.degraded());
        assert!(monitor.report().aborted);
    }

    #[test]
    fn disarmed_monitor_records_but_never_flags() {
        let monitor = SynchronyMonitor::disarmed();
        monitor.record(SynchronyEvent::PendingUnderRs {
            src: p(0),
            dst: p(1),
            wire_round: Round::FIRST,
            observed_in: Round::new(2),
        });
        assert!(!monitor.violated());
        assert!(!monitor.degraded());
        assert_eq!(monitor.report().events.len(), 1, "kept for diagnostics");
    }

    #[test]
    fn events_display() {
        let e = SynchronyEvent::DetectorMistake {
            observer: p(0),
            suspect: p(1),
            round: Round::FIRST,
        };
        assert!(e.to_string().contains("mistake"), "{e}");
        let e = SynchronyEvent::SlowWireScheduled {
            src: p(0),
            dst: p(1),
            round: Round::FIRST,
            delay: SLOW_FOR_DISPLAY,
        };
        assert!(e.to_string().contains("beyond Δ"), "{e}");
        assert_eq!(DegradeMode::Rws.to_string(), "rws");
    }

    const SLOW_FOR_DISPLAY: Duration = Duration::from_millis(600);
}
