//! Failure detection for the threaded runtime.
//!
//! Two implementations of the perfect detector `P`, mirroring the two
//! models:
//!
//! * [`TimeoutFd`] — the `SS` way (§3): every live process refreshes a
//!   shared heartbeat timestamp as it runs; an observer suspects a
//!   peer whose heartbeat is staler than the timeout. Perfect *given*
//!   the bounded-delay assumption (timeout > max scheduling +
//!   heartbeat gap) — exactly the synchrony premise of `SS`.
//! * [`OracleFd`] — the `SP` way: crashes are reported to an oracle,
//!   which notifies each observer after a finite but arbitrary,
//!   per-observer delay. Never wrong, always eventually complete, and
//!   completely silent about in-flight messages — which is why `SP`
//!   rounds are only *weakly* synchronous.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ssp_model::{ProcessId, ProcessSet};

/// A failure-detector module handle: query-able suspicion set.
pub trait FdModule: Send {
    /// The current suspicion set, as seen by this observer.
    fn suspects(&self) -> ProcessSet;
}

/// Shared heartbeat board for [`TimeoutFd`].
#[derive(Debug)]
pub struct HeartbeatBoard {
    epoch: Instant,
    /// Last-beat time per process, in microseconds since `epoch`.
    /// `u64::MAX` marks a process that has announced its own crash
    /// (stops beating immediately).
    beats: Vec<AtomicU64>,
}

impl HeartbeatBoard {
    /// Creates a board for `n` processes, all freshly beating.
    #[must_use]
    pub fn new(n: usize) -> Arc<Self> {
        Arc::new(HeartbeatBoard {
            epoch: Instant::now(),
            beats: (0..n).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records a heartbeat for `p` (call frequently from `p`'s thread).
    pub fn beat(&self, p: ProcessId) {
        let now = self.now_micros();
        let cell = &self.beats[p.index()];
        if cell.load(Ordering::Relaxed) != u64::MAX {
            cell.store(now, Ordering::Relaxed);
        }
    }

    /// Marks `p` as crashed: it stops beating forever.
    pub fn silence(&self, p: ProcessId) {
        self.beats[p.index()].store(u64::MAX, Ordering::Relaxed);
    }
}

/// Timeout-based perfect failure detection over a [`HeartbeatBoard`].
#[derive(Debug, Clone)]
pub struct TimeoutFd {
    board: Arc<HeartbeatBoard>,
    timeout: Duration,
    me: ProcessId,
}

impl TimeoutFd {
    /// Creates the module for observer `me` with the given timeout.
    ///
    /// The timeout must exceed the worst-case heartbeat gap (beat
    /// interval + scheduling jitter) for the detector to be accurate —
    /// this is the `SS` synchrony assumption in wall-clock form.
    #[must_use]
    pub fn new(board: Arc<HeartbeatBoard>, timeout: Duration, me: ProcessId) -> Self {
        TimeoutFd { board, timeout, me }
    }
}

impl FdModule for TimeoutFd {
    fn suspects(&self) -> ProcessSet {
        let now = self.board.now_micros();
        let timeout = self.timeout.as_micros() as u64;
        let mut s = ProcessSet::empty();
        for (i, beat) in self.board.beats.iter().enumerate() {
            let p = ProcessId::new(i);
            if p == self.me {
                continue;
            }
            let b = beat.load(Ordering::Relaxed);
            if b == u64::MAX || now.saturating_sub(b) > timeout {
                s.insert(p);
            }
        }
        s
    }
}

/// Shared state of the crash oracle.
#[derive(Debug, Default)]
struct OracleState {
    /// For each crashed process: when each observer learns of it.
    notifications: Vec<(ProcessId, Vec<Instant>)>,
}

/// The crash oracle backing [`OracleFd`] modules.
#[derive(Debug)]
pub struct Oracle {
    n: usize,
    state: Mutex<OracleState>,
    min_notify: Duration,
    max_notify: Duration,
    seed: AtomicU64,
    /// Scripted notification delays, `script[crasher][observer]`.
    /// When present, `report_crash` uses these instead of random draws
    /// — the fault-injection plane's deterministic suspicion timing.
    script: Option<Vec<Vec<Duration>>>,
}

impl Oracle {
    /// Creates an oracle whose per-observer notification delays are
    /// drawn uniformly from `[min_notify, max_notify]`.
    #[must_use]
    pub fn new(n: usize, min_notify: Duration, max_notify: Duration, seed: u64) -> Arc<Self> {
        Arc::new(Oracle {
            n,
            state: Mutex::new(OracleState::default()),
            min_notify,
            max_notify,
            seed: AtomicU64::new(seed),
            script: None,
        })
    }

    /// Creates an oracle with a fully scripted notification matrix:
    /// when process `p` crashes, observer `q` learns of it exactly
    /// `script[p][q]` after the report. Used by the fault-injection
    /// plane to make `SP` suspicion timing seed-deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the script is not an `n × n` matrix.
    #[must_use]
    pub fn scripted(n: usize, script: Vec<Vec<Duration>>) -> Arc<Self> {
        assert_eq!(script.len(), n, "one script row per crasher");
        assert!(
            script.iter().all(|row| row.len() == n),
            "one delay per observer"
        );
        Arc::new(Oracle {
            n,
            state: Mutex::new(OracleState::default()),
            min_notify: Duration::ZERO,
            max_notify: Duration::ZERO,
            seed: AtomicU64::new(0),
            script: Some(script),
        })
    }

    /// Reports that `p` has crashed; observers will start suspecting it
    /// after their individual delays.
    pub fn report_crash(&self, p: ProcessId) {
        let now = Instant::now();
        let delays: Vec<Instant> = if let Some(script) = &self.script {
            script[p.index()].iter().map(|d| now + *d).collect()
        } else {
            let mut rng = StdRng::seed_from_u64(self.seed.fetch_add(1, Ordering::Relaxed));
            let span = self.max_notify.saturating_sub(self.min_notify).as_micros() as u64;
            (0..self.n)
                .map(|_| {
                    let extra = if span == 0 {
                        0
                    } else {
                        rng.gen_range(0..=span)
                    };
                    now + self.min_notify + Duration::from_micros(extra)
                })
                .collect()
        };
        self.state.lock().notifications.push((p, delays));
    }

    /// The module handle for observer `me`.
    #[must_use]
    pub fn module(self: &Arc<Self>, me: ProcessId) -> OracleFd {
        OracleFd {
            oracle: Arc::clone(self),
            me,
        }
    }
}

/// Oracle-backed perfect failure detection (the `SP` flavour).
#[derive(Debug, Clone)]
pub struct OracleFd {
    oracle: Arc<Oracle>,
    me: ProcessId,
}

impl FdModule for OracleFd {
    fn suspects(&self) -> ProcessSet {
        let now = Instant::now();
        let state = self.oracle.state.lock();
        let mut s = ProcessSet::empty();
        for (p, delays) in &state.notifications {
            if delays[self.me.index()] <= now {
                s.insert(*p);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn timeout_fd_suspects_silent_process() {
        let board = HeartbeatBoard::new(2);
        let fd = TimeoutFd::new(Arc::clone(&board), Duration::from_millis(20), p(0));
        board.beat(p(1));
        assert!(fd.suspects().is_empty());
        std::thread::sleep(Duration::from_millis(40));
        assert!(fd.suspects().contains(p(1)), "stale heartbeat ⇒ suspected");
        // A fresh beat clears the suspicion (the process was only slow —
        // which the SS bound forbids, but the module is defensive).
        board.beat(p(1));
        assert!(!fd.suspects().contains(p(1)));
    }

    #[test]
    fn silence_is_permanent() {
        let board = HeartbeatBoard::new(2);
        let fd = TimeoutFd::new(Arc::clone(&board), Duration::from_millis(10), p(0));
        board.silence(p(1));
        board.beat(p(1)); // ignored after silence
        assert!(fd.suspects().contains(p(1)));
    }

    #[test]
    fn observer_does_not_suspect_itself() {
        let board = HeartbeatBoard::new(1);
        let fd = TimeoutFd::new(board, Duration::from_millis(1), p(0));
        std::thread::sleep(Duration::from_millis(5));
        assert!(fd.suspects().is_empty());
    }

    #[test]
    fn oracle_notifies_after_delay() {
        let oracle = Oracle::new(2, Duration::from_millis(30), Duration::from_millis(30), 5);
        let fd = oracle.module(p(1));
        oracle.report_crash(p(0));
        assert!(fd.suspects().is_empty(), "not yet notified");
        std::thread::sleep(Duration::from_millis(60));
        assert!(fd.suspects().contains(p(0)));
    }

    #[test]
    fn scripted_oracle_uses_exact_delays() {
        // p1's crash: p2 learns immediately, p3 only after 80ms.
        let script = vec![
            vec![Duration::ZERO; 3],
            vec![Duration::ZERO; 3],
            vec![Duration::ZERO; 3],
        ];
        let mut script = script;
        script[0][2] = Duration::from_millis(80);
        let oracle = Oracle::scripted(3, script);
        let fast = oracle.module(p(1));
        let slow = oracle.module(p(2));
        oracle.report_crash(p(0));
        std::thread::sleep(Duration::from_millis(10));
        assert!(fast.suspects().contains(p(0)), "scripted zero delay");
        assert!(!slow.suspects().contains(p(0)), "scripted 80ms delay");
        std::thread::sleep(Duration::from_millis(100));
        assert!(slow.suspects().contains(p(0)));
    }

    #[test]
    fn oracle_never_suspects_unreported() {
        let oracle = Oracle::new(3, Duration::ZERO, Duration::ZERO, 5);
        let fd = oracle.module(p(0));
        assert!(fd.suspects().is_empty());
    }
}
