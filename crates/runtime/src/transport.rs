//! Wire format and robustness primitives for the TCP transport.
//!
//! The in-process network (`net.rs`) already implements the protocol
//! that matters — per-link sequence numbers, acks, capped-backoff
//! retransmits, receiver-side dedup. This module puts that protocol in
//! a byte form a socket can carry: length-prefixed [`Frame`]s with an
//! explicit epoch handshake, a typed [`TransportError`] taxonomy for
//! everything a real wire does that a channel cannot (refused
//! connections, mid-stream resets, stale peers, corrupt frames), and a
//! deterministic capped-exponential [`backoff_delay`] schedule for the
//! per-peer connection supervisors in `socket.rs`.
//!
//! Payloads are opaque byte strings: the round messages are encoded by
//! the caller (the engine's cluster module hand-rolls a codec for its
//! algorithm messages), so this layer needs no serialization framework
//! and no knowledge of round semantics. What it *does* carry per data
//! frame is the routing and accounting envelope — consensus instance,
//! round, per-link sequence number, attempt counter, and the sender's
//! wall-clock stamp that feeds the online synchrony guard.

use std::io::{self, Read, Write};
use std::time::Duration;

use ssp_model::ProcessId;

use crate::net::{roll, splitmix};

/// Hard cap on a frame body, guarding length-prefix corruption: a
/// mangled prefix must fail fast as [`TransportError::FrameCorrupt`],
/// not allocate gigabytes.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// First reconnect backoff step.
pub const BACKOFF_BASE: Duration = Duration::from_millis(25);

/// Backoff ceiling: attempts beyond the doubling range all wait this
/// long (plus jitter).
pub const BACKOFF_CAP: Duration = Duration::from_millis(800);

/// Maximum additive jitter rolled on top of the exponential step.
pub const BACKOFF_JITTER_MAX: Duration = Duration::from_millis(25);

const SALT_BACKOFF: u64 = 0xb0ff;

/// What went wrong on a socket, classified: supervisors choose their
/// reaction (reconnect, drop the frame, drop the peer) by variant, and
/// the counters in [`TransportStats`] keep the taxonomy observable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer's listener refused the connection (not up yet, or
    /// gone). The supervisor backs off and retries.
    Refused,
    /// An established connection died mid-stream (reset, EOF, broken
    /// pipe). The supervisor reconnects and resends unacked frames.
    Reset,
    /// The peer introduced itself with an epoch older than one already
    /// seen: a leftover process from a previous incarnation. The
    /// connection is dropped; no state changes.
    StaleEpoch {
        /// The stale epoch the peer presented.
        got: u64,
        /// The newest epoch already seen from that peer.
        latest: u64,
    },
    /// The byte stream does not parse as a frame (bad tag, oversized
    /// or truncated length prefix). The connection is dropped —
    /// resynchronizing an unframed TCP stream is not possible.
    FrameCorrupt(String),
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransportError::Refused => write!(f, "connection refused"),
            TransportError::Reset => write!(f, "connection reset"),
            TransportError::StaleEpoch { got, latest } => {
                write!(f, "stale epoch {got} (latest seen {latest})")
            }
            TransportError::FrameCorrupt(why) => write!(f, "corrupt frame: {why}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl TransportError {
    /// Classifies an I/O error from a connect or an established
    /// stream. Anything that is not a refusal is a reset: from the
    /// supervisor's point of view every mid-stream failure gets the
    /// same treatment (reconnect, resend unacked).
    #[must_use]
    pub fn from_io(err: &io::Error) -> Self {
        match err.kind() {
            io::ErrorKind::ConnectionRefused => TransportError::Refused,
            _ => TransportError::Reset,
        }
    }
}

/// One unit on the wire. Every frame is encoded as
/// `u32-LE body length ‖ body`, body = `tag byte ‖ fields` (all
/// integers little-endian).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// First frame on every connection: who is calling and which
    /// incarnation of it. Receivers drop connections whose epoch is
    /// older than the newest already seen from that peer
    /// ([`TransportError::StaleEpoch`]), so a wedged predecessor
    /// process cannot ghost-write into the current run.
    Hello {
        /// The connecting process.
        src: ProcessId,
        /// Monotone incarnation number of the sender process.
        epoch: u64,
    },
    /// A round message. `seq` is the per-sender sequence number that
    /// drives ack/retransmit/dedup; `attempt` is the retransmission
    /// count (0 = first send) so fault interposers can roll fresh
    /// decisions per attempt, exactly like `ChaosConfig`; and
    /// `sent_micros` is the sender's wall-clock stamp feeding the
    /// receiver's one-way-delay measurement against Δ.
    Data {
        /// Consensus instance the payload belongs to.
        instance: u64,
        /// Round within the instance.
        round: u32,
        /// Per-sender wire sequence number.
        seq: u64,
        /// Retransmission attempt, 0-based.
        attempt: u32,
        /// Sender wall clock, microseconds since the Unix epoch.
        sent_micros: u64,
        /// Opaque round-message bytes (caller-encoded).
        payload: Vec<u8>,
    },
    /// Acknowledges receipt of the sender's `seq` (cumulative per
    /// frame, not per range). Rides the acknowledging process's *own*
    /// outgoing connection to the original sender.
    Ack {
        /// The acknowledged [`Frame::Data`] sequence number.
        seq: u64,
    },
    /// Keep-alive for the failure detector: proof the sender was
    /// scheduled recently. Unsequenced, never retransmitted, never
    /// chaos-targeted.
    Heartbeat {
        /// Sender wall clock, microseconds since the Unix epoch.
        sent_micros: u64,
    },
    /// The sender's synchrony guard aborted the run (degrade mode
    /// `abort`): peers should halt the instance undecided rather than
    /// decide without the aborted process.
    Abort {
        /// The instance being abandoned.
        instance: u64,
    },
    /// An external client submits one command for replication. The
    /// `(client, req)` pair is the idempotency key: a gateway that has
    /// already decided it re-acks instead of re-admitting, so a client
    /// may resubmit across reconnects without double-applying.
    Submit {
        /// Client identity (client-chosen, stable across reconnects).
        client: u64,
        /// Client-local request number, monotone per client.
        req: u64,
        /// Opaque command bytes (caller-encoded, like [`Frame::Data`]).
        payload: Vec<u8>,
    },
    /// Gateway → client: the submission identified by `req` was decided
    /// by some consensus instance and applied to the store. `seq` is
    /// the deciding instance and `round` the round it decided in —
    /// the client-observed latency ledger for Theorem 5.2.
    ClientAck {
        /// The acknowledged [`Frame::Submit`] request number.
        req: u64,
        /// Consensus instance that decided the command.
        seq: u64,
        /// Round within that instance where the decision fell.
        round: u32,
    },
    /// Gateway → client: this node is not the current proposer (or does
    /// not own the command's shard group); retry against `group`.
    Redirect {
        /// The refused [`Frame::Submit`] request number.
        req: u64,
        /// Index of the node/group the client should target instead.
        group: u32,
    },
    /// Gateway → client: the admission queue is full. Back off for at
    /// least `retry_after_ms` before resubmitting.
    Busy {
        /// The refused [`Frame::Submit`] request number.
        req: u64,
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u32,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_DATA: u8 = 2;
const TAG_ACK: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;
const TAG_ABORT: u8 = 5;
const TAG_SUBMIT: u8 = 6;
const TAG_CLIENT_ACK: u8 = 7;
const TAG_REDIRECT: u8 = 8;
const TAG_BUSY: u8 = 9;

fn take<const N: usize>(buf: &[u8], at: &mut usize) -> Result<[u8; N], TransportError> {
    let end = at
        .checked_add(N)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| TransportError::FrameCorrupt("truncated body".into()))?;
    let mut out = [0u8; N];
    out.copy_from_slice(&buf[*at..end]);
    *at = end;
    Ok(out)
}

fn take_u32(buf: &[u8], at: &mut usize) -> Result<u32, TransportError> {
    Ok(u32::from_le_bytes(take::<4>(buf, at)?))
}

fn take_u64(buf: &[u8], at: &mut usize) -> Result<u64, TransportError> {
    Ok(u64::from_le_bytes(take::<8>(buf, at)?))
}

impl Frame {
    /// Encodes the frame body (everything after the length prefix).
    #[must_use]
    pub fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Frame::Hello { src, epoch } => {
                b.push(TAG_HELLO);
                b.extend_from_slice(&(src.index() as u32).to_le_bytes());
                b.extend_from_slice(&epoch.to_le_bytes());
            }
            Frame::Data {
                instance,
                round,
                seq,
                attempt,
                sent_micros,
                payload,
            } => {
                b.push(TAG_DATA);
                b.extend_from_slice(&instance.to_le_bytes());
                b.extend_from_slice(&round.to_le_bytes());
                b.extend_from_slice(&seq.to_le_bytes());
                b.extend_from_slice(&attempt.to_le_bytes());
                b.extend_from_slice(&sent_micros.to_le_bytes());
                b.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                b.extend_from_slice(payload);
            }
            Frame::Ack { seq } => {
                b.push(TAG_ACK);
                b.extend_from_slice(&seq.to_le_bytes());
            }
            Frame::Heartbeat { sent_micros } => {
                b.push(TAG_HEARTBEAT);
                b.extend_from_slice(&sent_micros.to_le_bytes());
            }
            Frame::Abort { instance } => {
                b.push(TAG_ABORT);
                b.extend_from_slice(&instance.to_le_bytes());
            }
            Frame::Submit {
                client,
                req,
                payload,
            } => {
                b.push(TAG_SUBMIT);
                b.extend_from_slice(&client.to_le_bytes());
                b.extend_from_slice(&req.to_le_bytes());
                b.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                b.extend_from_slice(payload);
            }
            Frame::ClientAck { req, seq, round } => {
                b.push(TAG_CLIENT_ACK);
                b.extend_from_slice(&req.to_le_bytes());
                b.extend_from_slice(&seq.to_le_bytes());
                b.extend_from_slice(&round.to_le_bytes());
            }
            Frame::Redirect { req, group } => {
                b.push(TAG_REDIRECT);
                b.extend_from_slice(&req.to_le_bytes());
                b.extend_from_slice(&group.to_le_bytes());
            }
            Frame::Busy {
                req,
                retry_after_ms,
            } => {
                b.push(TAG_BUSY);
                b.extend_from_slice(&req.to_le_bytes());
                b.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
        }
        b
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// [`TransportError::FrameCorrupt`] on an unknown tag, a truncated
    /// body, or trailing garbage.
    pub fn decode_body(buf: &[u8]) -> Result<Frame, TransportError> {
        let mut at = 0usize;
        let [tag] = take::<1>(buf, &mut at)?;
        let frame = match tag {
            TAG_HELLO => Frame::Hello {
                src: ProcessId::new(take_u32(buf, &mut at)? as usize),
                epoch: take_u64(buf, &mut at)?,
            },
            TAG_DATA => {
                let instance = take_u64(buf, &mut at)?;
                let round = take_u32(buf, &mut at)?;
                let seq = take_u64(buf, &mut at)?;
                let attempt = take_u32(buf, &mut at)?;
                let sent_micros = take_u64(buf, &mut at)?;
                let len = take_u32(buf, &mut at)? as usize;
                if len > MAX_FRAME_LEN {
                    return Err(TransportError::FrameCorrupt(format!(
                        "payload length {len} exceeds cap"
                    )));
                }
                let end = at
                    .checked_add(len)
                    .filter(|&e| e <= buf.len())
                    .ok_or_else(|| TransportError::FrameCorrupt("truncated payload".into()))?;
                let payload = buf[at..end].to_vec();
                at = end;
                Frame::Data {
                    instance,
                    round,
                    seq,
                    attempt,
                    sent_micros,
                    payload,
                }
            }
            TAG_ACK => Frame::Ack {
                seq: take_u64(buf, &mut at)?,
            },
            TAG_HEARTBEAT => Frame::Heartbeat {
                sent_micros: take_u64(buf, &mut at)?,
            },
            TAG_ABORT => Frame::Abort {
                instance: take_u64(buf, &mut at)?,
            },
            TAG_SUBMIT => {
                let client = take_u64(buf, &mut at)?;
                let req = take_u64(buf, &mut at)?;
                let len = take_u32(buf, &mut at)? as usize;
                if len > MAX_FRAME_LEN {
                    return Err(TransportError::FrameCorrupt(format!(
                        "payload length {len} exceeds cap"
                    )));
                }
                let end = at
                    .checked_add(len)
                    .filter(|&e| e <= buf.len())
                    .ok_or_else(|| TransportError::FrameCorrupt("truncated payload".into()))?;
                let payload = buf[at..end].to_vec();
                at = end;
                Frame::Submit {
                    client,
                    req,
                    payload,
                }
            }
            TAG_CLIENT_ACK => Frame::ClientAck {
                req: take_u64(buf, &mut at)?,
                seq: take_u64(buf, &mut at)?,
                round: take_u32(buf, &mut at)?,
            },
            TAG_REDIRECT => Frame::Redirect {
                req: take_u64(buf, &mut at)?,
                group: take_u32(buf, &mut at)?,
            },
            TAG_BUSY => Frame::Busy {
                req: take_u64(buf, &mut at)?,
                retry_after_ms: take_u32(buf, &mut at)?,
            },
            other => {
                return Err(TransportError::FrameCorrupt(format!(
                    "unknown frame tag {other}"
                )))
            }
        };
        if at != buf.len() {
            return Err(TransportError::FrameCorrupt(format!(
                "{} trailing byte(s)",
                buf.len() - at
            )));
        }
        Ok(frame)
    }

    /// Writes `length prefix ‖ body` to `w` (one `write_all`, so a
    /// frame is never interleaved when the writer is exclusive).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error (classify with
    /// [`TransportError::from_io`]).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        w.write_all(&out)
    }

    /// Reads one `length prefix ‖ body` frame from `r`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Reset`] on EOF or any I/O failure,
    /// [`TransportError::FrameCorrupt`] on an oversized prefix or an
    /// unparseable body.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Frame, TransportError> {
        let mut prefix = [0u8; 4];
        r.read_exact(&mut prefix)
            .map_err(|e| TransportError::from_io(&e))?;
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(TransportError::FrameCorrupt(format!(
                "frame length {len} exceeds cap"
            )));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)
            .map_err(|e| TransportError::from_io(&e))?;
        Frame::decode_body(&body)
    }
}

/// The reconnect delay before attempt `attempt` (0-based) of the
/// `src → dst` supervisor: capped-exponential
/// (`BACKOFF_BASE · 2^attempt`, ceiling [`BACKOFF_CAP`]) plus a
/// deterministic per-`(seed, link, attempt)` jitter in
/// `[0, BACKOFF_JITTER_MAX]` — same splitmix discipline as the chaos
/// plane, so two runs with one seed back off identically while
/// distinct links never thunder in herd.
#[must_use]
pub fn backoff_delay(seed: u64, src: ProcessId, dst: ProcessId, attempt: u32) -> Duration {
    let shift = attempt.min(16);
    let step = BACKOFF_BASE
        .saturating_mul(1u32 << shift.min(5))
        .min(BACKOFF_CAP);
    let span = BACKOFF_JITTER_MAX.as_micros() as u64;
    let jitter = splitmix(roll(seed, SALT_BACKOFF, src, dst, 0, attempt)) % (span + 1);
    step + Duration::from_micros(jitter)
}

/// Socket-transport counters. All non-deterministic (they depend on
/// real scheduling and wire behavior), so the engine reports them in
/// the non-deterministic section of its stats, never in the
/// deterministic core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Connections (re-)established after the first success per peer.
    pub reconnects: u64,
    /// Data frames retransmitted (RTO expiry or reconnect resend).
    pub retransmits: u64,
    /// Total backoff time waited across all reconnect attempts,
    /// microseconds.
    pub backoff_micros: u64,
    /// Data frames delivered to the round layer (post-dedup).
    pub delivered: u64,
    /// Duplicate data frames suppressed by receiver-side dedup.
    pub dup_suppressed: u64,
    /// Data frames whose measured one-way delay exceeded Δ.
    pub late_frames: u64,
    /// Frames dropped for carrying a stale epoch.
    pub stale_epoch_drops: u64,
    /// Connections dropped on a corrupt frame.
    pub corrupt_drops: u64,
}

/// Gateway admission counters. Like [`TransportStats`], these depend
/// on real client timing (reconnects, queue pressure), so the engine
/// reports them in the non-deterministic section of its stats, never
/// in the deterministic core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Submissions admitted into the external proposal queue.
    pub admitted: u64,
    /// Submissions recognized as duplicates of an already-admitted or
    /// already-decided `(client, req)` and re-acked instead.
    pub deduped: u64,
    /// Submissions refused with [`Frame::Busy`] (queue full).
    pub busy_rejected: u64,
    /// Submissions refused with [`Frame::Redirect`] (wrong node or
    /// shard group).
    pub redirects: u64,
}

impl GatewayStats {
    /// Component-wise sum, for aggregating per-node counters.
    #[must_use]
    pub fn merged(self, other: GatewayStats) -> GatewayStats {
        GatewayStats {
            admitted: self.admitted + other.admitted,
            deduped: self.deduped + other.deduped,
            busy_rejected: self.busy_rejected + other.busy_rejected,
            redirects: self.redirects + other.redirects,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn frames_roundtrip_through_bytes() {
        let frames = vec![
            Frame::Hello {
                src: p(3),
                epoch: 17,
            },
            Frame::Data {
                instance: 9,
                round: 2,
                seq: 41,
                attempt: 1,
                sent_micros: 1_234_567,
                payload: vec![0, 1, 2, 255],
            },
            Frame::Data {
                instance: 0,
                round: 1,
                seq: 0,
                attempt: 0,
                sent_micros: 0,
                payload: Vec::new(),
            },
            Frame::Ack { seq: 41 },
            Frame::Heartbeat {
                sent_micros: 99_000,
            },
            Frame::Abort { instance: 12 },
            Frame::Submit {
                client: 7,
                req: 3,
                payload: vec![9, 8, 7],
            },
            Frame::Submit {
                client: u64::MAX,
                req: 0,
                payload: Vec::new(),
            },
            Frame::ClientAck {
                req: 3,
                seq: 12,
                round: 2,
            },
            Frame::Redirect { req: 4, group: 1 },
            Frame::Busy {
                req: 5,
                retry_after_ms: 40,
            },
        ];
        for f in frames {
            let mut wire = Vec::new();
            f.write_to(&mut wire).unwrap();
            let back = Frame::read_from(&mut wire.as_slice()).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn corrupt_frames_are_typed_errors() {
        // Unknown tag.
        let err = Frame::decode_body(&[200]).unwrap_err();
        assert!(matches!(err, TransportError::FrameCorrupt(_)), "{err}");
        // Truncated body.
        let err = Frame::decode_body(&[TAG_ACK, 1, 2]).unwrap_err();
        assert!(matches!(err, TransportError::FrameCorrupt(_)), "{err}");
        // Trailing garbage.
        let mut body = Frame::Ack { seq: 1 }.encode_body();
        body.push(0);
        let err = Frame::decode_body(&body).unwrap_err();
        assert!(matches!(err, TransportError::FrameCorrupt(_)), "{err}");
        // Truncated client frames are corrupt, not panics.
        for f in [
            Frame::Submit {
                client: 1,
                req: 2,
                payload: vec![3, 4],
            },
            Frame::ClientAck {
                req: 1,
                seq: 2,
                round: 3,
            },
            Frame::Redirect { req: 1, group: 0 },
            Frame::Busy {
                req: 1,
                retry_after_ms: 10,
            },
        ] {
            let mut body = f.encode_body();
            body.truncate(body.len() - 1);
            let err = Frame::decode_body(&body).unwrap_err();
            assert!(matches!(err, TransportError::FrameCorrupt(_)), "{err}");
        }
        // A Submit whose payload length field exceeds the cap fails
        // before allocating.
        let mut body = vec![TAG_SUBMIT];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = Frame::decode_body(&body).unwrap_err();
        assert!(matches!(err, TransportError::FrameCorrupt(_)), "{err}");
        // Oversized length prefix fails before allocating.
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = Frame::read_from(&mut wire.as_slice()).unwrap_err();
        assert!(matches!(err, TransportError::FrameCorrupt(_)), "{err}");
        // EOF mid-frame is a reset, not corruption.
        let mut wire = Vec::new();
        Frame::Ack { seq: 7 }.write_to(&mut wire).unwrap();
        wire.truncate(wire.len() - 1);
        let err = Frame::read_from(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err, TransportError::Reset);
    }

    #[test]
    fn backoff_schedule_is_capped_exponential() {
        let base = |a| backoff_delay(7, p(0), p(1), a) - jitter(7, p(0), p(1), a);
        assert_eq!(base(0), BACKOFF_BASE);
        assert_eq!(base(1), BACKOFF_BASE * 2);
        assert_eq!(base(2), BACKOFF_BASE * 4);
        assert_eq!(base(3), BACKOFF_BASE * 8);
        assert_eq!(base(4), BACKOFF_BASE * 16);
        // Capped from here on.
        assert_eq!(base(5), BACKOFF_CAP);
        assert_eq!(base(6), BACKOFF_CAP);
        assert_eq!(base(40), BACKOFF_CAP);
    }

    fn jitter(seed: u64, src: ProcessId, dst: ProcessId, attempt: u32) -> Duration {
        let span = BACKOFF_JITTER_MAX.as_micros() as u64;
        Duration::from_micros(splitmix(roll(seed, SALT_BACKOFF, src, dst, 0, attempt)) % (span + 1))
    }

    #[test]
    fn backoff_jitter_is_seed_deterministic_and_bounded() {
        for attempt in 0..8 {
            let a = backoff_delay(42, p(1), p(2), attempt);
            let b = backoff_delay(42, p(1), p(2), attempt);
            assert_eq!(a, b, "same seed, same delay");
            let floor = BACKOFF_BASE
                .saturating_mul(1 << attempt.min(5))
                .min(BACKOFF_CAP);
            assert!(a >= floor && a <= floor + BACKOFF_JITTER_MAX);
        }
        // Different seeds or links de-synchronize the jitter somewhere
        // in the schedule.
        assert!(
            (0..8).any(|a| backoff_delay(1, p(0), p(1), a) != backoff_delay(2, p(0), p(1), a)),
            "seed must reach the jitter"
        );
        assert!(
            (0..8).any(|a| backoff_delay(1, p(0), p(1), a) != backoff_delay(1, p(0), p(2), a)),
            "link identity must reach the jitter"
        );
    }

    #[test]
    fn gateway_stats_merge_component_wise() {
        let a = GatewayStats {
            admitted: 3,
            deduped: 1,
            busy_rejected: 0,
            redirects: 2,
        };
        let b = GatewayStats {
            admitted: 4,
            deduped: 0,
            busy_rejected: 5,
            redirects: 1,
        };
        let m = a.merged(b);
        assert_eq!(m.admitted, 7);
        assert_eq!(m.deduped, 1);
        assert_eq!(m.busy_rejected, 5);
        assert_eq!(m.redirects, 3);
    }

    #[test]
    fn io_errors_classify_by_kind() {
        let refused = io::Error::new(io::ErrorKind::ConnectionRefused, "nope");
        assert_eq!(TransportError::from_io(&refused), TransportError::Refused);
        let reset = io::Error::new(io::ErrorKind::ConnectionReset, "gone");
        assert_eq!(TransportError::from_io(&reset), TransportError::Reset);
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert_eq!(TransportError::from_io(&eof), TransportError::Reset);
    }
}
