//! E6/E7/E8 — the latency-degree table of §5.2–§5.3, regenerated and
//! asserted, with the aggregation cost measured.

use criterion::{criterion_group, criterion_main, Criterion};
use ssp_algos::{COptFloodSet, COptFloodSetWs, FOptFloodSet, FOptFloodSetWs, FloodSet, A1};
use ssp_lab::{explore_rs, explore_rws, LatencyAggregator};
use ssp_model::InitialConfig;

fn rs_agg<A: ssp_rounds::RoundAlgorithm<u64>>(algo: &A) -> LatencyAggregator<u64> {
    let mut agg = LatencyAggregator::new();
    explore_rs(algo, 3, 1, &[0u64, 1], |run| agg.add(run));
    agg
}

fn bench(c: &mut Criterion) {
    // The paper's equalities, asserted up front.
    let flood = rs_agg(&FloodSet);
    assert_eq!(flood.lat(), Some(2));
    let copt = rs_agg(&COptFloodSet);
    assert_eq!(copt.lat(), Some(1), "lat(C_OptFloodSet) = 1");
    assert_eq!(copt.lat_for(&InitialConfig::uniform(3, 1u64)), Some(1));
    let fopt = rs_agg(&FOptFloodSet);
    assert_eq!(
        fopt.lat_max_over_configs(),
        Some(1),
        "Lat(F_OptFloodSet) = 1"
    );
    let a1 = rs_agg(&A1);
    assert_eq!(a1.capital_lambda(), Some(1), "Λ(A1) = 1");

    let mut ws = LatencyAggregator::new();
    explore_rws(&COptFloodSetWs, 3, 1, &[0u64, 1], |run| ws.add(run));
    assert_eq!(ws.lat(), Some(1), "lat(C_OptFloodSetWS) = 1");
    let mut fws = LatencyAggregator::new();
    explore_rws(&FOptFloodSetWs, 3, 1, &[0u64, 1], |run| fws.add(run));
    assert_eq!(
        fws.lat_max_over_configs(),
        Some(1),
        "Lat(F_OptFloodSetWS) = 1"
    );
    assert!(ws.capital_lambda().unwrap() >= 2, "Λ ≥ 2 in RWS");
    assert!(fws.capital_lambda().unwrap() >= 2, "Λ ≥ 2 in RWS");

    let mut group = c.benchmark_group("latency_table");
    group.bench_function("aggregate_rs_a1", |b| {
        b.iter(|| rs_agg(&A1).capital_lambda())
    });
    group.sample_size(10);
    group.bench_function("aggregate_rws_c_opt", |b| {
        b.iter(|| {
            let mut agg = LatencyAggregator::new();
            explore_rws(&COptFloodSetWs, 3, 1, &[0u64, 1], |run| agg.add(run));
            agg.lat()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
