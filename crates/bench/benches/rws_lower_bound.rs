//! E9 — the RWS lower bound: cost of refuting the whole family of
//! round-1-deciding candidates (each refutation is itself an
//! exhaustive RWS search).

use criterion::{criterion_group, criterion_main, Criterion};
use ssp_lab::{all_round1_candidates, refute_round1_candidate};

fn bench(c: &mut Criterion) {
    let candidates = all_round1_candidates(3);
    assert_eq!(candidates.len(), 100);
    for cand in &candidates {
        assert!(refute_round1_candidate(cand, 3).is_some(), "{cand}");
    }
    let mut group = c.benchmark_group("rws_lower_bound");
    group.sample_size(10);
    group.bench_function("refute_one_a1_alike", |b| {
        b.iter(|| refute_round1_candidate(&candidates[0], 3).is_some())
    });
    group.bench_function("refute_family_of_100", |b| {
        b.iter(|| {
            candidates
                .iter()
                .filter(|c| refute_round1_candidate(c, 3).is_some())
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
