//! E12 — wall-clock uniform consensus on the threaded runtime, SS vs
//! SP flavours, with and without crashes, on both clock backends (the
//! virtual/real seeds-per-second ratio is the E21 headline number).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssp_algos::{FloodSet, A1};
use ssp_model::{check_uniform_consensus_strong, InitialConfig, ProcessId};
use ssp_runtime::{Backend, RuntimeBuilder, RuntimeConfig, ThreadCrash};

fn bench(c: &mut Criterion) {
    // Shape checks.
    let config = InitialConfig::new(vec![3u64, 1, 2]);
    let r = RuntimeBuilder::new(&A1, &config)
        .runtime(RuntimeConfig::ss_flavor(3, 5))
        .run()
        .unwrap();
    check_uniform_consensus_strong(&r.outcome).unwrap();
    assert_eq!(r.outcome.latency_degree(), Some(1));

    let mut group = c.benchmark_group("runtime_consensus");
    group.sample_size(10);
    for backend in [Backend::Virtual, Backend::Real] {
        for n in [3usize, 5, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("a1_ss_flavor_{backend}"), n),
                &n,
                |b, &n| {
                    let config = InitialConfig::new((0..n as u64).collect());
                    b.iter(|| {
                        let r = RuntimeBuilder::new(&A1, &config)
                            .runtime(RuntimeConfig::ss_flavor(n, 5))
                            .backend(backend)
                            .run()
                            .unwrap();
                        assert!(r.outcome.all_correct_decided());
                        r.elapsed
                    })
                },
            );
        }
    }
    group.bench_function("floodset_ss_flavor_crash_n4_t2", |b| {
        let config = InitialConfig::new(vec![9u64, 0, 4, 7]);
        b.iter(|| {
            let runtime = RuntimeConfig::ss_flavor(4, 11).with_crash(
                ProcessId::new(1),
                ThreadCrash {
                    round: 1,
                    after_sends: 2,
                    sends_to: None,
                },
            );
            let r = RuntimeBuilder::new(&FloodSet, &config)
                .t(2)
                .runtime(runtime)
                .run()
                .unwrap();
            assert!(r.outcome.all_correct_decided());
            r.elapsed
        })
    });
    group.bench_function("a1_sp_flavor_n3", |b| {
        let config = InitialConfig::new(vec![3u64, 1, 2]);
        b.iter(|| {
            let r = RuntimeBuilder::new(&A1, &config)
                .runtime(RuntimeConfig::sp_flavor(3, 5))
                .run()
                .unwrap();
            assert!(r.outcome.all_correct_decided());
            r.elapsed
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
