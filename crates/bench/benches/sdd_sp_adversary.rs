//! E2 — Theorem 3.1: cost of mechanically refuting an SDD candidate in
//! SP by run surgery, as a function of the candidate's stalling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssp_lab::impossibility::candidates::{PatientWait, WaitOrSuspect};
use ssp_lab::{refute, SddRefutation};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sdd_sp_adversary");
    // Shape: the refutation always lands on Validity.
    assert!(matches!(
        refute(&WaitOrSuspect, 1_000).refutation,
        SddRefutation::Validity { .. }
    ));
    group.bench_function("wait_or_suspect", |b| {
        b.iter(|| refute(&WaitOrSuspect, 1_000))
    });
    for patience in [0u64, 10, 100] {
        assert!(matches!(
            refute(&PatientWait(patience), 10_000).refutation,
            SddRefutation::Validity { .. }
        ));
        group.bench_with_input(BenchmarkId::new("patient", patience), &patience, |b, &p| {
            b.iter(|| refute(&PatientWait(p), 10_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
