//! The tentpole scaling claim: the symmetry-reduced, work-stealing
//! [`Verifier`] beats the historical static-sharded full sweep on the
//! exact space the seed benchmarked — FloodSetWS in `RWS` at
//! `n = 4, t = 2` — while reaching the identical verdict and
//! representing the identical 105-million-run space.
//!
//! The head-to-head at (4, 2) is a single timed pass per engine (the
//! unreduced space alone takes minutes); the criterion group then
//! tracks the reduced sweep's wall clock at the smaller scale points.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssp_algos::FloodSetWs;
use ssp_lab::{RoundModel, Symmetry, ValidityMode, Verifier};

fn threads() -> usize {
    std::thread::available_parallelism().map_or(4, usize::from)
}

fn sweep(n: usize, t: usize, symmetry: Symmetry) -> ssp_lab::Verification<u64> {
    let base = Verifier::new(&FloodSetWs)
        .n(n)
        .t(t)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Strong)
        .model(RoundModel::Rws)
        .threads(threads());
    match symmetry {
        Symmetry::Off => base.run(),
        sym => base.symmetry(sym).run(),
    }
}

fn bench(c: &mut Criterion) {
    // Head-to-head on the seed's own benchmark space. The old
    // verify_rws_parallel was exactly the unreduced sweep, so
    // Symmetry::Off at equal thread counts is the seed baseline.
    let t0 = Instant::now();
    let full = sweep(4, 2, Symmetry::Off);
    let full_time = t0.elapsed();
    let t1 = Instant::now();
    let reduced = sweep(4, 2, Symmetry::Full);
    let reduced_time = t1.elapsed();
    assert_eq!(full.is_ok(), reduced.is_ok(), "identical verdicts");
    assert_eq!(
        reduced.represented, full.runs,
        "orbit weights cover the full space"
    );
    assert!(
        reduced.runs < full.runs,
        "strictly fewer runs: {} vs {}",
        reduced.runs,
        full.runs
    );
    let speedup = full_time.as_secs_f64() / reduced_time.as_secs_f64();
    assert!(
        speedup >= 2.0,
        "symmetry reduction must be at least 2x faster: {speedup:.2}x \
         ({full_time:?} vs {reduced_time:?})"
    );
    println!(
        "verifier_scaling (n=4, t=2, {} threads): {} runs -> {} canonical \
         ({:.1}x fewer), {full_time:?} -> {reduced_time:?} ({speedup:.1}x faster)",
        threads(),
        full.runs,
        reduced.runs,
        full.runs as f64 / reduced.runs as f64,
    );

    // Trend line: the reduced engine at growing scale points.
    let mut group = c.benchmark_group("verifier_scaling");
    group.sample_size(10);
    for (n, t) in [(3usize, 1usize), (3, 2), (4, 1)] {
        group.bench_with_input(
            BenchmarkId::new("symmetry_full", format!("n{n}t{t}")),
            &(n, t),
            |b, &(n, t)| b.iter(|| sweep(n, t, Symmetry::Full)),
        );
        group.bench_with_input(
            BenchmarkId::new("full_sweep", format!("n{n}t{t}")),
            &(n, t),
            |b, &(n, t)| b.iter(|| sweep(n, t, Symmetry::Off)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
