//! E1 — SDD in the synchronous model: cost of solving the problem with
//! the Φ+1+Δ rule, swept over the synchrony bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssp_algos::{SddSender, SsSddReceiver};
use ssp_model::ProcessId;
use ssp_sim::{run, BoxedAutomaton, FairAdversary, ModelKind};

fn sdd_run(phi: u64, delta: u64, input: bool) -> Option<bool> {
    let automata: Vec<BoxedAutomaton<bool, bool>> = vec![
        Box::new(SddSender::new(ProcessId::new(1), input)),
        Box::new(SsSddReceiver::new(ProcessId::new(0), phi, delta)),
    ];
    let mut adv = FairAdversary::new(2, 4 * (phi + delta + 2));
    let result = run(ModelKind::ss(phi, delta), automata, &mut adv, 10_000).expect("legal");
    result.outputs[1]
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sdd_ss");
    for (phi, delta) in [(1u64, 1u64), (2, 2), (4, 4), (8, 8)] {
        // Shape check once per configuration, outside the timing loop.
        assert_eq!(sdd_run(phi, delta, true), Some(true));
        assert_eq!(sdd_run(phi, delta, false), Some(false));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("phi{phi}_delta{delta}")),
            &(phi, delta),
            |b, &(phi, delta)| b.iter(|| sdd_run(phi, delta, true)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
