//! E10 — the commit-rate experiment: RS commits strictly more often
//! than RWS under adversarial crashes and pending choices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssp_commit::{commit_rate_experiment, CommitWorkload};

fn bench(c: &mut Criterion) {
    // Shape: the gap exists and RS dominates, at every crash rate.
    for crash_prob in [0.2, 0.5, 0.8] {
        let w = CommitWorkload::all_yes(4, 2, crash_prob);
        let r = commit_rate_experiment(&w, 500, 7);
        assert!(r.rs_commits >= r.rws_commits);
        assert!(crash_prob < 0.3 || r.gap_runs > 0, "{r:?}");
    }
    let mut group = c.benchmark_group("commit_rate");
    group.sample_size(10);
    for n in [3usize, 5] {
        group.bench_with_input(BenchmarkId::new("trials500", n), &n, |b, &n| {
            let w = CommitWorkload::all_yes(n, n / 2, 0.5);
            b.iter(|| commit_rate_experiment(&w, 500, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
