//! E4 — FloodSet in RWS: time for the bounded model checker to find a
//! pending-message disagreement.

use criterion::{criterion_group, criterion_main, Criterion};
use ssp_algos::FloodSet;
use ssp_lab::{RoundModel, ValidityMode, Verifier};
use ssp_model::spec::ConsensusViolation;

fn bench(c: &mut Criterion) {
    // Shape: violations exist at both t=1 and t=2.
    for t in [1usize, 2] {
        let v = Verifier::new(&FloodSet)
            .n(3)
            .t(t)
            .domain(&[0u64, 1])
            .mode(ValidityMode::Uniform)
            .model(RoundModel::Rws)
            .run();
        assert!(matches!(
            v.expect_violation().violation,
            ConsensusViolation::UniformAgreement { .. }
        ));
    }
    let mut group = c.benchmark_group("floodset_rws_violation");
    group.sample_size(10);
    for t in [1usize, 2] {
        group.bench_function(format!("find_counterexample_t{t}"), |b| {
            b.iter(|| {
                let v = Verifier::new(&FloodSet)
                    .n(3)
                    .t(t)
                    .domain(&[0u64, 1])
                    .mode(ValidityMode::Uniform)
                    .model(RoundModel::Rws)
                    .run();
                assert!(v.counterexample.is_some());
                v.runs
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
