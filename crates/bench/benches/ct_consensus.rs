//! E16 — Chandra–Toueg ◇S consensus on the step executor: time to
//! global decision vs n and vs the number of wasted (suspected)
//! coordinator rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssp_algos::{CtMsg, CtProcess};
use ssp_fd::FdHistory;
use ssp_model::{ProcessId, Time};
use ssp_sim::{run, BoxedAutomaton, FairAdversary, ModelKind};

fn decide(n: usize, wasted_rounds: usize) -> u64 {
    let automata: Vec<BoxedAutomaton<CtMsg<u64>, u64>> = (0..n)
        .map(|i| Box::new(CtProcess::new(ProcessId::new(i), n, i as u64)) as _)
        .collect();
    // The first `wasted_rounds` coordinators are permanently suspected
    // by everyone: the rotation must pass them before deciding.
    let mut history = FdHistory::new(n);
    for c in 0..wasted_rounds {
        for o in 0..n {
            history.suspect_from(ProcessId::new(o), ProcessId::new(c), Time::ZERO);
        }
    }
    let mut adv = FairAdversary::new(n, 200_000);
    let result = run(ModelKind::fd(history), automata, &mut adv, 400_000).expect("legal");
    assert!(
        result.outputs.iter().all(Option::is_some),
        "all must decide"
    );
    result.trace.len() as u64
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ct_consensus");
    group.sample_size(20);
    for n in [3usize, 5, 9] {
        group.bench_with_input(BenchmarkId::new("clean", n), &n, |b, &n| {
            b.iter(|| decide(n, 0))
        });
    }
    for wasted in [0usize, 1, 2] {
        group.bench_with_input(
            BenchmarkId::new("wasted_rounds_n5", wasted),
            &wasted,
            |b, &w| b.iter(|| decide(5, w)),
        );
    }
    // Shape: each wasted round costs extra steps.
    let clean = decide(5, 0);
    let slow = decide(5, 2);
    assert!(
        slow > clean,
        "suspected coordinators must cost steps: {clean} vs {slow}"
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
