//! E3 — FloodSet in RS: per-run cost versus n and t, plus the
//! exhaustive verification sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssp_algos::FloodSet;
use ssp_lab::{ValidityMode, Verifier};
use ssp_model::{check_uniform_consensus_strong, InitialConfig};
use ssp_rounds::{run_rs, CrashSchedule};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("floodset_rs");
    for n in [3usize, 4, 6, 8, 12, 16] {
        let t = n / 2;
        let config = InitialConfig::new((0..n as u64).collect());
        let out = run_rs(&FloodSet, &config, t, &CrashSchedule::none(n));
        check_uniform_consensus_strong(&out).expect("FloodSet correct in RS");
        assert_eq!(out.latency_degree(), Some(t as u32 + 1));
        group.bench_with_input(BenchmarkId::new("run", n), &n, |b, &n| {
            let config = InitialConfig::new((0..n as u64).collect());
            let schedule = CrashSchedule::none(n);
            b.iter(|| run_rs(&FloodSet, &config, n / 2, &schedule))
        });
    }
    group.sample_size(10);
    group.bench_function("verify_exhaustive_n3_t1", |b| {
        b.iter(|| {
            Verifier::new(&FloodSet)
                .n(3)
                .t(1)
                .domain(&[0u64, 1])
                .mode(ValidityMode::Strong)
                .run()
                .expect_ok()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
