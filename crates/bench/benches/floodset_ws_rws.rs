//! E5 — FloodSetWS in RWS: cost of the full exhaustive verification
//! (every config × crash schedule × pending choice).

use criterion::{criterion_group, criterion_main, Criterion};
use ssp_algos::FloodSetWs;
use ssp_lab::{RoundModel, ValidityMode, Verifier};

fn bench(c: &mut Criterion) {
    let runs = Verifier::new(&FloodSetWs)
        .n(3)
        .t(1)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Strong)
        .model(RoundModel::Rws)
        .run()
        .expect_ok();
    assert!(runs >= 2_936, "space size changed: {runs}");
    let mut group = c.benchmark_group("floodset_ws_rws");
    group.sample_size(10);
    group.bench_function("verify_exhaustive_n3_t1", |b| {
        b.iter(|| {
            Verifier::new(&FloodSetWs)
                .n(3)
                .t(1)
                .domain(&[0u64, 1])
                .mode(ValidityMode::Strong)
                .model(RoundModel::Rws)
                .run()
                .expect_ok()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
