//! E5 — FloodSetWS in RWS: cost of the full exhaustive verification
//! (every config × crash schedule × pending choice).

use criterion::{criterion_group, criterion_main, Criterion};
use ssp_algos::FloodSetWs;
use ssp_lab::{verify_rws, ValidityMode};

fn bench(c: &mut Criterion) {
    let runs = verify_rws(&FloodSetWs, 3, 1, &[0u64, 1], ValidityMode::Strong).expect_ok();
    assert!(runs >= 2_936, "space size changed: {runs}");
    let mut group = c.benchmark_group("floodset_ws_rws");
    group.sample_size(10);
    group.bench_function("verify_exhaustive_n3_t1", |b| {
        b.iter(|| verify_rws(&FloodSetWs, 3, 1, &[0u64, 1], ValidityMode::Strong).expect_ok())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
