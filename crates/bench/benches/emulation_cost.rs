//! E11 — emulation cost: a round of RS-on-SS costs K_r − K_{r−1} steps
//! (geometric in r), while RWS-on-SP adapts to actual delays; both are
//! timed against the direct round executors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssp_algos::FloodSet;
use ssp_model::{InitialConfig, ProcessId, Round};
use ssp_rounds::{
    cumulative_round_budget, run_rs, CrashSchedule, EmuMsg, RoundAlgorithm, RsOnSs, RwsOnSp,
};
use ssp_sim::{run, BoxedAutomaton, DetectionDelays, FairAdversary, ModelKind};

fn emulate_rs(n: usize, t: usize, phi: u64, delta: u64) -> u64 {
    let horizon = t as u32 + 1;
    let automata: Vec<BoxedAutomaton<EmuMsg<_>, (u64, Round)>> = (0..n)
        .map(|i| {
            Box::new(RsOnSs::new(
                RoundAlgorithm::<u64>::spawn(&FloodSet, ProcessId::new(i), n, t, i as u64),
                ProcessId::new(i),
                n,
                horizon,
                phi,
                delta,
            )) as _
        })
        .collect();
    let budget = cumulative_round_budget(phi, delta, n, horizon);
    let events = budget * n as u64 + 64;
    let mut adv = FairAdversary::new(n, events);
    let result = run(ModelKind::ss(phi, delta), automata, &mut adv, events + 10).expect("legal");
    result.trace.len() as u64
}

fn emulate_rws(n: usize, t: usize) -> u64 {
    let horizon = t as u32 + 1;
    let automata: Vec<BoxedAutomaton<EmuMsg<_>, (u64, Round)>> = (0..n)
        .map(|i| {
            Box::new(RwsOnSp::new(
                RoundAlgorithm::<u64>::spawn(&FloodSet, ProcessId::new(i), n, t, i as u64),
                ProcessId::new(i),
                n,
                horizon,
            )) as _
        })
        .collect();
    let mut adv = FairAdversary::new(n, 50_000);
    let result = run(
        ModelKind::sp(DetectionDelays::immediate(n)),
        automata,
        &mut adv,
        60_000,
    )
    .expect("legal");
    result.trace.len() as u64
}

fn bench(c: &mut Criterion) {
    // Step-budget table: K_r per round, the paper's k(n, Φ, Δ, r).
    println!("\nRS-on-SS cumulative step budget K_r (n=3):");
    println!("  r    Φ=1,Δ=1   Φ=2,Δ=2");
    for r in 1..=4u32 {
        println!(
            "  {r}    {:7}   {:7}",
            cumulative_round_budget(1, 1, 3, r),
            cumulative_round_budget(2, 2, 3, r)
        );
    }
    // The adaptive RWS emulation is far cheaper than the lock-step one.
    let rs_steps = emulate_rs(3, 1, 1, 1);
    let rws_steps = emulate_rws(3, 1);
    println!("trace events: RS-on-SS {rs_steps}, RWS-on-SP {rws_steps}\n");
    assert!(rws_steps < rs_steps);

    let mut group = c.benchmark_group("emulation_cost");
    group.sample_size(20);
    for n in [3usize, 4] {
        group.bench_with_input(BenchmarkId::new("rs_on_ss", n), &n, |b, &n| {
            b.iter(|| emulate_rs(n, 1, 1, 1))
        });
        group.bench_with_input(BenchmarkId::new("rws_on_sp", n), &n, |b, &n| {
            b.iter(|| emulate_rws(n, 1))
        });
        group.bench_with_input(BenchmarkId::new("direct_rs", n), &n, |b, &n| {
            let config = InitialConfig::new((0..n as u64).collect());
            let schedule = CrashSchedule::none(n);
            b.iter(|| run_rs(&FloodSet, &config, 1, &schedule))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
