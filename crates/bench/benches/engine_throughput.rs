//! Service throughput, `RS` vs `RWS`: Theorem 5.2 compounded.
//!
//! One consensus run shows `Λ(A1) = 1` in `RS` while every `RWS`
//! algorithm pays `Λ ≥ 2`. A replicated state-machine *service* runs
//! instances back-to-back, so the per-instance round gap compounds
//! into sustained throughput: this bench drives the same failure-free
//! closed-loop workload through `A1`/`RS` (early-retiring after its
//! single received round) and `CtRounds`/`RWS` (the rotating-coordinator
//! baseline, `t + 1` rounds always) and reports decided instances per
//! wall-clock second for each.
//!
//! `scripts/bench_snapshot.sh` records the numbers in `BENCH_PR5.json`
//! and asserts the paper's ordering: `RS` strictly faster. Emits one
//! machine-readable line: `SNAPSHOT {..}`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use ssp_algos::{CtRounds, A1};
use ssp_engine::{serve, Batch, EngineConfig, EngineStats, FaultMode, Workload, WorkloadConfig};
use ssp_rounds::{RoundAlgorithm, RoundProcess};
use ssp_runtime::PlanModel;

const N: usize = 3;
const T: usize = 1;
const SEED: u64 = 41;
const CLIENTS: usize = 16;

/// One failure-free service run; returns the stats (decided count,
/// rounds paid, wall time).
fn run_service<A>(algo: &A, model: PlanModel, instances: u64) -> EngineStats
where
    A: RoundAlgorithm<Batch> + Sync,
    A::Process: Send + 'static,
    <A::Process as RoundProcess>::Msg: Clone + Send + 'static,
{
    let mut cfg = EngineConfig::new(N, T, model);
    cfg.instances = instances;
    cfg.seed = SEED;
    cfg.faults = FaultMode::FailureFree;
    let mut workload = Workload::new(SEED, WorkloadConfig::new(CLIENTS));
    let report = serve(algo, &cfg, &mut workload).expect("valid failure-free config");
    assert_eq!(report.stats.decided_instances, instances, "failure-free");
    assert_eq!(report.stats.audit_violations, 0);
    assert_eq!(report.stats.audit_divergences, 0);
    report.stats
}

fn per_sec(decided: u64, secs: f64) -> u64 {
    if secs > 0.0 {
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        {
            (decided as f64 / secs) as u64
        }
    } else {
        0
    }
}

fn bench(c: &mut Criterion) {
    const INSTANCES: u64 = 40;

    let t0 = Instant::now();
    let rs = run_service(&A1, PlanModel::Rs, INSTANCES);
    let rs_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let rws = run_service(&CtRounds, PlanModel::Rws, INSTANCES);
    let rws_secs = t1.elapsed().as_secs_f64();

    let rs_ips = per_sec(rs.decided_instances, rs_secs);
    let rws_ips = per_sec(rws.decided_instances, rws_secs);
    println!(
        "engine_throughput (n={N}, t={T}, {CLIENTS} clients, {INSTANCES} failure-free instances): \
         A1/RS {rs_ips} instances/s at p50 {} round(s), \
         CtRounds/RWS {rws_ips} instances/s at p50 {} rounds; \
         commands decided {} vs {}",
        rs.decide_rounds_p50(),
        rws.decide_rounds_p50(),
        rs.commands_decided,
        rws.commands_decided,
    );
    println!(
        "SNAPSHOT {{\"bench\":\"engine_throughput\",\"n\":{N},\"t\":{T},\"clients\":{CLIENTS},\
         \"instances\":{INSTANCES},\"rs_instances_per_sec\":{rs_ips},\
         \"rws_instances_per_sec\":{rws_ips},\"rs_decide_rounds_p50\":{},\
         \"rws_decide_rounds_p50\":{},\"rs_commands_decided\":{},\"rws_commands_decided\":{}}}",
        rs.decide_rounds_p50(),
        rws.decide_rounds_p50(),
        rs.commands_decided,
        rws.commands_decided,
    );

    // Criterion trend points at a smaller scale.
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    group.bench_function("a1_rs_4_instances", |b| {
        b.iter(|| run_service(&A1, PlanModel::Rs, 4));
    });
    group.bench_function("ct_rws_4_instances", |b| {
        b.iter(|| run_service(&CtRounds, PlanModel::Rws, 4));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
