//! Observer-pipeline overhead: the event IR must cost nothing when
//! nobody listens.
//!
//! The verifier's hot loop now runs through the generic
//! `run_rounds<.., O: Observer<_>>` executor with a `NullObserver`
//! (`active() == false`), which monomorphization strips entirely; this
//! bench measures the resulting sweep throughput so `scripts/
//! bench_snapshot.sh` can compare it against the pre-refactor baseline
//! recorded in `BENCH_PR4.json` (acceptance: within 5%).
//!
//! It also prices the two real observers on the same space — the
//! counting path (`Verifier::count_events`) and a full `RunLogObserver`
//! per run — so the cost of forensics is a measured number, not a
//! guess.
//!
//! Emits one machine-readable line: `SNAPSHOT {..}`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use ssp_algos::FloodSetWs;
use ssp_lab::{RoundModel, ValidityMode, Verifier};
use ssp_model::{InitialConfig, ProcessId, ProcessSet, Round, RunLogObserver};
use ssp_rounds::{run_rs, run_rs_observed, CrashSchedule, RoundCrash};

/// The measured space: every FloodSetWS `RWS` run at `n = 3, t = 2`
/// (the serial half of the seed's recorded baseline).
fn sweep(count_events: bool) -> ssp_lab::Verification<u64> {
    let base = Verifier::new(&FloodSetWs)
        .n(3)
        .t(2)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Strong)
        .model(RoundModel::Rws);
    if count_events {
        base.count_events().run()
    } else {
        base.run()
    }
}

fn runs_per_sec(runs: u64, secs: f64) -> u64 {
    if secs > 0.0 {
        (runs as f64 / secs) as u64
    } else {
        0
    }
}

fn bench(c: &mut Criterion) {
    // One full serial sweep per observer flavour, wall-clock timed.
    let t0 = Instant::now();
    let null_sweep = sweep(false);
    let null_secs = t0.elapsed().as_secs_f64();
    null_sweep.expect_ok();

    let t1 = Instant::now();
    let counted_sweep = sweep(true);
    let counting_secs = t1.elapsed().as_secs_f64();
    counted_sweep.expect_ok();
    assert_eq!(null_sweep.runs, counted_sweep.runs, "same space");
    let events = counted_sweep.events.expect("count_events was requested");

    // The forensic extreme: a full RunLog allocated per run, measured
    // on a fixed representative run (one crash, partial final send).
    let config = InitialConfig::new(vec![0u64, 1, 0]);
    let mut schedule = CrashSchedule::none(3);
    schedule.crash(
        ProcessId::new(1),
        RoundCrash {
            round: Round::new(2),
            sends_to: ProcessSet::singleton(ProcessId::new(0)),
        },
    );
    let reps = 200_000u64;
    let t2 = Instant::now();
    for _ in 0..reps {
        let _ = run_rs(&FloodSetWs, &config, 2, &schedule);
    }
    let bare_secs = t2.elapsed().as_secs_f64();
    let t3 = Instant::now();
    for _ in 0..reps {
        let mut obs = RunLogObserver::new(3);
        let _ = run_rs_observed(&FloodSetWs, &config, 2, &schedule, &mut obs).unwrap();
        criterion::black_box(obs.into_log());
    }
    let runlog_secs = t3.elapsed().as_secs_f64();

    let null_rps = runs_per_sec(null_sweep.runs, null_secs);
    let counting_rps = runs_per_sec(counted_sweep.runs, counting_secs);
    let bare_rps = runs_per_sec(reps, bare_secs);
    let runlog_rps = runs_per_sec(reps, runlog_secs);
    println!(
        "observer_overhead (floodset-ws rws n=3 t=2, serial): \
         {} runs; NullObserver {null_rps} runs/s, CountingObserver \
         {counting_rps} runs/s; single-run loop: bare {bare_rps} runs/s, \
         RunLogObserver {runlog_rps} runs/s; {} deliveries counted",
        null_sweep.runs, events.delivers
    );
    println!(
        "SNAPSHOT {{\"bench\":\"observer_overhead\",\"space\":\"floodset-ws rws n=3 t=2 serial\",\
         \"runs\":{},\"null_runs_per_sec\":{null_rps},\"counting_runs_per_sec\":{counting_rps},\
         \"bare_single_run_per_sec\":{bare_rps},\"runlog_single_run_per_sec\":{runlog_rps},\
         \"counted_delivers\":{}}}",
        null_sweep.runs, events.delivers
    );

    // Criterion trend points at a smaller scale.
    let mut group = c.benchmark_group("observer_overhead");
    group.sample_size(10);
    group.bench_function("null_observer_sweep_n3t1", |b| {
        b.iter(|| {
            Verifier::new(&FloodSetWs)
                .n(3)
                .t(1)
                .domain(&[0u64, 1])
                .mode(ValidityMode::Strong)
                .model(RoundModel::Rws)
                .run()
        })
    });
    group.bench_function("counting_observer_sweep_n3t1", |b| {
        b.iter(|| {
            Verifier::new(&FloodSetWs)
                .n(3)
                .t(1)
                .domain(&[0u64, 1])
                .mode(ValidityMode::Strong)
                .model(RoundModel::Rws)
                .count_events()
                .run()
        })
    });
    group.bench_function("runlog_observer_single_run", |b| {
        b.iter(|| {
            let mut obs = RunLogObserver::new(3);
            let _ = run_rs_observed(&FloodSetWs, &config, 2, &schedule, &mut obs).unwrap();
            obs.into_log()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
