//! Benchmark-only crate: the targets live in `benches/`, one per
//! experiment of EXPERIMENTS.md (E1–E16). This library is empty.
