//! Failure detectors for the SS/SP comparison (§2.5–2.6, §3).
//!
//! The Chandra–Toueg failure detector abstraction, as the paper uses
//! it:
//!
//! * [`FdHistory`] — concrete histories `H : Π × T → 2^Π`;
//! * [`classify`] and the per-property checkers — the completeness and
//!   accuracy axioms defining the classes `P`, `◇P`, `S`, `◇S`;
//! * [`PerfectOracle`] / [`perfect_history`] — generators of
//!   `P`-compatible histories with adversary-chosen (finite but
//!   unbounded) detection delays, the heart of the `SP` model;
//! * [`StepTimeoutDetector`] — the §3 timeout construction that
//!   implements `P` inside the synchronous model from the `(Φ, Δ)`
//!   bounds.
//!
//! # Examples
//!
//! Generate a perfect history for a crash pattern and verify it
//! satisfies `P`'s axioms:
//!
//! ```
//! use ssp_fd::{classify, perfect_history};
//! use ssp_model::{FailurePattern, ProcessId, Time};
//!
//! let mut pattern = FailurePattern::no_failures(3);
//! pattern.crash(ProcessId::new(1), Time::new(5));
//! let history = perfect_history(&pattern, 4);
//! assert!(classify(&pattern, &history, Time::new(50)).is_perfect());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod classes;
pub mod history;
pub mod oracle;
pub mod timeout;

pub use classes::{
    check_eventual_strong_accuracy, check_eventual_weak_accuracy, check_strong_accuracy,
    check_strong_completeness, check_weak_accuracy, classify, FdProperties,
};
pub use history::FdHistory;
pub use oracle::{eventually_perfect_history, perfect_history, strong_history, PerfectOracle};
pub use timeout::{detection_bound, StepTimeoutDetector};
