//! Timeout-based perfect failure detection for the synchronous model (§3).
//!
//! In `SS` the bounds `Φ` (process synchrony) and `Δ` (message
//! synchrony) make perfect detection easy: *“if `p_i` is supposed to
//! send a message `m` to `p_j` while `p_j` is taking its `k`-th step,
//! if `p_j` is aware of that, and if `p_i` crashes and fails in sending
//! `m`, then `p_j` can detect `p_i`'s crash when taking its
//! `(k+Φ+1+Δ)`-th step”*. [`StepTimeoutDetector`] implements exactly
//! this rule over an observer's own step counter; the `SS` executor in
//! `ssp-sim` drives it, and `ssp-lab` verifies the produced histories
//! classify as `P`.

use core::fmt;

use ssp_model::{ProcessId, ProcessSet};

/// The detection bound of §3: a crash missed at own-step `k` is
/// detected by own-step `k + Φ + 1 + Δ`.
#[must_use]
pub fn detection_bound(phi: u64, delta: u64) -> u64 {
    phi + 1 + delta
}

/// A timeout-based implementation of the perfect failure detector for
/// one observer in the `SS` model.
///
/// The observer registers *expectations* ("peer `q` is supposed to send
/// me a message around my `k`-th step") and reports messages as they
/// arrive; [`StepTimeoutDetector::advance_to`] moves the observer's own
/// step counter forward and promotes overdue expectations to
/// suspicions.
///
/// In `SS`, if `q` is alive it takes a step at least every `Φ+1` of the
/// observer's steps, and its message arrives within `Δ` further steps —
/// so an expectation that is `Φ+1+Δ` steps overdue can only mean `q`
/// crashed, which is why the resulting detector is perfect (never
/// wrong, eventually complete).
///
/// # Examples
///
/// ```
/// use ssp_fd::{detection_bound, StepTimeoutDetector};
/// use ssp_model::ProcessId;
///
/// let (phi, delta) = (2, 3);
/// let mut det = StepTimeoutDetector::new(4, phi, delta);
/// let q = ProcessId::new(1);
/// det.expect(q, 0);                  // q should send around my step 0
/// det.advance_to(detection_bound(phi, delta) - 1);
/// assert!(!det.suspects().contains(q)); // not yet overdue
/// det.advance_to(detection_bound(phi, delta));
/// assert!(det.suspects().contains(q)); // overdue ⇒ crashed
/// ```
#[derive(Debug, Clone)]
pub struct StepTimeoutDetector {
    phi: u64,
    delta: u64,
    own_step: u64,
    /// Earliest unmet expectation per peer (own-step at which the
    /// message was expected).
    pending: Vec<Option<u64>>,
    suspects: ProcessSet,
}

impl StepTimeoutDetector {
    /// Creates a detector for an observer among `n` processes in an
    /// `SS` system with bounds `(Φ, Δ) = (phi, delta)`.
    ///
    /// # Panics
    ///
    /// Panics if `phi == 0` or `delta == 0` (the paper requires
    /// `Φ ≥ 1`, `Δ ≥ 1`).
    #[must_use]
    pub fn new(n: usize, phi: u64, delta: u64) -> Self {
        assert!(phi >= 1, "SS requires Φ ≥ 1");
        assert!(delta >= 1, "SS requires Δ ≥ 1");
        StepTimeoutDetector {
            phi,
            delta,
            own_step: 0,
            pending: vec![None; n],
            suspects: ProcessSet::empty(),
        }
    }

    /// The observer's current own-step counter.
    #[must_use]
    pub fn own_step(&self) -> u64 {
        self.own_step
    }

    /// Registers that peer `q` is supposed to send a message around the
    /// observer's step `k` (only the earliest outstanding expectation
    /// per peer is tracked — it is the one that times out first).
    pub fn expect(&mut self, q: ProcessId, k: u64) {
        let slot = &mut self.pending[q.index()];
        match slot {
            Some(existing) if *existing <= k => {}
            _ => *slot = Some(k),
        }
    }

    /// Reports that a message from `q` arrived, clearing its
    /// outstanding expectation.
    pub fn heard_from(&mut self, q: ProcessId) {
        self.pending[q.index()] = None;
    }

    /// Advances the observer's own step counter to `step` (monotone)
    /// and returns the peers that became suspected by this advance.
    pub fn advance_to(&mut self, step: u64) -> ProcessSet {
        debug_assert!(step >= self.own_step, "own steps only move forward");
        self.own_step = step.max(self.own_step);
        let bound = detection_bound(self.phi, self.delta);
        let mut newly = ProcessSet::empty();
        for (i, slot) in self.pending.iter_mut().enumerate() {
            if let Some(k) = *slot {
                if self.own_step >= k + bound {
                    let q = ProcessId::new(i);
                    if self.suspects.insert(q) {
                        newly.insert(q);
                    }
                    *slot = None;
                }
            }
        }
        newly
    }

    /// The current suspicion set (monotone: `P`'s suspicions here are
    /// never retracted, since they are never wrong).
    #[must_use]
    pub fn suspects(&self) -> ProcessSet {
        self.suspects
    }
}

impl fmt::Display for StepTimeoutDetector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "timeout-P(Φ={}, Δ={}) @own-step {}: suspects {}",
            self.phi, self.delta, self.own_step, self.suspects
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn bound_matches_paper_formula() {
        assert_eq!(detection_bound(1, 1), 3);
        assert_eq!(detection_bound(2, 5), 8);
    }

    #[test]
    fn message_arrival_cancels_expectation() {
        let mut det = StepTimeoutDetector::new(3, 1, 1);
        det.expect(p(1), 0);
        det.heard_from(p(1));
        det.advance_to(100);
        assert!(det.suspects().is_empty());
    }

    #[test]
    fn overdue_expectation_triggers_suspicion_exactly_at_bound() {
        let mut det = StepTimeoutDetector::new(3, 2, 3);
        det.expect(p(2), 10);
        assert!(det.advance_to(10 + detection_bound(2, 3) - 1).is_empty());
        let newly = det.advance_to(10 + detection_bound(2, 3));
        assert!(newly.contains(p(2)));
        // Second advance does not re-report.
        assert!(det.advance_to(100).is_empty());
        assert!(det.suspects().contains(p(2)));
    }

    #[test]
    fn earliest_expectation_wins() {
        let mut det = StepTimeoutDetector::new(2, 1, 1);
        det.expect(p(1), 5);
        det.expect(p(1), 2); // earlier: replaces
        det.expect(p(1), 9); // later: ignored
        let newly = det.advance_to(2 + detection_bound(1, 1));
        assert!(newly.contains(p(1)));
    }

    #[test]
    #[should_panic(expected = "Φ ≥ 1")]
    fn rejects_zero_phi() {
        let _ = StepTimeoutDetector::new(2, 0, 1);
    }

    #[test]
    fn display_shows_parameters() {
        let det = StepTimeoutDetector::new(2, 1, 4);
        let s = det.to_string();
        assert!(s.contains("Φ=1"));
        assert!(s.contains("Δ=4"));
    }
}
