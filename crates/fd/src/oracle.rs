//! History generators ("oracles") for the detector classes.
//!
//! Simulated SP executions fix the failure pattern up front, so a
//! compatible history of the perfect detector `P` can be *generated*:
//! each observer starts suspecting each crashed process some finite —
//! but adversary-chosen, unbounded — delay after the crash, and never
//! before. The unboundedness of that delay is exactly the weakness of
//! `SP` that Theorem 3.1 exploits.

use rand::Rng;

use ssp_model::{process::all_processes, FailurePattern, ProcessId, Time};

use crate::history::FdHistory;

/// Builder for perfect-detector histories with per-pair detection delays.
///
/// # Examples
///
/// ```
/// use ssp_fd::{classify, PerfectOracle};
/// use ssp_model::{FailurePattern, ProcessId, Time};
///
/// let mut pattern = FailurePattern::no_failures(3);
/// pattern.crash(ProcessId::new(2), Time::new(4));
///
/// let history = PerfectOracle::new(&pattern)
///     .delay(ProcessId::new(0), ProcessId::new(2), 10)
///     .build();
/// let props = classify(&pattern, &history, Time::new(100));
/// assert!(props.is_perfect());
/// ```
#[derive(Debug, Clone)]
pub struct PerfectOracle<'a> {
    pattern: &'a FailurePattern,
    default_delay: u64,
    delays: Vec<Option<u64>>, // observer-major [observer][target]
}

impl<'a> PerfectOracle<'a> {
    /// Creates an oracle for `pattern` with default detection delay 1.
    #[must_use]
    pub fn new(pattern: &'a FailurePattern) -> Self {
        let n = pattern.universe_size();
        PerfectOracle {
            pattern,
            default_delay: 1,
            delays: vec![None; n * n],
        }
    }

    /// Sets the detection delay applied when no per-pair delay is given.
    #[must_use]
    pub fn default_delay(mut self, delay: u64) -> Self {
        self.default_delay = delay;
        self
    }

    /// Sets how many ticks after `target`'s crash the `observer` starts
    /// suspecting it. Finite but arbitrary — the `SP` adversary's knob.
    #[must_use]
    pub fn delay(mut self, observer: ProcessId, target: ProcessId, delay: u64) -> Self {
        let n = self.pattern.universe_size();
        self.delays[observer.index() * n + target.index()] = Some(delay);
        self
    }

    /// Draws every per-pair delay uniformly from `0..=max_delay`.
    #[must_use]
    pub fn random_delays<R: Rng>(mut self, rng: &mut R, max_delay: u64) -> Self {
        for d in &mut self.delays {
            *d = Some(rng.gen_range(0..=max_delay));
        }
        self
    }

    /// Builds the history: observer `p` suspects target `q` from
    /// `crash_time(q) + delay(p, q)` onward; never suspects correct
    /// processes.
    #[must_use]
    pub fn build(&self) -> FdHistory {
        let n = self.pattern.universe_size();
        let mut h = FdHistory::new(n);
        for q in self.pattern.faulty().iter() {
            let crash = self
                .pattern
                .crash_time(q)
                .expect("faulty process has a crash time");
            for p in all_processes(n) {
                let delay = self.delays[p.index() * n + q.index()].unwrap_or(self.default_delay);
                h.suspect_from(p, q, crash + delay);
            }
        }
        h
    }
}

/// Convenience: the perfect history where every crash is detected by
/// everyone exactly `delay` ticks after it happens.
#[must_use]
pub fn perfect_history(pattern: &FailurePattern, delay: u64) -> FdHistory {
    PerfectOracle::new(pattern).default_delay(delay).build()
}

/// Builds an *eventually perfect* (`◇P`) history: like the perfect one,
/// but before `stabilization` each observer may wrongly suspect
/// arbitrary processes; all false suspicions are retracted at
/// `stabilization`.
///
/// Used to test that the class checkers separate `P` from `◇P`.
#[must_use]
pub fn eventually_perfect_history<R: Rng>(
    pattern: &FailurePattern,
    detection_delay: u64,
    stabilization: Time,
    rng: &mut R,
) -> FdHistory {
    let n = pattern.universe_size();
    let mut h = perfect_history(pattern, detection_delay);
    for p in all_processes(n) {
        for q in all_processes(n) {
            if p != q && stabilization > Time::ZERO && rng.gen_bool(0.5) {
                // False suspicion during [start, end) ⊂ [0, stabilization).
                let start = rng.gen_range(0..stabilization.tick());
                let end = rng.gen_range(start + 1..=stabilization.tick());
                let mut at_start = h.query(p, Time::new(start));
                at_start.insert(q);
                h.set(p, Time::new(start), at_start);
                let mut at_end = h.query(p, Time::new(end));
                at_end.remove(q);
                h.set(p, Time::new(end), at_end);
            }
        }
    }
    // Re-assert the perfect suspicions from stabilization on, in case a
    // retraction above clobbered one.
    for q in pattern.faulty().iter() {
        let crash = pattern.crash_time(q).expect("faulty has crash time");
        for p in all_processes(n) {
            h.suspect_from(p, q, (crash + detection_delay).max(stabilization));
        }
    }
    h
}

/// Builds a *strong* (`S`) history: complete, and accurate only about
/// one distinguished correct process (`immune`) — every other process
/// may be wrongly and permanently suspected by anyone.
///
/// Separates `S` from `P` in the class checkers: the history below is
/// complete and weakly accurate but (when any `wrong` pair is given)
/// not strongly accurate.
///
/// # Panics
///
/// Panics if `immune` is faulty in `pattern` — weak accuracy needs a
/// correct never-suspected process.
#[must_use]
pub fn strong_history(
    pattern: &FailurePattern,
    detection_delay: u64,
    immune: ProcessId,
    wrong: &[(ProcessId, ProcessId)],
) -> FdHistory {
    assert!(
        pattern.is_correct(immune),
        "the immune process must be correct"
    );
    let mut h = perfect_history(pattern, detection_delay);
    for &(observer, target) in wrong {
        if target != immune {
            h.suspect_from(observer, target, Time::ZERO);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::classify;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn oracle_builds_perfect_histories() {
        let mut pattern = FailurePattern::no_failures(4);
        pattern.crash(p(1), Time::new(3));
        pattern.crash(p(3), Time::new(9));
        let h = PerfectOracle::new(&pattern)
            .default_delay(2)
            .delay(p(0), p(1), 50)
            .build();
        // Never before the crash:
        assert!(!h.query(p(0), Time::new(52)).contains(p(1)));
        assert!(h.query(p(0), Time::new(53)).contains(p(1)));
        // Default delay elsewhere:
        assert!(h.query(p(2), Time::new(5)).contains(p(1)));
        let props = classify(&pattern, &h, Time::new(200));
        assert!(props.is_perfect());
    }

    #[test]
    fn random_delays_remain_perfect() {
        let mut rng = StdRng::seed_from_u64(7);
        for seed in 0..20u64 {
            let mut pattern = FailurePattern::no_failures(5);
            pattern.crash(p((seed % 5) as usize), Time::new(seed % 11));
            let h = PerfectOracle::new(&pattern)
                .random_delays(&mut rng, 100)
                .build();
            let props = classify(&pattern, &h, Time::new(300));
            assert!(props.is_perfect(), "seed {seed}: {props}");
        }
    }

    #[test]
    fn eventually_perfect_is_diamond_p_not_p() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut pattern = FailurePattern::no_failures(4);
        pattern.crash(p(2), Time::new(6));
        let mut found_impure = false;
        for _ in 0..20 {
            let h = eventually_perfect_history(&pattern, 1, Time::new(30), &mut rng);
            let props = classify(&pattern, &h, Time::new(100));
            assert!(props.is_eventually_perfect());
            if !props.is_perfect() {
                found_impure = true;
            }
        }
        assert!(
            found_impure,
            "at least one sampled history should make a false suspicion"
        );
    }

    #[test]
    fn strong_history_is_s_but_not_p() {
        let mut pattern = FailurePattern::no_failures(4);
        pattern.crash(p(3), Time::new(5));
        // p2 permanently (and wrongly) suspects the correct p1; p0 is immune.
        let h = strong_history(&pattern, 1, p(0), &[(p(1), p(2))]);
        let props = classify(&pattern, &h, Time::new(50));
        assert!(props.strong_completeness);
        assert!(props.weak_accuracy, "p1 is never suspected");
        assert!(!props.strong_accuracy, "p3 is wrongly suspected");
        assert!(props.is_strong());
        assert!(!props.is_perfect());
        // The false suspicion is permanent, so not even ◇P.
        assert!(!props.is_eventually_perfect());
        assert!(props.is_eventually_strong());
    }

    #[test]
    #[should_panic(expected = "immune process must be correct")]
    fn strong_history_rejects_faulty_immune() {
        let mut pattern = FailurePattern::no_failures(2);
        pattern.crash(p(0), Time::ZERO);
        let _ = strong_history(&pattern, 1, p(0), &[]);
    }

    #[test]
    fn failure_free_pattern_yields_empty_history() {
        let pattern = FailurePattern::no_failures(3);
        let h = perfect_history(&pattern, 1);
        assert_eq!(h.last_change(), Time::ZERO);
        assert!(classify(&pattern, &h, Time::new(10)).is_perfect());
    }
}
