//! Failure detector histories (§2.5).
//!
//! A history `H : Π × T → 2^Π` gives, for each observer process and
//! each time, the set of processes the observer's local failure
//! detector module currently suspects. [`FdHistory`] stores the
//! piecewise-constant function as per-observer change points.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use ssp_model::{ProcessId, ProcessSet, Time};

/// A concrete failure detector history.
///
/// Suspicion sets are piecewise-constant in time: `set` records the
/// value from a given time onward, `query` reads the value in effect
/// at a time (empty before the first change point).
///
/// # Examples
///
/// ```
/// use ssp_fd::FdHistory;
/// use ssp_model::{ProcessId, ProcessSet, Time};
///
/// let mut h = FdHistory::new(2);
/// let (p1, p2) = (ProcessId::new(0), ProcessId::new(1));
/// h.set(p1, Time::new(5), ProcessSet::singleton(p2));
/// assert!(h.query(p1, Time::new(4)).is_empty());
/// assert!(h.query(p1, Time::new(5)).contains(p2));
/// assert!(h.query(p1, Time::new(99)).contains(p2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FdHistory {
    n: usize,
    /// Per observer: time → suspicion set from that time on.
    changes: Vec<BTreeMap<Time, ProcessSet>>,
}

impl FdHistory {
    /// Creates the history where nobody ever suspects anybody.
    #[must_use]
    pub fn new(n: usize) -> Self {
        FdHistory {
            n,
            changes: vec![BTreeMap::new(); n],
        }
    }

    /// Number of processes in the universe.
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.n
    }

    /// Sets observer `p`'s suspicion set from time `t` onward
    /// (until the next later change point, if any).
    pub fn set(&mut self, p: ProcessId, t: Time, suspects: ProcessSet) -> &mut Self {
        self.changes[p.index()].insert(t, suspects);
        self
    }

    /// Adds `q` to observer `p`'s suspicion set from time `t` onward,
    /// preserving all later change points (they also gain `q`).
    pub fn suspect_from(&mut self, p: ProcessId, q: ProcessId, t: Time) -> &mut Self {
        let map = &mut self.changes[p.index()];
        // Value in effect just before t.
        let mut current = map
            .range(..=t)
            .next_back()
            .map(|(_, s)| *s)
            .unwrap_or(ProcessSet::empty());
        current.insert(q);
        map.insert(t, current);
        // Propagate to all later change points.
        let later: Vec<Time> = map.range(t.next()..).map(|(k, _)| *k).collect();
        for k in later {
            let mut s = map[&k];
            s.insert(q);
            map.insert(k, s);
        }
        self
    }

    /// The value `H(p, t)`.
    #[must_use]
    pub fn query(&self, p: ProcessId, t: Time) -> ProcessSet {
        self.changes[p.index()]
            .range(..=t)
            .next_back()
            .map(|(_, s)| *s)
            .unwrap_or(ProcessSet::empty())
    }

    /// All change points of observer `p`, in time order.
    pub fn change_points(&self, p: ProcessId) -> impl Iterator<Item = (Time, ProcessSet)> + '_ {
        self.changes[p.index()].iter().map(|(&t, &s)| (t, s))
    }

    /// The latest change point across all observers, or `Time::ZERO`
    /// for the empty history. Useful to pick a checking horizon.
    #[must_use]
    pub fn last_change(&self) -> Time {
        self.changes
            .iter()
            .filter_map(|m| m.keys().next_back().copied())
            .max()
            .unwrap_or(Time::ZERO)
    }
}

impl fmt::Display for FdHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "failure detector history:")?;
        for i in 0..self.n {
            let p = ProcessId::new(i);
            write!(f, "  {p}:")?;
            if self.changes[i].is_empty() {
                writeln!(f, " never suspects")?;
                continue;
            }
            for (t, s) in &self.changes[i] {
                write!(f, " [{}→{s}]", t.tick())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn empty_history_never_suspects() {
        let h = FdHistory::new(3);
        for i in 0..3 {
            assert!(h.query(p(i), Time::new(1000)).is_empty());
        }
        assert_eq!(h.last_change(), Time::ZERO);
    }

    #[test]
    fn set_is_piecewise_constant() {
        let mut h = FdHistory::new(2);
        h.set(p(0), Time::new(3), ProcessSet::singleton(p(1)));
        h.set(p(0), Time::new(7), ProcessSet::empty());
        assert!(h.query(p(0), Time::new(2)).is_empty());
        assert!(h.query(p(0), Time::new(3)).contains(p(1)));
        assert!(h.query(p(0), Time::new(6)).contains(p(1)));
        assert!(h.query(p(0), Time::new(7)).is_empty());
    }

    #[test]
    fn suspect_from_preserves_later_points() {
        let mut h = FdHistory::new(3);
        h.set(p(0), Time::new(10), ProcessSet::singleton(p(1)));
        h.suspect_from(p(0), p(2), Time::new(5));
        // From 5: {p3}. From 10: {p2, p3} (later point gains p3).
        assert_eq!(h.query(p(0), Time::new(5)), ProcessSet::singleton(p(2)));
        let at10 = h.query(p(0), Time::new(10));
        assert!(at10.contains(p(1)) && at10.contains(p(2)));
    }

    #[test]
    fn change_points_are_ordered() {
        let mut h = FdHistory::new(1);
        h.set(p(0), Time::new(9), ProcessSet::empty());
        h.set(p(0), Time::new(2), ProcessSet::singleton(p(0)));
        let times: Vec<u64> = h.change_points(p(0)).map(|(t, _)| t.tick()).collect();
        assert_eq!(times, [2, 9]);
        assert_eq!(h.last_change(), Time::new(9));
    }

    #[test]
    fn display_mentions_observers() {
        let mut h = FdHistory::new(2);
        h.set(p(0), Time::new(1), ProcessSet::singleton(p(1)));
        let s = h.to_string();
        assert!(s.contains("p1"));
        assert!(s.contains("never suspects"));
    }
}
