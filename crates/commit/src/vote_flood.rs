//! The vote-flooding atomic commit protocol.
//!
//! Round 1: everyone floods its vote map (initially just its own
//! vote); rounds 2..t+1 keep flooding the merged maps. After `t+1`
//! rounds a process commits iff its map holds a `Yes` from *every*
//! process. The FloodSet agreement argument carries over verbatim to
//! maps, so the decision is uniform.
//!
//! * [`VoteFlood`] (`RS`): commits whenever every vote *survived*
//!   (reached some process that lives through the round), which is the
//!   §3 SDD-boosted non-triviality — crashes that happen after the
//!   vote got out do not force an abort.
//! * [`VoteFloodWs`] (`RWS`): adds the FloodSetWS halt mechanism to
//!   stay uniform under pending messages — and therefore aborts in
//!   exactly the runs where the adversary made votes pending. The
//!   measurable commit-rate gap between the two is experiment E10.

use ssp_model::{Decision, ProcessId, ProcessSet, Round};
use ssp_rounds::{CrashSchedule, PendingChoice, RoundAlgorithm, RoundProcess};

/// A (partial) vote map: `map[i] = Some(vote)` once `p_{i+1}`'s vote is
/// known.
pub type VoteMap = Vec<Option<bool>>;

/// Vote-flooding commit for the `RS` model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VoteFlood;

/// Vote-flooding commit for the `RWS` model (halt mechanism added).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VoteFloodWs;

/// Per-process state of the vote-flooding protocols.
#[derive(Debug)]
pub struct VoteFloodProcess {
    t: usize,
    map: VoteMap,
    halt: Option<ProcessSet>,
    decision: Decision<bool>,
}

impl RoundProcess for VoteFloodProcess {
    type Msg = VoteMap;
    type Value = bool;

    fn msgs(&self, round: Round, _dst: ProcessId) -> Option<VoteMap> {
        (round.get() as usize <= self.t + 1).then(|| self.map.clone())
    }

    fn trans(&mut self, round: Round, received: &[Option<VoteMap>]) {
        for (j, m) in received.iter().enumerate() {
            if let Some(m) = m {
                let halted = self.halt.is_some_and(|h| h.contains(ProcessId::new(j)));
                if !halted {
                    for (slot, vote) in m.iter().enumerate() {
                        if let Some(v) = vote {
                            self.map[slot] = Some(*v);
                        }
                    }
                }
            }
        }
        if let Some(halt) = &mut self.halt {
            for (j, m) in received.iter().enumerate() {
                if m.is_none() {
                    halt.insert(ProcessId::new(j));
                }
            }
        }
        if round.get() as usize == self.t + 1 {
            let commit = self.map.iter().all(|v| *v == Some(true));
            self.decision.decide(commit, round).expect("decides once");
        }
    }

    fn decision(&self) -> Option<(bool, Round)> {
        self.decision.clone().into_inner()
    }
}

fn spawn_process(me: ProcessId, n: usize, t: usize, vote: bool, ws: bool) -> VoteFloodProcess {
    let mut map = vec![None; n];
    map[me.index()] = Some(vote);
    VoteFloodProcess {
        t,
        map,
        halt: ws.then(ProcessSet::empty),
        decision: Decision::unknown(),
    }
}

impl RoundAlgorithm<bool> for VoteFlood {
    type Process = VoteFloodProcess;

    fn name(&self) -> &str {
        "VoteFlood"
    }

    fn spawn(&self, me: ProcessId, n: usize, t: usize, vote: bool) -> VoteFloodProcess {
        spawn_process(me, n, t, vote, false)
    }

    fn round_horizon(&self, _n: usize, t: usize) -> u32 {
        t as u32 + 1
    }
}

impl RoundAlgorithm<bool> for VoteFloodWs {
    type Process = VoteFloodProcess;

    fn name(&self) -> &str {
        "VoteFloodWS"
    }

    fn spawn(&self, me: ProcessId, n: usize, t: usize, vote: bool) -> VoteFloodProcess {
        spawn_process(me, n, t, vote, true)
    }

    fn round_horizon(&self, _n: usize, t: usize) -> u32 {
        t as u32 + 1
    }
}

/// Ground truth for the SDD-boosted non-triviality premise: whether
/// every process's vote reaches a process that survives the whole run,
/// under unfiltered flooding with the given schedule and pending
/// choice.
///
/// Computed by simulating per-vote holder sets round by round: a
/// holder's round-`r` flood teaches every destination it actually
/// reaches (sent, not withheld, and the destination survives the
/// round).
#[must_use]
pub fn votes_all_survive(
    n: usize,
    horizon: u32,
    schedule: &CrashSchedule,
    pending: &PendingChoice,
) -> bool {
    (0..n).all(|origin| {
        let origin = ProcessId::new(origin);
        let mut holders = ProcessSet::singleton(origin);
        for r in (1..=horizon).map(Round::new) {
            let mut next = holders;
            for q in holders.iter() {
                if !schedule.sends_in(q, r) {
                    continue;
                }
                for d in (0..n).map(ProcessId::new) {
                    if schedule.emits(q, r, d)
                        && !pending.is_withheld(r, q, d)
                        && schedule.is_alive_through(d, r)
                    {
                        next.insert(d);
                    }
                }
            }
            // Crashed holders stop counting as holders for later rounds,
            // but anything they taught stays.
            holders = next
                .iter()
                .filter(|&q| schedule.is_alive_through(q, r))
                .collect();
            if holders.is_empty() {
                return false;
            }
        }
        !holders
            .intersection(ProcessSet::full(n).difference(fault_set(schedule, n)))
            .is_empty()
    })
}

fn fault_set(schedule: &CrashSchedule, n: usize) -> ProcessSet {
    (0..n)
        .map(ProcessId::new)
        .filter(|&p| schedule.crash_of(p).is_some())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{check_nbac, NonTriviality};
    use ssp_model::InitialConfig;
    use ssp_rounds::{run_rs, run_rws, RoundCrash};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn all_yes_failure_free_commits() {
        let config = InitialConfig::new(vec![true; 4]);
        let out = run_rs(&VoteFlood, &config, 2, &CrashSchedule::none(4));
        check_nbac(&out, NonTriviality::SddBoosted, true).unwrap();
        for (_, o) in out.iter() {
            assert!(o.decision.as_ref().unwrap().0);
        }
    }

    #[test]
    fn one_no_vote_aborts() {
        let config = InitialConfig::new(vec![true, false, true]);
        let out = run_rs(&VoteFlood, &config, 1, &CrashSchedule::none(3));
        check_nbac(&out, NonTriviality::SddBoosted, true).unwrap();
        for (_, o) in out.iter() {
            assert!(!o.decision.as_ref().unwrap().0);
        }
    }

    #[test]
    fn crash_after_vote_got_out_still_commits_in_rs() {
        // The §3 efficiency claim: p1 crashes mid-round-1 but reached
        // p2, so the vote survives and everyone still commits.
        let config = InitialConfig::new(vec![true, true, true]);
        let mut schedule = CrashSchedule::none(3);
        schedule.crash(
            p(0),
            RoundCrash {
                round: Round::FIRST,
                sends_to: ProcessSet::singleton(p(1)),
            },
        );
        assert!(votes_all_survive(3, 2, &schedule, &PendingChoice::none()));
        let out = run_rs(&VoteFlood, &config, 1, &schedule);
        check_nbac(&out, NonTriviality::SddBoosted, true).unwrap();
        for q in [p(1), p(2)] {
            assert!(out.outcome(q).decision.as_ref().unwrap().0);
        }
    }

    #[test]
    fn initially_dead_process_forces_abort() {
        let config = InitialConfig::new(vec![true, true, true]);
        let mut schedule = CrashSchedule::none(3);
        schedule.crash(
            p(0),
            RoundCrash {
                round: Round::FIRST,
                sends_to: ProcessSet::empty(),
            },
        );
        assert!(!votes_all_survive(3, 2, &schedule, &PendingChoice::none()));
        let out = run_rs(&VoteFlood, &config, 1, &schedule);
        check_nbac(&out, NonTriviality::SddBoosted, false).unwrap();
        for q in [p(1), p(2)] {
            assert!(!out.outcome(q).decision.as_ref().unwrap().0);
        }
    }

    #[test]
    fn pending_votes_force_abort_in_rws() {
        // Same crash as `crash_after_vote_got_out_still_commits_in_rs`,
        // but the adversary withholds the vote: RWS must abort where RS
        // committed — the commit-rate gap in one run.
        let config = InitialConfig::new(vec![true, true, true]);
        let mut schedule = CrashSchedule::none(3);
        schedule.crash(
            p(0),
            RoundCrash {
                round: Round::FIRST,
                sends_to: ProcessSet::singleton(p(1)),
            },
        );
        let mut pending = PendingChoice::none();
        pending.withhold(Round::FIRST, p(0), p(1));
        assert!(!votes_all_survive(3, 2, &schedule, &pending));
        let out = run_rws(&VoteFloodWs, &config, 1, &schedule, &pending).unwrap();
        check_nbac(&out, NonTriviality::Classic, false).unwrap();
        for q in [p(1), p(2)] {
            assert!(!out.outcome(q).decision.as_ref().unwrap().0);
        }
    }

    #[test]
    fn ws_variant_stays_uniform_under_pending_leak() {
        // p1's round-1 map is pending for p3 but delivered to p2 in
        // round 2 via p1's partial crash send; halt keeps p2 from
        // acting on it, so p2 and p3 agree.
        let config = InitialConfig::new(vec![true, true, true]);
        let mut schedule = CrashSchedule::none(3);
        schedule.crash(
            p(0),
            RoundCrash {
                round: Round::new(2),
                sends_to: ProcessSet::singleton(p(1)),
            },
        );
        let mut pending = PendingChoice::none();
        pending.withhold(Round::FIRST, p(0), p(1));
        pending.withhold(Round::FIRST, p(0), p(2));
        let out = run_rws(&VoteFloodWs, &config, 1, &schedule, &pending).unwrap();
        check_nbac(&out, NonTriviality::Classic, false).unwrap();
        assert_eq!(
            out.outcome(p(1)).decision.as_ref().unwrap().0,
            out.outcome(p(2)).decision.as_ref().unwrap().0,
        );
    }
}
