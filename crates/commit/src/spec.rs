//! Non-blocking atomic commit: specification and checkers.
//!
//! Processes vote `Yes`/`No` on a transaction and must uniformly agree
//! on `Commit` or `Abort`:
//!
//! * **Uniform agreement** — no two processes (correct or faulty)
//!   decide differently;
//! * **Commit validity** — `Commit` only if every process voted `Yes`;
//! * **Non-triviality** — aborting must not be free. Two strengths:
//!   * [`NonTriviality::Classic`]: if all vote `Yes` and there is *no
//!     failure*, the decision is `Commit`;
//!   * [`NonTriviality::SddBoosted`] (§3): if all vote `Yes` and no
//!     process is initially dead — even if some crash later, provided
//!     each vote reaches some correct process — the decision is
//!     `Commit`. This is the strengthening the SDD problem buys in
//!     `SS`, and exactly what `SP` cannot offer;
//! * **Termination** — every correct process decides.
//!
//! A run is summarized as a [`ConsensusOutcome`]`<bool>`: the input is
//! the vote (`true` = `Yes`), the decision is `true` = `Commit`.

use core::fmt;

use ssp_model::{ConsensusOutcome, ProcessId};

/// Non-triviality strength for [`check_nbac`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonTriviality {
    /// Commit required only in failure-free all-`Yes` runs.
    Classic,
    /// Commit required in all-`Yes` runs where every vote reached some
    /// correct process (no vote was lost to an initial death or to
    /// pending messages). The caller reports vote survival via
    /// [`check_nbac`]'s `votes_all_survived` flag.
    SddBoosted,
}

/// Ways a run can violate the atomic commit specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NbacViolation {
    /// Two deciders disagree.
    Agreement {
        /// First decider and its decision.
        a: (ProcessId, bool),
        /// Conflicting decider and decision.
        b: (ProcessId, bool),
    },
    /// Commit decided although somebody voted `No`.
    CommitValidity {
        /// The offending decider.
        process: ProcessId,
        /// A process that voted `No`.
        no_voter: ProcessId,
    },
    /// Abort decided in a run where non-triviality demands commit.
    NonTriviality {
        /// The aborting process.
        process: ProcessId,
    },
    /// A correct process never decided.
    Termination {
        /// The undecided correct process.
        process: ProcessId,
    },
}

impl fmt::Display for NbacViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NbacViolation::Agreement { a, b } => write!(
                f,
                "commit agreement violated: {} decided {} but {} decided {}",
                a.0,
                if a.1 { "Commit" } else { "Abort" },
                b.0,
                if b.1 { "Commit" } else { "Abort" },
            ),
            NbacViolation::CommitValidity { process, no_voter } => write!(
                f,
                "commit validity violated: {process} committed although {no_voter} voted No"
            ),
            NbacViolation::NonTriviality { process } => write!(
                f,
                "non-triviality violated: {process} aborted a run that must commit"
            ),
            NbacViolation::Termination { process } => {
                write!(f, "termination violated: correct {process} never decided")
            }
        }
    }
}

impl std::error::Error for NbacViolation {}

/// Checks the atomic commit specification on a run outcome.
///
/// `votes_all_survived` reports whether every process's vote reached
/// some correct process (trivially true in failure-free runs); it
/// gates the [`NonTriviality::SddBoosted`] obligation.
///
/// # Errors
///
/// Returns the first violation in the order agreement, commit
/// validity, non-triviality, termination.
pub fn check_nbac(
    run: &ConsensusOutcome<bool>,
    mode: NonTriviality,
    votes_all_survived: bool,
) -> Result<(), NbacViolation> {
    // Uniform agreement.
    let mut first: Option<(ProcessId, bool)> = None;
    for (p, o) in run.iter() {
        if let Some((d, _)) = o.decision {
            match first {
                None => first = Some((p, d)),
                Some((q, e)) if e != d => {
                    return Err(NbacViolation::Agreement {
                        a: (q, e),
                        b: (p, d),
                    });
                }
                _ => {}
            }
        }
    }
    // Commit validity.
    let no_voter = run.iter().find(|(_, o)| !o.input).map(|(p, _)| p);
    if let Some(no_voter) = no_voter {
        for (p, o) in run.iter() {
            if matches!(o.decision, Some((true, _))) {
                return Err(NbacViolation::CommitValidity {
                    process: p,
                    no_voter,
                });
            }
        }
    }
    // Non-triviality.
    let all_yes = no_voter.is_none();
    let must_commit = match mode {
        NonTriviality::Classic => all_yes && run.fault_count() == 0,
        NonTriviality::SddBoosted => all_yes && votes_all_survived,
    };
    if must_commit {
        for (p, o) in run.iter() {
            if matches!(o.decision, Some((false, _))) {
                return Err(NbacViolation::NonTriviality { process: p });
            }
        }
    }
    // Termination.
    for (p, o) in run.iter() {
        if o.is_correct() && o.decision.is_none() {
            return Err(NbacViolation::Termination { process: p });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::{ProcessOutcome, Round};

    fn po(vote: bool, decision: Option<bool>, crashed: Option<u32>) -> ProcessOutcome<bool> {
        ProcessOutcome {
            input: vote,
            decision: decision.map(|d| (d, Round::FIRST)),
            crashed_in: crashed.map(Round::new),
        }
    }

    #[test]
    fn clean_commit_passes() {
        let run = ConsensusOutcome::new(vec![po(true, Some(true), None); 3]);
        check_nbac(&run, NonTriviality::Classic, true).unwrap();
        check_nbac(&run, NonTriviality::SddBoosted, true).unwrap();
    }

    #[test]
    fn disagreement_detected() {
        let run = ConsensusOutcome::new(vec![
            po(true, Some(true), Some(2)),
            po(true, Some(false), None),
        ]);
        assert!(matches!(
            check_nbac(&run, NonTriviality::Classic, true),
            Err(NbacViolation::Agreement { .. })
        ));
    }

    #[test]
    fn commit_against_a_no_vote_detected() {
        let run = ConsensusOutcome::new(vec![
            po(false, Some(true), None),
            po(true, Some(true), None),
        ]);
        assert!(matches!(
            check_nbac(&run, NonTriviality::Classic, true),
            Err(NbacViolation::CommitValidity { .. })
        ));
    }

    #[test]
    fn classic_mode_tolerates_abort_under_failures() {
        // One crash: aborting an all-Yes run is allowed classically …
        let run = ConsensusOutcome::new(vec![po(true, None, Some(1)), po(true, Some(false), None)]);
        check_nbac(&run, NonTriviality::Classic, true).unwrap();
        // … but not in SDD-boosted mode when the vote survived.
        assert!(matches!(
            check_nbac(&run, NonTriviality::SddBoosted, true),
            Err(NbacViolation::NonTriviality { .. })
        ));
        // If the vote was genuinely lost, aborting is fine even boosted.
        check_nbac(&run, NonTriviality::SddBoosted, false).unwrap();
    }

    #[test]
    fn failure_free_all_yes_must_commit() {
        let run = ConsensusOutcome::new(vec![po(true, Some(false), None); 2]);
        assert!(matches!(
            check_nbac(&run, NonTriviality::Classic, true),
            Err(NbacViolation::NonTriviality { .. })
        ));
    }

    #[test]
    fn termination_checked_last() {
        let run = ConsensusOutcome::new(vec![po(true, None, None), po(true, Some(true), None)]);
        assert!(matches!(
            check_nbac(&run, NonTriviality::Classic, true),
            Err(NbacViolation::Termination { .. })
        ));
    }
}
