//! Randomized commit workloads: the E10 commit-rate experiment.
//!
//! Generates random vote vectors, crash schedules and (for `RWS`)
//! pending choices; runs [`VoteFlood`] in `RS` and [`VoteFloodWs`] in
//! `RWS` on identical scenarios; and reports how often each side
//! reaches the Commit decision. The `RS` side commits in every all-Yes
//! run whose votes survive (SDD-boosted non-triviality); the `RWS`
//! side additionally aborts whenever the adversary made a vote
//! pending — the efficiency gap the paper's §3 promises.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ssp_model::{InitialConfig, ProcessId, ProcessSet, Round};
use ssp_rounds::{run_rs, run_rws, CrashSchedule, PendingChoice, RoundCrash};

use crate::spec::{check_nbac, NonTriviality};
use crate::vote_flood::{votes_all_survive, VoteFlood, VoteFloodWs};

/// Parameters of a randomized commit workload.
#[derive(Debug, Clone, Copy)]
pub struct CommitWorkload {
    /// Number of processes.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// Probability that a given process votes `Yes`.
    pub yes_prob: f64,
    /// Probability that a given process is scheduled to crash
    /// (subject to the bound `t`).
    pub crash_prob: f64,
    /// Probability that each pendable message is withheld (RWS side).
    pub pending_prob: f64,
}

impl CommitWorkload {
    /// An all-Yes workload, the regime where the §3 gap shows.
    #[must_use]
    pub fn all_yes(n: usize, t: usize, crash_prob: f64) -> Self {
        CommitWorkload {
            n,
            t,
            yes_prob: 1.0,
            crash_prob,
            pending_prob: 0.5,
        }
    }
}

/// One generated scenario.
#[derive(Debug, Clone)]
pub struct CommitScenario {
    /// The votes.
    pub votes: Vec<bool>,
    /// The crash plan.
    pub schedule: CrashSchedule,
    /// The pending choice applied on the `RWS` side.
    pub pending: PendingChoice,
}

/// Draws a random scenario.
#[must_use]
pub fn sample_scenario<R: Rng>(workload: &CommitWorkload, rng: &mut R) -> CommitScenario {
    let CommitWorkload {
        n,
        t,
        yes_prob,
        crash_prob,
        pending_prob,
    } = *workload;
    let horizon = t as u32 + 1;
    let votes: Vec<bool> = (0..n).map(|_| rng.gen_bool(yes_prob)).collect();
    let mut schedule = CrashSchedule::none(n);
    let mut crashes = 0;
    for i in 0..n {
        if crashes < t && rng.gen_bool(crash_prob) {
            let round = Round::new(rng.gen_range(1..=horizon + 1));
            let sends_to = ProcessSet::from_bits(rng.gen_range(0..(1u64 << n)));
            schedule.crash(ProcessId::new(i), RoundCrash { round, sends_to });
            crashes += 1;
        }
    }
    let mut pending = PendingChoice::none();
    for sender in (0..n).map(ProcessId::new) {
        let Some(crash) = schedule.crash_of(sender) else {
            continue;
        };
        for r in 1..=horizon {
            let r = Round::new(r);
            if crash.round > r.next() {
                continue;
            }
            for receiver in (0..n).map(ProcessId::new) {
                if receiver != sender
                    && schedule.emits(sender, r, receiver)
                    && rng.gen_bool(pending_prob)
                {
                    pending.withhold(r, sender, receiver);
                }
            }
        }
    }
    CommitScenario {
        votes,
        schedule,
        pending,
    }
}

/// Aggregate result of a commit-rate experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitRateReport {
    /// Scenarios run.
    pub trials: u64,
    /// Scenarios where every process voted `Yes`.
    pub all_yes_trials: u64,
    /// Commits decided by the `RS` protocol.
    pub rs_commits: u64,
    /// Commits decided by the `RWS` protocol.
    pub rws_commits: u64,
    /// Scenarios where `RS` committed but `RWS` aborted — the paper's
    /// efficiency gap, realized.
    pub gap_runs: u64,
}

impl CommitRateReport {
    /// `RS` commit rate over all trials.
    #[must_use]
    pub fn rs_rate(&self) -> f64 {
        self.rs_commits as f64 / self.trials.max(1) as f64
    }

    /// `RWS` commit rate over all trials.
    #[must_use]
    pub fn rws_rate(&self) -> f64 {
        self.rws_commits as f64 / self.trials.max(1) as f64
    }
}

/// Runs `trials` random scenarios and counts commit decisions on both
/// sides, validating each run against the commit specification
/// (panicking on any violation — this doubles as a randomized soundness
/// test of the protocols).
///
/// # Panics
///
/// Panics if either protocol violates its specification on a sampled
/// scenario.
#[must_use]
pub fn commit_rate_experiment(
    workload: &CommitWorkload,
    trials: u64,
    seed: u64,
) -> CommitRateReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = CommitRateReport::default();
    let horizon = workload.t as u32 + 1;
    for _ in 0..trials {
        let scenario = sample_scenario(workload, &mut rng);
        let config = InitialConfig::new(scenario.votes.clone());
        report.trials += 1;
        if scenario.votes.iter().all(|v| *v) {
            report.all_yes_trials += 1;
        }

        // RS side: no pending messages exist.
        let rs_out = run_rs(&VoteFlood, &config, workload.t, &scenario.schedule);
        let rs_survived = votes_all_survive(
            workload.n,
            horizon,
            &scenario.schedule,
            &PendingChoice::none(),
        );
        check_nbac(&rs_out, NonTriviality::SddBoosted, rs_survived)
            .unwrap_or_else(|e| panic!("RS commit violated: {e}\n{rs_out}"));
        let rs_committed = rs_out
            .iter()
            .any(|(_, o)| matches!(o.decision, Some((true, _))));

        // RWS side: the adversary's pending choice applies.
        let rws_out = run_rws(
            &VoteFloodWs,
            &config,
            workload.t,
            &scenario.schedule,
            &scenario.pending,
        )
        .expect("sampled pending choices are valid");
        check_nbac(&rws_out, NonTriviality::Classic, false)
            .unwrap_or_else(|e| panic!("RWS commit violated: {e}\n{rws_out}"));
        let rws_committed = rws_out
            .iter()
            .any(|(_, o)| matches!(o.decision, Some((true, _))));

        report.rs_commits += u64::from(rs_committed);
        report.rws_commits += u64::from(rws_committed);
        report.gap_runs += u64::from(rs_committed && !rws_committed);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_is_deterministic_per_seed() {
        let w = CommitWorkload::all_yes(3, 1, 0.5);
        let a = commit_rate_experiment(&w, 200, 11);
        let b = commit_rate_experiment(&w, 200, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn rs_commits_at_least_as_often_as_rws() {
        for seed in [1, 2, 3] {
            let w = CommitWorkload::all_yes(3, 1, 0.6);
            let r = commit_rate_experiment(&w, 300, seed);
            assert!(r.rs_commits >= r.rws_commits, "{r:?}");
            assert_eq!(r.gap_runs, r.rs_commits - r.rws_commits, "{r:?}");
        }
    }

    #[test]
    fn gap_is_nonzero_under_heavy_pending() {
        let w = CommitWorkload {
            n: 3,
            t: 1,
            yes_prob: 1.0,
            crash_prob: 0.9,
            pending_prob: 1.0,
        };
        let r = commit_rate_experiment(&w, 300, 42);
        assert!(r.gap_runs > 0, "expected a visible commit-rate gap: {r:?}");
    }

    #[test]
    fn failure_free_all_yes_always_commits_on_both_sides() {
        let w = CommitWorkload {
            n: 4,
            t: 2,
            yes_prob: 1.0,
            crash_prob: 0.0,
            pending_prob: 0.0,
        };
        let r = commit_rate_experiment(&w, 50, 5);
        assert_eq!(r.rs_commits, 50);
        assert_eq!(r.rws_commits, 50);
        assert_eq!(r.gap_runs, 0);
    }

    #[test]
    fn no_votes_never_commit() {
        let w = CommitWorkload {
            n: 3,
            t: 1,
            yes_prob: 0.0,
            crash_prob: 0.3,
            pending_prob: 0.5,
        };
        let r = commit_rate_experiment(&w, 100, 9);
        assert_eq!(r.rs_commits, 0);
        assert_eq!(r.rws_commits, 0);
    }
}
