//! Driving NBAC from *live* votes — the serving-path entry point.
//!
//! The [`workload`](crate::workload) module samples randomized
//! scenarios to *measure* the §3 commit-rate gap; this module is the
//! other direction: a caller that already holds real votes (e.g. a
//! sharded engine whose groups voted by deciding — or failing to
//! decide — a prepare batch) hands them to [`run_live_nbac`] and gets
//! back a typed [`CommitOutcome`] plus the spec-level
//! [`check_nbac`] audit of that very exchange.
//!
//! The vote exchange itself is a real protocol execution, not a table
//! lookup: [`VoteFlood`] under `RS` (attaining the SDD-boosted
//! non-triviality) or [`VoteFloodWs`] under `RWS` (classic
//! non-triviality; pending votes force aborts). Faults during the
//! exchange are scripted by a seed-deterministic [`NbacFaults`]:
//! at most one participant crashes mid-flood with a partial send set,
//! and under `RWS` the adversary may additionally withhold some of the
//! crash-round sends — exactly the shape that separates the two
//! models in §3.

use ssp_model::{InitialConfig, ProcessId, ProcessSet, Round};
use ssp_rounds::{run_rs, run_rws, CrashSchedule, PendingChoice, RoundCrash};

use crate::spec::{check_nbac, NbacViolation, NonTriviality};
use crate::vote_flood::{votes_all_survive, VoteFlood, VoteFloodWs};

/// The round model the vote exchange runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NbacModel {
    /// Synchronous rounds: [`VoteFlood`], SDD-boosted non-triviality.
    Rs,
    /// Weakly synchronous rounds: [`VoteFloodWs`], classic
    /// non-triviality — withheld votes force aborts.
    Rws,
}

/// The uniform decision of one atomic-commit exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// Every vote was `Yes` and reached the deciders: apply.
    Commit,
    /// Some vote was `No`, lost, or withheld: discard, exactly never.
    Abort,
}

/// Seed-deterministic faults scripted onto one vote exchange.
#[derive(Debug, Clone)]
pub struct NbacFaults {
    /// Crash schedule of the exchange (at most one crash).
    pub schedule: CrashSchedule,
    /// Withheld crash-round sends (`RWS` adversary; empty under `RS`).
    pub pending: PendingChoice,
}

/// Splitmix64 finalizer — the workspace's standard seed mixer.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl NbacFaults {
    /// A failure-free exchange over `participants` processes.
    #[must_use]
    pub fn none(participants: usize) -> Self {
        NbacFaults {
            schedule: CrashSchedule::none(participants),
            pending: PendingChoice::none(),
        }
    }

    /// Derives the exchange's faults from a seed: with probability 1/4
    /// one participant crashes in round 1 after reaching a
    /// seed-chosen subset of its peers; under `RWS`
    /// (`withholds = true`) each of those partial sends is withheld
    /// with probability 1/2. Deterministic per `(seed, participants)`.
    ///
    /// # Panics
    ///
    /// Panics if `participants < 2` — atomic commit across fewer than
    /// two owners is a single-group command, not a transaction.
    #[must_use]
    pub fn from_seed(seed: u64, participants: usize, withholds: bool) -> Self {
        assert!(participants >= 2, "NBAC needs at least two participants");
        let mut faults = NbacFaults::none(participants);
        let r = mix(seed, 0x6bac_c035_11fe_c0de);
        if !r.is_multiple_of(4) {
            return faults;
        }
        let victim = ProcessId::new(((r >> 8) as usize) % participants);
        let mut sends_to = ProcessSet::empty();
        for d in 0..participants {
            if d != victim.index() && (r >> (16 + d)) & 1 == 1 {
                sends_to.insert(ProcessId::new(d));
            }
        }
        faults.schedule.crash(
            victim,
            RoundCrash {
                round: Round::FIRST,
                sends_to,
            },
        );
        if withholds {
            for d in sends_to.iter() {
                if (r >> (40 + d.index())) & 1 == 1 {
                    faults.pending.withhold(Round::FIRST, victim, d);
                }
            }
        }
        faults
    }
}

/// Everything one live vote exchange produced: the typed outcome plus
/// its own spec-level audit.
#[derive(Debug, Clone)]
pub struct LiveNbacRun {
    /// The uniform decision.
    pub outcome: CommitOutcome,
    /// Whether every vote reached a surviving participant (the
    /// SDD-boosted non-triviality premise, computed as ground truth
    /// from the scripted faults).
    pub votes_survived: bool,
    /// The `check_nbac` verdict of this exchange — `Some` is an audit
    /// failure the caller must surface.
    pub violation: Option<NbacViolation>,
}

/// Runs one non-blocking atomic commit exchange over live votes:
/// executes the vote-flooding protocol of the given model under the
/// scripted faults, extracts the uniform decision, and audits the run
/// against the NBAC specification ([`NonTriviality::SddBoosted`] under
/// `RS`, [`NonTriviality::Classic`] under `RWS`).
///
/// # Panics
///
/// Panics if `votes` has fewer than two entries, or if the scripted
/// faults are inconsistent with the model (never the case for
/// [`NbacFaults`]-constructed scripts).
#[must_use]
pub fn run_live_nbac(votes: &[bool], model: NbacModel, faults: &NbacFaults) -> LiveNbacRun {
    assert!(votes.len() >= 2, "NBAC needs at least two participants");
    let t = votes.len() - 1;
    #[allow(clippy::cast_possible_truncation)]
    let horizon = t as u32 + 1;
    let config = InitialConfig::new(votes.to_vec());
    let (out, mode) = match model {
        NbacModel::Rs => (
            run_rs(&VoteFlood, &config, t, &faults.schedule),
            NonTriviality::SddBoosted,
        ),
        NbacModel::Rws => (
            run_rws(&VoteFloodWs, &config, t, &faults.schedule, &faults.pending)
                .expect("NbacFaults withholds only crash-round sends"),
            NonTriviality::Classic,
        ),
    };
    let votes_survived = votes_all_survive(votes.len(), horizon, &faults.schedule, &faults.pending);
    let violation = check_nbac(&out, mode, votes_survived).err();
    let outcome = match out.iter().find_map(|(_, o)| o.decision.as_ref()) {
        Some(&(true, _)) => CommitOutcome::Commit,
        _ => CommitOutcome::Abort,
    };
    LiveNbacRun {
        outcome,
        votes_survived,
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_free_all_yes_commits_in_both_models() {
        for model in [NbacModel::Rs, NbacModel::Rws] {
            let run = run_live_nbac(&[true, true, true], model, &NbacFaults::none(3));
            assert_eq!(run.outcome, CommitOutcome::Commit);
            assert!(run.votes_survived);
            assert!(run.violation.is_none());
        }
    }

    #[test]
    fn one_no_vote_aborts_cleanly() {
        let run = run_live_nbac(&[true, false], NbacModel::Rs, &NbacFaults::none(2));
        assert_eq!(run.outcome, CommitOutcome::Abort);
        assert!(run.violation.is_none());
    }

    #[test]
    fn seeded_faults_are_deterministic_and_audit_clean() {
        for seed in 0..256u64 {
            for (model, withholds) in [(NbacModel::Rs, false), (NbacModel::Rws, true)] {
                let a = NbacFaults::from_seed(seed, 3, withholds);
                let b = NbacFaults::from_seed(seed, 3, withholds);
                let ra = run_live_nbac(&[true, true, true], model, &a);
                let rb = run_live_nbac(&[true, true, true], model, &b);
                assert_eq!(ra.outcome, rb.outcome, "seed {seed}");
                assert!(
                    ra.violation.is_none(),
                    "seed {seed} {model:?}: {:?}",
                    ra.violation
                );
            }
        }
    }

    #[test]
    fn lost_vote_aborts_without_a_violation() {
        // The victim crashes before reaching anyone: its vote is lost,
        // so aborting is mandatory-compatible (premise fails).
        let mut faults = NbacFaults::none(3);
        faults.schedule.crash(
            ProcessId::new(0),
            RoundCrash {
                round: Round::FIRST,
                sends_to: ProcessSet::empty(),
            },
        );
        let run = run_live_nbac(&[true, true, true], NbacModel::Rs, &faults);
        assert_eq!(run.outcome, CommitOutcome::Abort);
        assert!(!run.votes_survived);
        assert!(run.violation.is_none());
    }

    #[test]
    fn rs_commits_where_rws_must_abort() {
        // The §3 gap, live: the crashed participant's vote got out to
        // one peer, but the RWS adversary withholds it.
        let mut rs = NbacFaults::none(3);
        rs.schedule.crash(
            ProcessId::new(0),
            RoundCrash {
                round: Round::FIRST,
                sends_to: ProcessSet::singleton(ProcessId::new(1)),
            },
        );
        let mut rws = rs.clone();
        rws.pending
            .withhold(Round::FIRST, ProcessId::new(0), ProcessId::new(1));

        let votes = [true, true, true];
        let in_rs = run_live_nbac(&votes, NbacModel::Rs, &rs);
        assert_eq!(in_rs.outcome, CommitOutcome::Commit);
        assert!(in_rs.violation.is_none());

        let in_rws = run_live_nbac(&votes, NbacModel::Rws, &rws);
        assert_eq!(in_rws.outcome, CommitOutcome::Abort);
        assert!(in_rws.violation.is_none());
    }
}
