//! Atomic commit on top of the round models — the application §3 uses
//! to motivate the Strongly Dependent Decision problem.
//!
//! * [`spec`] — the non-blocking atomic commit specification with two
//!   non-triviality strengths: the classic one (commit when all-Yes
//!   and failure-free) and the *SDD-boosted* one of §3 (commit when
//!   all-Yes and every vote survived, crashes notwithstanding);
//! * [`vote_flood`] — the flooding commit protocol, in an `RS` variant
//!   that attains the boosted guarantee and an `RWS` variant that must
//!   abort whenever the adversary makes votes pending;
//! * [`workload`] — randomized scenarios measuring the resulting
//!   commit-rate gap (experiment E10): the quantitative content of
//!   "synchronous commit decides Commit more often";
//! * [`live`] — the serving-path driver: callers holding *live* votes
//!   (the sharded engine's shard groups) run one audited vote-flood
//!   exchange and get a typed [`CommitOutcome`] back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod live;
pub mod spec;
pub mod vote_flood;
pub mod workload;

pub use live::{run_live_nbac, CommitOutcome, LiveNbacRun, NbacFaults, NbacModel};
pub use spec::{check_nbac, NbacViolation, NonTriviality};
pub use vote_flood::{votes_all_survive, VoteFlood, VoteFloodProcess, VoteFloodWs, VoteMap};
pub use workload::{
    commit_rate_experiment, sample_scenario, CommitRateReport, CommitScenario, CommitWorkload,
};
