//! Executable version of §3's opening claim: *"In the synchronous
//! model, detecting failures perfectly is easy: with a simple time-out
//! mechanism whose periods depend on the `Δ` and `Φ` bounds, one can
//! implement a perfect failure detector."*
//!
//! [`HeartbeatProcess`] runs in the `SS` step executor, cycling
//! heartbeats to its peers and suspecting a peer once it has been
//! silent for more than `(Φ+1)·(n−1) + Δ` of the observer's own steps —
//! sound because an alive peer addresses every other peer once per
//! `n−1` of its steps, takes at least one step per `Φ+1` of the
//! observer's, and its message is force-delivered within `Δ`.
//!
//! [`run_heartbeat_experiment`] executes a crash scenario, collects
//! each observer's suspicion history on the global clock, and returns
//! it with the realized failure pattern so the Chandra–Toueg property
//! checkers of `ssp-fd` can certify the result as `P`.

use ssp_fd::FdHistory;
use ssp_model::{FailurePattern, ProcessId, ProcessSet};
use ssp_sim::{
    run, BoxedAutomaton, FairAdversary, ModelKind, StepAutomaton, StepContext, TraceEvent,
};

/// The silence bound, in observer own-steps: `(Φ+1)·(n−1) + Δ`.
#[must_use]
pub fn heartbeat_silence_bound(phi: u64, delta: u64, n: usize) -> u64 {
    (phi + 1) * (n as u64 - 1) + delta
}

/// A heartbeat-and-timeout process implementing `P` inside `SS`.
#[derive(Debug)]
pub struct HeartbeatProcess {
    me: ProcessId,
    n: usize,
    bound: u64,
    /// Own-step at which we last heard from each peer (start counts as 0).
    last_heard: Vec<u64>,
    suspects: ProcessSet,
}

impl HeartbeatProcess {
    /// Creates the heartbeat process for observer `me` among `n`
    /// processes in an `SS` system with bounds `(phi, delta)`.
    #[must_use]
    pub fn new(me: ProcessId, n: usize, phi: u64, delta: u64) -> Self {
        HeartbeatProcess {
            me,
            n,
            bound: heartbeat_silence_bound(phi, delta, n),
            last_heard: vec![0; n],
            suspects: ProcessSet::empty(),
        }
    }

    /// The observer's current suspicion set.
    #[must_use]
    pub fn suspects(&self) -> ProcessSet {
        self.suspects
    }
}

impl StepAutomaton for HeartbeatProcess {
    type Msg = ();
    /// The automaton never "finishes"; its output stays `None`.
    type Output = ();

    fn step(&mut self, ctx: StepContext<'_, ()>) -> Option<(ProcessId, ())> {
        for env in ctx.received {
            self.last_heard[env.src.index()] = ctx.own_step;
        }
        for i in 0..self.n {
            let q = ProcessId::new(i);
            if q != self.me && ctx.own_step.saturating_sub(self.last_heard[i]) > self.bound {
                self.suspects.insert(q);
            }
        }
        // Cycle heartbeats over the n−1 peers.
        if self.n <= 1 {
            return None;
        }
        let slot = (ctx.own_step % (self.n as u64 - 1)) as usize;
        let peer = (self.me.index() + 1 + slot) % self.n;
        Some((ProcessId::new(peer), ()))
    }

    fn output(&self) -> Option<()> {
        None
    }
}

/// Outcome of a heartbeat experiment: the suspicion histories (indexed
/// by the global clock) and the realized failure pattern, ready for
/// [`ssp_fd::classify`].
#[derive(Debug)]
pub struct HeartbeatExperiment {
    /// Suspicion history of every observer, on the global clock.
    pub history: FdHistory,
    /// The realized failure pattern.
    pub pattern: FailurePattern,
    /// Global clock horizon of the run.
    pub horizon: ssp_model::Time,
}

/// Runs `n` heartbeat processes under `SS(phi, delta)` for `events`
/// scheduler events; `crash_after_steps[i] = Some(k)` crashes process
/// `i` right after its `k`-th step.
///
/// # Panics
///
/// Panics if the executor rejects the (always legal) fair schedule.
#[must_use]
pub fn run_heartbeat_experiment(
    n: usize,
    phi: u64,
    delta: u64,
    crash_after_steps: &[Option<u64>],
    events: u64,
) -> HeartbeatExperiment {
    run_heartbeat_experiment_seeded(n, phi, delta, crash_after_steps, events, None)
}

/// Like [`run_heartbeat_experiment`], but scheduled by a seeded random
/// (yet `SS`-legal) adversary when `seed` is `Some` — the silence bound
/// must be sound under *every* legal schedule, not just round-robin.
#[must_use]
pub fn run_heartbeat_experiment_seeded(
    n: usize,
    phi: u64,
    delta: u64,
    crash_after_steps: &[Option<u64>],
    events: u64,
    seed: Option<u64>,
) -> HeartbeatExperiment {
    let automata: Vec<BoxedAutomaton<(), ()>> = (0..n)
        .map(|i| Box::new(HeartbeatProcess::new(ProcessId::new(i), n, phi, delta)) as _)
        .collect();
    let result = match seed {
        None => {
            let mut adv = FairAdversary::new(n, events);
            for (i, quota) in crash_after_steps.iter().enumerate() {
                if let Some(q) = quota {
                    adv = adv.with_crash(ProcessId::new(i), *q);
                }
            }
            run(ModelKind::ss(phi, delta), automata, &mut adv, events + 10)
        }
        Some(seed) => {
            let mut adv = ssp_sim::RandomAdversary::new(n, events, seed);
            for (i, quota) in crash_after_steps.iter().enumerate() {
                if let Some(q) = quota {
                    adv = adv.with_crash(ProcessId::new(i), *q);
                }
            }
            run(ModelKind::ss(phi, delta), automata, &mut adv, events + 10)
        }
    }
    .expect("schedulable choices only: legal in SS");

    // Rebuild each observer's suspicion history on the global clock
    // from the per-step snapshots implied by the trace: replay the
    // heartbeat logic over the recorded deliveries.
    let mut shadows: Vec<HeartbeatProcess> = (0..n)
        .map(|i| HeartbeatProcess::new(ProcessId::new(i), n, phi, delta))
        .collect();
    let mut history = FdHistory::new(n);
    let mut horizon = ssp_model::Time::ZERO;
    for ev in result.trace.events() {
        if let TraceEvent::Step(s) = ev {
            let shadow = &mut shadows[s.process.index()];
            let before = shadow.suspects();
            let _ = shadow.step(StepContext {
                received: &s.received,
                suspects: ProcessSet::empty(),
                own_step: s.own_step,
            });
            let after = shadow.suspects();
            if after != before {
                history.set(s.process, s.time, after);
            }
            horizon = horizon.max(s.time);
        }
    }
    HeartbeatExperiment {
        history,
        pattern: result.pattern,
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_fd::classify;

    #[test]
    fn failure_free_run_never_suspects() {
        let exp = run_heartbeat_experiment(3, 1, 1, &[None, None, None], 600);
        let props = classify(&exp.pattern, &exp.history, exp.horizon);
        assert!(props.is_perfect());
        for i in 0..3 {
            assert!(exp.history.query(ProcessId::new(i), exp.horizon).is_empty());
        }
    }

    #[test]
    fn crashed_process_is_eventually_suspected_by_all() {
        let exp = run_heartbeat_experiment(3, 1, 1, &[None, Some(5), None], 800);
        let props = classify(&exp.pattern, &exp.history, exp.horizon);
        assert!(props.strong_completeness, "crash must be detected: {props}");
        assert!(props.strong_accuracy, "no false suspicion: {props}");
        assert!(props.is_perfect());
    }

    #[test]
    fn initially_dead_process_detected_too() {
        let exp = run_heartbeat_experiment(4, 2, 3, &[Some(0), None, None, None], 3_000);
        let props = classify(&exp.pattern, &exp.history, exp.horizon);
        assert!(props.is_perfect(), "{props}");
    }

    #[test]
    fn bound_formula() {
        assert_eq!(heartbeat_silence_bound(1, 1, 3), 5);
        assert_eq!(heartbeat_silence_bound(2, 4, 4), 13);
    }

    #[test]
    fn random_legal_schedules_never_break_accuracy() {
        // The §3 claim must survive adversarial (but legal) scheduling:
        // no false suspicion, and crashed processes eventually caught.
        for seed in 0..12u64 {
            let crash = [None, Some(seed % 7), None];
            let exp = run_heartbeat_experiment_seeded(3, 2, 2, &crash, 2_500, Some(seed));
            let props = classify(&exp.pattern, &exp.history, exp.horizon);
            assert!(props.strong_accuracy, "seed {seed}: {props}");
            assert!(props.strong_completeness, "seed {seed}: {props}");
        }
    }
}
