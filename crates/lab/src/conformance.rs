//! Runtime ↔ model conformance: certify that wall-clock executions of
//! `ssp-runtime` are runs the round models admit, and that their
//! safety verdicts agree with the [`Verifier`]'s enumeration.
//!
//! The bridge works on the [`RunTrace`] every threaded run records:
//!
//! 1. **admissibility** — [`RunTrace::validate`] (complete logs,
//!    message integrity, detector accuracy, Lemma 4.1 for pending
//!    messages) plus the step-level validators of `ssp-sim`
//!    ([`validate_basic`], [`validate_perfect_fd`]) on the step-trace
//!    view of `RunTrace::step_log`;
//! 2. **replay** — the derived [`CrashSchedule`]/[`PendingChoice`]
//!    adversary is re-executed through `ssp_rounds::run_rws_observed`,
//!    and the two canonical run logs, projected onto their shared
//!    delivery core, must agree event-for-event
//!    ([`RunLog::first_divergence`](ssp_model::RunLog::first_divergence)),
//!    as must the final outcomes;
//! 3. **verdict** — if a threaded run violates the consensus spec, the
//!    model checker sweeping the same `(n, t, domain, model)` space
//!    must report a violation too (the recorded run *is* in its
//!    space).
//!
//! [`fuzz_runtime`] sweeps seed-derived [`FaultPlan`]s through all
//! three, and [`shrink_plan`] greedily minimizes any failing plan —
//! the engine behind the `ssp runtime-fuzz` subcommand.
//!
//! [`CrashSchedule`]: ssp_rounds::CrashSchedule
//! [`PendingChoice`]: ssp_rounds::PendingChoice

use core::fmt;
use std::ops::Range;

use ssp_model::{
    check_uniform_consensus, check_uniform_consensus_strong, InitialConfig, ProcessId, Round,
    RunEvent, RunLogObserver, Value,
};
use ssp_rounds::{run_rws_observed, RoundAlgorithm, RoundProcess};
use ssp_runtime::{FaultPlan, PlanModel, RunTraceError, RuntimeBuilder, ThreadedOutcome};
use ssp_sim::{validate_basic, validate_perfect_fd, Trace, TraceViolation};

use crate::checker::ValidityMode;
use crate::verifier::{RoundModel, Verifier};

/// A disagreement between a threaded run and the round models — the
/// conformance layer's finding of interest. Real divergences mean a
/// bug in the runtime, the models, or the bridge itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// The recorded trace is not an admissible run of its model.
    Inadmissible(RunTraceError),
    /// The exported step trace fails a §2 validator.
    StepModel(TraceViolation),
    /// Replaying the derived adversary delivered different messages.
    DeliveryMismatch {
        /// The first round whose delivery matrices differ.
        round: Round,
    },
    /// Replay and threaded run disagree on a process's final state.
    OutcomeMismatch {
        /// The process whose decision or crash status differs.
        process: ProcessId,
        /// Human-readable `threaded vs replay` detail.
        detail: String,
    },
    /// A threaded run violated the spec but the model checker's sweep
    /// of the same space found no violation.
    CheckerDisagrees {
        /// The violation the threaded run exhibited.
        violation: String,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Inadmissible(e) => write!(f, "inadmissible trace: {e}"),
            Divergence::StepModel(v) => write!(f, "step-trace violation: {v}"),
            Divergence::DeliveryMismatch { round } => {
                write!(f, "replay delivered different messages in {round}")
            }
            Divergence::OutcomeMismatch { process, detail } => {
                write!(f, "replay disagrees on {process}: {detail}")
            }
            Divergence::CheckerDisagrees { violation } => write!(
                f,
                "run violates the spec ({violation}) but the checker's sweep is clean"
            ),
        }
    }
}

impl std::error::Error for Divergence {}

/// What model, if any, a threaded run is certified against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunVerdict {
    /// Admissible under round synchrony, bounds intact.
    Rs,
    /// Admissible under weak round synchrony.
    Rws,
    /// Started as `RS`, but the watchdog detected a Δ violation and
    /// downgraded the run — certified as an `RWS` run instead (which
    /// is sound: `RWS` never relied on Δ).
    DegradedRws {
        /// The round in which the downgrade took effect.
        at: Round,
    },
    /// The watchdog detected a Δ violation and degradation was off:
    /// the run kept claiming `RS` on a network that broke the claim.
    /// Never certified — whatever it decided is untrustworthy (§3).
    SynchronyViolation,
    /// The watchdog aborted the run; nothing to certify.
    Aborted,
}

impl fmt::Display for RunVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunVerdict::Rs => write!(f, "RS"),
            RunVerdict::Rws => write!(f, "RWS"),
            RunVerdict::DegradedRws { at } => write!(f, "RWS (degraded at {at})"),
            RunVerdict::SynchronyViolation => write!(f, "SynchronyViolation"),
            RunVerdict::Aborted => write!(f, "aborted"),
        }
    }
}

impl RunVerdict {
    /// Whether the run is certified against some round model (`RS`,
    /// `RWS`, or degraded `RWS`).
    #[must_use]
    pub fn is_certified(&self) -> bool {
        !matches!(self, RunVerdict::SynchronyViolation | RunVerdict::Aborted)
    }
}

/// What a conformant threaded run looked like.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The spec violation the run exhibited, if any (violations are
    /// *expected* for unsafe algorithm/model pairs — only divergences
    /// are bugs).
    pub violation: Option<String>,
    /// Number of pending messages the run realized.
    pub pending: usize,
    /// Which model the run is certified against, if any.
    pub verdict: RunVerdict,
}

fn check_spec<V: Value>(
    outcome: &ssp_model::ConsensusOutcome<V>,
    mode: ValidityMode,
) -> Option<String> {
    match mode {
        ValidityMode::Uniform => check_uniform_consensus(outcome)
            .err()
            .map(|e| e.to_string()),
        ValidityMode::Strong => check_uniform_consensus_strong(outcome)
            .err()
            .map(|e| e.to_string()),
    }
}

/// Certifies one threaded run against the round models: trace
/// admissibility, step-trace validity, and tick-for-tick replay
/// agreement (deliveries and outcomes).
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
///
/// # Panics
///
/// Panics if the recorded crash schedule exceeds the fault bound `t`
/// (the replay executor rejects such schedules).
pub fn check_threaded_run<V, A>(
    algo: &A,
    config: &InitialConfig<V>,
    t: usize,
    result: &ThreadedOutcome<V, <A::Process as RoundProcess>::Msg>,
    mode: ValidityMode,
) -> Result<RunReport, Divergence>
where
    V: Value,
    A: RoundAlgorithm<V>,
{
    let trace = &result.trace;
    if trace.aborted {
        // The watchdog stopped the run mid-flight: the logs are
        // deliberately cut short and certify nothing. Not a divergence
        // — aborting on a violated bound is the configured behavior.
        return Ok(RunReport {
            violation: None,
            pending: 0,
            verdict: RunVerdict::Aborted,
        });
    }
    if result.synchrony.flagged() {
        // Δ was violated and degradation was off: the run kept
        // claiming RS on a network that broke the claim. Whatever it
        // produced must be flagged, never certified — this is §5.3
        // smuggled into "RS", and its trace is typically inadmissible
        // (pending messages under round synchrony).
        return Ok(RunReport {
            violation: check_spec(&result.outcome, mode),
            pending: trace.pending().len(),
            verdict: RunVerdict::SynchronyViolation,
        });
    }
    trace.validate().map_err(Divergence::Inadmissible)?;
    let steps = Trace::from_run_log(&trace.step_log().map_err(Divergence::Inadmissible)?);
    validate_basic(&steps).map_err(Divergence::StepModel)?;
    validate_perfect_fd(&steps).map_err(Divergence::StepModel)?;

    let schedule = trace.schedule();
    let pending = trace.pending();
    let mut replay_obs = RunLogObserver::new(config.n());
    let replay_outcome = run_rws_observed(algo, config, t, &schedule, &pending, &mut replay_obs)
        .map_err(|e| Divergence::Inadmissible(RunTraceError::Pending(e)))?;

    // Log-diff conformance: both logs projected onto their shared
    // delivery core (deliveries, withholds, crashes, lockstep closes)
    // must agree event-for-event. Layer-specific events — the replay's
    // decisions, the runtime's watchdog markers — are outside the core.
    let recorded = trace.run_log().project(RunEvent::is_delivery);
    let replayed = replay_obs.into_log().project(RunEvent::is_delivery);
    if let Some(d) = recorded.first_divergence(&replayed) {
        let round = d
            .left
            .and_then(RunEvent::round)
            .or_else(|| d.right.and_then(RunEvent::round))
            .unwrap_or(Round::FIRST);
        return Err(Divergence::DeliveryMismatch { round });
    }

    let clamp = |r: Option<Round>| r.map(|r| r.min(Round::new(trace.horizon + 1)));
    for (p, threaded) in result.outcome.iter() {
        let replayed = replay_outcome.outcome(p);
        if threaded.decision != replayed.decision
            || clamp(threaded.crashed_in) != replayed.crashed_in
        {
            return Err(Divergence::OutcomeMismatch {
                process: p,
                detail: format!(
                    "threaded decided {:?} (crashed {:?}) vs replay {:?} (crashed {:?})",
                    threaded.decision, threaded.crashed_in, replayed.decision, replayed.crashed_in
                ),
            });
        }
    }

    Ok(RunReport {
        violation: check_spec(&result.outcome, mode),
        pending: pending.len(),
        verdict: match trace.degraded_at {
            Some(at) => RunVerdict::DegradedRws { at },
            None if trace.rs => RunVerdict::Rs,
            None => RunVerdict::Rws,
        },
    })
}

/// One repeated-consensus instance, audited after the fact by the
/// engine's background pipeline.
#[derive(Debug, Clone)]
pub struct InstanceAudit {
    /// Zero-based instance index within the engine run.
    pub instance: u64,
    /// Which model the instance is certified against, if any.
    pub verdict: RunVerdict,
    /// The consensus-spec violation the instance exhibited, if any.
    pub violation: Option<String>,
    /// A disagreement with the round models, if any (always a bug).
    pub divergence: Option<String>,
    /// Whether any process took the early-retire fast path. Retired
    /// traces deliberately stop logging received rounds, so they get
    /// the spec-level audit instead of full trace replay.
    pub retired: bool,
}

impl InstanceAudit {
    /// No spec violation and no model divergence.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violation.is_none() && self.divergence.is_none()
    }
}

/// Audits one consensus instance of a repeated-consensus engine run.
///
/// Full-horizon instances go through [`check_threaded_run`] — trace
/// admissibility, step-model validation, and tick-for-tick replay.
/// Instances where some process *retired* (the early-close fast path:
/// burst the remaining sends, skip the remaining receives) cannot be
/// replayed event-for-event — their logs legitimately stop short — so
/// they are audited at the spec level instead: the trace must still
/// validate ([`RunTrace::validate`] knows about retired rounds) and
/// the outcome must satisfy the consensus spec.
///
/// The instance need not have run in-process: `ssp serve-cluster`
/// merges per-node socket reports into the same
/// `RunTrace`/`ThreadedOutcome` shape (a killed node's crash round is
/// reconstructed from the survivors' received rows), so this function
/// also certifies **real-network executions** — multi-process runs
/// over TCP, including `kill -9` crashes and online Δ-guard
/// degradations (`ssp_engine::cluster::merge_reports`,
/// `tests/socket_cluster.rs`).
///
/// [`RunTrace::validate`]: ssp_runtime::RunTrace::validate
pub fn audit_instance<V, A>(
    algo: &A,
    config: &InitialConfig<V>,
    t: usize,
    result: &ThreadedOutcome<V, <A::Process as RoundProcess>::Msg>,
    mode: ValidityMode,
    instance: u64,
) -> InstanceAudit
where
    V: Value,
    A: RoundAlgorithm<V>,
{
    let trace = &result.trace;
    let retired = trace.retired.iter().any(Option::is_some);
    if !retired {
        return match check_threaded_run(algo, config, t, result, mode) {
            Ok(run) => InstanceAudit {
                instance,
                verdict: run.verdict,
                violation: run.violation,
                divergence: None,
                retired,
            },
            Err(d) => InstanceAudit {
                instance,
                verdict: verdict_of(trace, &result.synchrony),
                violation: check_spec(&result.outcome, mode),
                divergence: Some(d.to_string()),
                retired,
            },
        };
    }
    if trace.aborted {
        return InstanceAudit {
            instance,
            verdict: RunVerdict::Aborted,
            violation: None,
            divergence: None,
            retired,
        };
    }
    let divergence = if result.synchrony.flagged() {
        None // flagged runs certify nothing; their traces may not validate
    } else {
        trace.validate().err().map(|e| e.to_string())
    };
    InstanceAudit {
        instance,
        verdict: verdict_of(trace, &result.synchrony),
        violation: check_spec(&result.outcome, mode),
        divergence,
        retired,
    }
}

fn verdict_of<M>(
    trace: &ssp_runtime::RunTrace<M>,
    synchrony: &ssp_runtime::SynchronyReport,
) -> RunVerdict {
    if trace.aborted {
        RunVerdict::Aborted
    } else if synchrony.flagged() {
        RunVerdict::SynchronyViolation
    } else {
        match trace.degraded_at {
            Some(at) => RunVerdict::DegradedRws { at },
            None if trace.rs => RunVerdict::Rs,
            None => RunVerdict::Rws,
        }
    }
}

/// Greedily minimizes a failing [`FaultPlan`]: repeatedly drops slow
/// links, then whole crashes (with their slow links), keeping every
/// change under which `still_fails` holds, until no single removal
/// preserves the failure.
pub fn shrink_plan<F>(plan: &FaultPlan, still_fails: F) -> FaultPlan
where
    F: Fn(&FaultPlan) -> bool,
{
    let mut best = plan.clone();
    loop {
        let mut improved = false;
        for i in 0..best.slow.len() {
            let mut cand = best.clone();
            cand.slow.remove(i);
            if still_fails(&cand) {
                best = cand;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        for i in 0..best.n {
            if best.crashes[i].is_none() {
                continue;
            }
            let mut cand = best.clone();
            cand.crashes[i] = None;
            cand.slow.retain(|&(src, _, _)| src.index() != i);
            if still_fails(&cand) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// The result of a seed sweep over the fault-injection plane.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Seeds executed.
    pub runs: u64,
    /// `(seed, violation)` for certified runs that broke the consensus
    /// spec — expected exactly when the algorithm is unsafe in the
    /// model.
    pub spec_violations: Vec<(u64, String)>,
    /// `(seed, detail)` for runs that diverged from the round models,
    /// each with its shrunk minimal plan. Always empty unless there is
    /// a bug in the runtime, the models, or the bridge.
    pub divergences: Vec<(u64, String)>,
    /// `(seed, violation-or-empty)` for runs the watchdog flagged as
    /// `SynchronyViolation` (Δ broken, degradation off). These are
    /// excluded from the checker cross-check: a bound-violating run is
    /// outside the model space the checker sweeps.
    pub synchrony_flags: Vec<(u64, String)>,
    /// Runs the watchdog downgraded to `RWS`.
    pub degraded: u64,
    /// Runs the watchdog aborted.
    pub aborted: u64,
    /// Whether the [`Verifier`] verdict over the same space agrees
    /// with the sweep (a spec-violating run implies a violating sweep).
    pub checker_agrees: bool,
}

impl FuzzReport {
    /// Whether the sweep found no divergence and the checker agrees.
    #[must_use]
    pub fn is_conformant(&self) -> bool {
        self.divergences.is_empty() && self.checker_agrees
    }
}

/// Sweeps `seeds` through seed-derived [`FaultPlan`]s: each seed is
/// set on a clone of `builder` (inheriting its model, chaos, degrade
/// mode, and clock backend), the resulting plan drives one threaded
/// run, which is certified by [`check_threaded_run`]; any divergence
/// is shrunk to a minimal plan with [`shrink_plan`]. Finally the
/// [`Verifier`] sweeps the same `(n, t, domain, model)` space and its
/// verdict is cross-checked.
///
/// # Panics
///
/// Panics if the builder's configuration is empty or a worker thread
/// panics.
pub fn fuzz_runtime<V, A>(
    builder: &RuntimeBuilder<'_, V, A>,
    seeds: Range<u64>,
    mode: ValidityMode,
) -> FuzzReport
where
    V: Value + Sync,
    A: RoundAlgorithm<V> + Sync,
    A::Process: Send + 'static,
    <A::Process as RoundProcess>::Msg: Send + 'static,
{
    let algo = builder.algo();
    let config = builder.config();
    let t = builder.t_bound();
    let run_plan = |plan: &FaultPlan| {
        builder
            .clone()
            .plan(plan.clone())
            .run()
            .expect("seed-derived plans produce valid runtime configurations")
    };
    let mut report = FuzzReport {
        checker_agrees: true,
        ..FuzzReport::default()
    };
    for seed in seeds {
        let plan = builder.clone().seed(seed).effective_plan();
        let result = run_plan(&plan);
        match check_threaded_run(algo, config, t, &result, mode) {
            Ok(run) => match run.verdict {
                RunVerdict::SynchronyViolation => {
                    report
                        .synchrony_flags
                        .push((seed, run.violation.unwrap_or_default()));
                }
                RunVerdict::Aborted => report.aborted += 1,
                certified => {
                    if matches!(certified, RunVerdict::DegradedRws { .. }) {
                        report.degraded += 1;
                    }
                    if let Some(violation) = run.violation {
                        report.spec_violations.push((seed, violation));
                    }
                }
            },
            Err(divergence) => {
                let minimal = shrink_plan(&plan, |cand| {
                    let rerun = run_plan(cand);
                    check_threaded_run(algo, config, t, &rerun, mode).is_err()
                });
                report
                    .divergences
                    .push((seed, format!("{divergence}; minimal plan: {minimal}")));
            }
        }
        report.runs += 1;
    }

    if !report.spec_violations.is_empty() {
        let mut domain: Vec<V> = config.inputs().to_vec();
        domain.sort();
        domain.dedup();
        let verdict = Verifier::new(algo)
            .n(config.n())
            .t(t)
            .domain(&domain)
            .mode(mode)
            .model(match builder.plan_model() {
                PlanModel::Rs => RoundModel::Rs,
                PlanModel::Rws => RoundModel::Rws,
            })
            .run();
        report.checker_agrees = !verdict.is_ok();
        if !report.checker_agrees {
            let (seed, violation) = report.spec_violations[0].clone();
            report
                .divergences
                .push((seed, Divergence::CheckerDisagrees { violation }.to_string()));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_algos::{FloodSet, FloodSetWs, A1};
    use ssp_runtime::{ChaosConfig, DegradeMode, SECTION_5_3_SEED};

    #[test]
    fn section_5_3_seed_reproduces_the_anomaly_and_conforms() {
        let config = InitialConfig::new(vec![10u64, 11, 12]);
        let plan = FaultPlan::section_5_3();
        let result = RuntimeBuilder::new(&A1, &config).plan(plan).run().unwrap();
        let run = check_threaded_run(&A1, &config, 1, &result, ValidityMode::Uniform)
            .expect("the anomaly run conforms to RWS");
        let violation = run.violation.expect("uniform agreement must break");
        assert!(violation.contains("agree"), "{violation}");
        assert!(run.pending >= 2, "both withheld broadcasts are pending");
    }

    #[test]
    fn fuzz_a1_rws_finds_the_violation_and_no_divergence() {
        let config = InitialConfig::new(vec![10u64, 11, 12]);
        let report = fuzz_runtime(
            &RuntimeBuilder::new(&A1, &config).model(PlanModel::Rws),
            SECTION_5_3_SEED..SECTION_5_3_SEED + 1,
            ValidityMode::Uniform,
        );
        assert!(report.is_conformant(), "{:?}", report.divergences);
        assert_eq!(report.spec_violations.len(), 1);
    }

    #[test]
    fn fuzz_floodset_rs_is_clean() {
        let config = InitialConfig::new(vec![4u64, 6, 2]);
        let report = fuzz_runtime(
            &RuntimeBuilder::new(&FloodSet, &config).model(PlanModel::Rs),
            0..6,
            ValidityMode::Strong,
        );
        assert!(report.is_conformant(), "{:?}", report.divergences);
        assert!(report.spec_violations.is_empty(), "FloodSet is safe in RS");
    }

    #[test]
    fn fuzz_floodset_ws_rws_is_clean() {
        let config = InitialConfig::new(vec![10u64, 11, 12]);
        let report = fuzz_runtime(
            &RuntimeBuilder::new(&FloodSetWs, &config).model(PlanModel::Rws),
            0..6,
            ValidityMode::Uniform,
        );
        assert!(report.is_conformant(), "{:?}", report.divergences);
        assert!(
            report.spec_violations.is_empty(),
            "FloodSetWs tolerates pending messages: {:?}",
            report.spec_violations
        );
    }

    #[test]
    fn shrink_drops_irrelevant_faults() {
        let mut plan = FaultPlan::section_5_3();
        // Add an irrelevant slow link in round 2 (nothing is emitted
        // there, so dropping it cannot change any run).
        plan.slow.push((ProcessId::new(0), ProcessId::new(1), 2));
        let reference = plan.slow.len();
        // Shrink against "the plan still slows p1's round-1 broadcast".
        let minimal = shrink_plan(&plan, |cand| {
            cand.slow
                .contains(&(ProcessId::new(0), ProcessId::new(1), 1))
        });
        assert!(minimal.slow.len() < reference);
        assert_eq!(
            minimal.slow,
            vec![(ProcessId::new(0), ProcessId::new(1), 1)],
            "only the load-bearing link survives"
        );
        // The crash survives: removing it would also retain out its
        // slow links (a slow link from a live sender violates
        // Lemma 4.1), which the predicate needs.
        assert!(minimal.crashes[0].is_some());
        assert!(minimal.crashes[1..].iter().all(Option::is_none));
    }

    #[test]
    fn delta_violation_without_degradation_is_flagged_not_certified() {
        let config = InitialConfig::new(vec![10u64, 11, 12]);
        let plan = FaultPlan::delta_violation();
        let result = RuntimeBuilder::new(&A1, &config).plan(plan).run().unwrap();
        assert!(result.synchrony.violated, "the slow wires must trip Δ");
        let run = check_threaded_run(&A1, &config, 1, &result, ValidityMode::Uniform)
            .expect("flagged runs are reported, not divergences");
        assert_eq!(run.verdict, RunVerdict::SynchronyViolation);
        assert!(!run.verdict.is_certified());
        let violation = run.violation.expect("uniform agreement must break");
        assert!(violation.contains("agree"), "{violation}");
    }

    #[test]
    fn delta_violation_with_rws_degradation_is_admissible() {
        let config = InitialConfig::new(vec![10u64, 11, 12]);
        let plan = FaultPlan::delta_violation().with_degrade(DegradeMode::Rws);
        let result = RuntimeBuilder::new(&A1, &config).plan(plan).run().unwrap();
        let run = check_threaded_run(&A1, &config, 1, &result, ValidityMode::Uniform)
            .expect("degraded runs must certify as RWS");
        assert!(
            matches!(run.verdict, RunVerdict::DegradedRws { .. }),
            "{:?}",
            run.verdict
        );
        assert!(run.verdict.is_certified());
    }

    #[test]
    fn delta_violation_with_abort_stops_the_run() {
        let config = InitialConfig::new(vec![10u64, 11, 12]);
        let plan = FaultPlan::delta_violation().with_degrade(DegradeMode::Abort);
        let result = RuntimeBuilder::new(&A1, &config).plan(plan).run().unwrap();
        assert!(result.synchrony.aborted);
        let run = check_threaded_run(&A1, &config, 1, &result, ValidityMode::Uniform)
            .expect("aborted runs are reported, not divergences");
        assert_eq!(run.verdict, RunVerdict::Aborted);
        assert!(run.violation.is_none(), "nothing is certified or judged");
    }

    #[test]
    fn chaos_sweep_stays_conformant() {
        let config = InitialConfig::new(vec![4u64, 6, 2]);
        let chaos = ChaosConfig {
            loss_pm: 300,
            dup_pm: 100,
            reorder_pm: 50,
        };
        let rs = fuzz_runtime(
            &RuntimeBuilder::new(&FloodSet, &config)
                .model(PlanModel::Rs)
                .chaos(Some(chaos)),
            0..4,
            ValidityMode::Strong,
        );
        assert!(rs.is_conformant(), "{:?}", rs.divergences);
        assert!(
            rs.synchrony_flags.is_empty(),
            "reliable delivery keeps chaos inside Δ: {:?}",
            rs.synchrony_flags
        );
        let rws = fuzz_runtime(
            &RuntimeBuilder::new(&FloodSetWs, &config)
                .model(PlanModel::Rws)
                .chaos(Some(chaos)),
            0..4,
            ValidityMode::Uniform,
        );
        assert!(rws.is_conformant(), "{:?}", rws.divergences);
        assert!(rws.spec_violations.is_empty(), "{:?}", rws.spec_violations);
    }

    #[test]
    fn divergence_displays() {
        let d = Divergence::DeliveryMismatch {
            round: Round::FIRST,
        };
        assert!(d.to_string().contains("round 1"));
        let d = Divergence::CheckerDisagrees {
            violation: "x".into(),
        };
        assert!(d.to_string().contains("checker"));
    }
}
