//! The latency-degree functionals of §5.2, computed over enumerated
//! run spaces.
//!
//! For an algorithm `A` in a system `S` with at most `t` crashes:
//!
//! * `lat(A)   = min { |r| }` over all runs — rewards lucky runs;
//! * `lat(A,C) = min { |r| : r starts from C }` — per configuration;
//! * `Lat(A)   = max_C lat(A, C)` — no luck from special configs;
//! * `Lat(A,f) = max { |r| : r has at most f crashes }`;
//! * `Λ(A)     = min_f Lat(A, f) = Lat(A, 0)` — the maximal latency
//!   over failure-free runs.
//!
//! [`LatencyAggregator`] folds enumerated runs into all five, and
//! [`message_complexity_rs`] measures a single run's traffic through
//! the canonical event pipeline (a [`CountingObserver`] attached to
//! the round executor).

use std::collections::HashMap;

use ssp_model::{CountingObserver, EventCounts, InitialConfig, Value};

use crate::enumerate::EnumeratedRun;

/// Accumulates latency degrees across an enumerated run space.
#[derive(Debug, Clone, Default)]
pub struct LatencyAggregator<V> {
    /// min/max latency per initial configuration.
    per_config: HashMap<Vec<V>, (u32, u32)>,
    /// max latency per *exact* crash count.
    max_per_faults: HashMap<usize, u32>,
    /// Runs where some correct process never decided.
    pub nontermination: u64,
    /// Total runs folded.
    pub runs: u64,
}

impl<V: Value> LatencyAggregator<V> {
    /// Creates an empty aggregator.
    #[must_use]
    pub fn new() -> Self {
        LatencyAggregator {
            per_config: HashMap::new(),
            max_per_faults: HashMap::new(),
            nontermination: 0,
            runs: 0,
        }
    }

    /// Folds one enumerated run.
    pub fn add(&mut self, run: &EnumeratedRun<'_, V>) {
        self.add_weighted(run, 1);
    }

    /// Folds one run standing for `weight` symmetric runs (its orbit
    /// under the symmetry reduction of `crate::verifier`).
    ///
    /// Orbit members share the run's latency degree, fault count and
    /// (canonical) configuration class, so counting the representative
    /// `weight` times makes every functional here equal to the
    /// unreduced sweep's — except that per-configuration lookups key
    /// on the canonical representative.
    pub fn add_weighted(&mut self, run: &EnumeratedRun<'_, V>, weight: u64) {
        self.runs += weight;
        let Some(latency) = run.outcome.latency_degree() else {
            self.nontermination += weight;
            return;
        };
        let key = run.config.inputs().to_vec();
        let entry = self.per_config.entry(key).or_insert((u32::MAX, 0));
        entry.0 = entry.0.min(latency);
        entry.1 = entry.1.max(latency);
        let f = run.outcome.fault_count();
        let fmax = self.max_per_faults.entry(f).or_insert(0);
        *fmax = (*fmax).max(latency);
    }

    /// Merges another aggregator (e.g. a per-worker partial) into this
    /// one; equivalent to having folded all of its runs here.
    pub fn merge(&mut self, other: LatencyAggregator<V>) {
        self.runs += other.runs;
        self.nontermination += other.nontermination;
        for (key, (lo, hi)) in other.per_config {
            let entry = self.per_config.entry(key).or_insert((u32::MAX, 0));
            entry.0 = entry.0.min(lo);
            entry.1 = entry.1.max(hi);
        }
        for (f, m) in other.max_per_faults {
            let fmax = self.max_per_faults.entry(f).or_insert(0);
            *fmax = (*fmax).max(m);
        }
    }

    /// `lat(A)`: the minimum latency degree over all runs.
    #[must_use]
    pub fn lat(&self) -> Option<u32> {
        self.per_config.values().map(|&(lo, _)| lo).min()
    }

    /// `lat(A, C)` for a specific configuration.
    #[must_use]
    pub fn lat_for(&self, config: &InitialConfig<V>) -> Option<u32> {
        self.per_config.get(config.inputs()).map(|&(lo, _)| lo)
    }

    /// `Lat(A) = max_C lat(A, C)`.
    #[must_use]
    pub fn lat_max_over_configs(&self) -> Option<u32> {
        self.per_config.values().map(|&(lo, _)| lo).max()
    }

    /// `Lat(A, f)`: the maximum latency over runs with **at most** `f`
    /// crashes (the paper's `Run(A, S, f)`).
    #[must_use]
    pub fn lat_at_most_faults(&self, f: usize) -> Option<u32> {
        self.max_per_faults
            .iter()
            .filter(|&(&k, _)| k <= f)
            .map(|(_, &v)| v)
            .max()
    }

    /// `Λ(A) = min_f Lat(A, f) = Lat(A, 0)`: the maximal latency over
    /// failure-free runs.
    #[must_use]
    pub fn capital_lambda(&self) -> Option<u32> {
        self.lat_at_most_faults(0)
    }

    /// The largest exact fault count seen.
    #[must_use]
    pub fn max_faults_seen(&self) -> Option<usize> {
        self.max_per_faults.keys().copied().max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{explore_rs, explore_rws};
    use ssp_algos::{COptFloodSet, FOptFloodSet, FloodSet, A1};
    use ssp_model::InitialConfig;

    fn aggregate_rs<A: ssp_rounds::RoundAlgorithm<u64>>(
        algo: &A,
        n: usize,
        t: usize,
    ) -> LatencyAggregator<u64> {
        let mut agg = LatencyAggregator::new();
        explore_rs(algo, n, t, &[0u64, 1], |run| agg.add(run));
        agg
    }

    #[test]
    fn floodset_latency_is_always_t_plus_1() {
        let agg = aggregate_rs(&FloodSet, 3, 1);
        assert_eq!(agg.nontermination, 0, "FloodSet always terminates in RS");
        assert_eq!(agg.lat(), Some(2));
        assert_eq!(agg.lat_max_over_configs(), Some(2));
        assert_eq!(agg.capital_lambda(), Some(2));
        assert_eq!(agg.lat_at_most_faults(1), Some(2));
    }

    #[test]
    fn c_opt_has_lat_1_but_big_lambda() {
        // §5.2: lat(C_OptFloodSet) = 1 via unanimous configs, but the
        // per-config minimum is t+1 for mixed configs, so Lat = t+1.
        let agg = aggregate_rs(&COptFloodSet, 3, 1);
        assert_eq!(agg.lat(), Some(1));
        assert_eq!(
            agg.lat_for(&InitialConfig::uniform(3, 1u64)),
            Some(1),
            "unanimous config decides at round 1"
        );
        assert_eq!(agg.lat_max_over_configs(), Some(2), "Lat(C_Opt) = t+1");
        assert_eq!(agg.capital_lambda(), Some(2));
    }

    #[test]
    fn f_opt_reaches_lat_1_on_every_config_via_t_initial_crashes() {
        // §5.2: Lat(F_OptFloodSet) = 1 — for *every* configuration some
        // run (t initial crashes) decides at round 1.
        let agg = aggregate_rs(&FOptFloodSet, 3, 1);
        assert_eq!(agg.lat_max_over_configs(), Some(1), "Lat(F_Opt) = 1");
        // But the failure-free latency is still t+1:
        assert_eq!(agg.capital_lambda(), Some(2));
        // Lat(A, f) is monotone in f (at-most-f quantification).
        assert!(agg.lat_at_most_faults(0) <= agg.lat_at_most_faults(1));
    }

    #[test]
    fn a1_has_capital_lambda_1_in_rs() {
        // Theorem 5.2 / §5.3: Λ(A1) = 1 — every failure-free run
        // decides at round 1.
        let agg = aggregate_rs(&A1, 3, 1);
        assert_eq!(agg.nontermination, 0);
        assert_eq!(agg.capital_lambda(), Some(1), "Λ(A1) = 1");
        // With one crash, two rounds can be needed.
        assert_eq!(agg.lat_at_most_faults(1), Some(2));
    }

    #[test]
    fn rws_aggregation_works_too() {
        let mut agg = LatencyAggregator::new();
        explore_rws(&ssp_algos::FloodSetWs, 3, 1, &[0u64, 1], |run| agg.add(run));
        assert_eq!(agg.nontermination, 0);
        assert_eq!(agg.capital_lambda(), Some(2));
    }
}

/// Searches the exhaustive `RS` space for a run realizing the
/// worst-case latency of `algo`, returning `(latency, schedule,
/// config)` of the first maximal run found.
///
/// This is `Lat(A, t)` *with a witness*: the adversary strategy that
/// actually forces the bound, useful for reports and regression tests.
#[must_use]
pub fn worst_case_rs<V, A>(
    algo: &A,
    n: usize,
    t: usize,
    domain: &[V],
) -> Option<(u32, ssp_rounds::CrashSchedule, InitialConfig<V>)>
where
    V: Value,
    A: ssp_rounds::RoundAlgorithm<V>,
{
    let mut worst: Option<(u32, ssp_rounds::CrashSchedule, InitialConfig<V>)> = None;
    crate::enumerate::explore_rs(algo, n, t, domain, |run| {
        if let Some(l) = run.outcome.latency_degree() {
            if worst.as_ref().is_none_or(|(best, _, _)| l > *best) {
                worst = Some((l, run.schedule.clone(), run.config.clone()));
            }
        }
    });
    worst
}

/// Measures one `RS` run's event totals through the canonical observer
/// pipeline: `delivers` is the run's message complexity as observed at
/// receivers, `closes` its round count.
///
/// This subsumes the bespoke per-run message counters that predated the
/// event IR — any executor that accepts an
/// [`Observer`](ssp_model::Observer) yields the same tally.
///
/// # Panics
///
/// Panics if `schedule` is inadmissible for `(n, t)`, as
/// [`run_rs`](ssp_rounds::run_rs) does.
#[must_use]
pub fn message_complexity_rs<V, A>(
    algo: &A,
    config: &InitialConfig<V>,
    t: usize,
    schedule: &ssp_rounds::CrashSchedule,
) -> EventCounts
where
    V: Value,
    A: ssp_rounds::RoundAlgorithm<V>,
{
    let mut counter = CountingObserver::new();
    let _ = ssp_rounds::run_rs_observed(algo, config, t, schedule, &mut counter)
        .unwrap_or_else(|e| panic!("{e}"));
    counter.counts()
}

#[cfg(test)]
mod message_complexity_tests {
    use super::*;
    use ssp_algos::FloodSet;
    use ssp_model::InitialConfig;
    use ssp_rounds::CrashSchedule;

    #[test]
    fn failure_free_floodset_delivers_n_squared_per_round() {
        let config = InitialConfig::new(vec![0u64, 1, 0]);
        let schedule = CrashSchedule::none(3);
        let counts = message_complexity_rs(&FloodSet, &config, 1, &schedule);
        // t+1 = 2 rounds, n² = 9 deliveries each (self included).
        assert_eq!(counts.delivers, 18);
        assert_eq!(counts.closes, 2);
        assert_eq!(counts.crashes, 0);
        assert_eq!(counts.decides, 3);
    }

    #[test]
    fn a_crash_strictly_reduces_traffic() {
        let config = InitialConfig::new(vec![0u64, 1, 0]);
        let clean = message_complexity_rs(&FloodSet, &config, 1, &CrashSchedule::none(3));
        let mut schedule = CrashSchedule::none(3);
        schedule.crash(
            ssp_model::ProcessId::new(0),
            ssp_rounds::RoundCrash {
                round: ssp_model::Round::new(1),
                sends_to: ssp_model::ProcessSet::empty(),
            },
        );
        let crashed = message_complexity_rs(&FloodSet, &config, 1, &schedule);
        assert!(crashed.delivers < clean.delivers);
        assert_eq!(crashed.crashes, 1);
    }
}

#[cfg(test)]
mod worst_case_tests {
    use super::*;
    use ssp_algos::{EarlyDeciding, FloodSet, A1};
    use ssp_rounds::run_rs;

    #[test]
    fn floodset_worst_case_is_t_plus_1_with_witness() {
        let (latency, schedule, config) =
            worst_case_rs(&FloodSet, 3, 2, &[0u64, 1]).expect("nonempty space");
        assert_eq!(latency, 3);
        // The witness replays to the same latency.
        let replay = run_rs(&FloodSet, &config, 2, &schedule);
        assert_eq!(replay.latency_degree(), Some(3));
    }

    #[test]
    fn a1_worst_case_is_2_and_requires_a_crash() {
        let (latency, schedule, _) = worst_case_rs(&A1, 3, 1, &[0u64, 1]).expect("nonempty space");
        assert_eq!(latency, 2);
        assert_eq!(schedule.fault_count(), 1, "failure-free runs decide at 1");
    }

    #[test]
    fn early_deciding_worst_case_matches_min_f_plus_2_t_plus_1() {
        let (latency, _, _) =
            worst_case_rs(&EarlyDeciding, 3, 2, &[0u64, 1]).expect("nonempty space");
        assert_eq!(latency, 3, "t crashes force the t+1 deadline");
    }
}
