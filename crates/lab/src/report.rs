//! Plain-text table rendering for experiment reports.
//!
//! The benches and examples regenerate the paper's claims as tables;
//! [`Table`] keeps their output aligned and diff-friendly
//! (EXPERIMENTS.md embeds these verbatim).

use core::fmt;

/// A simple left-aligned text table.
///
/// # Examples
///
/// ```
/// use ssp_lab::report::Table;
///
/// let mut t = Table::new(vec!["algorithm", "lat", "Lat", "Λ"]);
/// t.row(vec!["C_OptFloodSet".into(), "1".into(), "2".into(), "2".into()]);
/// let text = t.to_string();
/// assert!(text.contains("C_OptFloodSet"));
/// assert!(text.starts_with("algorithm"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell}")?;
                if i + 1 < cells.len() {
                    for _ in cell.chars().count()..widths[i] {
                        write!(f, " ")?;
                    }
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "long-header" and the numbers start at the
        // same offset in every line.
        let offset = lines[0].find("long-header").unwrap();
        assert!(lines[2].ends_with('1'));
        assert_eq!(&lines[2][offset..offset + 1], "1");
        assert_eq!(&lines[3][offset..offset + 2], "22");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn empty_table_reports_empty() {
        let t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
