//! Time-freeness (§2.7), executable.
//!
//! A problem is *time-free* when its verdict on a run depends only on
//! each process's sequence of steps `S_i` — not on how those sequences
//! interleave or when they happen. This module makes the notion
//! testable: [`reorder_preserving_views`] takes a recorded trace and
//! produces a *different* global schedule with identical per-process
//! projections (same deliveries at the same own-steps, causality
//! respected). Replaying it must yield identical outputs for any
//! deterministic automata — which property tests assert, and which is
//! exactly why the paper may restrict attention to time-free problems
//! when comparing `SS` and `SP`.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ssp_model::{ProcessId, StepIndex};
use ssp_sim::{DeliveryChoice, Event, Trace, TraceEvent};

/// One queued per-process event awaiting placement.
#[derive(Debug, Clone)]
enum Pending {
    /// A step with its original delivery keys.
    Step { keys: Vec<(ProcessId, StepIndex)> },
    /// A crash.
    Crash,
}

/// Produces a new schedule + delivery script with the same per-process
/// projections as `trace` but a (generally) different interleaving,
/// chosen pseudo-randomly from the causally valid ones.
///
/// The result can be replayed with
/// [`ScriptedAdversary::new`](ssp_sim::ScriptedAdversary): determinism
/// of the automata then forces identical outputs — the §2.7 invariance.
///
/// Only meaningful for `ModelKind::Async` traces: `SS` constraints and
/// `SP` detector values are time-sensitive by design.
///
/// # Panics
///
/// Panics if the trace is internally inconsistent (a delivery without
/// a matching send).
#[must_use]
pub fn reorder_preserving_views<M>(trace: &Trace<M>, seed: u64) -> (Vec<Event>, Vec<DeliveryChoice>)
where
    M: Clone + core::fmt::Debug + PartialEq,
{
    let n = trace.universe_size();
    // Original send ordinals: (src, original sent_at) → per-src ordinal.
    let mut send_ordinal: HashMap<(ProcessId, StepIndex), usize> = HashMap::new();
    let mut sends_seen = vec![0usize; n];
    // Per-process queues of pending events, with per-step send flags.
    let mut queues: Vec<Vec<(Pending, bool)>> = vec![Vec::new(); n];
    for ev in trace.events() {
        match ev {
            TraceEvent::Step(s) => {
                let sends = s.sent.is_some();
                if let Some(env) = &s.sent {
                    send_ordinal.insert((env.src, env.sent_at), sends_seen[env.src.index()]);
                    sends_seen[env.src.index()] += 1;
                }
                queues[s.process.index()].push((
                    Pending::Step {
                        keys: s.received.iter().map(|e| (e.src, e.sent_at)).collect(),
                    },
                    sends,
                ));
            }
            TraceEvent::Crash { process, .. } => {
                queues[process.index()].push((Pending::Crash, false));
            }
        }
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut heads = vec![0usize; n];
    // (src, ordinal) → new global step index of that send.
    let mut placed_send: HashMap<(ProcessId, usize), u64> = HashMap::new();
    let mut emitted_sends = vec![0usize; n];
    let mut new_events = Vec::new();
    let mut new_deliveries = Vec::new();
    let mut new_global_step = 0u64;
    let total: usize = queues.iter().map(Vec::len).sum();

    while new_events.len() < total {
        // Collect eligible process heads.
        let mut eligible: Vec<usize> = Vec::new();
        for i in 0..n {
            let Some((pending, _)) = queues[i].get(heads[i]) else {
                continue;
            };
            let ok = match pending {
                Pending::Crash => true,
                Pending::Step { keys } => keys.iter().all(|key| {
                    let ordinal = send_ordinal
                        .get(&(key.0, key.1))
                        .expect("delivery without matching send");
                    placed_send.contains_key(&(key.0, *ordinal))
                }),
            };
            if ok {
                eligible.push(i);
            }
        }
        assert!(!eligible.is_empty(), "causal deadlock: inconsistent trace");
        let i = eligible[rng.gen_range(0..eligible.len())];
        let p = ProcessId::new(i);
        let (pending, sends) = queues[i][heads[i]].clone();
        heads[i] += 1;
        match pending {
            Pending::Crash => new_events.push(Event::Crash(p)),
            Pending::Step { keys } => {
                let remapped: Vec<(ProcessId, StepIndex)> = keys
                    .iter()
                    .map(|key| {
                        let ordinal = send_ordinal[&(key.0, key.1)];
                        (key.0, StepIndex::new(placed_send[&(key.0, ordinal)]))
                    })
                    .collect();
                if sends {
                    placed_send.insert((p, emitted_sends[i]), new_global_step);
                    emitted_sends[i] += 1;
                }
                new_events.push(Event::Step(p));
                new_deliveries.push(DeliveryChoice::Keys(remapped));
                new_global_step += 1;
            }
        }
    }
    (new_events, new_deliveries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::ProcessId;
    use ssp_sim::{
        run, BoxedAutomaton, ModelKind, RandomAdversary, ScriptedAdversary, StepAutomaton,
        StepContext,
    };

    /// Ping-pong counter: replies to every message with its value + 1,
    /// outputs the largest value seen once it exceeds a threshold.
    #[derive(Debug)]
    struct Counter {
        peer: ProcessId,
        best: u32,
        threshold: u32,
        kicked_off: bool,
        starter: bool,
    }

    impl StepAutomaton for Counter {
        type Msg = u32;
        type Output = u32;

        fn step(&mut self, ctx: StepContext<'_, u32>) -> Option<(ProcessId, u32)> {
            let mut reply = None;
            for env in ctx.received {
                if env.payload > self.best {
                    self.best = env.payload;
                }
                reply = Some(env.payload + 1);
            }
            if self.starter && !self.kicked_off {
                self.kicked_off = true;
                return Some((self.peer, 1));
            }
            reply
                .filter(|v| *v <= self.threshold)
                .map(|v| (self.peer, v))
        }

        fn output(&self) -> Option<u32> {
            (self.best >= self.threshold).then_some(self.best)
        }
    }

    fn system() -> Vec<BoxedAutomaton<u32, u32>> {
        vec![
            Box::new(Counter {
                peer: ProcessId::new(1),
                best: 0,
                threshold: 6,
                kicked_off: false,
                starter: true,
            }),
            Box::new(Counter {
                peer: ProcessId::new(0),
                best: 0,
                threshold: 6,
                kicked_off: false,
                starter: false,
            }),
        ]
    }

    #[test]
    fn reordered_schedules_reproduce_outputs() {
        for seed in 0..15u64 {
            let mut adv = RandomAdversary::new(2, 150, seed).with_deliver_all_probability(0.6);
            let original = run(ModelKind::Async, system(), &mut adv, 10_000).unwrap();
            for reseed in [7u64, 21, 99] {
                let (events, deliveries) = reorder_preserving_views(&original.trace, reseed);
                let mut scripted = ScriptedAdversary::new(events, deliveries);
                let replayed = run(ModelKind::Async, system(), &mut scripted, 10_000).unwrap();
                assert_eq!(
                    replayed.outputs, original.outputs,
                    "seed {seed} reseed {reseed}: outputs must be time-free"
                );
                for i in 0..2 {
                    let p = ProcessId::new(i);
                    assert_eq!(
                        replayed.trace.local_view(p),
                        original.trace.local_view(p),
                        "seed {seed} reseed {reseed}: local views must be preserved"
                    );
                }
            }
        }
    }

    #[test]
    fn reordering_actually_changes_the_interleaving_sometimes() {
        let mut adv = RandomAdversary::new(2, 100, 3);
        let original = run(ModelKind::Async, system(), &mut adv, 10_000).unwrap();
        let mut changed = false;
        for reseed in 0..10u64 {
            let (events, _) = reorder_preserving_views(&original.trace, reseed);
            if events != original.trace.schedule() {
                changed = true;
            }
        }
        assert!(
            changed,
            "ten reseeds should produce at least one new interleaving"
        );
    }
}
