//! Parallel exhaustive verification: the run spaces factor cleanly by
//! initial configuration, so the sweep shards across OS threads with
//! plain `std::thread::scope` — no extra dependencies.
//!
//! Results are identical to the serial [`crate::checker`] verdicts
//! except for *which* counterexample is reported when several exist
//! (the lowest-shard one wins here; the serial order wins there).

use ssp_model::{config::enumerate_configs, InitialConfig, Value};
use ssp_rounds::{run_rs, run_rws, PendingChoice, RoundAlgorithm};

use crate::checker::{Counterexample, ValidityMode, Verification};
use crate::enumerate::{crash_schedules, pending_choices};

fn check<V: Value>(
    outcome: &ssp_model::ConsensusOutcome<V>,
    mode: ValidityMode,
) -> Result<(), ssp_model::spec::ConsensusViolation<V>> {
    match mode {
        ValidityMode::Uniform => ssp_model::check_uniform_consensus(outcome),
        ValidityMode::Strong => ssp_model::check_uniform_consensus_strong(outcome),
    }
}

/// Shards the configurations of the space across `threads` workers and
/// verifies every `RS` run, as [`crate::checker::verify_rs`] does.
///
/// # Panics
///
/// Panics if `threads == 0` or a worker thread panics.
#[must_use]
pub fn verify_rs_parallel<V, A>(
    algo: &A,
    n: usize,
    t: usize,
    domain: &[V],
    mode: ValidityMode,
    threads: usize,
) -> Verification<V>
where
    V: Value + Sync,
    A: RoundAlgorithm<V> + Sync,
{
    verify_parallel(algo, n, t, domain, mode, threads, false)
}

/// Shards the configurations across `threads` workers and verifies
/// every `RWS` run (all pending choices included).
///
/// # Panics
///
/// Panics if `threads == 0` or a worker thread panics.
#[must_use]
pub fn verify_rws_parallel<V, A>(
    algo: &A,
    n: usize,
    t: usize,
    domain: &[V],
    mode: ValidityMode,
    threads: usize,
) -> Verification<V>
where
    V: Value + Sync,
    A: RoundAlgorithm<V> + Sync,
{
    verify_parallel(algo, n, t, domain, mode, threads, true)
}

fn verify_parallel<V, A>(
    algo: &A,
    n: usize,
    t: usize,
    domain: &[V],
    mode: ValidityMode,
    threads: usize,
    with_pending: bool,
) -> Verification<V>
where
    V: Value + Sync,
    A: RoundAlgorithm<V> + Sync,
{
    assert!(threads > 0, "at least one worker required");
    let horizon = algo.round_horizon(n, t);
    let schedules = crash_schedules(n, t, horizon + 1);
    let configs: Vec<InitialConfig<V>> = enumerate_configs(n, domain).collect();
    let chunk = configs.len().div_ceil(threads);
    let schedules = &schedules;
    let results: Vec<(u64, Option<Counterexample<V>>)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for shard in configs.chunks(chunk.max(1)) {
            handles.push(scope.spawn(move || {
                let mut runs = 0u64;
                for config in shard {
                    for schedule in schedules {
                        let pendings = if with_pending {
                            pending_choices(schedule, horizon)
                        } else {
                            vec![PendingChoice::none()]
                        };
                        for pending in pendings {
                            let outcome = if with_pending {
                                run_rws(algo, config, t, schedule, &pending)
                                    .expect("enumerated pending choices are valid")
                            } else {
                                run_rs(algo, config, t, schedule)
                            };
                            runs += 1;
                            if let Err(violation) = check(&outcome, mode) {
                                return (
                                    runs,
                                    Some(Counterexample {
                                        config: config.clone(),
                                        schedule: schedule.clone(),
                                        pending,
                                        outcome,
                                        violation,
                                    }),
                                );
                            }
                        }
                    }
                }
                (runs, None)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("verification worker panicked"))
            .collect()
    });
    let runs = results.iter().map(|(r, _)| r).sum();
    let counterexample = results.into_iter().find_map(|(_, c)| c);
    Verification {
        runs,
        counterexample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{verify_rs, verify_rws};
    use ssp_algos::{FloodSet, FloodSetWs};

    #[test]
    fn parallel_rs_agrees_with_serial() {
        let serial = verify_rs(&FloodSet, 3, 1, &[0u64, 1], ValidityMode::Strong);
        let parallel = verify_rs_parallel(&FloodSet, 3, 1, &[0u64, 1], ValidityMode::Strong, 4);
        assert!(serial.is_ok() && parallel.is_ok());
        assert_eq!(serial.runs, parallel.runs, "clean sweeps cover the same space");
    }

    #[test]
    fn parallel_rws_agrees_with_serial_on_violations() {
        let serial = verify_rws(&FloodSet, 3, 1, &[0u64, 1], ValidityMode::Uniform);
        let parallel =
            verify_rws_parallel(&FloodSet, 3, 1, &[0u64, 1], ValidityMode::Uniform, 4);
        assert!(!serial.is_ok() && !parallel.is_ok(), "both must find the E4 bug");
    }

    #[test]
    fn parallel_rws_clean_sweep_counts_whole_space() {
        let serial = verify_rws(&FloodSetWs, 3, 1, &[0u64, 1], ValidityMode::Strong);
        let parallel =
            verify_rws_parallel(&FloodSetWs, 3, 1, &[0u64, 1], ValidityMode::Strong, 3);
        serial.expect_ok();
        parallel.expect_ok();
        assert_eq!(serial.runs, parallel.runs);
    }

    #[test]
    fn single_thread_degenerates_to_serial() {
        let parallel = verify_rs_parallel(&FloodSet, 3, 1, &[0u64, 1], ValidityMode::Strong, 1);
        parallel.expect_ok();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = verify_rs_parallel(&FloodSet, 3, 1, &[0u64, 1], ValidityMode::Strong, 0);
    }
}
