//! Deprecated parallel entry points, kept as thin wrappers over the
//! unified [`Verifier`](crate::Verifier).
//!
//! Historically this module sharded configurations statically across
//! `std::thread::scope` workers. The [`crate::verifier`] engine
//! replaced that with work stealing over `(configuration class,
//! schedule chunk)` items — no idle tails when shards are uneven — and
//! a deterministic (enumeration-least) counterexample instead of a
//! races-dependent one. The wrappers below keep the old signatures
//! compiling; new code should call the builder directly.

use ssp_model::Value;
use ssp_rounds::RoundAlgorithm;

use crate::checker::{ValidityMode, Verification};
use crate::verifier::{RoundModel, Verifier};

/// Verifies every `RS` run with `threads` workers, as
/// [`crate::checker::verify_rs`] does serially.
///
/// # Panics
///
/// Panics if `threads == 0` or a worker thread panics.
#[deprecated(
    note = "use `Verifier::new(algo).n(n).t(t).domain(domain).mode(mode).threads(threads).run()`"
)]
#[must_use]
pub fn verify_rs_parallel<V, A>(
    algo: &A,
    n: usize,
    t: usize,
    domain: &[V],
    mode: ValidityMode,
    threads: usize,
) -> Verification<V>
where
    V: Value + Sync,
    A: RoundAlgorithm<V> + Sync,
{
    Verifier::new(algo)
        .n(n)
        .t(t)
        .domain(domain)
        .mode(mode)
        .threads(threads)
        .run()
}

/// Verifies every `RWS` run (all pending choices included) with
/// `threads` workers.
///
/// # Panics
///
/// Panics if `threads == 0` or a worker thread panics.
#[deprecated(
    note = "use `Verifier::new(algo).n(n).t(t).domain(domain).mode(mode).model(RoundModel::Rws).threads(threads).run()`"
)]
#[must_use]
pub fn verify_rws_parallel<V, A>(
    algo: &A,
    n: usize,
    t: usize,
    domain: &[V],
    mode: ValidityMode,
    threads: usize,
) -> Verification<V>
where
    V: Value + Sync,
    A: RoundAlgorithm<V> + Sync,
{
    Verifier::new(algo)
        .n(n)
        .t(t)
        .domain(domain)
        .mode(mode)
        .model(RoundModel::Rws)
        .threads(threads)
        .run()
}

#[cfg(test)]
mod tests {
    // The deprecated wrappers stay covered until they are removed.
    #![allow(deprecated)]

    use super::*;
    use crate::checker::{verify_rs, verify_rws};
    use ssp_algos::{FloodSet, FloodSetWs};

    #[test]
    fn parallel_rs_agrees_with_serial() {
        let serial = verify_rs(&FloodSet, 3, 1, &[0u64, 1], ValidityMode::Strong);
        let parallel = verify_rs_parallel(&FloodSet, 3, 1, &[0u64, 1], ValidityMode::Strong, 4);
        assert!(serial.is_ok() && parallel.is_ok());
        assert_eq!(
            serial.runs, parallel.runs,
            "clean sweeps cover the same space"
        );
    }

    #[test]
    fn parallel_rws_agrees_with_serial_on_violations() {
        let serial = verify_rws(&FloodSet, 3, 1, &[0u64, 1], ValidityMode::Uniform);
        let parallel = verify_rws_parallel(&FloodSet, 3, 1, &[0u64, 1], ValidityMode::Uniform, 4);
        assert!(
            !serial.is_ok() && !parallel.is_ok(),
            "both must find the E4 bug"
        );
    }

    #[test]
    fn parallel_rws_clean_sweep_counts_whole_space() {
        let serial = verify_rws(&FloodSetWs, 3, 1, &[0u64, 1], ValidityMode::Strong);
        let parallel = verify_rws_parallel(&FloodSetWs, 3, 1, &[0u64, 1], ValidityMode::Strong, 3);
        serial.expect_ok();
        parallel.expect_ok();
        assert_eq!(serial.runs, parallel.runs);
    }

    #[test]
    fn single_thread_degenerates_to_serial() {
        let parallel = verify_rs_parallel(&FloodSet, 3, 1, &[0u64, 1], ValidityMode::Strong, 1);
        parallel.expect_ok();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = verify_rs_parallel(&FloodSet, 3, 1, &[0u64, 1], ValidityMode::Strong, 0);
    }
}
