//! The Theorem 3.1 adversary: no algorithm solves SDD in `SP`.
//!
//! The proof is constructive run surgery, and this module executes it
//! against *any* candidate (sender, receiver) automaton pair:
//!
//! 1. Run `r0`: the sender crashes before taking a step; the perfect
//!    detector reports it immediately; the receiver runs until it
//!    decides (it must — Termination), say `d0`, after `k` steps.
//! 2. Splice `r'`: prepend one sender step (its message, if any, is
//!    withheld — `SP` message delays are finite but unbounded), crash
//!    the sender, and replay the receiver's `k` steps. The receiver's
//!    local views are *identical* to `r0` — same empty deliveries, same
//!    suspicion of the sender — so, being deterministic, it again
//!    decides `d0`.
//! 3. Choose the sender's input `b = ¬d0`. In `r'` the sender took a
//!    step, so Validity forces the decision `b ≠ d0` — contradiction,
//!    exhibited as a concrete violating trace.
//!
//! Every candidate loses: either it never decides in `r0`
//! (Termination violation) or the spliced run breaks Validity.

use core::fmt;

use ssp_model::{check_sdd, ProcessId, SddOutcome, SddViolation};
use ssp_sim::{
    run, Adversary, BoxedAutomaton, Choice, DeliveryChoice, DetectionDelays, Event, ExecView,
    ModelKind, ScriptedAdversary, Trace,
};

fn sender_id() -> ProcessId {
    ProcessId::new(0)
}

fn receiver_id() -> ProcessId {
    ProcessId::new(1)
}

/// A factory for SDD candidate algorithms in `SP`: given the sender's
/// input, produce the two automata. Process 0 is the sender, process 1
/// the receiver.
pub trait SddCandidate {
    /// The candidate's message type.
    type Msg: Clone + fmt::Debug + PartialEq + 'static;

    /// Candidate name for reports.
    fn name(&self) -> &str;

    /// Fresh sender automaton with the given input bit.
    fn sender(&self, input: bool) -> BoxedAutomaton<Self::Msg, bool>;

    /// Fresh receiver automaton.
    fn receiver(&self) -> BoxedAutomaton<Self::Msg, bool>;
}

/// How the candidate was defeated.
#[derive(Debug)]
pub enum SddRefutation<M> {
    /// The receiver failed to decide within the step cap in `r0`, where
    /// it is correct and the detector reported the crash at once —
    /// a Termination violation.
    Termination {
        /// The non-deciding run.
        trace: Trace<M>,
    },
    /// The spliced run decided against the sender's input.
    Validity {
        /// The sender's input in the spliced run.
        input: bool,
        /// What the receiver (wrongly) decided.
        decided: bool,
        /// The spliced, violating run.
        trace: Trace<M>,
    },
}

/// Full forensic record of a refutation.
#[derive(Debug)]
pub struct RefutationReport<M> {
    /// The candidate's name.
    pub candidate: String,
    /// The base run `r0` (sender initially dead).
    pub base_run: Trace<M>,
    /// What the receiver decided in `r0`, if anything.
    pub base_decision: Option<bool>,
    /// The defeat.
    pub refutation: SddRefutation<M>,
}

impl<M: Clone + fmt::Debug + PartialEq> fmt::Display for RefutationReport<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Theorem 3.1 refutation of candidate '{}':",
            self.candidate
        )?;
        match &self.refutation {
            SddRefutation::Termination { .. } => writeln!(
                f,
                "  r0 (sender initially dead, suspected at once): receiver never decides — Termination violated"
            ),
            SddRefutation::Validity { input, decided, .. } => {
                writeln!(
                    f,
                    "  r0 (sender initially dead): receiver decides {}",
                    self.base_decision.map_or("nothing".into(), |d| (d as u8).to_string())
                )?;
                writeln!(
                    f,
                    "  r' (sender input {}, takes one step, message withheld): receiver's views match r0, so it decides {} — Validity violated",
                    *input as u8, *decided as u8
                )
            }
        }
    }
}

/// Adversary for `r0`: crash the sender first, then step the receiver
/// (delivering everything — there is nothing) until it decides or the
/// cap runs out.
#[derive(Debug)]
struct InitiallyDeadAdversary {
    emitted: u64,
    receiver_step_cap: u64,
}

impl<M> Adversary<M> for InitiallyDeadAdversary {
    fn next(&mut self, view: &ExecView<'_, M>) -> Option<Choice> {
        let choice = if self.emitted == 0 {
            Choice::crash(sender_id())
        } else {
            if view.decided[receiver_id().index()] || self.emitted > self.receiver_step_cap {
                return None;
            }
            Choice::step_all(receiver_id())
        };
        self.emitted += 1;
        Some(choice)
    }
}

/// Executes the Theorem 3.1 surgery against a candidate.
///
/// Always succeeds in refuting: returns either a Termination or a
/// Validity refutation with full traces.
///
/// # Panics
///
/// Panics if the spliced run unexpectedly fails to reproduce the base
/// decision — which would indicate a non-deterministic candidate,
/// violating the model's premises (§2.2: automata are deterministic).
pub fn refute<C: SddCandidate>(candidate: &C, receiver_step_cap: u64) -> RefutationReport<C::Msg> {
    let delays = DetectionDelays::immediate(2);

    // --- r0: sender initially dead, input arbitrary (say false). ---
    let automata = vec![candidate.sender(false), candidate.receiver()];
    let mut adv = InitiallyDeadAdversary {
        emitted: 0,
        receiver_step_cap,
    };
    let r0 = run(
        ModelKind::sp(delays.clone()),
        automata,
        &mut adv,
        receiver_step_cap + 10,
    )
    .expect("r0 uses only legal choices");
    let base_decision = r0.outputs[receiver_id().index()];

    let Some(d0) = base_decision else {
        return RefutationReport {
            candidate: candidate.name().to_string(),
            base_run: r0.trace,
            base_decision: None,
            refutation: SddRefutation::Termination {
                trace: Trace::new(2),
            },
        };
    };

    // --- r': prepend a sender step, withhold its message, replay. ---
    let input = !d0; // Validity will demand ¬d0; the receiver will say d0.
    let receiver_steps = r0.trace.step_count(receiver_id());
    let mut events = vec![Event::Step(sender_id()), Event::Crash(sender_id())];
    let mut deliveries = vec![DeliveryChoice::Nothing]; // the sender's step
    for _ in 0..receiver_steps {
        events.push(Event::Step(receiver_id()));
        deliveries.push(DeliveryChoice::Nothing); // keep views identical to r0
    }
    // Eventual delivery for fairness: one last receiver step taking
    // whatever the sender managed to send (the decision is already made).
    events.push(Event::Step(receiver_id()));
    deliveries.push(DeliveryChoice::All);
    let mut scripted = ScriptedAdversary::new(events, deliveries);
    let automata = vec![candidate.sender(input), candidate.receiver()];
    let spliced = run(
        ModelKind::sp(delays),
        automata,
        &mut scripted,
        receiver_steps + 10,
    )
    .expect("r' uses only legal choices");

    let decided = spliced.outputs[receiver_id().index()]
        .expect("deterministic receiver repeats its r0 decision");
    assert_eq!(
        decided, d0,
        "candidate is not deterministic: r' and r0 views agree but decisions differ"
    );

    // Certify the violation with the specification checker.
    let outcome = SddOutcome {
        sender_input: input,
        sender_initially_dead: spliced.trace.step_count(sender_id()) == 0,
        receiver_correct: spliced.pattern.is_correct(receiver_id()),
        decision: Some(decided),
    };
    assert_eq!(
        check_sdd(&outcome),
        Err(SddViolation::Validity { input, decided: d0 }),
        "surgery must yield a certified validity violation"
    );

    RefutationReport {
        candidate: candidate.name().to_string(),
        base_run: r0.trace,
        base_decision,
        refutation: SddRefutation::Validity {
            input,
            decided,
            trace: spliced.trace,
        },
    }
}

/// The natural candidates from `ssp-algos`, packaged for [`refute`].
pub mod candidates {
    use super::{receiver_id, sender_id, SddCandidate};
    use ssp_algos::{PatientSpSddReceiver, SddSender, SpSddReceiver};
    use ssp_sim::BoxedAutomaton;

    /// "Decide on the message, or 0 on suspicion."
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WaitOrSuspect;

    impl SddCandidate for WaitOrSuspect {
        type Msg = bool;

        fn name(&self) -> &str {
            "wait-until-message-or-suspicion"
        }

        fn sender(&self, input: bool) -> BoxedAutomaton<bool, bool> {
            Box::new(SddSender::new(receiver_id(), input))
        }

        fn receiver(&self) -> BoxedAutomaton<bool, bool> {
            Box::new(SpSddReceiver::new(sender_id()))
        }
    }

    /// Like [`WaitOrSuspect`] but lingering `patience` extra steps
    /// after the first suspicion.
    #[derive(Debug, Clone, Copy)]
    pub struct PatientWait(pub u64);

    impl SddCandidate for PatientWait {
        type Msg = bool;

        fn name(&self) -> &str {
            "wait-plus-patience"
        }

        fn sender(&self, input: bool) -> BoxedAutomaton<bool, bool> {
            Box::new(SddSender::new(receiver_id(), input))
        }

        fn receiver(&self) -> BoxedAutomaton<bool, bool> {
            Box::new(PatientSpSddReceiver::new(sender_id(), self.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use candidates::{PatientWait, WaitOrSuspect};

    #[test]
    fn natural_candidate_is_refuted_by_validity() {
        let report = refute(&WaitOrSuspect, 1_000);
        assert_eq!(report.base_decision, Some(false), "defaults to 0 in r0");
        match &report.refutation {
            SddRefutation::Validity {
                input,
                decided,
                trace,
            } => {
                assert!(*input);
                assert!(!(*decided));
                assert_eq!(
                    trace.step_count(ProcessId::new(0)),
                    1,
                    "sender stepped once"
                );
            }
            other => panic!("expected validity refutation, got {other:?}"),
        }
        let text = report.to_string();
        assert!(text.contains("Validity violated"));
    }

    #[test]
    fn patience_only_delays_the_defeat() {
        for patience in [0, 1, 7, 50] {
            let report = refute(&PatientWait(patience), 10_000);
            assert!(matches!(report.refutation, SddRefutation::Validity { .. }));
        }
    }

    #[test]
    fn non_deciding_candidate_hits_termination() {
        use ssp_sim::StepAutomaton;

        /// A head-in-the-sand candidate that waits for the message
        /// forever, ignoring the detector.
        #[derive(Debug, Clone, Copy, Default)]
        struct WaitForever;

        impl SddCandidate for WaitForever {
            type Msg = bool;
            fn name(&self) -> &str {
                "wait-forever"
            }
            fn sender(&self, input: bool) -> BoxedAutomaton<bool, bool> {
                Box::new(ssp_algos::SddSender::new(receiver_id(), input))
            }
            fn receiver(&self) -> BoxedAutomaton<bool, bool> {
                #[derive(Debug)]
                struct R(Option<bool>);
                impl StepAutomaton for R {
                    type Msg = bool;
                    type Output = bool;
                    fn step(
                        &mut self,
                        ctx: ssp_sim::StepContext<'_, bool>,
                    ) -> Option<(ProcessId, bool)> {
                        if let Some(env) = ctx.received.first() {
                            self.0 = Some(env.payload);
                        }
                        None
                    }
                    fn output(&self) -> Option<bool> {
                        self.0
                    }
                }
                Box::new(R(None))
            }
        }

        let report = refute(&WaitForever, 200);
        assert!(matches!(
            report.refutation,
            SddRefutation::Termination { .. }
        ));
        assert!(report.to_string().contains("Termination violated"));
    }
}
