//! Exhaustive enumeration of round-model runs: a bounded model checker.
//!
//! Every claim of §5 quantifies over *all* runs (or all initial
//! configurations, or all failure patterns). For small `n`, `t` these
//! spaces are finite and can be enumerated outright:
//!
//! * [`crash_schedules`] — every crash plan with at most `t` crashes,
//!   every crash round (including `horizon + 1`, the "decide then
//!   crash" shape) and every partial-send subset;
//! * [`pending_choices`] — every pending-message choice valid under
//!   weak round synchrony for a given crash plan;
//! * [`explore_rs`] / [`explore_rws`] — run an algorithm over the
//!   whole cross product and fold each outcome into a caller-provided
//!   visitor.
//!
//! The visitor style keeps memory flat: `n = 4, t = 2` RWS spaces run
//! to millions of runs, each checked in microseconds.

use ssp_model::{
    config::enumerate_configs, process::all_processes, ConsensusOutcome, InitialConfig, ProcessId,
    ProcessSet, Round, Value,
};
use ssp_rounds::{run_rs, run_rws, CrashSchedule, PendingChoice, RoundAlgorithm, RoundCrash};

/// All crash schedules over `n` processes with at most `max_faults`
/// crashes, crash rounds in `1..=max_round`, and arbitrary final-round
/// send subsets.
///
/// Pass `max_round = horizon + 1` to include the post-decision crashes
/// that the `RWS` counterexamples need.
///
/// # Examples
///
/// ```
/// use ssp_lab::enumerate::crash_schedules;
///
/// // 2 processes, ≤1 crash, rounds {1,2}: 1 + 2·(2·4) = 17.
/// assert_eq!(crash_schedules(2, 1, 2).len(), 17);
/// ```
#[must_use]
pub fn crash_schedules(n: usize, max_faults: usize, max_round: u32) -> Vec<CrashSchedule> {
    let mut out = Vec::new();
    let mut current = CrashSchedule::none(n);
    fn recurse(
        n: usize,
        from: usize,
        remaining: usize,
        max_round: u32,
        current: &mut CrashSchedule,
        out: &mut Vec<CrashSchedule>,
    ) {
        out.push(current.clone());
        if remaining == 0 {
            return;
        }
        for i in from..n {
            let p = ProcessId::new(i);
            for r in 1..=max_round {
                for subset_bits in 0..(1u64 << n) {
                    let mut s = current.clone();
                    s.crash(
                        p,
                        RoundCrash {
                            round: Round::new(r),
                            sends_to: ProcessSet::from_bits(subset_bits),
                        },
                    );
                    let mut next = s;
                    recurse(n, i + 1, remaining - 1, max_round, &mut next, out);
                }
            }
        }
    }
    recurse(n, 0, max_faults, max_round, &mut current, &mut out);
    out
}

/// The individually-withholdable `(round, sender, receiver)` triples
/// for a crash schedule: sent messages (within rounds `1..=horizon`)
/// whose sender crashes by the end of the following round.
#[must_use]
pub fn pendable_triples(
    schedule: &CrashSchedule,
    horizon: u32,
) -> Vec<(Round, ProcessId, ProcessId)> {
    let n = schedule.n();
    let mut out = Vec::new();
    for sender in all_processes(n) {
        let Some(crash) = schedule.crash_of(sender) else {
            continue;
        };
        for r in 1..=horizon {
            let r = Round::new(r);
            if crash.round > r.next() {
                continue; // weak round synchrony would be violated
            }
            for receiver in all_processes(n) {
                if receiver != sender && schedule.emits(sender, r, receiver) {
                    out.push((r, sender, receiver));
                }
            }
        }
    }
    out
}

/// Every valid [`PendingChoice`] for the schedule (the power set of
/// [`pendable_triples`]). The first element is always the empty choice.
///
/// # Panics
///
/// Panics if there are more than 20 pendable triples (2^20 choices) —
/// keep `n`, `t` small.
#[must_use]
pub fn pending_choices(schedule: &CrashSchedule, horizon: u32) -> Vec<PendingChoice> {
    let triples = pendable_triples(schedule, horizon);
    assert!(
        triples.len() <= 20,
        "{} pendable triples is too many to enumerate",
        triples.len()
    );
    (0..(1u64 << triples.len()))
        .map(|bits| {
            let mut choice = PendingChoice::none();
            for (i, &(r, s, d)) in triples.iter().enumerate() {
                if bits & (1 << i) != 0 {
                    choice.withhold(r, s, d);
                }
            }
            choice
        })
        .collect()
}

/// One enumerated run: the inputs that produced an outcome.
#[derive(Debug, Clone)]
pub struct EnumeratedRun<'a, V> {
    /// The initial configuration.
    pub config: &'a InitialConfig<V>,
    /// The crash schedule.
    pub schedule: &'a CrashSchedule,
    /// The pending choice (always empty for `RS`).
    pub pending: &'a PendingChoice,
    /// The run's outcome.
    pub outcome: ConsensusOutcome<V>,
}

/// Runs `algo` in `RS` over every configuration (over `domain`) and
/// every crash schedule, invoking `visit` per run. Returns the number
/// of runs explored.
pub fn explore_rs<V, A, F>(algo: &A, n: usize, t: usize, domain: &[V], mut visit: F) -> u64
where
    V: Value,
    A: RoundAlgorithm<V>,
    F: FnMut(&EnumeratedRun<'_, V>),
{
    explore_rs_until(algo, n, t, domain, |run| {
        visit(run);
        false
    })
}

/// Like [`explore_rs`], but `visit` returning `true` stops the
/// exploration early (e.g. at the first counterexample).
pub fn explore_rs_until<V, A, F>(algo: &A, n: usize, t: usize, domain: &[V], mut visit: F) -> u64
where
    V: Value,
    A: RoundAlgorithm<V>,
    F: FnMut(&EnumeratedRun<'_, V>) -> bool,
{
    let horizon = algo.round_horizon(n, t);
    let schedules = crash_schedules(n, t, horizon + 1);
    let empty = PendingChoice::none();
    let mut count = 0;
    for config in enumerate_configs(n, domain) {
        for schedule in &schedules {
            let outcome = run_rs(algo, &config, t, schedule);
            count += 1;
            if visit(&EnumeratedRun {
                config: &config,
                schedule,
                pending: &empty,
                outcome,
            }) {
                return count;
            }
        }
    }
    count
}

/// Runs `algo` in `RWS` over every configuration, crash schedule *and*
/// valid pending choice, invoking `visit` per run. Returns the number
/// of runs explored.
pub fn explore_rws<V, A, F>(algo: &A, n: usize, t: usize, domain: &[V], mut visit: F) -> u64
where
    V: Value,
    A: RoundAlgorithm<V>,
    F: FnMut(&EnumeratedRun<'_, V>),
{
    explore_rws_until(algo, n, t, domain, |run| {
        visit(run);
        false
    })
}

/// Like [`explore_rws`], but `visit` returning `true` stops the
/// exploration early.
pub fn explore_rws_until<V, A, F>(algo: &A, n: usize, t: usize, domain: &[V], mut visit: F) -> u64
where
    V: Value,
    A: RoundAlgorithm<V>,
    F: FnMut(&EnumeratedRun<'_, V>) -> bool,
{
    let horizon = algo.round_horizon(n, t);
    let schedules = crash_schedules(n, t, horizon + 1);
    let mut count = 0;
    for config in enumerate_configs(n, domain) {
        for schedule in &schedules {
            for pending in pending_choices(schedule, horizon) {
                let outcome = run_rws(algo, &config, t, schedule, &pending)
                    .expect("enumerated pending choices are valid");
                count += 1;
                if visit(&EnumeratedRun {
                    config: &config,
                    schedule,
                    pending: &pending,
                    outcome,
                }) {
                    return count;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_algos::FloodSet;

    #[test]
    fn schedule_count_matches_formula() {
        // n=2, ≤1 fault, rounds ≤ 2, subsets 2^2:
        // 1 + C(2,1)·2·4 = 17.
        assert_eq!(crash_schedules(2, 1, 2).len(), 17);
        // Two faults add C(2,2)·(2·4)² = 64 ⇒ 81.
        assert_eq!(crash_schedules(2, 2, 2).len(), 81);
    }

    #[test]
    fn pendable_triples_respect_weak_synchrony() {
        let mut schedule = CrashSchedule::none(3);
        schedule.crash(
            ProcessId::new(0),
            RoundCrash {
                round: Round::new(2),
                sends_to: ProcessSet::singleton(ProcessId::new(1)),
            },
        );
        let triples = pendable_triples(&schedule, 2);
        // Round 1 (crash ≤ 2 ✓): both receivers. Round 2: only p2 gets
        // the partial send. Round-1 from correct senders: none.
        assert_eq!(triples.len(), 3);
        assert!(triples.contains(&(Round::FIRST, ProcessId::new(0), ProcessId::new(1))));
        assert!(triples.contains(&(Round::FIRST, ProcessId::new(0), ProcessId::new(2))));
        assert!(triples.contains(&(Round::new(2), ProcessId::new(0), ProcessId::new(1))));
    }

    #[test]
    fn pending_choices_include_empty_and_full() {
        let mut schedule = CrashSchedule::none(2);
        schedule.crash(
            ProcessId::new(0),
            RoundCrash {
                round: Round::FIRST,
                sends_to: ProcessSet::full(2),
            },
        );
        let choices = pending_choices(&schedule, 1);
        assert_eq!(choices.len(), 2); // one pendable triple (p1→p2 @ r1)
        assert!(choices[0].is_empty());
        assert_eq!(choices[1].len(), 1);
    }

    #[test]
    fn explore_rs_visits_every_combination() {
        let mut runs = 0u64;
        let visited = explore_rs(&FloodSet, 2, 1, &[0u64, 1], |_| runs += 1);
        // 4 configs × schedules(n=2, t=1, rounds ≤ 3).
        let schedules = crash_schedules(2, 1, 3).len() as u64;
        assert_eq!(visited, 4 * schedules);
        assert_eq!(runs, visited);
    }

    #[test]
    fn explore_rws_includes_pending_dimension() {
        let rs = explore_rs(&FloodSet, 2, 1, &[0u64, 1], |_| {});
        let rws = explore_rws(&FloodSet, 2, 1, &[0u64, 1], |_| {});
        assert!(rws > rs, "pending choices must add runs ({rws} vs {rs})");
    }
}
