//! The §1 side-claim, executable: *"In the system models of \[12\]
//! (Dwork–Lynch–Stockmeyer partial synchrony), time-out mechanisms can
//! be used to implement an eventually perfect failure detector"* — one
//! of the eight Chandra–Toueg classes, and the natural counterpart to
//! §3's timeouts-implement-`P`-in-`SS`.
//!
//! [`AdaptiveHeartbeatProcess`] runs in the `DLS` executor
//! ([`ModelKind::Dls`]): it starts with an optimistic silence bound,
//! suspects peers that exceed it, and — crucially — *retracts and
//! doubles its bound* when a suspected peer turns out to be alive.
//! Before the global stabilization time the adversary can starve
//! processes and force false suspicions; after it, the `SS` bounds
//! hold, so once the adaptive bound exceeds the true post-`gst`
//! silence bound there are no further mistakes: strong completeness +
//! *eventual* strong accuracy = `◇P`. The same construction in plain
//! `SS` (gst = 0) yields `P` from the start.

use ssp_fd::FdHistory;
use ssp_model::{FailurePattern, ProcessId, ProcessSet, Time};
use ssp_sim::{
    run, BoxedAutomaton, ChainAdversary, DeliveryChoice, Event, FairAdversary, ModelKind,
    ScriptedAdversary, StepAutomaton, StepContext, TraceEvent,
};

/// A heartbeat process with an adaptive (doubling) silence bound.
#[derive(Debug)]
pub struct AdaptiveHeartbeatProcess {
    me: ProcessId,
    n: usize,
    /// Current per-peer silence bound, in own-steps.
    bound: Vec<u64>,
    last_heard: Vec<u64>,
    suspects: ProcessSet,
    /// Cumulative count of retractions (false suspicions corrected).
    retractions: u64,
}

impl AdaptiveHeartbeatProcess {
    /// Creates the process with the given initial bound (own-steps of
    /// silence tolerated before suspecting).
    #[must_use]
    pub fn new(me: ProcessId, n: usize, initial_bound: u64) -> Self {
        AdaptiveHeartbeatProcess {
            me,
            n,
            bound: vec![initial_bound.max(1); n],
            last_heard: vec![0; n],
            suspects: ProcessSet::empty(),
            retractions: 0,
        }
    }

    /// The current suspicion set.
    #[must_use]
    pub fn suspects(&self) -> ProcessSet {
        self.suspects
    }

    /// How many times a suspicion was retracted (evidence of pre-`gst`
    /// chaos).
    #[must_use]
    pub fn retractions(&self) -> u64 {
        self.retractions
    }
}

impl StepAutomaton for AdaptiveHeartbeatProcess {
    type Msg = ();
    type Output = ();

    fn step(&mut self, ctx: StepContext<'_, ()>) -> Option<(ProcessId, ())> {
        for env in ctx.received {
            let src = env.src;
            self.last_heard[src.index()] = ctx.own_step;
            if self.suspects.remove(src) {
                // False suspicion: adapt.
                self.retractions += 1;
                self.bound[src.index()] = self.bound[src.index()].saturating_mul(2);
            }
        }
        for i in 0..self.n {
            let q = ProcessId::new(i);
            if q != self.me && ctx.own_step.saturating_sub(self.last_heard[i]) > self.bound[i] {
                self.suspects.insert(q);
            }
        }
        if self.n <= 1 {
            return None;
        }
        let slot = (ctx.own_step % (self.n as u64 - 1)) as usize;
        let peer = (self.me.index() + 1 + slot) % self.n;
        Some((ProcessId::new(peer), ()))
    }

    fn output(&self) -> Option<()> {
        None
    }
}

/// Result of a `DLS` adaptive-timeout experiment.
#[derive(Debug)]
pub struct DlsExperiment {
    /// The reconstructed suspicion history (global clock).
    pub history: FdHistory,
    /// The realized failure pattern.
    pub pattern: FailurePattern,
    /// Horizon of the run.
    pub horizon: Time,
    /// Total suspicion retractions across observers — nonzero iff the
    /// pre-`gst` chaos fooled someone.
    pub retractions: u64,
}

/// Runs `n` adaptive heartbeat processes under `DLS(phi, delta, gst)`:
/// a scripted pre-`gst` prefix starves process `starved` (forcing
/// false suspicions), then a fair tail runs for `tail_events`,
/// optionally crashing `crash` after its quota of steps.
///
/// # Panics
///
/// Panics if the executor rejects a generated schedule (cannot happen:
/// pre-`gst` scheduling is free and the tail is fair).
#[must_use]
#[allow(clippy::too_many_arguments)] // an experiment recipe, not an API surface
pub fn run_adaptive_experiment(
    n: usize,
    phi: u64,
    delta: u64,
    gst: u64,
    starved: ProcessId,
    initial_bound: u64,
    crash: Option<(ProcessId, u64)>,
    tail_events: u64,
) -> DlsExperiment {
    let automata: Vec<BoxedAutomaton<(), ()>> = (0..n)
        .map(|i| {
            Box::new(AdaptiveHeartbeatProcess::new(
                ProcessId::new(i),
                n,
                initial_bound,
            )) as _
        })
        .collect();
    // Pre-gst chaos: everyone except `starved` steps round-robin with
    // all deliveries withheld.
    let mut prefix_events = Vec::new();
    let mut others: Vec<ProcessId> = (0..n)
        .map(ProcessId::new)
        .filter(|p| *p != starved)
        .collect();
    others.rotate_left(0);
    let mut i = 0;
    while (prefix_events.len() as u64) < gst {
        prefix_events.push(Event::Step(others[i % others.len()]));
        i += 1;
    }
    let deliveries = vec![DeliveryChoice::Nothing; prefix_events.len()];
    let prefix = ScriptedAdversary::new(prefix_events, deliveries);
    let mut tail = FairAdversary::new(n, tail_events);
    if let Some((p, quota)) = crash {
        tail = tail.with_crash(p, quota);
    }
    let mut adversary: ChainAdversary<()> =
        ChainAdversary::new(vec![Box::new(prefix), Box::new(tail)]);
    let result = run(
        ModelKind::dls(phi, delta, gst),
        automata,
        &mut adversary,
        gst + tail_events + 10,
    )
    .expect("pre-gst chaos and fair tails are legal in DLS");

    // Shadow-replay to reconstruct suspicion histories.
    let mut shadows: Vec<AdaptiveHeartbeatProcess> = (0..n)
        .map(|i| AdaptiveHeartbeatProcess::new(ProcessId::new(i), n, initial_bound))
        .collect();
    let mut history = FdHistory::new(n);
    let mut horizon = Time::ZERO;
    for ev in result.trace.events() {
        if let TraceEvent::Step(s) = ev {
            let shadow = &mut shadows[s.process.index()];
            let before = shadow.suspects();
            let _ = shadow.step(StepContext {
                received: &s.received,
                suspects: ProcessSet::empty(),
                own_step: s.own_step,
            });
            if shadow.suspects() != before {
                history.set(s.process, s.time, shadow.suspects());
            }
            horizon = horizon.max(s.time);
        }
    }
    DlsExperiment {
        history,
        pattern: result.pattern,
        horizon,
        retractions: shadows
            .iter()
            .map(AdaptiveHeartbeatProcess::retractions)
            .sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_fd::classify;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn pre_gst_chaos_forces_false_suspicions_yet_diamond_p_holds() {
        // Starve p1 for 120 pre-gst events with an optimistic bound of
        // 4: p2/p3 will falsely suspect it. After gst the bounds hold,
        // the suspicion is retracted, the timeout doubles, and no
        // further mistakes happen: ◇P but (in this run) not P.
        let exp = run_adaptive_experiment(3, 1, 1, 120, p(0), 4, None, 3_000);
        let props = classify(&exp.pattern, &exp.history, exp.horizon);
        assert!(exp.retractions > 0, "the chaos must actually fool someone");
        assert!(!props.strong_accuracy, "false suspicion happened: {props}");
        assert!(props.eventual_strong_accuracy, "{props}");
        assert!(props.strong_completeness, "{props}");
        assert!(props.is_eventually_perfect());
        assert!(!props.is_perfect());
    }

    #[test]
    fn crashes_after_stabilization_are_still_caught() {
        let exp = run_adaptive_experiment(3, 1, 1, 60, p(0), 4, Some((p(2), 40)), 4_000);
        let props = classify(&exp.pattern, &exp.history, exp.horizon);
        assert!(
            props.strong_completeness,
            "crashed p3 must be suspected: {props}"
        );
        assert!(props.eventual_strong_accuracy, "{props}");
        assert!(props.is_eventually_strong());
    }

    #[test]
    fn with_gst_zero_the_construction_is_perfect_if_bound_is_sound() {
        // gst = 0 ⇒ DLS = SS; with an initial bound already above the
        // true silence bound there is never a false suspicion: P.
        let sound_bound = crate::fd_bridge::heartbeat_silence_bound(1, 1, 3) + 1;
        let exp = run_adaptive_experiment(3, 1, 1, 0, p(0), sound_bound, Some((p(1), 7)), 2_000);
        let props = classify(&exp.pattern, &exp.history, exp.horizon);
        assert_eq!(exp.retractions, 0);
        assert!(props.is_perfect(), "{props}");
    }
}
