//! The unified verification entry point: one builder for every sweep.
//!
//! [`Verifier`] subsumes the six historical entry points
//! (`verify_rs`, `verify_rws`, `verify_rs_parallel`,
//! `verify_rws_parallel`, `sample_verify_rs`, `sample_verify_rws`)
//! behind a single builder:
//!
//! ```
//! use ssp_algos::FloodSetWs;
//! use ssp_lab::{RoundModel, Symmetry, ValidityMode, Verifier};
//!
//! let verdict = Verifier::new(&FloodSetWs)
//!     .n(3)
//!     .t(1)
//!     .domain(&[0u64, 1])
//!     .mode(ValidityMode::Strong)
//!     .model(RoundModel::Rws)
//!     .threads(2)
//!     .symmetry(Symmetry::Full)
//!     .run();
//! verdict.expect_ok();
//! // Weighted run counts still cover the whole space:
//! assert!(verdict.represented > verdict.runs);
//! ```
//!
//! Two orthogonal accelerations compose freely:
//!
//! * **Symmetry reduction** ([`Symmetry`]): sweep only canonical orbit
//!   representatives under monotone value relabeling
//!   ([`Symmetry::Values`], sound for
//!   [`ValueSymmetric`](ssp_rounds::ValueSymmetric) algorithms) or
//!   additionally under process permutation ([`Symmetry::Full`], sound
//!   for [`SymmetricAlgorithm`](ssp_rounds::SymmetricAlgorithm)s). The
//!   builder enforces soundness at compile time: the `symmetry` setter
//!   is only available for marked algorithms. Every representative
//!   carries its exact orbit size, so [`Verification::represented`]
//!   and all latency functionals equal the unreduced sweep's.
//! * **Work stealing** (`threads`): the `(configuration class, crash
//!   schedule chunk)` work items feed a shared atomic cursor; idle
//!   workers pull the next chunk instead of idling behind a static
//!   shard. A violation broadcasts its position so other workers skip
//!   everything after it (and keep scanning everything before it),
//!   making the reported counterexample the lexicographically least
//!   *visited* one regardless of thread interleaving.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use ssp_model::{
    canonical_full_classes, canonical_value_classes, config::enumerate_configs, CountingObserver,
    EventCounts, InitialConfig, Value,
};
use ssp_rounds::{
    run_rs, run_rs_observed, run_rws, run_rws_observed, PendingChoice, RoundAlgorithm,
    SymmetricAlgorithm, ValueSymmetric,
};

use crate::checker::{Counterexample, ValidityMode, Verification};
use crate::enumerate::{crash_schedules, pending_choices};
use crate::metrics::LatencyAggregator;
use crate::sample::SampleSpace;
use crate::symmetry::{identity_only, pending_orbit, schedule_orbit, stabilizer};

/// Which round model to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundModel {
    /// Round synchrony (§4.1): crash schedules only.
    Rs,
    /// Weak round synchrony (§4.2): crash schedules × pending choices.
    Rws,
}

/// How aggressively to quotient the run space by symmetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symmetry {
    /// No reduction: visit every run (the historical behaviour).
    Off,
    /// Quotient initial configurations by monotone value relabeling.
    /// Sound for [`ValueSymmetric`](ssp_rounds::ValueSymmetric)
    /// algorithms.
    Values,
    /// Additionally quotient crash schedules and pending choices by
    /// process permutations fixing the configuration. Sound for
    /// [`SymmetricAlgorithm`](ssp_rounds::SymmetricAlgorithm)s.
    Full,
}

impl Symmetry {
    /// The recommended setting for a fully symmetric algorithm:
    /// [`Symmetry::Full`] for spaces small enough to canonicalize
    /// (`n ≤ 8`), [`Symmetry::Off`] beyond.
    #[must_use]
    pub fn auto(n: usize) -> Self {
        if n <= 8 {
            Symmetry::Full
        } else {
            Symmetry::Off
        }
    }
}

/// One configuration class of the sweep: the canonical representative,
/// its orbit size, and its stabilizer subgroup `H` (the process
/// permutations fixing the representative's inputs).
type ConfigClass<V> = (InitialConfig<V>, u64, Vec<Vec<usize>>);

/// Sampling plan for spaces too large to enumerate (subsumes the
/// historical `sample_verify_rs` / `sample_verify_rws`).
#[derive(Debug, Clone, Copy)]
struct SamplePlan {
    trials: u64,
    seed: u64,
}

/// Builder for a verification sweep. See the [module docs](self) for
/// an end-to-end example.
///
/// Defaults: `n = 3`, `t = 1`, `mode = Uniform`, `model = Rs`,
/// `threads = 1`, `symmetry = Off`, exhaustive (no sampling), latency
/// statistics off. `domain` has no default and must be provided.
#[derive(Debug)]
pub struct Verifier<'a, V, A> {
    algo: &'a A,
    n: usize,
    t: usize,
    domain: Option<&'a [V]>,
    mode: ValidityMode,
    model: RoundModel,
    threads: usize,
    symmetry: Symmetry,
    collect_latency: bool,
    count_events: bool,
    sample: Option<SamplePlan>,
    sample_space: Option<SampleSpace>,
}

impl<'a, V, A> Verifier<'a, V, A>
where
    V: Value,
    A: RoundAlgorithm<V>,
{
    /// Starts a sweep of `algo` with the default settings.
    #[must_use]
    pub fn new(algo: &'a A) -> Self {
        Verifier {
            algo,
            n: 3,
            t: 1,
            domain: None,
            mode: ValidityMode::Uniform,
            model: RoundModel::Rs,
            threads: 1,
            symmetry: Symmetry::Off,
            collect_latency: false,
            count_events: false,
            sample: None,
            sample_space: None,
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Fault bound.
    #[must_use]
    pub fn t(mut self, t: usize) -> Self {
        self.t = t;
        self
    }

    /// Input value domain (required).
    #[must_use]
    pub fn domain(mut self, domain: &'a [V]) -> Self {
        self.domain = Some(domain);
        self
    }

    /// Validity flavour to check (default [`ValidityMode::Uniform`]).
    #[must_use]
    pub fn mode(mut self, mode: ValidityMode) -> Self {
        self.mode = mode;
        self
    }

    /// Round model to sweep (default [`RoundModel::Rs`]).
    #[must_use]
    pub fn model(mut self, model: RoundModel) -> Self {
        self.model = model;
        self
    }

    /// Worker threads for the exhaustive sweep (default 1).
    ///
    /// # Panics
    ///
    /// `run` panics if 0.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables the symmetry reduction. Only available for algorithms
    /// marked [`SymmetricAlgorithm`](ssp_rounds::SymmetricAlgorithm) —
    /// the marker is the soundness proof obligation; see
    /// [`symmetry_values`](Self::symmetry_values) for algorithms that
    /// are only value-symmetric.
    #[must_use]
    pub fn symmetry(mut self, symmetry: Symmetry) -> Self
    where
        A: SymmetricAlgorithm<V>,
    {
        self.symmetry = symmetry;
        self
    }

    /// Enables the value-relabeling reduction only (initial
    /// configurations quotiented by monotone relabeling; schedules and
    /// pending choices swept in full). Sound for any
    /// [`ValueSymmetric`](ssp_rounds::ValueSymmetric) algorithm — in
    /// particular `A1`, which is value- but not process-symmetric.
    #[must_use]
    pub fn symmetry_values(mut self) -> Self
    where
        A: ValueSymmetric<V>,
    {
        self.symmetry = Symmetry::Values;
        self
    }

    /// Also fold every visited run into a [`LatencyAggregator`]
    /// (returned in [`Verification::latency`]). Orbit weights keep the
    /// `lat`/`Lat`/`Λ` functionals exact under symmetry reduction.
    #[must_use]
    pub fn collect_latency(mut self) -> Self {
        self.collect_latency = true;
        self
    }

    /// Also tally canonical run-log events over every *visited* run
    /// with a [`CountingObserver`] (returned in
    /// [`Verification::events`]). `delivers` is the aggregate message
    /// complexity at receivers. Counts are raw — one per visited run,
    /// not orbit-weighted — and only collected by exhaustive sweeps.
    #[must_use]
    pub fn count_events(mut self) -> Self {
        self.count_events = true;
        self
    }

    /// Switches from exhaustive enumeration to checking `trials`
    /// random runs (deterministic per `seed`), as the historical
    /// `sample_verify_*` functions did. Symmetry settings are ignored;
    /// latency statistics are always collected.
    #[must_use]
    pub fn sample(mut self, trials: u64, seed: u64) -> Self {
        self.sample = Some(SamplePlan { trials, seed });
        self
    }

    /// Overrides the sampling distribution (default
    /// [`SampleSpace::adversarial`] for the configured `n`, `t`).
    #[must_use]
    pub fn sample_space(mut self, space: SampleSpace) -> Self {
        self.sample_space = Some(space);
        self
    }

    /// Runs the sweep.
    ///
    /// # Panics
    ///
    /// Panics if no domain was provided, if `threads == 0`, or if a
    /// worker thread panics.
    #[must_use]
    pub fn run(self) -> Verification<V>
    where
        V: Sync,
        A: Sync,
    {
        let domain = self.domain.expect("Verifier requires a domain(..)");
        assert!(self.threads > 0, "at least one worker required");
        if let Some(plan) = self.sample {
            return self.run_sampled(domain, plan);
        }
        self.run_exhaustive(domain)
    }

    fn run_sampled(&self, domain: &[V], plan: SamplePlan) -> Verification<V> {
        let space = self
            .sample_space
            .unwrap_or_else(|| SampleSpace::adversarial(self.n, self.t));
        let sampled = crate::sample::sample_verify(
            self.algo,
            &space,
            domain,
            plan.trials,
            plan.seed,
            self.mode,
            self.model == RoundModel::Rws,
        );
        Verification {
            runs: sampled.trials,
            represented: sampled.trials,
            latency: Some(sampled.latency),
            events: None,
            counterexample: sampled.counterexample,
        }
    }

    fn run_exhaustive(&self, domain: &[V]) -> Verification<V>
    where
        V: Sync,
        A: Sync,
    {
        let n = self.n;
        let horizon = self.algo.round_horizon(n, self.t);
        let schedules = crash_schedules(n, self.t, horizon + 1);

        // One entry per configuration class: (representative, orbit
        // size, stabilizer H of the representative).
        let classes: Vec<ConfigClass<V>> = match self.symmetry {
            Symmetry::Off => enumerate_configs(n, domain)
                .map(|c| (c, 1, identity_only(n)))
                .collect(),
            Symmetry::Values => canonical_value_classes(n, domain)
                .into_iter()
                .map(|(c, w)| (c, w, identity_only(n)))
                .collect(),
            Symmetry::Full => canonical_full_classes(n, domain)
                .into_iter()
                .map(|(c, w)| {
                    let h = stabilizer(c.inputs());
                    (c, w, h)
                })
                .collect(),
        };

        // Work items: (class, schedule chunk). Chunks small enough to
        // keep every worker busy near the end of the sweep.
        let chunk = schedules.len().div_ceil(self.threads * 16).max(1);
        let mut items: Vec<(usize, usize, usize)> = Vec::new();
        for class in 0..classes.len() {
            let mut start = 0;
            while start < schedules.len() {
                let end = (start + chunk).min(schedules.len());
                items.push((class, start, end));
                start = end;
            }
        }
        assert!(
            classes.len() < (1 << 16) && schedules.len() < (1 << 24),
            "run space too large to index for counterexample ordering"
        );

        let cursor = AtomicUsize::new(0);
        // Packed (class, schedule, pending) position of the least
        // violation found so far; u64::MAX = none. Workers skip work
        // strictly after it and keep scanning work before it.
        let best_key = AtomicU64::new(u64::MAX);
        let best: Mutex<Option<(u64, Counterexample<V>)>> = Mutex::new(None);

        let (schedules, classes, items) = (&schedules, &classes, &items);
        let (best_ref, best_key_ref) = (&best, &best_key);
        let cursor = &cursor;
        let per_worker: Vec<WorkerTally<V>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|_| {
                    scope.spawn(move || {
                        self.worker(
                            domain,
                            horizon,
                            schedules,
                            classes,
                            items,
                            cursor,
                            best_key_ref,
                            best_ref,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("verification worker panicked"))
                .collect()
        });

        let mut runs = 0;
        let mut represented = 0;
        let mut latency: Option<LatencyAggregator<V>> = None;
        let mut events: Option<EventCounts> = None;
        for (r, w, agg, counts) in per_worker {
            runs += r;
            represented += w;
            match (&mut latency, agg) {
                (Some(total), Some(part)) => total.merge(part),
                (slot @ None, Some(part)) => *slot = Some(part),
                _ => {}
            }
            match (&mut events, counts) {
                (Some(total), Some(part)) => total.merge(part),
                (slot @ None, Some(part)) => *slot = Some(part),
                _ => {}
            }
        }
        Verification {
            runs,
            represented,
            latency,
            events,
            counterexample: best.into_inner().expect("mutex poisoned").map(|(_, c)| c),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn worker(
        &self,
        _domain: &[V],
        horizon: u32,
        schedules: &[ssp_rounds::CrashSchedule],
        classes: &[ConfigClass<V>],
        items: &[(usize, usize, usize)],
        cursor: &AtomicUsize,
        best_key: &AtomicU64,
        best: &Mutex<Option<(u64, Counterexample<V>)>>,
    ) -> WorkerTally<V> {
        let mut runs = 0u64;
        let mut represented = 0u64;
        let mut latency = self.collect_latency.then(LatencyAggregator::new);
        let mut counter = self.count_events.then(CountingObserver::new);
        let empty_pendings = [PendingChoice::none()];
        loop {
            let item = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(&(class, sched_start, sched_end)) = items.get(item) else {
                break;
            };
            // Everything in this item sits at or after (class,
            // sched_start, 0); skip it wholesale once a violation
            // strictly before it is known.
            if pack(class, sched_start, 0) > best_key.load(Ordering::Acquire) {
                continue;
            }
            let (config, class_weight, group) = &classes[class];
            for (sched_idx, schedule) in schedules
                .iter()
                .enumerate()
                .take(sched_end)
                .skip(sched_start)
            {
                if pack(class, sched_idx, 0) > best_key.load(Ordering::Acquire) {
                    break;
                }
                let Some((sched_weight, sched_stab)) = schedule_orbit(schedule, group) else {
                    continue; // counted by its canonical orbit member
                };
                let pendings: Vec<PendingChoice>;
                let pendings: &[PendingChoice] = match self.model {
                    RoundModel::Rs => &empty_pendings,
                    RoundModel::Rws => {
                        pendings = pending_choices(schedule, horizon);
                        &pendings
                    }
                };
                for (pending_idx, pending) in pendings.iter().enumerate() {
                    let key = pack(class, sched_idx, pending_idx);
                    if key > best_key.load(Ordering::Acquire) {
                        break;
                    }
                    let Some(pending_weight) = pending_orbit(pending, &sched_stab) else {
                        continue;
                    };
                    // Two monomorphized paths: the default one keeps
                    // the NullObserver zero-cost hot loop; the counting
                    // one only pays for integer bumps.
                    let outcome = match (&mut counter, self.model) {
                        (None, RoundModel::Rs) => run_rs(self.algo, config, self.t, schedule),
                        (None, RoundModel::Rws) => {
                            run_rws(self.algo, config, self.t, schedule, pending)
                                .expect("enumerated pending choices are valid")
                        }
                        (Some(obs), RoundModel::Rs) => {
                            run_rs_observed(self.algo, config, self.t, schedule, obs)
                                .unwrap_or_else(|e| panic!("{e}"))
                        }
                        (Some(obs), RoundModel::Rws) => {
                            run_rws_observed(self.algo, config, self.t, schedule, pending, obs)
                                .expect("enumerated pending choices are valid")
                        }
                    };
                    runs += 1;
                    let weight = class_weight * sched_weight * pending_weight;
                    represented += weight;
                    if let Some(agg) = &mut latency {
                        agg.add_weighted(
                            &crate::enumerate::EnumeratedRun {
                                config,
                                schedule,
                                pending,
                                outcome: outcome.clone(),
                            },
                            weight,
                        );
                    }
                    if let Err(violation) = check(&outcome, self.mode) {
                        // fetch_min is not stabilized everywhere; CAS
                        // loop keeps the minimum without contention in
                        // the common (rare-violation) case.
                        let mut seen = best_key.load(Ordering::Acquire);
                        while key < seen {
                            match best_key.compare_exchange(
                                seen,
                                key,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            ) {
                                Ok(_) => break,
                                Err(now) => seen = now,
                            }
                        }
                        let mut slot = best.lock().expect("mutex poisoned");
                        if slot.as_ref().is_none_or(|(k, _)| key < *k) {
                            *slot = Some((
                                key,
                                Counterexample {
                                    config: config.clone(),
                                    schedule: schedule.clone(),
                                    pending: pending.clone(),
                                    outcome,
                                    violation,
                                },
                            ));
                        }
                        drop(slot);
                        break; // later pendings of this schedule are all after `key`
                    }
                }
            }
        }
        (runs, represented, latency, counter.map(|c| c.counts()))
    }
}

/// Per-worker totals: visited runs, represented runs, latency
/// statistics (if requested), event counts (if requested).
type WorkerTally<V> = (u64, u64, Option<LatencyAggregator<V>>, Option<EventCounts>);

/// Packs an enumeration position into a totally ordered u64:
/// class (16 bits) · schedule (24 bits) · pending (24 bits).
fn pack(class: usize, sched: usize, pending: usize) -> u64 {
    debug_assert!(class < (1 << 16) && sched < (1 << 24) && pending < (1 << 24));
    ((class as u64) << 48) | ((sched as u64) << 24) | pending as u64
}

fn check<V: Value>(
    outcome: &ssp_model::ConsensusOutcome<V>,
    mode: ValidityMode,
) -> Result<(), ssp_model::spec::ConsensusViolation<V>> {
    match mode {
        ValidityMode::Uniform => ssp_model::check_uniform_consensus(outcome),
        ValidityMode::Strong => ssp_model::check_uniform_consensus_strong(outcome),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_algos::{FloodSet, FloodSetWs, A1};

    #[test]
    fn defaults_reproduce_serial_rs_sweep() {
        let v = Verifier::new(&FloodSet)
            .domain(&[0u64, 1])
            .mode(ValidityMode::Strong)
            .run();
        v.expect_ok();
        assert_eq!(v.runs, v.represented, "no symmetry ⇒ no weighting");
        assert!(v.latency.is_none());
    }

    #[test]
    fn domain_is_required() {
        let result = std::panic::catch_unwind(|| {
            let _: Verification<u64> = Verifier::new(&FloodSet).run();
        });
        assert!(result.is_err());
    }

    #[test]
    fn full_symmetry_preserves_verdict_and_coverage() {
        let full = Verifier::new(&FloodSetWs)
            .n(3)
            .t(1)
            .domain(&[0u64, 1])
            .mode(ValidityMode::Strong)
            .model(RoundModel::Rws)
            .run();
        let reduced = Verifier::new(&FloodSetWs)
            .n(3)
            .t(1)
            .domain(&[0u64, 1])
            .mode(ValidityMode::Strong)
            .model(RoundModel::Rws)
            .symmetry(Symmetry::Full)
            .run();
        full.expect_ok();
        reduced.expect_ok();
        assert_eq!(
            reduced.represented, full.runs,
            "orbit weights cover the space"
        );
        assert!(
            reduced.runs * 2 < full.runs,
            "symmetry should cut visited runs at least in half \
             ({} of {})",
            reduced.runs,
            full.runs
        );
    }

    #[test]
    fn value_symmetry_for_a1_preserves_the_violation() {
        // A1 is only value-symmetric; the builder still reduces configs.
        let full = Verifier::new(&A1)
            .n(3)
            .t(1)
            .domain(&[0u64, 1])
            .model(RoundModel::Rws)
            .run();
        let reduced = Verifier::new(&A1)
            .n(3)
            .t(1)
            .domain(&[0u64, 1])
            .model(RoundModel::Rws)
            .symmetry_values()
            .run();
        assert!(!full.is_ok() && !reduced.is_ok());
        // The reduced sweep visits canonically-relabeled configurations,
        // so its counterexample is the full one up to a value bijection:
        // same violated clause, same schedule shape — possibly swapped
        // decision values.
        let (f, r) = (full.expect_violation(), reduced.expect_violation());
        assert!(
            matches!(
                (&f.violation, &r.violation),
                (
                    ssp_model::spec::ConsensusViolation::UniformAgreement { .. },
                    ssp_model::spec::ConsensusViolation::UniformAgreement { .. }
                )
            ),
            "both sweeps refute uniform agreement:\nfull: {}\nreduced: {}",
            f.violation,
            r.violation
        );
        assert_eq!(f.schedule, r.schedule, "same least crash schedule");
    }

    #[test]
    fn work_stealing_agrees_with_serial() {
        for threads in [1, 4] {
            let v = Verifier::new(&FloodSetWs)
                .n(3)
                .t(1)
                .domain(&[0u64, 1])
                .mode(ValidityMode::Strong)
                .model(RoundModel::Rws)
                .threads(threads)
                .run();
            v.expect_ok();
            assert_eq!(v.represented, v.runs);
        }
    }

    #[test]
    fn counterexample_is_deterministic_across_thread_counts() {
        let reference = Verifier::new(&FloodSet)
            .n(3)
            .t(2)
            .domain(&[0u64, 1])
            .model(RoundModel::Rws)
            .run();
        let reference = reference.expect_violation();
        for threads in [2, 4, 8] {
            let v = Verifier::new(&FloodSet)
                .n(3)
                .t(2)
                .domain(&[0u64, 1])
                .model(RoundModel::Rws)
                .threads(threads)
                .run();
            let cex = v.expect_violation();
            assert_eq!(cex.config, reference.config);
            assert_eq!(cex.schedule, reference.schedule);
            assert_eq!(cex.pending, reference.pending);
        }
    }

    #[test]
    fn latency_functionals_are_exact_under_symmetry() {
        let full = Verifier::new(&FloodSet)
            .n(3)
            .t(1)
            .domain(&[0u64, 1])
            .mode(ValidityMode::Strong)
            .collect_latency()
            .run();
        let reduced = Verifier::new(&FloodSet)
            .n(3)
            .t(1)
            .domain(&[0u64, 1])
            .mode(ValidityMode::Strong)
            .symmetry(Symmetry::Full)
            .collect_latency()
            .run();
        let (full, reduced) = (full.latency.unwrap(), reduced.latency.unwrap());
        assert_eq!(full.runs, reduced.runs, "weighted run totals agree");
        assert_eq!(full.lat(), reduced.lat());
        assert_eq!(full.capital_lambda(), reduced.capital_lambda());
        assert_eq!(full.lat_at_most_faults(1), reduced.lat_at_most_faults(1));
    }

    #[test]
    fn count_events_reports_message_complexity_without_changing_verdicts() {
        let plain = Verifier::new(&FloodSet)
            .n(3)
            .t(1)
            .domain(&[0u64, 1])
            .mode(ValidityMode::Strong)
            .run();
        let counted = Verifier::new(&FloodSet)
            .n(3)
            .t(1)
            .domain(&[0u64, 1])
            .mode(ValidityMode::Strong)
            .count_events()
            .run();
        plain.expect_ok();
        counted.expect_ok();
        assert_eq!(plain.runs, counted.runs, "counting is observational");
        assert!(plain.events.is_none());
        let events = counted.events.expect("count_events() fills the tally");
        // Every RS run of FloodSet closes exactly t+1 = 2 rounds and
        // delivers several messages per round, so the totals are large.
        assert!(events.delivers > counted.runs, "{events:?}");
        assert_eq!(events.closes, counted.runs * 2, "t+1 rounds per run");
        assert_eq!(events.withholds, 0, "RS withholds nothing");
        assert_eq!(events.aborts, 0);
    }

    #[test]
    fn count_events_composes_with_threads_and_symmetry() {
        let serial = Verifier::new(&FloodSetWs)
            .n(3)
            .t(1)
            .domain(&[0u64, 1])
            .model(RoundModel::Rws)
            .count_events()
            .run();
        let stolen = Verifier::new(&FloodSetWs)
            .n(3)
            .t(1)
            .domain(&[0u64, 1])
            .model(RoundModel::Rws)
            .threads(4)
            .symmetry(Symmetry::Full)
            .count_events()
            .run();
        let (a, b) = (serial.events.unwrap(), stolen.events.unwrap());
        assert!(b.delivers > 0);
        // Symmetry visits fewer runs, so raw counts shrink with them.
        assert!(b.delivers < a.delivers);
        assert!(b.closes < a.closes);
    }

    #[test]
    fn sampling_mode_matches_historical_behaviour() {
        let v = Verifier::new(&FloodSetWs)
            .n(5)
            .t(2)
            .domain(&[0u64, 1, 2])
            .mode(ValidityMode::Strong)
            .model(RoundModel::Rws)
            .sample(500, 7)
            .run();
        v.expect_ok();
        assert_eq!(v.runs, 500);
        assert!(v.latency.is_some());
    }

    #[test]
    fn auto_symmetry_picks_full_for_small_n() {
        assert_eq!(Symmetry::auto(4), Symmetry::Full);
        assert_eq!(Symmetry::auto(9), Symmetry::Off);
    }
}
