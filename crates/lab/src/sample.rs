//! Statistical verification for run spaces too large to enumerate.
//!
//! Exhaustive checking ([`crate::checker`]) caps out around `n = 4`;
//! beyond that, `Verifier::sample(trials, seed)` draws random
//! configurations, crash schedules and pending choices from the same
//! distributions the commit workloads use, checks every sampled run
//! against the uniform consensus specification, and reports either a
//! clean bill over `trials` runs or the first concrete counterexample.
//! Deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ssp_model::{InitialConfig, ProcessId, ProcessSet, Round, Value};
use ssp_rounds::{run_rs, run_rws, CrashSchedule, PendingChoice, RoundAlgorithm, RoundCrash};

use crate::checker::{Counterexample, ValidityMode};
use crate::metrics::LatencyAggregator;

/// Distribution parameters for scenario sampling.
#[derive(Debug, Clone, Copy)]
pub struct SampleSpace {
    /// Number of processes.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// Probability that each process is scheduled to crash (subject to
    /// the bound `t`).
    pub crash_prob: f64,
    /// Probability that each pendable message is withheld (`RWS` only).
    pub pending_prob: f64,
}

impl SampleSpace {
    /// A default adversarial mix: half the processes try to crash,
    /// half the pendable messages are withheld.
    #[must_use]
    pub fn adversarial(n: usize, t: usize) -> Self {
        SampleSpace {
            n,
            t,
            crash_prob: 0.5,
            pending_prob: 0.5,
        }
    }
}

/// Draws a crash schedule (rounds `1..=max_round`, arbitrary subsets).
pub fn sample_schedule<R: Rng>(space: &SampleSpace, max_round: u32, rng: &mut R) -> CrashSchedule {
    let mut schedule = CrashSchedule::none(space.n);
    let mut budget = space.t;
    for i in 0..space.n {
        if budget > 0 && rng.gen_bool(space.crash_prob) {
            schedule.crash(
                ProcessId::new(i),
                RoundCrash {
                    round: Round::new(rng.gen_range(1..=max_round)),
                    sends_to: ProcessSet::from_bits(rng.gen_range(0..(1u64 << space.n))),
                },
            );
            budget -= 1;
        }
    }
    schedule
}

/// Draws a pending choice valid for `schedule` under weak round
/// synchrony.
pub fn sample_pending<R: Rng>(
    space: &SampleSpace,
    schedule: &CrashSchedule,
    horizon: u32,
    rng: &mut R,
) -> PendingChoice {
    let mut pending = PendingChoice::none();
    for sender in (0..space.n).map(ProcessId::new) {
        let Some(crash) = schedule.crash_of(sender) else {
            continue;
        };
        for r in (1..=horizon).map(Round::new) {
            if crash.round > r.next() {
                continue;
            }
            for receiver in (0..space.n).map(ProcessId::new) {
                if receiver != sender
                    && schedule.emits(sender, r, receiver)
                    && rng.gen_bool(space.pending_prob)
                {
                    pending.withhold(r, sender, receiver);
                }
            }
        }
    }
    pending
}

/// Outcome of a sampling sweep.
#[derive(Debug)]
pub struct SampleVerification<V> {
    /// Sampled runs checked.
    pub trials: u64,
    /// Latency statistics over the sampled runs.
    pub latency: LatencyAggregator<V>,
    /// The first violating run, if any (sampling stops there).
    pub counterexample: Option<Counterexample<V>>,
}

impl<V: Value> SampleVerification<V> {
    /// Panics with forensics if a violation was sampled.
    ///
    /// # Panics
    ///
    /// See above.
    pub fn expect_ok(&self) -> u64 {
        if let Some(cex) = &self.counterexample {
            panic!("sampled violation after {} trials:\n{cex}", self.trials);
        }
        self.trials
    }
}

fn check<V: Value>(
    outcome: &ssp_model::ConsensusOutcome<V>,
    mode: ValidityMode,
) -> Result<(), ssp_model::spec::ConsensusViolation<V>> {
    match mode {
        ValidityMode::Uniform => ssp_model::check_uniform_consensus(outcome),
        ValidityMode::Strong => ssp_model::check_uniform_consensus_strong(outcome),
    }
}

pub(crate) fn sample_verify<V, A>(
    algo: &A,
    space: &SampleSpace,
    domain: &[V],
    trials: u64,
    seed: u64,
    mode: ValidityMode,
    with_pending: bool,
) -> SampleVerification<V>
where
    V: Value,
    A: RoundAlgorithm<V>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let horizon = algo.round_horizon(space.n, space.t);
    let mut latency = LatencyAggregator::new();
    let empty = PendingChoice::none();
    for trial in 0..trials {
        let inputs: Vec<V> = (0..space.n)
            .map(|_| domain[rng.gen_range(0..domain.len())].clone())
            .collect();
        let config = InitialConfig::new(inputs);
        let schedule = sample_schedule(space, horizon + 1, &mut rng);
        let pending = if with_pending {
            sample_pending(space, &schedule, horizon, &mut rng)
        } else {
            PendingChoice::none()
        };
        let outcome = if with_pending {
            run_rws(algo, &config, space.t, &schedule, &pending)
                .expect("sampled pending choices are valid")
        } else {
            run_rs(algo, &config, space.t, &schedule)
        };
        let run = crate::enumerate::EnumeratedRun {
            config: &config,
            schedule: &schedule,
            pending: if with_pending { &pending } else { &empty },
            outcome,
        };
        latency.add(&run);
        if let Err(violation) = check(&run.outcome, mode) {
            return SampleVerification {
                trials: trial + 1,
                latency,
                counterexample: Some(Counterexample {
                    config: config.clone(),
                    schedule: schedule.clone(),
                    pending: pending.clone(),
                    outcome: run.outcome.clone(),
                    violation,
                }),
            };
        }
    }
    SampleVerification {
        trials,
        latency,
        counterexample: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_algos::{EarlyDeciding, EarlyDecidingWs, FloodSet, FloodSetWs};

    #[test]
    fn floodset_ws_clean_at_n5_t2() {
        let space = SampleSpace::adversarial(5, 2);
        let v = sample_verify(
            &FloodSetWs,
            &space,
            &[0u64, 1, 2],
            2_000,
            7,
            ValidityMode::Strong,
            true,
        );
        assert_eq!(v.expect_ok(), 2_000);
        assert_eq!(v.latency.capital_lambda(), Some(3), "Λ = t+1 at n=5");
    }

    #[test]
    fn floodset_violation_sampled_at_n5_t2_in_rws() {
        let space = SampleSpace {
            n: 5,
            t: 2,
            crash_prob: 0.6,
            pending_prob: 0.7,
        };
        let v = sample_verify(
            &FloodSet,
            &space,
            &[0u64, 1],
            20_000,
            11,
            ValidityMode::Uniform,
            true,
        );
        assert!(
            v.counterexample.is_some(),
            "20k adversarial samples should hit a FloodSet RWS violation"
        );
    }

    #[test]
    fn early_deciding_clean_at_n6_t3_in_rs() {
        let space = SampleSpace::adversarial(6, 3);
        let v = sample_verify(
            &EarlyDeciding,
            &space,
            &[0u64, 1, 2],
            3_000,
            13,
            ValidityMode::Strong,
            false,
        );
        v.expect_ok();
        assert_eq!(v.latency.capital_lambda(), Some(2), "failure-free f+2");
    }

    #[test]
    fn early_deciding_ws_clean_at_n5_t3_in_rws() {
        let space = SampleSpace::adversarial(5, 3);
        let v = sample_verify(
            &EarlyDecidingWs,
            &space,
            &[0u64, 1],
            3_000,
            17,
            ValidityMode::Strong,
            true,
        );
        v.expect_ok();
        assert_eq!(v.latency.capital_lambda(), Some(3), "failure-free f+3");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let space = SampleSpace::adversarial(4, 2);
        let a = sample_verify(
            &FloodSetWs,
            &space,
            &[0u64, 1],
            200,
            3,
            ValidityMode::Strong,
            true,
        );
        let b = sample_verify(
            &FloodSetWs,
            &space,
            &[0u64, 1],
            200,
            3,
            ValidityMode::Strong,
            true,
        );
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.latency.runs, b.latency.runs);
    }
}
