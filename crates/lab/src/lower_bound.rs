//! The `RWS` lower bound (§5.3, via \[7\]): for `n ≥ 3`, `t = 1`, no
//! uniform consensus algorithm in `RWS` has all correct processes
//! deciding at round 1 of every failure-free run — i.e. `Λ(A) ≥ 2`.
//!
//! One cannot quantify over all programs at runtime, so the bound is
//! demonstrated two ways:
//!
//! 1. **A candidate family.** [`Round1Candidate`] parameterizes the
//!    natural two-round algorithms that decide at round 1 of
//!    failure-free runs: a round-1 trigger (how much of the view must
//!    arrive), a chooser (which value to take), and a round-2 fallback.
//!    [`all_round1_candidates`] enumerates the family — it includes
//!    `A1`-alikes and majority/min/max rules — and
//!    [`refute_round1_candidate`] finds, for each, a concrete `RWS`
//!    run violating uniform consensus. The adversary shape is always
//!    the paper's: a round-1 decider crashes with its messages pending.
//! 2. **The contrapositive.** Every algorithm in this repository that
//!    *is* correct in `RWS` (`FloodSetWS`, `C_OptFloodSetWS`,
//!    `F_OptFloodSetWS`) measurably has `Λ ≥ 2`
//!    ([`crate::metrics::LatencyAggregator::capital_lambda`]).

use core::fmt;

use ssp_model::{Decision, ProcessId, Round, Value};
use ssp_rounds::{RoundAlgorithm, RoundProcess};

use crate::checker::{Counterexample, ValidityMode};
use crate::verifier::{RoundModel, Verifier};

/// When a [`Round1Candidate`] decides at round 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// A message arrived from every process (full view).
    FullView,
    /// A message arrived from the given process (as in `A1`, where the
    /// trigger process is `p1`).
    HeardFrom(usize),
}

/// How a value is chosen from the received round values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chooser {
    /// The minimum received value.
    Min,
    /// The maximum received value.
    Max,
    /// The value sent by the given process (own input if missing).
    ProcessValue(usize),
}

impl Chooser {
    fn choose<V: Value>(self, own: &V, received: &[Option<V>]) -> V {
        match self {
            Chooser::Min => received
                .iter()
                .flatten()
                .chain(std::iter::once(own))
                .min()
                .expect("nonempty")
                .clone(),
            Chooser::Max => received
                .iter()
                .flatten()
                .chain(std::iter::once(own))
                .max()
                .expect("nonempty")
                .clone(),
            Chooser::ProcessValue(k) => received
                .get(k)
                .and_then(|m| m.as_ref())
                .unwrap_or(own)
                .clone(),
        }
    }
}

/// A two-round algorithm that decides at round 1 of failure-free runs.
///
/// Round 1: broadcast the input; decide `chooser(view)` if `trigger`
/// fires. Round 2: deciders relay their decision (which is adopted by
/// anyone who hears it); everyone else re-broadcasts its input and
/// falls back to `fallback` over the round-2 values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Round1Candidate {
    /// The round-1 decision trigger.
    pub trigger: Trigger,
    /// The round-1 value chooser.
    pub chooser: Chooser,
    /// The round-2 fallback chooser.
    pub fallback: Chooser,
}

impl fmt::Display for Round1Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "round1[{:?} ⇒ {:?}, else {:?}]",
            self.trigger, self.chooser, self.fallback
        )
    }
}

/// Wire format of [`Round1Candidate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum R1Msg<V> {
    /// A broadcast input value.
    Val(V),
    /// A relayed round-1 decision.
    Relay(V),
}

/// Per-process state of a [`Round1Candidate`].
#[derive(Debug)]
pub struct R1Process<V> {
    spec: Round1Candidate,
    input: V,
    decision: Decision<V>,
}

impl<V: Value> RoundProcess for R1Process<V> {
    type Msg = R1Msg<V>;
    type Value = V;

    fn msgs(&self, round: Round, _dst: ProcessId) -> Option<R1Msg<V>> {
        match round.get() {
            1 => Some(R1Msg::Val(self.input.clone())),
            2 => match self.decision.value() {
                Some(v) => Some(R1Msg::Relay(v.clone())),
                None => Some(R1Msg::Val(self.input.clone())),
            },
            _ => None,
        }
    }

    fn trans(&mut self, round: Round, received: &[Option<R1Msg<V>>]) {
        let values: Vec<Option<V>> = received
            .iter()
            .map(|m| match m {
                Some(R1Msg::Val(v)) => Some(v.clone()),
                _ => None,
            })
            .collect();
        match round.get() {
            1 => {
                let fired = match self.spec.trigger {
                    Trigger::FullView => values.iter().all(Option::is_some),
                    Trigger::HeardFrom(k) => values.get(k).is_some_and(Option::is_some),
                };
                if fired {
                    let v = self.spec.chooser.choose(&self.input, &values);
                    self.decision.decide(v, round).expect("decides once");
                }
            }
            2 if !self.decision.is_decided() => {
                let relayed = received.iter().flatten().find_map(|m| match m {
                    R1Msg::Relay(v) => Some(v.clone()),
                    R1Msg::Val(_) => None,
                });
                let v = relayed.unwrap_or_else(|| self.spec.fallback.choose(&self.input, &values));
                self.decision.decide(v, round).expect("decides once");
            }
            _ => {}
        }
    }

    fn decision(&self) -> Option<(V, Round)> {
        self.decision.clone().into_inner()
    }
}

impl<V: Value> RoundAlgorithm<V> for Round1Candidate {
    type Process = R1Process<V>;

    fn name(&self) -> &str {
        "Round1Candidate"
    }

    fn spawn(&self, _me: ProcessId, _n: usize, t: usize, input: V) -> R1Process<V> {
        assert!(t == 1, "the lower-bound family targets t = 1");
        R1Process {
            spec: *self,
            input,
            decision: Decision::unknown(),
        }
    }

    fn round_horizon(&self, _n: usize, _t: usize) -> u32 {
        2
    }
}

/// Enumerates the candidate family for a system of `n` processes.
#[must_use]
pub fn all_round1_candidates(n: usize) -> Vec<Round1Candidate> {
    let mut choosers = vec![Chooser::Min, Chooser::Max];
    for k in 0..n {
        choosers.push(Chooser::ProcessValue(k));
    }
    let mut triggers = vec![Trigger::FullView];
    for k in 0..n {
        triggers.push(Trigger::HeardFrom(k));
    }
    let mut out = Vec::new();
    for &trigger in &triggers {
        for &chooser in &choosers {
            for &fallback in &choosers {
                out.push(Round1Candidate {
                    trigger,
                    chooser,
                    fallback,
                });
            }
        }
    }
    out
}

/// Verifies that every failure-free binary run of `candidate` decides
/// everywhere at round 1 — the `Λ(A) = 1` premise of the lower bound.
#[must_use]
pub fn decides_round1_when_failure_free(candidate: &Round1Candidate, n: usize) -> bool {
    use ssp_model::config::binary_configs;
    use ssp_rounds::{run_rs, CrashSchedule};
    binary_configs(n).all(|config| {
        let out = run_rs(candidate, &config, 1, &CrashSchedule::none(n));
        out.latency_degree() == Some(1)
    })
}

/// Finds a concrete `RWS` run (n processes, t = 1, binary inputs) on
/// which the candidate violates uniform consensus.
///
/// Returns the counterexample — one exists for *every* member of the
/// family, which is the executable content of `Λ(A) ≥ 2` in `RWS`.
#[must_use]
pub fn refute_round1_candidate(
    candidate: &Round1Candidate,
    n: usize,
) -> Option<Counterexample<u64>> {
    let verification = Verifier::new(candidate)
        .n(n)
        .t(1)
        .domain(&[0u64, 1])
        .mode(ValidityMode::Uniform)
        .model(RoundModel::Rws)
        .run();
    verification.counterexample
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_has_the_expected_size() {
        // triggers (1 + n) × choosers (2 + n)².
        assert_eq!(all_round1_candidates(3).len(), 4 * 25);
    }

    #[test]
    fn family_members_decide_round_1_when_failure_free() {
        for candidate in all_round1_candidates(3) {
            assert!(
                decides_round1_when_failure_free(&candidate, 3),
                "{candidate} must have Λ = 1"
            );
        }
    }

    #[test]
    fn every_family_member_is_refuted_in_rws() {
        // The executable lower bound: each Λ=1 candidate admits an RWS
        // run violating uniform consensus.
        for candidate in all_round1_candidates(3) {
            let cex = refute_round1_candidate(&candidate, 3);
            assert!(cex.is_some(), "{candidate} escaped the adversary");
        }
    }

    #[test]
    fn a1_alike_member_fails_with_the_papers_scenario_shape() {
        // Trigger HeardFrom(0), chooser ProcessValue(0), fallback
        // ProcessValue(1) is essentially A1; its counterexample involves
        // a pending round-1 broadcast.
        let a1_like = Round1Candidate {
            trigger: Trigger::HeardFrom(0),
            chooser: Chooser::ProcessValue(0),
            fallback: Chooser::ProcessValue(1),
        };
        let cex = refute_round1_candidate(&a1_like, 3).expect("must be refuted");
        assert!(
            !cex.pending.is_empty() || cex.schedule.fault_count() > 0,
            "the violation requires adversarial failures"
        );
    }
}
