//! The analysis laboratory: everything that *verifies* the paper's
//! claims rather than merely running its algorithms.
//!
//! * [`enumerate`] — bounded model checking: every configuration,
//!   crash schedule and pending choice of a small `RS`/`RWS` space;
//! * [`metrics`] — the latency-degree functionals `lat`, `Lat`, `Λ`
//!   of §5.2, folded over enumerated spaces;
//! * [`checker`] — whole-algorithm verification with counterexample
//!   extraction (uniform consensus over every enumerated run);
//! * [`impossibility`] — the Theorem 3.1 run-surgery adversary that
//!   defeats every SDD candidate in `SP`;
//! * [`lower_bound`] — the §5.3 / \[7\] demonstration that `Λ(A) ≥ 2`
//!   for uniform consensus in `RWS` (`n ≥ 3`, `t = 1`);
//! * [`fd_bridge`] — heartbeats + timeouts implement `P` inside `SS`,
//!   certified by the Chandra–Toueg property checkers;
//! * [`dls_bridge`] — adaptive timeouts implement `◇P` (not `P`) in
//!   the partially synchronous model, the §1 side-claim;
//! * [`verifier`] — the unified [`Verifier`] builder: exhaustive or
//!   sampled sweeps, symmetry reduction, work-stealing parallelism;
//! * [`symmetry`] — the orbit machinery behind the reduction;
//! * [`sample`] — statistical verification for spaces too large to
//!   enumerate;
//! * [`step_explore`] — a step-level model checker over raw §2
//!   adversaries;
//! * [`time_free`] — §2.7's time-freeness as an executable property:
//!   reorder a schedule preserving per-process views and replay;
//! * [`report`] — plain-text tables for the experiment harness;
//! * [`conformance`] — the runtime ↔ model bridge: certify threaded
//!   `ssp-runtime` executions against the round models and sweep
//!   seed-derived fault plans (`ssp runtime-fuzz`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checker;
pub mod conformance;
pub mod dls_bridge;
pub mod enumerate;
pub mod fd_bridge;
pub mod impossibility;
pub mod lower_bound;
pub mod metrics;
pub mod report;
pub mod sample;
pub mod step_explore;
pub mod symmetry;
pub mod time_free;
pub mod verifier;

pub use checker::{Counterexample, ValidityMode, Verification};
pub use conformance::{
    audit_instance, check_threaded_run, fuzz_runtime, shrink_plan, Divergence, FuzzReport,
    InstanceAudit, RunReport, RunVerdict,
};
pub use dls_bridge::{run_adaptive_experiment, AdaptiveHeartbeatProcess, DlsExperiment};
pub use enumerate::{
    crash_schedules, explore_rs, explore_rs_until, explore_rws, explore_rws_until, pending_choices,
    EnumeratedRun,
};
pub use fd_bridge::{
    run_heartbeat_experiment, run_heartbeat_experiment_seeded, HeartbeatExperiment,
    HeartbeatProcess,
};
pub use impossibility::{refute, RefutationReport, SddCandidate, SddRefutation};
pub use lower_bound::{
    all_round1_candidates, decides_round1_when_failure_free, refute_round1_candidate,
    Round1Candidate,
};
pub use metrics::{message_complexity_rs, worst_case_rs, LatencyAggregator};
pub use report::Table;
pub use sample::{SampleSpace, SampleVerification};
pub use step_explore::{explore_step_runs, StepSpace};
pub use time_free::reorder_preserving_views;
pub use verifier::{RoundModel, Symmetry, Verifier};
