//! Orbit machinery for the symmetry-reduced verifier.
//!
//! The exhaustive run spaces of [`crate::enumerate`] are highly
//! redundant for symmetric algorithms: permuting process identities
//! (for anonymous algorithms) or monotonically relabeling input values
//! maps runs to runs with identical verdicts and latencies. This
//! module provides the group-theoretic bookkeeping the
//! [`Verifier`](crate::Verifier) uses to sweep only one representative
//! per orbit while keeping counts exact:
//!
//! * [`stabilizer`] — the subgroup `H ≤ S_n` fixing an initial
//!   configuration (pointwise on inputs);
//! * [`schedule_orbit`] — decides whether a crash schedule is the
//!   canonical (least) member of its `H`-orbit and, if so, returns the
//!   orbit size and the stabilizer `K = stab_H(S)`;
//! * [`pending_orbit`] — the same for a pending choice under `K`.
//!
//! By the orbit–stabilizer theorem, summing `orbit size` over the
//! canonical members of each orbit recovers the full space size, so
//! weighted statistics over representatives equal unweighted
//! statistics over the whole space.

use ssp_model::Value;
use ssp_rounds::{CrashSchedule, PendingChoice};

/// All `n!` permutations of `0..n`, each as a map `perm[i] = image of
/// i`, in lexicographic order (the identity first).
///
/// # Panics
///
/// Panics if `n > 10` — factorial growth; the symmetry reduction is
/// for small bounded spaces.
#[must_use]
pub fn all_permutations(n: usize) -> Vec<Vec<usize>> {
    assert!(n <= 10, "refusing to materialize {n}! permutations");
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    permute_rest(&mut current, 0, &mut out);
    out
}

fn permute_rest(current: &mut Vec<usize>, from: usize, out: &mut Vec<Vec<usize>>) {
    if from == current.len() {
        out.push(current.clone());
        return;
    }
    for i in from..current.len() {
        current.swap(from, i);
        // Restore lexicographic order below `from` by sorting the tail.
        current[from + 1..].sort_unstable();
        permute_rest(current, from + 1, out);
    }
    current[from..].sort_unstable();
}

/// The stabilizer `H = { π ∈ S_n : π·inputs = inputs }` of an input
/// vector: all permutations of positions holding equal values, as maps
/// `perm[i] = image of i`. Always contains the identity (first).
///
/// For a canonical (sorted) configuration this is the product of
/// symmetric groups on the blocks of equal values — the exact subgroup
/// under which crash schedules of an anonymous algorithm may be
/// quotiented without changing any verdict.
#[must_use]
pub fn stabilizer<V: Value>(inputs: &[V]) -> Vec<Vec<usize>> {
    let n = inputs.len();
    // Positions grouped by value.
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    let mut sorted_values: Vec<&V> = inputs.iter().collect();
    sorted_values.sort();
    sorted_values.dedup();
    for v in sorted_values {
        blocks.push((0..n).filter(|&i| inputs[i] == *v).collect());
    }
    // Cartesian product of per-block permutations, identity-first.
    let mut perms: Vec<Vec<usize>> = vec![(0..n).collect()];
    for block in blocks {
        let block_perms = all_permutations(block.len());
        let mut next = Vec::with_capacity(perms.len() * block_perms.len());
        for perm in &perms {
            for bp in &block_perms {
                let mut composed = perm.clone();
                for (j, &img) in bp.iter().enumerate() {
                    composed[block[j]] = perm[block[img]];
                }
                next.push(composed);
            }
        }
        perms = next;
    }
    // Put the identity first for the fast `|H| == 1` checks.
    let identity: Vec<usize> = (0..n).collect();
    if let Some(pos) = perms.iter().position(|p| *p == identity) {
        perms.swap(0, pos);
    }
    perms
}

/// The trivial group `{ id }` over `n` processes.
#[must_use]
pub fn identity_only(n: usize) -> Vec<Vec<usize>> {
    vec![(0..n).collect()]
}

/// If `schedule` is the canonical (least, by `Ord`) member of its
/// orbit under `group`, returns `(orbit_size, stabilizer)` where
/// `stabilizer = { π ∈ group : π·schedule = schedule }`; otherwise
/// `None` (the orbit is accounted for by its canonical member).
///
/// `orbit_size · |stabilizer| = |group|` (orbit–stabilizer).
#[must_use]
pub fn schedule_orbit(
    schedule: &CrashSchedule,
    group: &[Vec<usize>],
) -> Option<(u64, Vec<Vec<usize>>)> {
    if group.len() == 1 {
        return Some((1, group.to_vec()));
    }
    let mut stab = Vec::new();
    for perm in group {
        let image = schedule.permuted(perm);
        if image < *schedule {
            return None;
        }
        if image == *schedule {
            stab.push(perm.clone());
        }
    }
    Some(((group.len() / stab.len()) as u64, stab))
}

/// If `pending` is the canonical (least) member of its orbit under
/// `group` (the schedule's stabilizer `K`), returns the orbit size;
/// otherwise `None`.
#[must_use]
pub fn pending_orbit(pending: &PendingChoice, group: &[Vec<usize>]) -> Option<u64> {
    if group.len() == 1 || pending.is_empty() {
        return Some(1);
    }
    let mut stab = 0u64;
    for perm in group {
        let image = pending.permuted(perm);
        if image < *pending {
            return None;
        }
        if image == *pending {
            stab += 1;
        }
    }
    Some(group.len() as u64 / stab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::{ProcessId, ProcessSet, Round};
    use ssp_rounds::RoundCrash;

    #[test]
    fn permutation_count_and_identity_first() {
        assert_eq!(all_permutations(0).len(), 1);
        assert_eq!(all_permutations(3).len(), 6);
        assert_eq!(all_permutations(4).len(), 24);
        assert_eq!(all_permutations(3)[0], vec![0, 1, 2]);
    }

    #[test]
    fn stabilizer_sizes_are_products_of_factorials() {
        assert_eq!(stabilizer(&[0u64, 0, 0, 0]).len(), 24); // S4
        assert_eq!(stabilizer(&[0u64, 0, 0, 1]).len(), 6); // S3 × S1
        assert_eq!(stabilizer(&[0u64, 0, 1, 1]).len(), 4); // S2 × S2
        assert_eq!(stabilizer(&[0u64, 1, 2, 3]).len(), 1); // trivial
        assert_eq!(stabilizer(&[0u64, 0, 0, 1])[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn stabilizer_members_fix_the_inputs() {
        let inputs = [0u64, 1, 0, 1, 0];
        for perm in stabilizer(&inputs) {
            let mut permuted = inputs;
            for (i, v) in inputs.iter().enumerate() {
                permuted[perm[i]] = *v;
            }
            assert_eq!(permuted, inputs);
        }
    }

    #[test]
    fn schedule_orbits_partition_the_schedule_set() {
        // All-equal inputs for n=3: H = S3. Orbit sizes over all
        // schedules with ≤1 crash must sum to the full count.
        let group = stabilizer(&[0u64, 0, 0]);
        assert_eq!(group.len(), 6);
        let schedules = crate::enumerate::crash_schedules(3, 1, 3);
        let mut canonical = 0u64;
        let mut represented = 0u64;
        for s in &schedules {
            if let Some((orbit, stab)) = schedule_orbit(s, &group) {
                canonical += 1;
                represented += orbit;
                assert_eq!(orbit * stab.len() as u64, group.len() as u64);
            }
        }
        assert_eq!(represented, schedules.len() as u64);
        assert!(
            canonical < schedules.len() as u64 / 2,
            "reduction should at least halve the schedule sweep \
             ({canonical} of {})",
            schedules.len()
        );
    }

    #[test]
    fn pending_orbits_partition_each_pending_set() {
        let group = stabilizer(&[0u64, 0, 0]);
        let schedules = crate::enumerate::crash_schedules(3, 1, 3);
        for s in &schedules {
            let Some((_, k)) = schedule_orbit(s, &group) else {
                continue;
            };
            let pendings = crate::enumerate::pending_choices(s, 2);
            let represented: u64 = pendings.iter().filter_map(|p| pending_orbit(p, &k)).sum();
            assert_eq!(represented, pendings.len() as u64, "at {s}");
        }
    }

    #[test]
    fn asymmetric_schedule_is_not_canonical_unless_least() {
        let group = stabilizer(&[0u64, 0]);
        assert_eq!(group.len(), 2);
        let crash = RoundCrash {
            round: Round::FIRST,
            sends_to: ProcessSet::empty(),
        };
        let mut crash_p1 = CrashSchedule::none(2);
        crash_p1.crash(ProcessId::new(0), crash);
        let mut crash_p2 = CrashSchedule::none(2);
        crash_p2.crash(ProcessId::new(1), crash);
        // Exactly one of the two is canonical, with orbit size 2.
        let orbits = [
            schedule_orbit(&crash_p1, &group),
            schedule_orbit(&crash_p2, &group),
        ];
        assert_eq!(orbits.iter().flatten().count(), 1);
        assert_eq!(orbits.iter().flatten().next().unwrap().0, 2);
    }
}
