//! Exhaustive exploration of *step-level* runs: a bounded model
//! checker for the `SS`/`SP`/async executors.
//!
//! The round-level enumeration of [`crate::enumerate`] quantifies over
//! round-model adversaries; this module quantifies over the raw §2
//! adversary — every interleaving of steps and crashes and every
//! delivery subset — up to per-process step caps. It is what lets E1
//! ("SDD is solvable in SS") be checked over *all* legal SS schedules
//! rather than sampled ones.
//!
//! The search replays script prefixes through the real executor, so
//! whatever it visits is exactly what [`ssp_sim::run`] would produce;
//! there is no separate (and possibly divergent) semantics.

use ssp_model::{process::all_processes, ProcessId, ProcessSet};
use ssp_sim::{
    run, BoxedAutomaton, DeliveryChoice, Event, ModelKind, RunResult, ScriptedAdversary,
};

/// The bounded space of step-level runs to explore.
#[derive(Debug, Clone)]
pub struct StepSpace {
    /// The model each run executes under.
    pub model: ModelKind,
    /// Per-process step caps: a branch stops scheduling `p` after
    /// `step_caps[p]` steps. Choose caps beyond which the automata are
    /// quiescent (e.g. `Φ+2+Δ` for the SDD receiver) so that capping
    /// does not hide behaviour.
    pub step_caps: Vec<u64>,
    /// Which processes the adversary may crash.
    pub crashable: ProcessSet,
    /// How many crashes the adversary may inject in one run.
    pub max_crashes: usize,
}

impl StepSpace {
    fn n(&self) -> usize {
        self.step_caps.len()
    }
}

/// Enumerates the delivery subsets of a buffer as key lists.
fn delivery_subsets(keys: &[(ProcessId, ssp_model::StepIndex)]) -> Vec<DeliveryChoice> {
    assert!(
        keys.len() <= 12,
        "buffer of {} messages is too large to enumerate",
        keys.len()
    );
    (0..(1usize << keys.len()))
        .map(|bits| {
            DeliveryChoice::Keys(
                keys.iter()
                    .enumerate()
                    .filter(|(i, _)| bits & (1 << i) != 0)
                    .map(|(_, k)| *k)
                    .collect(),
            )
        })
        .collect()
}

/// Explores every run of `space`, calling `visit` on each *maximal*
/// run (one where no further scheduling choice exists, or every alive
/// process is quiescent: decided, step-capped or with an empty
/// buffer-and-nothing-pending). Returns the number of leaves visited;
/// `visit` returning `true` aborts the search early.
///
/// # Panics
///
/// Panics if a replayed prefix is rejected by the executor (impossible
/// for choices generated here) or if a buffer exceeds 12 messages.
pub fn explore_step_runs<M, O, G, F>(factory: G, space: &StepSpace, mut visit: F) -> u64
where
    M: Clone + core::fmt::Debug + PartialEq,
    O: Clone + core::fmt::Debug + PartialEq,
    G: Fn() -> Vec<BoxedAutomaton<M, O>>,
    F: FnMut(&RunResult<M, O>) -> bool,
{
    let mut leaves = 0;
    let mut stop = false;
    let mut script: Vec<(Event, DeliveryChoice)> = Vec::new();
    dfs(
        &factory,
        space,
        &mut script,
        &mut leaves,
        &mut stop,
        &mut visit,
    );
    leaves
}

fn replay<M, O, G>(
    factory: &G,
    space: &StepSpace,
    script: &[(Event, DeliveryChoice)],
) -> RunResult<M, O>
where
    M: Clone + core::fmt::Debug + PartialEq,
    O: Clone + core::fmt::Debug + PartialEq,
    G: Fn() -> Vec<BoxedAutomaton<M, O>>,
{
    let events: Vec<Event> = script.iter().map(|(e, _)| *e).collect();
    let deliveries: Vec<DeliveryChoice> = script
        .iter()
        .filter(|(e, _)| matches!(e, Event::Step(_)))
        .map(|(_, d)| d.clone())
        .collect();
    let mut adv = ScriptedAdversary::new(events, deliveries);
    run(
        space.model.clone(),
        factory(),
        &mut adv,
        script.len() as u64 + 1,
    )
    .expect("generated scripts are always legal")
}

fn dfs<M, O, G, F>(
    factory: &G,
    space: &StepSpace,
    script: &mut Vec<(Event, DeliveryChoice)>,
    leaves: &mut u64,
    stop: &mut bool,
    visit: &mut F,
) where
    M: Clone + core::fmt::Debug + PartialEq,
    O: Clone + core::fmt::Debug + PartialEq,
    G: Fn() -> Vec<BoxedAutomaton<M, O>>,
    F: FnMut(&RunResult<M, O>) -> bool,
{
    if *stop {
        return;
    }
    let state = replay(factory, space, script);
    let n = space.n();
    let crashes = state.pattern.fault_count();

    // Enumerate the available choices.
    let mut choices: Vec<(Event, DeliveryChoice)> = Vec::new();
    let schedulable = state.final_alive.difference(state.final_blocked);
    for p in all_processes(n) {
        if !schedulable.contains(p) {
            continue;
        }
        if state.trace.step_count(p) >= space.step_caps[p.index()] {
            continue;
        }
        // A step is only *interesting* if the process is not already
        // quiescent: undecided, or holding undelivered messages.
        let keys: Vec<_> = state.final_buffers[p.index()]
            .iter()
            .map(|e| (e.src, e.sent_at))
            .collect();
        for d in delivery_subsets(&keys) {
            choices.push((Event::Step(p), d));
        }
    }
    if crashes < space.max_crashes {
        for p in state.final_alive.intersection(space.crashable).iter() {
            choices.push((Event::Crash(p), DeliveryChoice::Nothing));
        }
    }

    if choices.is_empty() {
        *leaves += 1;
        if visit(&state) {
            *stop = true;
        }
        return;
    }
    for choice in choices {
        script.push(choice);
        dfs(factory, space, script, leaves, stop, visit);
        script.pop();
        if *stop {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_algos::{SddSender, SsSddReceiver};
    use ssp_model::{check_sdd, SddOutcome};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn sdd_space(phi: u64, delta: u64) -> StepSpace {
        StepSpace {
            model: ModelKind::ss(phi, delta),
            // Sender quiescent after 1 step (+1 slack); receiver decides
            // by its (Φ+1+Δ)-th step (+1 slack).
            step_caps: vec![2, phi + delta + 2],
            crashable: ProcessSet::singleton(p(0)),
            max_crashes: 1,
        }
    }

    /// E1, exhaustive at the step level: over *every* legal SS schedule
    /// (within quiescence caps), every delivery subset, and every
    /// sender crash point, the Φ+1+Δ receiver satisfies SDD.
    #[test]
    fn sdd_in_ss_exhaustive_over_all_schedules() {
        for (phi, delta) in [(1u64, 1u64), (2, 1), (1, 2)] {
            for input in [false, true] {
                let factory = || -> Vec<BoxedAutomaton<bool, bool>> {
                    vec![
                        Box::new(SddSender::new(p(1), input)),
                        Box::new(SsSddReceiver::new(p(0), phi, delta)),
                    ]
                };
                let mut checked = 0u64;
                let leaves = explore_step_runs(factory, &sdd_space(phi, delta), |state| {
                    // Only leaves where the receiver survived and
                    // exhausted its budget are obligated to decide.
                    let receiver_done = state.trace.step_count(p(1)) >= phi + 1 + delta;
                    let outcome = SddOutcome {
                        sender_input: input,
                        sender_initially_dead: state.trace.step_count(p(0)) == 0,
                        receiver_correct: state.pattern.is_correct(p(1)),
                        decision: state.outputs[1],
                    };
                    if state.pattern.is_correct(p(1)) && receiver_done {
                        checked += 1;
                        if let Err(e) = check_sdd(&outcome) {
                            panic!("Φ={phi} Δ={delta} input={input}: {e}\n{}", state.trace);
                        }
                    } else if let Some(d) = outcome.decision {
                        // Even partial runs must never violate validity.
                        checked += 1;
                        assert!(
                            outcome.sender_initially_dead || d == input,
                            "Φ={phi} Δ={delta}: premature wrong decision\n{}",
                            state.trace
                        );
                    }
                    false
                });
                assert!(leaves >= 10, "space unexpectedly small: {leaves}");
                assert!(checked > 0, "no leaf exercised the obligation");
            }
        }
    }

    /// The explorer respects Φ: no generated leaf trace fails the
    /// independent SS validator.
    #[test]
    fn explored_runs_are_all_legal_ss() {
        let factory = || -> Vec<BoxedAutomaton<bool, bool>> {
            vec![
                Box::new(SddSender::new(p(1), true)),
                Box::new(SsSddReceiver::new(p(0), 1, 1)),
            ]
        };
        explore_step_runs(factory, &sdd_space(1, 1), |state| {
            ssp_sim::validate_ss(&state.trace, 1, 1).expect("legal SS trace");
            false
        });
    }

    #[test]
    #[should_panic(expected = "too large to enumerate")]
    fn oversized_buffers_are_rejected() {
        let keys: Vec<_> = (0..13)
            .map(|i| (p(0), ssp_model::StepIndex::new(i)))
            .collect();
        let _ = delivery_subsets(&keys);
    }
}

#[cfg(test)]
mod sp_tests {
    use super::*;
    use ssp_algos::{SddSender, SpSddReceiver};
    use ssp_model::{check_sdd, SddOutcome};
    use ssp_sim::DetectionDelays;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Theorem 3.1 found *by search*: exploring the SP step space
    /// around the natural candidate turns up a validity-violating run
    /// without any knowledge of the proof's construction.
    #[test]
    fn sp_exploration_discovers_the_sdd_violation() {
        let input = true;
        let factory = || -> Vec<BoxedAutomaton<bool, bool>> {
            vec![
                Box::new(SddSender::new(p(1), input)),
                Box::new(SpSddReceiver::new(p(0))),
            ]
        };
        let space = StepSpace {
            model: ModelKind::sp(DetectionDelays::immediate(2)),
            step_caps: vec![2, 4],
            crashable: ProcessSet::singleton(p(0)),
            max_crashes: 1,
        };
        let mut violations = 0u64;
        let leaves = explore_step_runs(factory, &space, |state| {
            let outcome = SddOutcome {
                sender_input: input,
                sender_initially_dead: state.trace.step_count(p(0)) == 0,
                receiver_correct: state.pattern.is_correct(p(1)),
                decision: state.outputs[1],
            };
            // Count only *certain* violations: a wrong decision is
            // final; missing decisions may be cap artifacts.
            if let Err(e) = check_sdd(&outcome) {
                if outcome.decision.is_some() {
                    violations += 1;
                    let _ = e;
                }
            }
            false
        });
        assert!(leaves > 20);
        assert!(
            violations > 0,
            "the search must stumble on the Theorem 3.1 run by itself"
        );
    }

    /// Control: the same exploration against the *SS* receiver in the
    /// SS model finds no violation — the asymmetry is the models', not
    /// the search's.
    #[test]
    fn ss_exploration_finds_no_violation_for_the_ss_receiver() {
        use ssp_algos::SsSddReceiver;
        let input = true;
        let (phi, delta) = (1, 1);
        let factory = || -> Vec<BoxedAutomaton<bool, bool>> {
            vec![
                Box::new(SddSender::new(p(1), input)),
                Box::new(SsSddReceiver::new(p(0), phi, delta)),
            ]
        };
        let space = StepSpace {
            model: ModelKind::ss(phi, delta),
            step_caps: vec![2, phi + delta + 2],
            crashable: ProcessSet::singleton(p(0)),
            max_crashes: 1,
        };
        explore_step_runs(factory, &space, |state| {
            let outcome = SddOutcome {
                sender_input: input,
                sender_initially_dead: state.trace.step_count(p(0)) == 0,
                receiver_correct: state.pattern.is_correct(p(1)),
                decision: state.outputs[1],
            };
            if outcome.decision.is_some() {
                check_sdd(&outcome).expect("SS receiver is sound on every branch");
            }
            false
        });
    }
}
