//! Whole-algorithm verification with counterexample extraction.
//!
//! Wraps the exhaustive exploration of [`crate::enumerate`] with the
//! specification checkers of `ssp-model`: verify an algorithm against
//! the uniform consensus specification over *every* run of a bounded
//! space, or get back the exact run that breaks it.

use core::fmt;

use ssp_model::{spec::ConsensusViolation, ConsensusOutcome, EventCounts, InitialConfig, Value};
use ssp_rounds::{CrashSchedule, PendingChoice};

use crate::metrics::LatencyAggregator;

/// Which validity flavor to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidityMode {
    /// Only the paper's uniform validity (unanimity ⇒ that value).
    Uniform,
    /// Also require decisions to be some process's input.
    Strong,
}

/// A complete counterexample: the run inputs plus the violated clause.
#[derive(Debug, Clone)]
pub struct Counterexample<V> {
    /// The initial configuration of the violating run.
    pub config: InitialConfig<V>,
    /// Its crash schedule.
    pub schedule: CrashSchedule,
    /// Its pending choice (empty for `RS` runs).
    pub pending: PendingChoice,
    /// The outcome.
    pub outcome: ConsensusOutcome<V>,
    /// The violated specification clause.
    pub violation: ConsensusViolation<V>,
}

impl<V: Value> fmt::Display for Counterexample<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample: {}", self.violation)?;
        writeln!(f, "  config:   {}", self.config)?;
        writeln!(f, "  schedule: {}", self.schedule)?;
        if !self.pending.is_empty() {
            write!(f, "  pending:  ")?;
            for (r, s, d) in self.pending.triples() {
                write!(f, "[{s}→{d} @{r}] ")?;
            }
            writeln!(f)?;
        }
        write!(f, "{}", self.outcome)
    }
}

/// The result of a verification sweep.
#[derive(Debug)]
pub struct Verification<V> {
    /// Number of runs actually *executed*. Without symmetry reduction
    /// this is the full space on a clean sweep, or the prefix up to
    /// and including the counterexample (the sweep stops there); with
    /// reduction it is the number of canonical orbit representatives
    /// visited.
    pub runs: u64,
    /// Number of runs *represented*: each executed run counted with
    /// its exact orbit size. Equal to `runs` when symmetry reduction
    /// is off; equal to the full space size on any clean sweep, so
    /// reduced and unreduced clean sweeps report the same coverage.
    pub represented: u64,
    /// Orbit-weighted latency statistics over the visited runs, when
    /// requested via `Verifier::collect_latency` (always present for
    /// sampled sweeps).
    pub latency: Option<LatencyAggregator<V>>,
    /// Canonical-event totals over the visited runs, when requested
    /// via `Verifier::count_events`. `events.delivers` is the sweep's
    /// aggregate message complexity as observed at receivers. Raw
    /// per-visited-run counts, never orbit-weighted.
    pub events: Option<EventCounts>,
    /// The least violation found (in enumeration order), if any.
    pub counterexample: Option<Counterexample<V>>,
}

impl<V: Value> Verification<V> {
    /// Whether every explored run satisfied the specification.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.counterexample.is_none()
    }

    /// Unwraps the success case.
    ///
    /// # Panics
    ///
    /// Panics with the counterexample's display if a violation exists.
    pub fn expect_ok(&self) -> u64 {
        if let Some(cex) = &self.counterexample {
            panic!("specification violated after {} runs:\n{cex}", self.runs);
        }
        self.runs
    }

    /// Unwraps the failure case.
    ///
    /// # Panics
    ///
    /// Panics if no violation was found.
    pub fn expect_violation(&self) -> &Counterexample<V> {
        self.counterexample
            .as_ref()
            .expect("expected a specification violation, found none")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifier::{RoundModel, Verifier};
    use ssp_algos::{FloodSet, FloodSetWs, A1};
    use ssp_model::spec::ConsensusViolation;

    #[test]
    fn floodset_verified_in_rs() {
        // E3 (small instance): FloodSet solves uniform consensus in RS.
        let v = Verifier::new(&FloodSet)
            .n(3)
            .t(1)
            .domain(&[0u64, 1])
            .mode(ValidityMode::Strong)
            .run();
        assert!(v.runs > 500);
        v.expect_ok();
    }

    #[test]
    fn a1_verified_in_rs() {
        // Theorem 5.2 (exhaustive, n=3): A1 solves uniform consensus.
        let v = Verifier::new(&A1)
            .n(3)
            .t(1)
            .domain(&[0u64, 1])
            .mode(ValidityMode::Strong)
            .run();
        v.expect_ok();
    }

    #[test]
    fn floodset_refuted_in_rws_with_t2() {
        // E4: the checker *finds* the pending-message disagreement.
        let v = Verifier::new(&FloodSet)
            .n(3)
            .t(2)
            .domain(&[0u64, 1])
            .mode(ValidityMode::Uniform)
            .model(RoundModel::Rws)
            .run();
        let cex = v.expect_violation();
        assert!(matches!(
            cex.violation,
            ConsensusViolation::UniformAgreement { .. }
        ));
        // The counterexample prints all the forensics.
        let text = cex.to_string();
        assert!(text.contains("uniform agreement"));
        assert!(text.contains("pending"));
    }

    #[test]
    fn a1_refuted_in_rws() {
        // §5.3: A1 is not uniform in RWS; the checker finds the run.
        let v = Verifier::new(&A1)
            .n(3)
            .t(1)
            .domain(&[0u64, 1])
            .mode(ValidityMode::Uniform)
            .model(RoundModel::Rws)
            .run();
        let cex = v.expect_violation();
        assert!(matches!(
            cex.violation,
            ConsensusViolation::UniformAgreement { .. }
        ));
    }

    #[test]
    fn floodset_ws_verified_in_rws() {
        // E5 (small instance): FloodSetWS survives every pending choice.
        let v = Verifier::new(&FloodSetWs)
            .n(3)
            .t(1)
            .domain(&[0u64, 1])
            .mode(ValidityMode::Strong)
            .model(RoundModel::Rws)
            .run();
        assert!(v.runs > 1_000);
        v.expect_ok();
    }
}
