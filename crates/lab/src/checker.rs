//! Whole-algorithm verification with counterexample extraction.
//!
//! Wraps the exhaustive exploration of [`crate::enumerate`] with the
//! specification checkers of `ssp-model`: verify an algorithm against
//! the uniform consensus specification over *every* run of a bounded
//! space, or get back the exact run that breaks it.

use core::fmt;

use ssp_model::{
    spec::ConsensusViolation, check_uniform_consensus, check_uniform_consensus_strong,
    ConsensusOutcome, InitialConfig, Value,
};
use ssp_rounds::{CrashSchedule, PendingChoice, RoundAlgorithm};

use crate::enumerate::{explore_rs_until, explore_rws_until};

/// Which validity flavor to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidityMode {
    /// Only the paper's uniform validity (unanimity ⇒ that value).
    Uniform,
    /// Also require decisions to be some process's input.
    Strong,
}

/// A complete counterexample: the run inputs plus the violated clause.
#[derive(Debug, Clone)]
pub struct Counterexample<V> {
    /// The initial configuration of the violating run.
    pub config: InitialConfig<V>,
    /// Its crash schedule.
    pub schedule: CrashSchedule,
    /// Its pending choice (empty for `RS` runs).
    pub pending: PendingChoice,
    /// The outcome.
    pub outcome: ConsensusOutcome<V>,
    /// The violated specification clause.
    pub violation: ConsensusViolation<V>,
}

impl<V: Value> fmt::Display for Counterexample<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample: {}", self.violation)?;
        writeln!(f, "  config:   {}", self.config)?;
        writeln!(f, "  schedule: {}", self.schedule)?;
        if !self.pending.is_empty() {
            write!(f, "  pending:  ")?;
            for (r, s, d) in self.pending.triples() {
                write!(f, "[{s}→{d} @{r}] ")?;
            }
            writeln!(f)?;
        }
        write!(f, "{}", self.outcome)
    }
}

/// The result of a verification sweep.
#[derive(Debug)]
pub struct Verification<V> {
    /// Number of runs explored (the full space when no violation was
    /// found; the prefix up to and including the counterexample
    /// otherwise — the sweep stops at the first violation).
    pub runs: u64,
    /// The first violation found, if any.
    pub counterexample: Option<Counterexample<V>>,
}

impl<V: Value> Verification<V> {
    /// Whether every explored run satisfied the specification.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.counterexample.is_none()
    }

    /// Unwraps the success case.
    ///
    /// # Panics
    ///
    /// Panics with the counterexample's display if a violation exists.
    pub fn expect_ok(&self) -> u64 {
        if let Some(cex) = &self.counterexample {
            panic!("specification violated after {} runs:\n{cex}", self.runs);
        }
        self.runs
    }

    /// Unwraps the failure case.
    ///
    /// # Panics
    ///
    /// Panics if no violation was found.
    pub fn expect_violation(&self) -> &Counterexample<V> {
        self.counterexample
            .as_ref()
            .expect("expected a specification violation, found none")
    }
}

fn check<V: Value>(
    outcome: &ConsensusOutcome<V>,
    mode: ValidityMode,
) -> Result<(), ConsensusViolation<V>> {
    match mode {
        ValidityMode::Uniform => check_uniform_consensus(outcome),
        ValidityMode::Strong => check_uniform_consensus_strong(outcome),
    }
}

/// Verifies `algo` against uniform consensus over every `RS` run of the
/// bounded space (all configs over `domain`, all crash schedules).
#[must_use]
pub fn verify_rs<V, A>(algo: &A, n: usize, t: usize, domain: &[V], mode: ValidityMode) -> Verification<V>
where
    V: Value,
    A: RoundAlgorithm<V>,
{
    let mut counterexample = None;
    let runs = explore_rs_until(algo, n, t, domain, |run| {
        if let Err(violation) = check(&run.outcome, mode) {
            counterexample = Some(Counterexample {
                config: run.config.clone(),
                schedule: run.schedule.clone(),
                pending: run.pending.clone(),
                outcome: run.outcome.clone(),
                violation,
            });
            return true;
        }
        false
    });
    Verification {
        runs,
        counterexample,
    }
}

/// Verifies `algo` against uniform consensus over every `RWS` run of
/// the bounded space (configs × crash schedules × pending choices).
#[must_use]
pub fn verify_rws<V, A>(
    algo: &A,
    n: usize,
    t: usize,
    domain: &[V],
    mode: ValidityMode,
) -> Verification<V>
where
    V: Value,
    A: RoundAlgorithm<V>,
{
    let mut counterexample = None;
    let runs = explore_rws_until(algo, n, t, domain, |run| {
        if let Err(violation) = check(&run.outcome, mode) {
            counterexample = Some(Counterexample {
                config: run.config.clone(),
                schedule: run.schedule.clone(),
                pending: run.pending.clone(),
                outcome: run.outcome.clone(),
                violation,
            });
            return true;
        }
        false
    });
    Verification {
        runs,
        counterexample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_algos::{FloodSet, FloodSetWs, A1};
    use ssp_model::spec::ConsensusViolation;

    #[test]
    fn floodset_verified_in_rs() {
        // E3 (small instance): FloodSet solves uniform consensus in RS.
        let v = verify_rs(&FloodSet, 3, 1, &[0u64, 1], ValidityMode::Strong);
        assert!(v.runs > 500);
        v.expect_ok();
    }

    #[test]
    fn a1_verified_in_rs() {
        // Theorem 5.2 (exhaustive, n=3): A1 solves uniform consensus.
        let v = verify_rs(&A1, 3, 1, &[0u64, 1], ValidityMode::Strong);
        v.expect_ok();
    }

    #[test]
    fn floodset_refuted_in_rws_with_t2() {
        // E4: the checker *finds* the pending-message disagreement.
        let v = verify_rws(&FloodSet, 3, 2, &[0u64, 1], ValidityMode::Uniform);
        let cex = v.expect_violation();
        assert!(matches!(
            cex.violation,
            ConsensusViolation::UniformAgreement { .. }
        ));
        // The counterexample prints all the forensics.
        let text = cex.to_string();
        assert!(text.contains("uniform agreement"));
        assert!(text.contains("pending"));
    }

    #[test]
    fn a1_refuted_in_rws() {
        // §5.3: A1 is not uniform in RWS; the checker finds the run.
        let v = verify_rws(&A1, 3, 1, &[0u64, 1], ValidityMode::Uniform);
        let cex = v.expect_violation();
        assert!(matches!(
            cex.violation,
            ConsensusViolation::UniformAgreement { .. }
        ));
    }

    #[test]
    fn floodset_ws_verified_in_rws() {
        // E5 (small instance): FloodSetWS survives every pending choice.
        let v = verify_rws(&FloodSetWs, 3, 1, &[0u64, 1], ValidityMode::Strong);
        assert!(v.runs > 1_000);
        v.expect_ok();
    }
}
