//! Discrete time, step indices and round numbers.
//!
//! The paper assumes a discrete global clock `T = ℕ` that processes
//! cannot read (§2). Step-level executions are indexed by [`StepIndex`]
//! (position in the schedule `S`) and stamped with a [`Time`] (the list
//! `T` of the run tuple `<F, C0, S, T>`). Round-based executions (§4)
//! are indexed by [`Round`], starting at round 1 as in the paper.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A tick of the discrete global clock (`t ∈ T`).
///
/// # Examples
///
/// ```
/// use ssp_model::Time;
///
/// let t = Time::ZERO + 3;
/// assert_eq!(t.tick(), 3);
/// assert!(t < t + 1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Time(u64);

impl Time {
    /// The origin of the global clock.
    pub const ZERO: Time = Time(0);

    /// Creates a time from a raw tick count.
    #[must_use]
    pub fn new(tick: u64) -> Self {
        Time(tick)
    }

    /// Raw tick count.
    #[must_use]
    pub fn tick(self) -> u64 {
        self.0
    }

    /// The immediately following tick.
    #[must_use]
    pub fn next(self) -> Time {
        Time(self.0 + 1)
    }
}

impl Add<u64> for Time {
    type Output = Time;
    fn add(self, rhs: u64) -> Time {
        Time(self.0 + rhs)
    }
}

impl AddAssign<u64> for Time {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Time> for Time {
    type Output = u64;
    fn sub(self, rhs: Time) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

/// Position of a step within a schedule `S` (zero-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct StepIndex(u64);

impl StepIndex {
    /// First position of a schedule.
    pub const FIRST: StepIndex = StepIndex(0);

    /// Creates a step index from a raw position.
    #[must_use]
    pub fn new(pos: u64) -> Self {
        StepIndex(pos)
    }

    /// Raw zero-based position.
    #[must_use]
    pub fn position(self) -> u64 {
        self.0
    }

    /// The next position.
    #[must_use]
    pub fn next(self) -> StepIndex {
        StepIndex(self.0 + 1)
    }
}

impl Add<u64> for StepIndex {
    type Output = StepIndex;
    fn add(self, rhs: u64) -> StepIndex {
        StepIndex(self.0 + rhs)
    }
}

impl fmt::Display for StepIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step#{}", self.0)
    }
}

/// A round number of the `RS`/`RWS` computational models (§4).
///
/// Rounds are one-based: the first exchange is round 1, matching the
/// paper's `rounds := rounds + 1` convention in the `trans` functions.
///
/// # Examples
///
/// ```
/// use ssp_model::Round;
///
/// assert_eq!(Round::FIRST.get(), 1);
/// assert_eq!(Round::FIRST.next().get(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Round(u32);

impl Round {
    /// Round 1, the first round of any execution.
    pub const FIRST: Round = Round(1);

    /// Creates a round number.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`; rounds are one-based.
    #[must_use]
    pub fn new(r: u32) -> Self {
        assert!(r >= 1, "rounds are one-based");
        Round(r)
    }

    /// The numeric value (≥ 1).
    #[must_use]
    pub fn get(self) -> u32 {
        self.0
    }

    /// The following round.
    #[must_use]
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// The preceding round, or `None` for round 1.
    #[must_use]
    pub fn prev(self) -> Option<Round> {
        if self.0 > 1 {
            Some(Round(self.0 - 1))
        } else {
            None
        }
    }
}

impl Default for Round {
    fn default() -> Self {
        Round::FIRST
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let t = Time::new(5);
        assert_eq!(t + 2, Time::new(7));
        assert_eq!(Time::new(7) - t, 2);
        assert_eq!(t.next(), Time::new(6));
        let mut u = t;
        u += 3;
        assert_eq!(u.tick(), 8);
    }

    #[test]
    fn step_index_order() {
        assert!(StepIndex::FIRST < StepIndex::new(1));
        assert_eq!(StepIndex::new(3).next().position(), 4);
        assert_eq!((StepIndex::new(3) + 4).position(), 7);
    }

    #[test]
    fn rounds_are_one_based() {
        assert_eq!(Round::FIRST.prev(), None);
        assert_eq!(Round::new(2).prev(), Some(Round::FIRST));
        assert_eq!(Round::default(), Round::FIRST);
    }

    #[test]
    #[should_panic(expected = "one-based")]
    fn round_zero_is_rejected() {
        let _ = Round::new(0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Time::new(4).to_string(), "t=4");
        assert_eq!(StepIndex::new(4).to_string(), "step#4");
        assert_eq!(Round::new(4).to_string(), "round 4");
    }
}
