//! Decision values and the totally ordered value set `V` (§5.1).

use core::fmt;
use core::hash::Hash;

use serde::{Deserialize, Serialize};

use crate::time::Round;

/// Requirements on the consensus value set `V`.
///
/// The paper fixes "a value set `V` that is totally ordered" so that
/// algorithms may decide `min(W)`. Any owned, ordered, hashable type
/// qualifies; the blanket impl makes this a trait alias.
pub trait Value: Clone + Ord + Hash + fmt::Debug + Send + 'static {}

impl<T: Clone + Ord + Hash + fmt::Debug + Send + 'static> Value for T {}

/// The decision register of a process.
///
/// Mirrors the paper's `decision ∈ V ∪ {unknown}` variable together
/// with the *integrity* requirement (a process decides at most once):
/// [`Decision::decide`] returns an error on a second, different
/// decision attempt and is idempotent for equal values.
///
/// # Examples
///
/// ```
/// use ssp_model::{Decision, Round};
///
/// let mut d: Decision<u64> = Decision::unknown();
/// assert!(!d.is_decided());
/// d.decide(7, Round::FIRST)?;
/// assert_eq!(d.value(), Some(&7));
/// assert_eq!(d.round(), Some(Round::FIRST));
/// assert!(d.decide(8, Round::new(2)).is_err());
/// # Ok::<(), ssp_model::DoubleDecision<u64>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Decision<V> {
    inner: Option<(V, Round)>,
}

impl<V> Decision<V> {
    /// The undecided register (`decision = unknown`).
    #[must_use]
    pub fn unknown() -> Self {
        Decision { inner: None }
    }

    /// Whether a decision has been made.
    #[must_use]
    pub fn is_decided(&self) -> bool {
        self.inner.is_some()
    }

    /// The decided value, if any.
    #[must_use]
    pub fn value(&self) -> Option<&V> {
        self.inner.as_ref().map(|(v, _)| v)
    }

    /// The round at which the decision was made, if any.
    #[must_use]
    pub fn round(&self) -> Option<Round> {
        self.inner.as_ref().map(|&(_, r)| r)
    }

    /// Consumes the register, returning the decision and its round.
    #[must_use]
    pub fn into_inner(self) -> Option<(V, Round)> {
        self.inner
    }
}

impl<V: Value> Decision<V> {
    /// Records a decision made at `round`.
    ///
    /// Re-deciding the same value is a no-op (keeping the earliest
    /// round); deciding a *different* value violates integrity.
    ///
    /// # Errors
    ///
    /// Returns [`DoubleDecision`] if a different value was already
    /// decided.
    pub fn decide(&mut self, value: V, round: Round) -> Result<(), DoubleDecision<V>> {
        match &self.inner {
            None => {
                self.inner = Some((value, round));
                Ok(())
            }
            Some((prev, _)) if *prev == value => Ok(()),
            Some((prev, prev_round)) => Err(DoubleDecision {
                first: prev.clone(),
                first_round: *prev_round,
                second: value,
                second_round: round,
            }),
        }
    }
}

impl<V> Default for Decision<V> {
    fn default() -> Self {
        Decision::unknown()
    }
}

impl<V: fmt::Debug> fmt::Display for Decision<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "unknown"),
            Some((v, r)) => write!(f, "{v:?} (at {r})"),
        }
    }
}

/// Error returned when a process attempts to decide twice with
/// different values, violating integrity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoubleDecision<V> {
    /// The value decided first.
    pub first: V,
    /// Round of the first decision.
    pub first_round: Round,
    /// The conflicting later value.
    pub second: V,
    /// Round of the conflicting attempt.
    pub second_round: Round,
}

impl<V: fmt::Debug> fmt::Display for DoubleDecision<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "integrity violation: decided {:?} at {} then {:?} at {}",
            self.first, self.first_round, self.second, self.second_round
        )
    }
}

impl<V: fmt::Debug> std::error::Error for DoubleDecision<V> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_by_default() {
        let d: Decision<u64> = Decision::default();
        assert!(!d.is_decided());
        assert_eq!(d.value(), None);
        assert_eq!(d.round(), None);
        assert_eq!(d.to_string(), "unknown");
    }

    #[test]
    fn decide_once() {
        let mut d = Decision::unknown();
        d.decide(3u64, Round::new(2)).unwrap();
        assert_eq!(d.value(), Some(&3));
        assert_eq!(d.round(), Some(Round::new(2)));
        assert_eq!(d.into_inner(), Some((3, Round::new(2))));
    }

    #[test]
    fn redeciding_same_value_is_idempotent() {
        let mut d = Decision::unknown();
        d.decide(3u64, Round::FIRST).unwrap();
        d.decide(3u64, Round::new(5)).unwrap();
        assert_eq!(d.round(), Some(Round::FIRST), "earliest round kept");
    }

    #[test]
    fn conflicting_decision_is_integrity_violation() {
        let mut d = Decision::unknown();
        d.decide(3u64, Round::FIRST).unwrap();
        let err = d.decide(4u64, Round::new(2)).unwrap_err();
        assert_eq!(err.first, 3);
        assert_eq!(err.second, 4);
        assert!(err.to_string().contains("integrity violation"));
    }
}
