//! Process identifiers and sets of processes.
//!
//! The paper considers a fixed universe `Π = {p_1, …, p_n}` of processes
//! (§2). [`ProcessId`] is a zero-based index into that universe and
//! [`ProcessSet`] is a compact bitset over it, used pervasively for
//! failure-detector outputs (`H(p_i, t) ⊆ Π`), `halt` sets
//! (FloodSetWS), and correct/faulty partitions.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Maximum number of processes supported by [`ProcessSet`].
pub const MAX_PROCESSES: usize = 64;

/// Identifier of a process `p_i`.
///
/// Internally zero-based: the paper's `p_1` is `ProcessId(0)`. The
/// `Display` implementation renders the paper's one-based name so that
/// counterexample reports read like the proofs.
///
/// # Examples
///
/// ```
/// use ssp_model::ProcessId;
///
/// let p1 = ProcessId::new(0);
/// assert_eq!(p1.index(), 0);
/// assert_eq!(p1.to_string(), "p1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProcessId(u8);

impl ProcessId {
    /// Creates the identifier of the process with zero-based index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_PROCESSES`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(
            index < MAX_PROCESSES,
            "process index {index} out of range (max {MAX_PROCESSES})"
        );
        ProcessId(index as u8)
    }

    /// Zero-based index of this process within `Π`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0 as usize + 1)
    }
}

impl From<ProcessId> for usize {
    fn from(id: ProcessId) -> usize {
        id.index()
    }
}

/// A set of processes, represented as a 64-bit bitset.
///
/// Supports the set operations the models need: union, intersection,
/// difference, complement within a universe of size `n`, and iteration
/// in increasing index order.
///
/// # Examples
///
/// ```
/// use ssp_model::{ProcessId, ProcessSet};
///
/// let universe = ProcessSet::full(4);
/// let mut crashed = ProcessSet::empty();
/// crashed.insert(ProcessId::new(2));
/// let alive = universe.difference(crashed);
/// assert_eq!(alive.len(), 3);
/// assert!(!alive.contains(ProcessId::new(2)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct ProcessSet(u64);

impl ProcessSet {
    /// The empty set.
    #[must_use]
    pub fn empty() -> Self {
        ProcessSet(0)
    }

    /// The full universe `{p_1, …, p_n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PROCESSES`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        assert!(
            n <= MAX_PROCESSES,
            "universe of {n} exceeds {MAX_PROCESSES}"
        );
        if n == MAX_PROCESSES {
            ProcessSet(u64::MAX)
        } else {
            ProcessSet((1u64 << n) - 1)
        }
    }

    /// The singleton set `{p}`.
    #[must_use]
    pub fn singleton(p: ProcessId) -> Self {
        ProcessSet(1u64 << p.index())
    }

    /// Constructs a set from a raw bitmask (bit `i` ⇔ process of index `i`).
    #[must_use]
    pub fn from_bits(bits: u64) -> Self {
        ProcessSet(bits)
    }

    /// Raw bitmask of the set.
    #[must_use]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Whether the set contains no process.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of processes in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `p` belongs to the set.
    #[must_use]
    pub fn contains(self, p: ProcessId) -> bool {
        self.0 & (1u64 << p.index()) != 0
    }

    /// Inserts `p`; returns `true` if it was absent.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        let was = self.contains(p);
        self.0 |= 1u64 << p.index();
        !was
    }

    /// Removes `p`; returns `true` if it was present.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        let was = self.contains(p);
        self.0 &= !(1u64 << p.index());
        was
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 & !other.0)
    }

    /// Whether `self ⊆ other`.
    #[must_use]
    pub fn is_subset(self, other: ProcessSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over the members in increasing index order.
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for p in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcessSet::empty();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the members of a [`ProcessSet`] in increasing index order.
#[derive(Debug, Clone)]
pub struct Iter(u64);

impl Iterator for Iter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(ProcessId::new(i))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

/// Iterates over all process identifiers of a universe of size `n`.
///
/// # Examples
///
/// ```
/// use ssp_model::process::all_processes;
///
/// let names: Vec<String> = all_processes(3).map(|p| p.to_string()).collect();
/// assert_eq!(names, ["p1", "p2", "p3"]);
/// ```
pub fn all_processes(n: usize) -> impl Iterator<Item = ProcessId> + Clone {
    (0..n).map(ProcessId::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display_is_one_based() {
        assert_eq!(ProcessId::new(0).to_string(), "p1");
        assert_eq!(ProcessId::new(5).to_string(), "p6");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn process_id_rejects_out_of_range() {
        let _ = ProcessId::new(MAX_PROCESSES);
    }

    #[test]
    fn full_universe_has_n_members() {
        for n in 0..=8 {
            assert_eq!(ProcessSet::full(n).len(), n);
        }
        assert_eq!(ProcessSet::full(64).len(), 64);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = ProcessSet::empty();
        let p = ProcessId::new(3);
        assert!(s.insert(p));
        assert!(!s.insert(p));
        assert!(s.contains(p));
        assert!(s.remove(p));
        assert!(!s.remove(p));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a: ProcessSet = [0, 1, 2].into_iter().map(ProcessId::new).collect();
        let b: ProcessSet = [2, 3].into_iter().map(ProcessId::new).collect();
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b), ProcessSet::singleton(ProcessId::new(2)));
        assert_eq!(a.difference(b).len(), 2);
        assert!(a.intersection(b).is_subset(a));
        assert!(!a.is_subset(b));
    }

    #[test]
    fn iteration_is_sorted() {
        let s: ProcessSet = [5, 1, 3].into_iter().map(ProcessId::new).collect();
        let idx: Vec<usize> = s.iter().map(ProcessId::index).collect();
        assert_eq!(idx, [1, 3, 5]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn display_formats_as_set() {
        let s: ProcessSet = [0, 2].into_iter().map(ProcessId::new).collect();
        assert_eq!(s.to_string(), "{p1, p3}");
        assert_eq!(ProcessSet::empty().to_string(), "{}");
    }

    #[test]
    fn debug_is_never_empty() {
        assert_eq!(format!("{:?}", ProcessSet::empty()), "{}");
    }
}
