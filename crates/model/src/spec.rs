//! Problem specifications (§2.7, §3, §5.1) as executable checkers.
//!
//! A problem is a set of (acceptable) runs; here each specification is
//! a predicate over run *outcomes*, returning a structured violation
//! when the run is outside the specification. The checkers are used by
//! the exhaustive analyses in `ssp-lab` and by the integration tests.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::process::ProcessId;
use crate::run::ConsensusOutcome;
use crate::value::Value;

/// Ways a run can violate the uniform consensus specification (§5.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsensusViolation<V> {
    /// Two processes (correct or faulty) decided differently.
    UniformAgreement {
        /// First decider and its value.
        a: (ProcessId, V),
        /// Second decider and its conflicting value.
        b: (ProcessId, V),
    },
    /// All processes proposed the same value but someone decided
    /// something else.
    UniformValidity {
        /// The unanimous proposal.
        proposed: V,
        /// The offending decider and its decision.
        decided: (ProcessId, V),
    },
    /// A decision is not the input of any process (only reported by
    /// [`check_uniform_consensus_strong`]).
    StrongValidity {
        /// The offending decider and its out-of-thin-air decision.
        decided: (ProcessId, V),
    },
    /// A correct process never decided.
    Termination {
        /// The non-deciding correct process.
        process: ProcessId,
    },
}

impl<V: fmt::Debug> fmt::Display for ConsensusViolation<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusViolation::UniformAgreement { a, b } => write!(
                f,
                "uniform agreement violated: {} decided {:?} but {} decided {:?}",
                a.0, a.1, b.0, b.1
            ),
            ConsensusViolation::UniformValidity { proposed, decided } => write!(
                f,
                "uniform validity violated: all proposed {:?} but {} decided {:?}",
                proposed, decided.0, decided.1
            ),
            ConsensusViolation::StrongValidity { decided } => write!(
                f,
                "strong validity violated: {} decided {:?}, which nobody proposed",
                decided.0, decided.1
            ),
            ConsensusViolation::Termination { process } => {
                write!(
                    f,
                    "termination violated: correct process {process} never decided"
                )
            }
        }
    }
}

impl<V: fmt::Debug> std::error::Error for ConsensusViolation<V> {}

/// Checks the uniform consensus specification on a run outcome:
/// uniform validity, uniform agreement, and termination.
///
/// Uniform agreement quantifies over *all* deciders, including
/// processes that crashed after deciding — this is what separates
/// uniform consensus from consensus and what `FloodSet` fails to
/// guarantee in `RWS`.
///
/// # Errors
///
/// Returns the first violation found, in the order agreement,
/// validity, termination.
///
/// # Examples
///
/// ```
/// use ssp_model::{check_uniform_consensus, ConsensusOutcome, ProcessOutcome, Round};
///
/// let run = ConsensusOutcome::new(vec![
///     ProcessOutcome { input: 0u64, decision: Some((0, Round::FIRST)), crashed_in: None },
///     ProcessOutcome { input: 1, decision: Some((1, Round::FIRST)), crashed_in: None },
/// ]);
/// assert!(check_uniform_consensus(&run).is_err());
/// ```
pub fn check_uniform_consensus<V: Value>(
    run: &ConsensusOutcome<V>,
) -> Result<(), ConsensusViolation<V>> {
    // Uniform agreement.
    let mut first_decider: Option<(ProcessId, &V)> = None;
    for (p, o) in run.iter() {
        if let Some((v, _)) = &o.decision {
            match first_decider {
                None => first_decider = Some((p, v)),
                Some((q, w)) if w != v => {
                    return Err(ConsensusViolation::UniformAgreement {
                        a: (q, w.clone()),
                        b: (p, v.clone()),
                    });
                }
                _ => {}
            }
        }
    }
    // Uniform validity.
    let config = run.initial_config();
    if config.is_unanimous() {
        let proposed = config.inputs()[0].clone();
        for (p, o) in run.iter() {
            if let Some((v, _)) = &o.decision {
                if *v != proposed {
                    return Err(ConsensusViolation::UniformValidity {
                        proposed,
                        decided: (p, v.clone()),
                    });
                }
            }
        }
    }
    // Termination.
    for (p, o) in run.iter() {
        if o.is_correct() && o.decision.is_none() {
            return Err(ConsensusViolation::Termination { process: p });
        }
    }
    Ok(())
}

/// Like [`check_uniform_consensus`], but additionally requires *strong
/// validity*: every decision is the input of some process.
///
/// The paper only assumes uniform validity; all FloodSet-family
/// algorithms actually guarantee the strong form, which this checker
/// verifies.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_uniform_consensus_strong<V: Value>(
    run: &ConsensusOutcome<V>,
) -> Result<(), ConsensusViolation<V>> {
    check_uniform_consensus(run)?;
    let config = run.initial_config();
    for (p, o) in run.iter() {
        if let Some((v, _)) = &o.decision {
            if !config.contains(v) {
                return Err(ConsensusViolation::StrongValidity {
                    decided: (p, v.clone()),
                });
            }
        }
    }
    Ok(())
}

/// Outcome record of a Strongly Dependent Decision run (§3).
///
/// SDD involves two processes: a *sender* `p_i` holding a binary input
/// and a *receiver* `p_j` that must decide. Integrity is enforced
/// structurally ([`crate::Decision`] decides at most once), so the
/// record carries only what validity and termination need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SddOutcome {
    /// The sender's binary input value.
    pub sender_input: bool,
    /// Whether the sender was initially dead (crashed before taking
    /// any step). Validity only constrains the decision when it was
    /// *not*.
    pub sender_initially_dead: bool,
    /// Whether the receiver is correct in this run.
    pub receiver_correct: bool,
    /// The receiver's decision, if it made one.
    pub decision: Option<bool>,
}

/// Ways a run can violate the SDD specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SddViolation {
    /// The sender took at least one step, yet the receiver decided a
    /// value different from the sender's input.
    Validity {
        /// The sender's input.
        input: bool,
        /// The receiver's (wrong) decision.
        decided: bool,
    },
    /// The receiver is correct but never decided.
    Termination,
}

impl fmt::Display for SddViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SddViolation::Validity { input, decided } => write!(
                f,
                "SDD validity violated: sender was not initially dead with input {}, receiver decided {}",
                *input as u8, *decided as u8
            ),
            SddViolation::Termination => {
                write!(f, "SDD termination violated: correct receiver never decided")
            }
        }
    }
}

impl std::error::Error for SddViolation {}

/// Checks the SDD specification on an outcome record.
///
/// # Errors
///
/// Returns [`SddViolation::Validity`] if the sender took a step but the
/// decision differs from its input, or [`SddViolation::Termination`] if
/// a correct receiver never decided.
///
/// # Examples
///
/// ```
/// use ssp_model::{check_sdd, SddOutcome};
///
/// let run = SddOutcome {
///     sender_input: true,
///     sender_initially_dead: false,
///     receiver_correct: true,
///     decision: Some(true),
/// };
/// assert!(check_sdd(&run).is_ok());
/// ```
pub fn check_sdd(run: &SddOutcome) -> Result<(), SddViolation> {
    if let Some(decided) = run.decision {
        if !run.sender_initially_dead && decided != run.sender_input {
            return Err(SddViolation::Validity {
                input: run.sender_input,
                decided,
            });
        }
    }
    if run.receiver_correct && run.decision.is_none() {
        return Err(SddViolation::Termination);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::ProcessOutcome;
    use crate::time::Round;

    fn po(
        input: u64,
        decision: Option<(u64, u32)>,
        crashed_in: Option<u32>,
    ) -> ProcessOutcome<u64> {
        ProcessOutcome {
            input,
            decision: decision.map(|(v, r)| (v, Round::new(r))),
            crashed_in: crashed_in.map(Round::new),
        }
    }

    #[test]
    fn accepts_clean_agreement() {
        let run = ConsensusOutcome::new(vec![po(0, Some((0, 2)), None), po(1, Some((0, 2)), None)]);
        assert!(check_uniform_consensus_strong(&run).is_ok());
    }

    #[test]
    fn detects_disagreement_with_faulty_decider() {
        // The RWS counterexample shape: p1 decides then crashes; rest decide differently.
        let run = ConsensusOutcome::new(vec![
            po(0, Some((0, 1)), Some(1)),
            po(1, Some((1, 2)), None),
            po(1, Some((1, 2)), None),
        ]);
        match check_uniform_consensus(&run) {
            Err(ConsensusViolation::UniformAgreement { a, b }) => {
                assert_eq!(a.1, 0);
                assert_eq!(b.1, 1);
            }
            other => panic!("expected agreement violation, got {other:?}"),
        }
    }

    #[test]
    fn detects_uniform_validity_breach() {
        let run = ConsensusOutcome::new(vec![po(5, Some((6, 1)), None), po(5, Some((6, 1)), None)]);
        assert!(matches!(
            check_uniform_consensus(&run),
            Err(ConsensusViolation::UniformValidity { .. })
        ));
    }

    #[test]
    fn strong_validity_rejects_out_of_thin_air() {
        let run = ConsensusOutcome::new(vec![po(5, Some((6, 1)), None), po(7, Some((6, 1)), None)]);
        // Not unanimous, so plain uniform consensus passes…
        assert!(check_uniform_consensus(&run).is_ok());
        // …but the decision 6 was nobody's input.
        assert!(matches!(
            check_uniform_consensus_strong(&run),
            Err(ConsensusViolation::StrongValidity { .. })
        ));
    }

    #[test]
    fn detects_missing_termination() {
        let run = ConsensusOutcome::new(vec![po(0, None, None), po(0, Some((0, 1)), None)]);
        assert!(matches!(
            check_uniform_consensus(&run),
            Err(ConsensusViolation::Termination { process }) if process == ProcessId::new(0)
        ));
    }

    #[test]
    fn crashed_undecided_process_is_fine() {
        let run = ConsensusOutcome::new(vec![po(0, None, Some(1)), po(0, Some((0, 1)), None)]);
        assert!(check_uniform_consensus(&run).is_ok());
    }

    #[test]
    fn sdd_validity_only_when_sender_stepped() {
        // Sender initially dead: receiver may decide anything (the default 0).
        let run = SddOutcome {
            sender_input: true,
            sender_initially_dead: true,
            receiver_correct: true,
            decision: Some(false),
        };
        assert!(check_sdd(&run).is_ok());
        // Sender alive: decision must match.
        let bad = SddOutcome {
            sender_initially_dead: false,
            ..run
        };
        assert_eq!(
            check_sdd(&bad),
            Err(SddViolation::Validity {
                input: true,
                decided: false
            })
        );
    }

    #[test]
    fn sdd_termination_for_correct_receiver() {
        let run = SddOutcome {
            sender_input: false,
            sender_initially_dead: false,
            receiver_correct: true,
            decision: None,
        };
        assert_eq!(check_sdd(&run), Err(SddViolation::Termination));
        // A crashed receiver need not decide.
        let crashed = SddOutcome {
            receiver_correct: false,
            ..run
        };
        assert!(check_sdd(&crashed).is_ok());
    }

    #[test]
    fn violations_display_readably() {
        let v = ConsensusViolation::Termination::<u64> {
            process: ProcessId::new(2),
        };
        assert!(v.to_string().contains("p3"));
        assert!(SddViolation::Termination.to_string().contains("receiver"));
    }
}
