//! Foundational types for the SS/SP model comparison.
//!
//! This crate provides the vocabulary shared by every other `ssp`
//! crate, following §2 of *“Synchronous System and Perfect Failure
//! Detector: solvability and efficiency issues”* (Charron-Bost,
//! Guerraoui, Schiper — DSN 2000):
//!
//! * [`ProcessId`] / [`ProcessSet`] — the process universe `Π`;
//! * [`Time`], [`StepIndex`], [`Round`] — the discrete global clock,
//!   schedule positions, and round numbers;
//! * [`FailurePattern`] — crash failure patterns `F : T → 2^Π`;
//! * [`Envelope`] / [`Buffer`] — messages in flight and per-process
//!   receive buffers;
//! * [`InitialConfig`] — initial configurations, plus exhaustive
//!   enumeration for the latency functionals of §5.2;
//! * [`Decision`] — the `decision ∈ V ∪ {unknown}` register with
//!   structural integrity (decide at most once);
//! * [`ConsensusOutcome`] / [`SddOutcome`] and the checkers
//!   [`check_uniform_consensus`], [`check_uniform_consensus_strong`],
//!   [`check_sdd`] — problem specifications as executable predicates.
//!
//! # Examples
//!
//! Build a run outcome by hand and check it against the uniform
//! consensus specification:
//!
//! ```
//! use ssp_model::{
//!     check_uniform_consensus, ConsensusOutcome, ProcessOutcome, Round,
//! };
//!
//! let run = ConsensusOutcome::new(vec![
//!     ProcessOutcome { input: 3u64, decision: Some((3, Round::new(2))), crashed_in: None },
//!     ProcessOutcome { input: 8, decision: Some((3, Round::new(2))), crashed_in: None },
//! ]);
//! check_uniform_consensus(&run)?;
//! assert_eq!(run.latency_degree(), Some(2));
//! # Ok::<(), ssp_model::ConsensusViolation<u64>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod config;
pub mod events;
pub mod failure;
pub mod message;
pub mod process;
pub mod run;
pub mod spec;
pub mod time;
pub mod value;

pub use adversary::{AdversaryRecord, CrashRecord};
pub use config::{canonical_full_classes, canonical_value_classes, InitialConfig};
pub use events::{
    CountingObserver, DeliveryMatrix, Divergence, EventCounts, LogParseError, NullObserver,
    Observer, RunEvent, RunLog, RunLogObserver, StepStamp, TaggedRunLog,
};
pub use failure::FailurePattern;
pub use message::{Buffer, Envelope};
pub use process::{ProcessId, ProcessSet, MAX_PROCESSES};
pub use run::{ConsensusOutcome, ProcessOutcome};
pub use spec::{
    check_sdd, check_uniform_consensus, check_uniform_consensus_strong, ConsensusViolation,
    SddOutcome, SddViolation,
};
pub use time::{Round, StepIndex, Time};
pub use value::{Decision, DoubleDecision, Value};
