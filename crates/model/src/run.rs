//! Outcome records of executed runs.
//!
//! The specification checkers (see [`crate::spec`]) and the latency
//! metrics (`|r|`, `lat`, `Lat`, `Λ` of §5.2) operate on a compact
//! summary of a run: who started with what, who decided what and when,
//! and who crashed. Crucially, decisions made by processes that *later
//! crash* are retained — uniform agreement quantifies over faulty
//! deciders too, which is the entire point of the `RWS` counterexamples.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::config::InitialConfig;
use crate::process::{ProcessId, ProcessSet};
use crate::time::Round;
use crate::value::Value;

/// Per-process summary of a finished run of a round-based algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcessOutcome<V> {
    /// The process's input value.
    pub input: V,
    /// Decision and the round it was made in, if the process decided
    /// (possibly before crashing).
    pub decision: Option<(V, Round)>,
    /// The round during which the process crashed, if faulty.
    pub crashed_in: Option<Round>,
}

impl<V: Value> ProcessOutcome<V> {
    /// Outcome of a process that ran to completion without deciding.
    #[must_use]
    pub fn undecided(input: V) -> Self {
        ProcessOutcome {
            input,
            decision: None,
            crashed_in: None,
        }
    }

    /// Whether the process is correct in this run.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.crashed_in.is_none()
    }
}

/// Summary of one run of a consensus-style algorithm.
///
/// # Examples
///
/// ```
/// use ssp_model::{ConsensusOutcome, ProcessOutcome, Round};
///
/// let run = ConsensusOutcome::new(vec![
///     ProcessOutcome { input: 0u64, decision: Some((0, Round::new(2))), crashed_in: None },
///     ProcessOutcome { input: 1, decision: Some((0, Round::new(2))), crashed_in: None },
/// ]);
/// assert_eq!(run.latency_degree(), Some(2));
/// assert!(run.all_correct_decided());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConsensusOutcome<V> {
    outcomes: Vec<ProcessOutcome<V>>,
}

impl<V: Value> ConsensusOutcome<V> {
    /// Creates a run summary from per-process outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty.
    #[must_use]
    pub fn new(outcomes: Vec<ProcessOutcome<V>>) -> Self {
        assert!(!outcomes.is_empty(), "at least one process required");
        ConsensusOutcome { outcomes }
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.outcomes.len()
    }

    /// Outcome of process `p`.
    #[must_use]
    pub fn outcome(&self, p: ProcessId) -> &ProcessOutcome<V> {
        &self.outcomes[p.index()]
    }

    /// Iterates over `(process, outcome)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &ProcessOutcome<V>)> {
        self.outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| (ProcessId::new(i), o))
    }

    /// The initial configuration this run started from.
    #[must_use]
    pub fn initial_config(&self) -> InitialConfig<V> {
        InitialConfig::new(self.outcomes.iter().map(|o| o.input.clone()).collect())
    }

    /// The set of correct processes in this run.
    #[must_use]
    pub fn correct(&self) -> ProcessSet {
        self.iter()
            .filter(|(_, o)| o.is_correct())
            .map(|(p, _)| p)
            .collect()
    }

    /// Number of faulty processes in this run (the `f` of `Lat(A, f)`).
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.n() - self.correct().len()
    }

    /// Whether every correct process decided (termination).
    #[must_use]
    pub fn all_correct_decided(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| !o.is_correct() || o.decision.is_some())
    }

    /// The latency degree `|r|`: the number of rounds until all the
    /// correct processes decide (§5.2), or `None` if some correct
    /// process never decided.
    ///
    /// In a run with no correct process (impossible when `t < n`) the
    /// latency degree is 0.
    #[must_use]
    pub fn latency_degree(&self) -> Option<u32> {
        let mut max = 0;
        for o in &self.outcomes {
            if o.is_correct() {
                match &o.decision {
                    Some((_, r)) => max = max.max(r.get()),
                    None => return None,
                }
            }
        }
        Some(max)
    }

    /// All distinct decided values (across correct *and* faulty
    /// processes), in first-decider order.
    #[must_use]
    pub fn decided_values(&self) -> Vec<V> {
        let mut vals: Vec<V> = Vec::new();
        for o in &self.outcomes {
            if let Some((v, _)) = &o.decision {
                if !vals.contains(v) {
                    vals.push(v.clone());
                }
            }
        }
        vals
    }
}

impl<V: fmt::Debug> fmt::Display for ConsensusOutcome<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "run outcome:")?;
        for (i, o) in self.outcomes.iter().enumerate() {
            let p = ProcessId::new(i);
            write!(f, "  {p}: input {:?}", o.input)?;
            match &o.decision {
                Some((v, r)) => write!(f, ", decided {v:?} at {r}")?,
                None => write!(f, ", undecided")?,
            }
            match o.crashed_in {
                Some(r) => writeln!(f, ", crashed in {r}")?,
                None => writeln!(f, ", correct")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(
        input: u64,
        decision: Option<(u64, u32)>,
        crashed_in: Option<u32>,
    ) -> ProcessOutcome<u64> {
        ProcessOutcome {
            input,
            decision: decision.map(|(v, r)| (v, Round::new(r))),
            crashed_in: crashed_in.map(Round::new),
        }
    }

    #[test]
    fn latency_is_max_over_correct() {
        let run = ConsensusOutcome::new(vec![
            outcome(0, Some((0, 1)), None),
            outcome(1, Some((0, 3)), None),
            outcome(1, Some((0, 9)), Some(9)), // faulty decider ignored for latency
        ]);
        assert_eq!(run.latency_degree(), Some(3));
        assert_eq!(run.fault_count(), 1);
    }

    #[test]
    fn latency_none_when_correct_undecided() {
        let run = ConsensusOutcome::new(vec![outcome(0, None, None)]);
        assert_eq!(run.latency_degree(), None);
        assert!(!run.all_correct_decided());
    }

    #[test]
    fn decided_values_include_faulty_deciders() {
        let run = ConsensusOutcome::new(vec![
            outcome(0, Some((0, 1)), Some(1)), // decided then crashed
            outcome(1, Some((1, 2)), None),
        ]);
        assert_eq!(run.decided_values(), vec![0, 1]);
    }

    #[test]
    fn initial_config_roundtrip() {
        let run = ConsensusOutcome::new(vec![outcome(4, None, None), outcome(7, None, None)]);
        assert_eq!(run.initial_config().inputs(), &[4, 7]);
    }

    #[test]
    fn display_mentions_every_process() {
        let run = ConsensusOutcome::new(vec![outcome(0, Some((0, 1)), None)]);
        let s = run.to_string();
        assert!(s.contains("p1"));
        assert!(s.contains("decided 0"));
    }
}
