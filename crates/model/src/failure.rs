//! Failure patterns (§2.1).
//!
//! A failure pattern `F : T → 2^Π` records which processes have crashed
//! by each time, with `F(t) ⊆ F(t+1)` (no recovery). Because of
//! monotonicity a pattern is fully described by each process's crash
//! time, which is how [`FailurePattern`] stores it.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::process::{all_processes, ProcessId, ProcessSet};
use crate::time::Time;

/// A crash failure pattern over a universe of `n` processes.
///
/// Equivalent to the paper's `F : T → 2^Π` with monotone `F`: process
/// `p` is *crashed at* every `t ≥ crash_time(p)` and alive before.
/// A process crashing at `Time::ZERO` is *initially dead* — it never
/// takes a step (this distinction matters for SDD validity and for
/// `F_OptFloodSet`'s `t`-initial-crashes scenario).
///
/// # Examples
///
/// ```
/// use ssp_model::{FailurePattern, ProcessId, Time};
///
/// let mut f = FailurePattern::no_failures(3);
/// f.crash(ProcessId::new(1), Time::new(5));
/// assert!(f.is_alive_at(ProcessId::new(1), Time::new(4)));
/// assert!(!f.is_alive_at(ProcessId::new(1), Time::new(5)));
/// assert_eq!(f.faulty().len(), 1);
/// assert_eq!(f.correct().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FailurePattern {
    n: usize,
    crash_times: Vec<Option<Time>>,
}

impl FailurePattern {
    /// The failure-free pattern over `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`crate::process::MAX_PROCESSES`].
    #[must_use]
    pub fn no_failures(n: usize) -> Self {
        let _ = ProcessSet::full(n); // range check
        FailurePattern {
            n,
            crash_times: vec![None; n],
        }
    }

    /// Number of processes in the universe.
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.n
    }

    /// Marks `p` as crashing at time `t` (it is crashed at every `t' ≥ t`).
    ///
    /// Calling `crash` again with an earlier time moves the crash
    /// earlier; a later time is ignored, preserving monotonicity.
    pub fn crash(&mut self, p: ProcessId, t: Time) -> &mut Self {
        let slot = &mut self.crash_times[p.index()];
        match slot {
            Some(existing) if *existing <= t => {}
            _ => *slot = Some(t),
        }
        self
    }

    /// Crash time of `p`, or `None` if `p` is correct.
    #[must_use]
    pub fn crash_time(&self, p: ProcessId) -> Option<Time> {
        self.crash_times[p.index()]
    }

    /// Whether `p` is alive at time `t` (i.e. `p ∉ F(t)`).
    #[must_use]
    pub fn is_alive_at(&self, p: ProcessId, t: Time) -> bool {
        match self.crash_times[p.index()] {
            None => true,
            Some(ct) => t < ct,
        }
    }

    /// Whether `p` is *initially dead*: crashed at `Time::ZERO`, so it
    /// never takes a step.
    #[must_use]
    pub fn is_initially_dead(&self, p: ProcessId) -> bool {
        self.crash_times[p.index()] == Some(Time::ZERO)
    }

    /// The set `F(t)` of processes crashed by time `t`.
    #[must_use]
    pub fn crashed_at(&self, t: Time) -> ProcessSet {
        all_processes(self.n)
            .filter(|&p| !self.is_alive_at(p, t))
            .collect()
    }

    /// The set `Faulty(F) = ∪_t F(t)` of processes that ever crash.
    #[must_use]
    pub fn faulty(&self) -> ProcessSet {
        all_processes(self.n)
            .filter(|&p| self.crash_times[p.index()].is_some())
            .collect()
    }

    /// The set `Correct(F) = Π \ Faulty(F)`.
    #[must_use]
    pub fn correct(&self) -> ProcessSet {
        ProcessSet::full(self.n).difference(self.faulty())
    }

    /// Whether `p` is correct (never crashes).
    #[must_use]
    pub fn is_correct(&self, p: ProcessId) -> bool {
        self.crash_times[p.index()].is_none()
    }

    /// Number of faulty processes.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.faulty().len()
    }

    /// Checks the environment bound: at most `t` crashes.
    #[must_use]
    pub fn respects_bound(&self, t: usize) -> bool {
        self.fault_count() <= t
    }
}

impl fmt::Display for FailurePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F[")?;
        let mut first = true;
        for p in all_processes(self.n) {
            if let Some(t) = self.crash_times[p.index()] {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{p}↓@{}", t.tick())?;
                first = false;
            }
        }
        if first {
            write!(f, "no failures")?;
        }
        write!(f, "]")
    }
}

/// Enumerates every failure pattern with at most `max_faults` crashes,
/// with crash times drawn from `0..=horizon` ticks.
///
/// Used by exhaustive analyses over step-level models. The number of
/// patterns grows as `Σ_k C(n,k)·(horizon+1)^k`; keep `n` and `horizon`
/// small.
///
/// # Examples
///
/// ```
/// use ssp_model::failure::enumerate_patterns;
///
/// // 2 processes, ≤1 crash, crash times in {0,1,2}:
/// // 1 failure-free + 2·3 single-crash patterns.
/// assert_eq!(enumerate_patterns(2, 1, 2).count(), 7);
/// ```
pub fn enumerate_patterns(
    n: usize,
    max_faults: usize,
    horizon: u64,
) -> impl Iterator<Item = FailurePattern> {
    let mut out = Vec::new();
    let mut current = FailurePattern::no_failures(n);
    fn recurse(
        n: usize,
        from: usize,
        remaining: usize,
        horizon: u64,
        current: &mut FailurePattern,
        out: &mut Vec<FailurePattern>,
    ) {
        out.push(current.clone());
        if remaining == 0 {
            return;
        }
        for i in from..n {
            for t in 0..=horizon {
                current.crash_times[i] = Some(Time::new(t));
                recurse(n, i + 1, remaining - 1, horizon, current, out);
                current.crash_times[i] = None;
            }
        }
    }
    recurse(n, 0, max_faults, horizon, &mut current, &mut out);
    out.into_iter()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_failures_everyone_correct() {
        let f = FailurePattern::no_failures(4);
        assert_eq!(f.correct(), ProcessSet::full(4));
        assert!(f.faulty().is_empty());
        assert!(f.respects_bound(0));
        assert_eq!(f.to_string(), "F[no failures]");
    }

    #[test]
    fn crash_is_monotone() {
        let mut f = FailurePattern::no_failures(2);
        let p = ProcessId::new(0);
        f.crash(p, Time::new(10));
        f.crash(p, Time::new(20)); // later crash ignored
        assert_eq!(f.crash_time(p), Some(Time::new(10)));
        f.crash(p, Time::new(3)); // earlier crash wins
        assert_eq!(f.crash_time(p), Some(Time::new(3)));
    }

    #[test]
    fn crashed_at_grows_with_time() {
        let mut f = FailurePattern::no_failures(3);
        f.crash(ProcessId::new(0), Time::new(1));
        f.crash(ProcessId::new(2), Time::new(4));
        assert!(f.crashed_at(Time::ZERO).is_empty());
        assert_eq!(f.crashed_at(Time::new(1)).len(), 1);
        assert_eq!(f.crashed_at(Time::new(4)).len(), 2);
        // F(t) ⊆ F(t+1)
        for t in 0..6 {
            assert!(f
                .crashed_at(Time::new(t))
                .is_subset(f.crashed_at(Time::new(t + 1))));
        }
    }

    #[test]
    fn initially_dead_detection() {
        let mut f = FailurePattern::no_failures(2);
        f.crash(ProcessId::new(1), Time::ZERO);
        assert!(f.is_initially_dead(ProcessId::new(1)));
        assert!(!f.is_initially_dead(ProcessId::new(0)));
        assert!(!f.is_alive_at(ProcessId::new(1), Time::ZERO));
    }

    #[test]
    fn enumeration_counts() {
        // n=3, ≤2 faults, horizon 1 (times {0,1}):
        // C(3,0) + C(3,1)*2 + C(3,2)*4 = 1 + 6 + 12 = 19
        assert_eq!(enumerate_patterns(3, 2, 1).count(), 19);
        // all patterns respect the bound
        assert!(enumerate_patterns(3, 2, 1).all(|f| f.respects_bound(2)));
    }

    #[test]
    fn display_shows_crashes() {
        let mut f = FailurePattern::no_failures(3);
        f.crash(ProcessId::new(1), Time::new(7));
        assert_eq!(f.to_string(), "F[p2↓@7]");
    }
}
