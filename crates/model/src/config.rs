//! Initial configurations (§2.2, §5.2).
//!
//! An initial configuration assigns each process its input value;
//! buffers start empty. `lat(A, C)` and `Lat(A)` quantify over the set
//! `C` of initial configurations, so this module also provides
//! exhaustive enumeration over small value domains.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::process::ProcessId;
use crate::value::Value;

/// The vector of initial values, one per process.
///
/// # Examples
///
/// ```
/// use ssp_model::{InitialConfig, ProcessId};
///
/// let c = InitialConfig::new(vec![0u64, 1, 0]);
/// assert_eq!(c.n(), 3);
/// assert_eq!(*c.input(ProcessId::new(1)), 1);
/// assert!(!c.is_unanimous());
/// assert!(InitialConfig::uniform(3, 5u64).is_unanimous());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InitialConfig<V> {
    inputs: Vec<V>,
}

impl<V: Value> InitialConfig<V> {
    /// Creates a configuration from per-process inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    #[must_use]
    pub fn new(inputs: Vec<V>) -> Self {
        assert!(!inputs.is_empty(), "at least one process required");
        InitialConfig { inputs }
    }

    /// The configuration where every one of `n` processes starts with `v`.
    #[must_use]
    pub fn uniform(n: usize, v: V) -> Self {
        InitialConfig::new(vec![v; n])
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.inputs.len()
    }

    /// Input value of process `p`.
    #[must_use]
    pub fn input(&self, p: ProcessId) -> &V {
        &self.inputs[p.index()]
    }

    /// All inputs, indexed by process.
    #[must_use]
    pub fn inputs(&self) -> &[V] {
        &self.inputs
    }

    /// Whether all processes start with the same value (the premise of
    /// uniform validity, and the round-1 fast path of `C_OptFloodSet`).
    #[must_use]
    pub fn is_unanimous(&self) -> bool {
        self.inputs.iter().all(|v| *v == self.inputs[0])
    }

    /// Whether `v` is the input of some process (strong validity).
    #[must_use]
    pub fn contains(&self, v: &V) -> bool {
        self.inputs.contains(v)
    }
}

impl<V: fmt::Debug> fmt::Display for InitialConfig<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C0{:?}", self.inputs)
    }
}

/// Enumerates every initial configuration of `n` processes over the
/// given `domain` of input values (`|domain|^n` configurations).
///
/// # Examples
///
/// ```
/// use ssp_model::config::enumerate_configs;
///
/// let all: Vec<_> = enumerate_configs(2, &[0u64, 1]).collect();
/// assert_eq!(all.len(), 4);
/// ```
pub fn enumerate_configs<V: Value>(
    n: usize,
    domain: &[V],
) -> impl Iterator<Item = InitialConfig<V>> + '_ {
    let total = domain.len().checked_pow(n as u32).expect("domain^n overflow");
    (0..total).map(move |mut code| {
        let mut inputs = Vec::with_capacity(n);
        for _ in 0..n {
            inputs.push(domain[code % domain.len()].clone());
            code /= domain.len();
        }
        InitialConfig::new(inputs)
    })
}

/// Enumerates binary (`{0,1}`) configurations of `n` processes.
pub fn binary_configs(n: usize) -> impl Iterator<Item = InitialConfig<u64>> {
    enumerate_configs(n, &[0u64, 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_unanimous() {
        let c = InitialConfig::uniform(4, 9u64);
        assert!(c.is_unanimous());
        assert!(c.contains(&9));
        assert!(!c.contains(&8));
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_config_rejected() {
        let _: InitialConfig<u64> = InitialConfig::new(vec![]);
    }

    #[test]
    fn enumeration_is_complete_and_distinct() {
        let all: Vec<_> = binary_configs(3).collect();
        assert_eq!(all.len(), 8);
        for i in 0..all.len() {
            for j in 0..i {
                assert_ne!(all[i], all[j]);
            }
        }
        assert_eq!(all.iter().filter(|c| c.is_unanimous()).count(), 2);
    }

    #[test]
    fn enumeration_over_larger_domain() {
        assert_eq!(enumerate_configs(2, &[1u64, 2, 3]).count(), 9);
    }

    #[test]
    fn display_shows_inputs() {
        let c = InitialConfig::new(vec![1u64, 0]);
        assert_eq!(c.to_string(), "C0[1, 0]");
    }
}
